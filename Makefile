# Developer entry points.  `make smoke` is the CI gate: tier-1 tests plus
# tiny benchmark invocations, so the benchmark entry points cannot
# silently rot.  `make bench-gate` is the perf gate: the declarative
# sweeps re-run at gate scale and diff against the committed
# benchmarks/results/BENCH_*.json baselines (frame counts exactly,
# latency within the band documented in docs/BENCHMARKS.md); refresh
# baselines intentionally with `make bench-baselines`.  `make
# docs-check` is the docs gate: the generated docs/collectives.md and
# docs/benchmarks-index.md must be current and every relative Markdown
# link under README.md / docs/ / benchmarks/results/ must resolve.
# `make lint-deep` is the protocol-invariant gate: the in-tree
# `repro.lint` analyzer (resource leaks, sim determinism, layering, tag
# namespaces, registry consistency — see docs/lint.md) plus the tier-1
# suite re-run with REPRO_SANITIZE=1, which makes every run_spmd
# teardown assert that no sockets, group memberships or events leak.
#
# CI: .github/workflows/ci.yml runs `make smoke` on every push and PR
# across Python 3.10-3.12 (uploading benchmarks/results/ as an artifact),
# plus `make bench-gate`, `make lint`, `make lint-deep` and
# `make docs-check` as separate jobs.  Locally, `make lint` needs ruff
# on PATH (pip install ruff) and skips with a notice otherwise — CI
# always installs it, so lint failures cannot slip through.  `make
# lint-deep` has no dependencies beyond the repo itself.

PY := PYTHONPATH=src python

.PHONY: test smoke lint lint-deep fuzz bench-segmented bench-gate \
	bench-baselines bench-full docs docs-check

test:
	$(PY) -m pytest -x -q

smoke: test
	REPRO_SEG_SMOKE=1 REPRO_BENCH_REPS=3 $(PY) -m pytest -q \
		benchmarks/bench_segmented_bcast.py \
		benchmarks/bench_segmented_reduce.py \
		benchmarks/bench_fabric_scaling.py \
		benchmarks/bench_deep_fabric.py \
		benchmarks/bench_sim_throughput.py

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping lint (CI installs it)"; \
	fi

# Protocol-invariant static analysis + the leak-sanitized tier-1 run.
# Stdlib-only: works everywhere the tests work.
lint-deep:
	$(PY) -m repro.lint src tests benchmarks examples
	REPRO_SANITIZE=1 $(PY) -m pytest -x -q

# The chaos gate: 200 seeded property-fuzz cases over every registered
# fault scenario (docs/CHAOS.md).  Fixed seed, so the run is a
# regression test, not a lottery; any failure prints a one-line replay
# command and writes its flight-recorder dump under chaos-artifacts/.
fuzz:
	REPRO_SANITIZE=1 $(PY) -m repro.chaos.fuzz --budget 200 --seed 1 \
		--workers 2 --artifacts chaos-artifacts

bench-segmented:
	$(PY) -m pytest -q benchmarks/bench_segmented_bcast.py

# The perf regression gate CI runs: re-sweep every area at gate scale
# and diff against the committed BENCH_*.json baselines (frame counts
# exactly; latency within the documented band — see docs/BENCHMARKS.md).
bench-gate:
	$(PY) -m repro.bench.cli sweep --check

# Intentionally refresh the committed baselines (BENCH_*.json + the
# rendered markdown + the generated benchmarks index).
bench-baselines:
	$(PY) -m repro.bench.cli sweep
	$(PY) -m repro.bench.cli bench-doc

# The big sweeps (not committed; honours REPRO_BENCH_REPS).
bench-full:
	$(PY) -m pytest -q benchmarks/bench_segmented_bcast.py \
		benchmarks/bench_segmented_reduce.py \
		benchmarks/bench_fabric_scaling.py \
		benchmarks/bench_deep_fabric.py \
		benchmarks/bench_sim_throughput.py

# Regenerate the derived docs (the collective registry reference and
# the benchmarks index).
docs:
	$(PY) -m repro.bench.cli registry-doc
	$(PY) -m repro.bench.cli bench-doc

# The docs gate CI runs: the generated references must be current and
# every relative Markdown link in README.md / docs/ /
# benchmarks/results/ must resolve.
docs-check:
	$(PY) -m repro.bench.cli registry-doc --check
	$(PY) -m repro.bench.cli bench-doc --check
	$(PY) scripts/check_links.py README.md docs benchmarks/results
