# Developer entry points.  `make smoke` is the CI gate: tier-1 tests plus
# a tiny segmented-broadcast benchmark invocation, so the benchmark entry
# points cannot silently rot.

PY := PYTHONPATH=src python

.PHONY: test smoke bench-segmented

test:
	$(PY) -m pytest -x -q

smoke: test
	REPRO_SEG_SMOKE=1 REPRO_BENCH_REPS=3 $(PY) -m pytest -q \
		benchmarks/bench_segmented_bcast.py

bench-segmented:
	$(PY) -m pytest -q benchmarks/bench_segmented_bcast.py
