# Developer entry points.  `make smoke` is the CI gate: tier-1 tests plus
# a tiny segmented-broadcast benchmark invocation, so the benchmark entry
# points cannot silently rot.
#
# CI: .github/workflows/ci.yml runs `make smoke` on every push and PR
# across Python 3.10-3.12 (uploading benchmarks/results/ as an artifact)
# and `make lint` as a separate job.  Locally, `make lint` needs ruff on
# PATH (pip install ruff) and skips with a notice otherwise — CI always
# installs it, so lint failures cannot slip through.

PY := PYTHONPATH=src python

.PHONY: test smoke lint bench-segmented

test:
	$(PY) -m pytest -x -q

smoke: test
	REPRO_SEG_SMOKE=1 REPRO_BENCH_REPS=3 $(PY) -m pytest -q \
		benchmarks/bench_segmented_bcast.py \
		benchmarks/bench_segmented_reduce.py \
		benchmarks/bench_fabric_scaling.py

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping lint (CI installs it)"; \
	fi

bench-segmented:
	$(PY) -m pytest -q benchmarks/bench_segmented_bcast.py
