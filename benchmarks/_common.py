"""Shared plumbing for the figure benchmarks.

Every benchmark regenerates one table/figure of the paper on the
simulator, asserts the paper's *qualitative* claims (orderings,
crossovers, scaling behaviour — the reproduction criteria from
DESIGN.md §4), and archives the measured medians as a Markdown table
under ``benchmarks/results/`` (the source of EXPERIMENTS.md's
"measured" columns).

Environment knobs:

* ``REPRO_BENCH_REPS`` — iterations per point (default 20; the paper
  used 20-30);
* ``REPRO_BENCH_SEED`` — RNG seed (default 1).
"""

from __future__ import annotations

import os
import pathlib

from repro.bench import markdown_table, run_figure, table

REPS = int(os.environ.get("REPRO_BENCH_REPS", "20"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_and_archive(figure_id: str, **kwargs):
    """Run a figure, save its Markdown table, return (series, notes)."""
    series, notes = run_figure(figure_id, reps=REPS, seed=SEED, **kwargs)
    RESULTS_DIR.mkdir(exist_ok=True)
    md = [f"# {figure_id}", "", f"_expectation_: {notes}", "",
          markdown_table(series, title=f"{figure_id} median latency (us)")]
    (RESULTS_DIR / f"{figure_id}.md").write_text("\n".join(md))
    print()
    print(table(series, title=f"{figure_id} (reps={REPS}, seed={SEED})"))
    return series, notes


def by_label(series_list, needle: str):
    """First series whose label contains ``needle`` (must exist)."""
    for ser in series_list:
        if needle in ser.label:
            return ser
    raise KeyError(f"no series labelled like {needle!r}: "
                   f"{[s.label for s in series_list]}")
