"""Ablation — many-to-many receiver overrun (paper §5 future work).

"While we have not observed buffer overflow due to a set of fast
senders overrunning a single receiver, it is possible this may occur in
many-to-many communications and needs to be examined further."

Here we examine it: an 8-process multicast allgather where every rank
multicasts simultaneously (unpaced), swept over the receive-descriptor
budget AND the payload size, against the rank-ordered (paced) schedule.

Findings (asserted):

* the hazard is real — with one descriptor and small payloads a receiver
  loses most of the burst (datagrams arrive every ~10-50 µs of wire time
  but consuming + re-posting costs ~100 µs of CPU);
* large payloads self-pace: their serialization time exceeds the
  receiver's per-datagram cost, so overrun fades with message size;
* losses are monotone non-increasing in the descriptor budget, vanishing
  at N-1 pre-posted descriptors;
* the paced schedule never loses anything with a SINGLE descriptor —
  rank-order pacing reduces many-to-many to the one-to-many case the
  paper already solved with scouts.
"""

import pathlib

from repro.core.mcast_allgather import allgather_mcast_unpaced
from repro.runtime import run_spmd
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

QUIET = quiet(FAST_ETHERNET_SWITCH)
N = 8
PAYLOADS = [100, 500, 1500]
BUDGETS = [1, 2, 4, 7]
RESULTS = pathlib.Path(__file__).parent / "results"


def _unpaced_losses(descriptors: int, payload: int) -> int:
    def main(env):
        _results, lost = yield from allgather_mcast_unpaced(
            env.comm, bytes(payload), descriptors=descriptors)
        return lost

    result = run_spmd(N, main, params=QUIET)
    return sum(result.returns)


def _paced_run(payload: int) -> tuple[int, float]:
    def main(env):
        env.comm.use_collectives(allgather="mcast-paced")
        t0 = env.now
        out = yield from env.comm.allgather(bytes(payload))
        assert len(out) == N
        return env.now - t0

    result = run_spmd(N, main, params=QUIET)
    return result.stats["drops_not_posted"], max(result.returns)


def _run():
    grid = {}
    for payload in PAYLOADS:
        for k in BUDGETS:
            grid[(payload, k)] = _unpaced_losses(k, payload)
    paced = {payload: _paced_run(payload) for payload in PAYLOADS}

    lines = [f"# overrun ablation ({N} procs, switch, "
             f"{N * (N - 1)} contributions total)", "",
             "unpaced losses by (payload, descriptor budget):", "",
             "| payload (B) | " + " | ".join(f"k={k}" for k in BUDGETS)
             + " | paced k=1 |",
             "|---|" + "|".join(["---"] * (len(BUDGETS) + 1)) + "|"]
    for payload in PAYLOADS:
        row = [str(grid[(payload, k)]) for k in BUDGETS]
        drops, us = paced[payload]
        lines.append(f"| {payload} | " + " | ".join(row)
                     + f" | {drops} ({us:.0f} us) |")
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / "overrun.md").write_text("\n".join(lines))
    print("\n" + "\n".join(lines))
    return grid, paced


def test_ablation_many_to_many_overrun(benchmark):
    grid, paced = benchmark.pedantic(_run, rounds=1, iterations=1)

    # The hazard is real and severe for small payloads.
    assert grid[(100, 1)] > N          # loses more than one per receiver

    # Large payloads self-pace (serialization >= consumption cost).
    assert grid[(1500, 1)] < grid[(500, 1)] < grid[(100, 1)]

    # Monotone non-increasing in budget; zero at N-1 descriptors.
    for payload in PAYLOADS:
        losses = [grid[(payload, k)] for k in BUDGETS]
        assert all(a >= b for a, b in zip(losses, losses[1:]))
        assert grid[(payload, N - 1)] == 0

    # Pacing removes the hazard entirely with one descriptor.
    for payload in PAYLOADS:
        drops, _us = paced[payload]
        assert drops == 0
