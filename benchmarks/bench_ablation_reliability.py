"""Ablation — reliability mechanisms for multicast broadcast (§2, §5).

The paper dismisses the PVM approach ([2]: multicast + per-receiver ack
+ full retransmit on timeout) because it "did not produce improvement in
performance", and motivates scout synchronization instead.  This bench
puts all the mechanisms side by side on identical workloads:

* scout binary / scout linear  — the paper's contribution;
* ack (PVM-style)              — reliable, but ack implosion at the root;
* sequencer (Orca-style, [8])  — totally ordered, extra payload hop;
* mpich                        — the p2p baseline.

Expected verdict (and assertion): scouted multicast beats MPICH at 4 KB;
the ack scheme is slower than scouted multicast; the sequencer pays the
most per broadcast.
"""

from _common import by_label, run_and_archive


def _run():
    return run_and_archive("ablation")


def test_ablation_reliability(benchmark):
    series, _notes = benchmark.pedantic(_run, rounds=1, iterations=1)
    binary = by_label(series, "scout binary")
    linear = by_label(series, "scout linear")
    ack = by_label(series, "ack (PVM-style)")
    seq = by_label(series, "sequencer")
    mpich = by_label(series, "mpich")

    # The paper's verdict: scouts win against MPICH...
    for size in (1000, 2000, 4000):
        best_scout = min(binary.median(size), linear.median(size))
        assert best_scout < mpich.median(size)

    # ...and the ack scheme provides *no improvement* over them (the
    # paper's verdict on [2]): it never wins by more than noise at any
    # size, and is strictly worse at the extremes — at 0 B the N-1 ack
    # implosion dominates, at 4 kB the proactive retransmissions of the
    # full payload do.
    for size in ack.sizes:
        best_scout = min(binary.median(size), linear.median(size))
        assert ack.median(size) > best_scout * 0.98
    assert ack.median(0) > min(binary.median(0), linear.median(0)) * 1.08
    assert ack.median(4000) > min(binary.median(4000),
                                  linear.median(4000)) * 1.04

    # The sequencer's extra hop makes it the costliest multicast variant
    # for rooted broadcasts (its payoff — total order without safe code —
    # is not measured here).
    assert seq.median(4000) >= min(binary.median(4000),
                                   linear.median(4000))
