"""Recursive multi-tier fabrics: hierarchical vs flat collectives on
deep and heterogeneous switch trees, and the loss model closed loop
(PR 5's tentpole).

Four claims:

1. **model == sim, deep** — on a three-tier ``tree:2x2x2`` and a
   heterogeneous ``tree:[4,8,2]``, the loss-free per-call trunk
   serializations of the *flat* segmented collectives (bcast, reduce,
   scatter, gather, allgather) and of the *hierarchical* bcast and
   reduce match the closed forms in :mod:`repro.analysis.framecount`
   **exactly** (multi-level path distances, Steiner data edges).
2. **hier strictly below flat** — per call, ``hier-mcast`` puts
   strictly fewer frames on the trunks than the flat engine for every
   op where the hierarchy's confinement wins on these fabrics (reduce,
   gather, scatter, allgather everywhere; bcast on the heterogeneous
   tree, where leaders are few relative to ranks).
3. **auto is model-consistent** — the policy's pick equals the modeled
   argmin for every (op, size) benched, loss-free and at 5% loss, and
   an end-to-end ``auto`` run on the deep tree dispatches exactly the
   modeled argmin on every rank.
4. **predicted vs measured repair traffic** — with ``NetParams.loss``
   wired to real seeded drops, the measured extra frames of a lossy
   broadcast fall within a factor-of-two band of
   :func:`~repro.analysis.framecount.expected_seg_repair_frames`
   (the model accounts for repair re-batching; this legacy band stays
   loose at [expected/4, 2*expected] — ``bench_segmented_bcast`` holds
   the same model to the tighter [expected/3, 1.5*expected]).

``REPRO_SEG_SMOKE=1`` shrinks the sweep so CI exercises the entry
point in seconds (results are not archived then).
"""

import os
from dataclasses import replace

import numpy as np

from _common import SEED, RESULTS_DIR

from repro import run_spmd
from repro.analysis.framecount import (expected_seg_repair_frames,
                                       model_hier_frames,
                                       model_seg_allgather_trunk_frames,
                                       model_seg_bcast_trunk_frames,
                                       model_seg_reduce_trunk_frames,
                                       model_seg_scatter_trunk_frames)
from repro.core.segment import plan_transport
from repro.mpi.collective.policy import (auto_impl, modeled_frame_costs)
from repro.mpi.ops import SUM
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

SMOKE = os.environ.get("REPRO_SEG_SMOKE") == "1"

AUTO_PARAMS = replace(FAST_ETHERNET_SWITCH, segment_bytes="auto")
QUIET_AUTO = quiet(AUTO_PARAMS)

SIZE = 24_000 if SMOKE else 48_000
LOSS_SIZE = 48_000 if SMOKE else 96_000

#: (topology, n, seg_of_rank, per-segment switch-tree paths)
FABRICS = [
    ("tree:2x2x2", 8, (0, 0, 1, 1, 2, 2, 3, 3),
     ((0, 0), (0, 1), (1, 0), (1, 1))),
    ("tree:[4,8,2]", 14, (0,) * 4 + (1,) * 8 + (2,) * 2,
     ((0,), (1,), (2,))),
]

FLAT_IMPL = {"bcast": "mcast-seg-nack", "reduce": "mcast-seg-combine",
             "scatter": "mcast-seg-root",
             "gather": "mcast-seg-root-follow",
             "allgather": "mcast-seg-paced"}


def _op_body(op, size):
    def body(env):
        n = env.comm.size
        if op == "bcast":
            out = yield from env.comm.bcast(
                bytes(size) if env.rank == 0 else None, 0)
            assert len(out) == size
        elif op == "reduce":
            # float64 payload of exactly `size` bytes: partials keep
            # their size through the fold at every hierarchy level
            yield from env.comm.reduce(
                np.zeros(size // 8, dtype=np.float64), SUM, 0)
        elif op == "scatter":
            objs = ([bytes(size // n)] * n if env.rank == 0 else None)
            out = yield from env.comm.scatter(objs, 0)
            assert len(out) == size // n
        elif op == "gather":
            yield from env.comm.gather(bytes(size // n), 0)
        elif op == "allgather":
            out = yield from env.comm.allgather(bytes(size // n))
            assert len(out) == n
        else:  # pragma: no cover - config error
            raise KeyError(op)
    return body


def _trunk(topology, n, op, impl, size, n_ops):
    body = _op_body(op, size)

    def main(env):
        env.comm.use_collectives(**{op: impl})
        for _ in range(n_ops):
            yield from body(env)
        return True

    result = run_spmd(n, main, topology=topology, params=QUIET_AUTO,
                      seed=SEED)
    assert all(result.returns)
    return result.stats["frames_trunk"]


def _per_call_trunk(topology, n, op, impl, size):
    """Trunk frames of ONE call, isolating channel-setup IGMP by
    differencing a two-op and a one-op run (quiet, deterministic)."""
    return (_trunk(topology, n, op, impl, size, 2)
            - _trunk(topology, n, op, impl, size, 1))


def check_flat_models_exact():
    """Criterion 1a: flat segmented trunk counts == closed forms on
    deep and heterogeneous trees."""
    rows = []
    for topology, n, seg_of, paths in FABRICS:
        nsegs = plan_transport(SIZE, QUIET_AUTO).nsegs
        share = plan_transport(SIZE // n, QUIET_AUTO).nsegs
        models = {
            "bcast": model_seg_bcast_trunk_frames(seg_of, 0, nsegs,
                                                  paths),
            "reduce": model_seg_reduce_trunk_frames(seg_of, 0, nsegs,
                                                    paths),
            "scatter": model_seg_scatter_trunk_frames(
                seg_of, 0, (n - 1) * share, paths),
            "gather": model_seg_reduce_trunk_frames(seg_of, 0, share,
                                                    paths),
            "allgather": model_seg_allgather_trunk_frames(seg_of, share,
                                                          paths),
        }
        ops = ("bcast", "scatter") if SMOKE else tuple(models)
        for op in ops:
            sim = _per_call_trunk(topology, n, op, FLAT_IMPL[op], SIZE)
            assert sim == models[op], (
                f"flat {op} on {topology}: sim {sim} != model "
                f"{models[op]}")
            rows.append((topology, op, "flat", sim, models[op]))
    return rows


def check_hier_models_and_wins():
    """Criteria 1b + 2: hier bcast/reduce trunk counts == the
    phase-walking model exactly, and hier strictly below flat where
    the hierarchy's confinement wins."""
    rows = []
    for topology, n, seg_of, paths in FABRICS:
        exact_ops = ("bcast",) if SMOKE else ("bcast", "reduce")
        for op in exact_ops:
            _f, trunk_model = model_hier_frames(op, seg_of, 0, SIZE,
                                                QUIET_AUTO, paths)
            sim = _per_call_trunk(topology, n, op, "hier-mcast", SIZE)
            assert sim == trunk_model, (
                f"hier {op} on {topology}: sim {sim} != model "
                f"{trunk_model}")
            rows.append((topology, op, "hier", sim, trunk_model))
        win_ops = ["reduce", "gather", "scatter", "allgather"]
        if topology == "tree:[4,8,2]":
            win_ops.append("bcast")   # few leaders vs many ranks
        if SMOKE:
            win_ops = ["gather"]
        for op in win_ops:
            flat = _per_call_trunk(topology, n, op, FLAT_IMPL[op], SIZE)
            hier = _per_call_trunk(topology, n, op, "hier-mcast", SIZE)
            assert hier < flat, (
                f"hier {op} on {topology} crossed the trunks {hier} "
                f"times, the flat engine only {flat}")
            rows.append((topology, op, "hier<flat", hier, flat))
    return rows


def check_auto_model_consistency():
    """Criterion 3a: the policy never picks an implementation whose
    modeled frame count exceeds the best candidate, on deep trees,
    loss-free and lossy."""
    from repro.mpi.collective.policy import TopoInfo

    picks = []
    for topology, n, seg_of, paths in FABRICS:
        topo = TopoInfo(seg_of_rank=seg_of, contiguous=True, paths=paths)
        for params, tag in ((QUIET_AUTO, "loss-free"),
                            (replace(QUIET_AUTO, loss=0.05), "5% loss")):
            for op in ("bcast", "reduce", "allreduce", "scatter",
                       "gather", "allgather"):
                for size in (2000, SIZE):
                    costs = modeled_frame_costs(op, size, n, params,
                                                topo, root=0)
                    pick = auto_impl(op, size, n, params, topo=topo)
                    assert costs[pick] == min(costs.values()), (
                        f"auto {op}@{size}B on {topology} ({tag}) "
                        f"picked {pick}; costs {costs}")
                    picks.append((topology, tag, op, size, pick))
    return picks


def check_auto_end_to_end():
    """Criterion 3b: every rank of an auto gather on the deep tree
    dispatches the modeled argmin, consistently."""
    from repro.mpi.collective.policy import TopoInfo

    topology, n, seg_of, paths = FABRICS[0]

    def main(env):
        env.comm.use_collectives(gather="auto", bcast="auto")
        yield from env.comm.gather(bytes(SIZE // env.comm.size), 0)
        out = yield from env.comm.bcast(
            bytes(SIZE) if env.rank == 0 else None, 0)
        assert len(out) == SIZE
        return [name for _op, name in env.comm.impl_log]

    result = run_spmd(n, main, topology=topology, params=QUIET_AUTO,
                      seed=SEED)
    topo = TopoInfo(seg_of_rank=seg_of, contiguous=True, paths=paths)
    expected = [auto_impl("gather", SIZE // n, n, QUIET_AUTO, topo=topo),
                auto_impl("bcast", SIZE, n, QUIET_AUTO, topo=topo)]
    for log in result.returns:
        assert log == expected, (log, expected)
    return expected


def check_loss_closed_loop():
    """Criterion 4: measured repair traffic of a really-lossy broadcast
    (seeded probabilistic drops) falls within the model's expectation
    band."""
    n, loss, n_ops = 8, 0.05, 2 if SMOKE else 4

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        for _ in range(n_ops):
            out = yield from env.comm.bcast(
                bytes(LOSS_SIZE) if env.rank == 0 else None, 0)
            assert len(out) == LOSS_SIZE
        return True

    clean = run_spmd(n, main, params=QUIET_AUTO, seed=SEED)
    lossy = run_spmd(n, main, params=replace(QUIET_AUTO, loss=loss),
                     seed=SEED)
    assert all(clean.returns) and all(lossy.returns)
    assert lossy.stats["drops_lossy"] > 0
    measured = lossy.stats["frames_sent"] - clean.stats["frames_sent"]
    nsegs = plan_transport(LOSS_SIZE, QUIET_AUTO).nsegs
    expected = n_ops * expected_seg_repair_frames(n, nsegs, loss)
    assert expected / 4 <= measured <= 2 * expected, (
        f"measured {measured} repair frames outside the model band "
        f"[{expected / 4:.0f}, {2 * expected:.0f}]")
    return measured, expected


def _run():
    flat_rows = check_flat_models_exact()
    hier_rows = check_hier_models_and_wins()
    picks = check_auto_model_consistency()
    e2e = check_auto_end_to_end()
    loss = check_loss_closed_loop()
    return flat_rows, hier_rows, picks, e2e, loss


def _markdown(flat_rows, hier_rows, picks, e2e, loss):
    lines = ["# deep-fabric", "",
             f"_platforms_: {', '.join(t for t, *_ in FABRICS)}, "
             f"segment_bytes=auto, payload {SIZE} B, seed={SEED}", "",
             "## Per-call trunk serializations (loss-free, exact "
             "vs closed forms)", "",
             "| fabric | op | engine | sim | model |",
             "|---|---|---|---:|---:|"]
    for topo, op, kind, sim, model in flat_rows + hier_rows:
        lines.append(f"| {topo} | {op} | {kind} | {sim} | {model} |")
    measured, expected = loss
    lines += ["",
              f"_loss closed loop_: measured {measured} extra frames "
              f"at 5% loss vs {expected:.0f} modeled "
              f"(band [x/4, 2x] asserted)",
              "", f"_end-to-end auto dispatches_: {e2e}",
              "", f"_auto picks audited_: {len(picks)} "
              f"(op, size, loss) points — all modeled argmin", ""]
    return "\n".join(lines)


def test_deep_fabric(benchmark):
    flat_rows, hier_rows, picks, e2e, loss = benchmark.pedantic(
        _run, rounds=1, iterations=1)
    if not SMOKE:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "deep-fabric.md").write_text(
            _markdown(flat_rows, hier_rows, picks, e2e, loss))
    print()
    for topo, op, kind, sim, model in flat_rows + hier_rows:
        print(f"{topo:<13} {op:<10} {kind:<9} sim={sim:<5} "
              f"model/flat={model}")
    print(f"loss loop: measured={loss[0]} expected={loss[1]:.0f}")
