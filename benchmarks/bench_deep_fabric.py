"""Recursive multi-tier fabrics: hierarchical vs flat collectives on
deep and heterogeneous switch trees — re-ported onto the declarative
sweep harness.

The ``deep-fabric`` area of :mod:`repro.bench.sweep_areas` carries the
cases (per-call trunk serializations of flat and hierarchical
collectives on ``tree:2x2x2`` and ``tree:[4,8,2]``, the auto policy
audit, the end-to-end dispatch check and the loss closed loop) and
asserts the old script's claims as postconditions:

1. flat segmented trunk counts == the closed forms exactly on deep and
   heterogeneous trees (multi-level path distances, Steiner edges);
2. hier bcast/reduce trunk counts == the phase-walking model exactly,
   and hier strictly below flat for every op where confinement wins;
3. the policy's pick equals the modeled argmin for every (op, size)
   benched, loss-free and at 5% loss, and an end-to-end ``auto`` run
   dispatches it on every rank (asserted inside the runners);
4. measured repair traffic of a seeded-loss broadcast falls in the
   legacy [x/4, 2x] band around ``expected_seg_repair_frames``.

``REPRO_SEG_SMOKE=1`` selects the tiny gate scale (the committed
``BENCH_deep-fabric.json`` baseline); results are persisted only by
``make bench-baselines``.
"""

import os

from repro.bench.sweep import find_series, run_area

SMOKE = os.environ.get("REPRO_SEG_SMOKE") == "1"
SCALE = "gate" if SMOKE else "full"


def test_deep_fabric(benchmark):
    doc = benchmark.pedantic(run_area, args=("deep-fabric",),
                             kwargs={"scale": SCALE},
                             rounds=1, iterations=1)
    repair = find_series(doc, "repair")["metrics"]
    print()
    print(f"deep-fabric [{SCALE}]: {len(doc['series'])} cases, all "
          f"postconditions hold; loss loop measured "
          f"{repair['frames_repair']} extra frames vs model "
          f"{repair['frames_repair_expected']:.0f}")
