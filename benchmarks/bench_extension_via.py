"""Extension — multicast collectives on a VIA-style low-latency network.

The paper closes with: "low latency protocols such as the Virtual
Interface Architecture standard typically require a receive descriptor
to be posted before a message arrives.  This is similar to the
requirement in IP multicast that the receiver be ready.  Future work is
planned to examine how multicast may be applied to MPI collective
operations in combination with low latency protocols."

This bench performs that examination on the simulator: the same Fig.-8
sweep (4 and 9 processes, switch) with the kernel-UDP/TCP software path
replaced by VIA-like user-level costs (~8 µs sends, posted descriptors
native).  Expected — and asserted — outcome:

* the crossover moves toward zero: with software overhead gone, the
  scout round costs almost nothing while MPICH still serializes N-1
  copies of every byte, so multicast wins from (near) the smallest
  sizes;
* the relative win at 5 kB *grows* compared to the kernel-UDP platform:
  the wire-serialization asymmetry is all that remains, and it favours
  multicast by ~(N-1)×.
"""

import pathlib

from _common import REPS, SEED

from repro.bench import crossover, markdown_table, measure_bcast, table
from repro.bench.figures import PAPER_SIZES
from repro.simnet.calibration import FAST_ETHERNET_SWITCH, VIA_SWITCH

RESULTS = pathlib.Path(__file__).parent / "results"


def _sweep(params, tag, nprocs):
    return [
        measure_bcast("p2p-binomial", "switch", nprocs, PAPER_SIZES,
                      reps=REPS, seed=SEED, params=params,
                      label=f"mpich/{tag}/{nprocs}p"),
        measure_bcast("mcast-binary", "switch", nprocs, PAPER_SIZES,
                      reps=REPS, seed=SEED + 1, params=params,
                      label=f"mcast binary/{tag}/{nprocs}p"),
    ]


def _run():
    out = {}
    for nprocs in (4, 9):
        out[("udp", nprocs)] = _sweep(FAST_ETHERNET_SWITCH, "udp", nprocs)
        out[("via", nprocs)] = _sweep(VIA_SWITCH, "via", nprocs)
    all_series = [s for pair in out.values() for s in pair]
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / "via_extension.md").write_text(
        markdown_table(all_series,
                       title="VIA-style network extension (us)"))
    print()
    print(table(all_series, title=f"VIA extension (reps={REPS})"))
    return out


def test_extension_via_low_latency(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)

    for nprocs in (4, 9):
        udp_mpich, udp_mcast = out[("udp", nprocs)]
        via_mpich, via_mcast = out[("via", nprocs)]

        # Small messages are software-bound: VIA slashes them.
        assert via_mpich.median(0) < 0.5 * udp_mpich.median(0)
        assert via_mcast.median(0) < 0.5 * udp_mcast.median(0)
        # Large messages are wire-bound, so the VIA gain there is
        # modest — but still a gain.
        assert via_mpich.median(5000) < udp_mpich.median(5000)

        # The crossover stays in the sub-frame zone on VIA.  (It does
        # not always shrink further: with ~10 µs sends MPICH's binomial
        # tree is extremely fast for empty messages too, so at 9 procs
        # the kernel-UDP crossover of 0 relaxes to one step — both
        # regimes say "multicast from a few hundred bytes".)
        x_via = crossover(via_mcast, via_mpich)
        assert x_via is not None
        assert x_via <= 500

        # The relative multicast win at 5 kB grows without the shared
        # software overhead diluting it.
        udp_ratio = udp_mpich.median(5000) / udp_mcast.median(5000)
        via_ratio = via_mpich.median(5000) / via_mcast.median(5000)
        assert via_ratio > udp_ratio
