"""Multi-segment fabric scaling: hierarchical vs flat collectives on a
tiered switch topology (PR 4's new subsystem).

Three claims, asserted on a ``tree:2x4`` cluster (two 4-host leaf
switches behind a core, :mod:`repro.simnet.fabric`):

1. **trunk frames** — per call, the hierarchical broadcast
   (``hier-mcast``) serializes *strictly fewer* frames on the trunk
   links than the flat segmented broadcast (``mcast-seg-nack``), whose
   every remote receiver pays the trunk for its reports, decisions and
   scouts.  Loss-free counts must match the closed forms in
   :mod:`repro.analysis.framecount`
   (``model_seg_bcast_trunk_frames`` / ``model_hier_frames``)
   exactly.  The hierarchical reduce widens the gap dramatically: the
   flat turn loop crosses every trunk with every contributor's stream.
2. **auto is model-consistent** — with topology and expected loss
   folded in, the policy never picks an implementation whose modeled
   frame count exceeds the best available candidate at any benched
   payload size (loss-free *and* at ``NetParams.loss`` = 10%), and an
   end-to-end ``bcast="auto"`` run on the tree dispatches exactly the
   modeled argmin on every rank.
3. **latency** — median broadcast latency of ``hier-mcast`` on the
   tree stays within a small factor of the flat engine at every size
   (the trunk savings are not bought with pathological slowdowns); the
   sweep is archived for the scaling story.

``REPRO_SEG_SMOKE=1`` shrinks the sweep to a single size so CI can
exercise the entry point in seconds (results are not archived then).
"""

import os
import statistics
from dataclasses import replace

from _common import REPS, SEED, RESULTS_DIR

from repro import run_spmd
from repro.analysis.framecount import (model_hier_frames,
                                       model_seg_bcast_trunk_frames)
from repro.core.segment import plan_transport
from repro.mpi.collective.policy import (TopoInfo, auto_impl,
                                         modeled_frame_costs)
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

SMOKE = os.environ.get("REPRO_SEG_SMOKE") == "1"

TOPOLOGY = "tree:2x4"
NPROCS = 8
SIZES = [24_000] if SMOKE else [2000, 24_000, 96_000]
BENCH_REPS = min(REPS, 2) if SMOKE else max(5, REPS // 4)

AUTO_PARAMS = replace(FAST_ETHERNET_SWITCH, segment_bytes="auto")
QUIET_AUTO = quiet(AUTO_PARAMS)
TOPO = TopoInfo(seg_of_rank=(0, 0, 0, 0, 1, 1, 1, 1), contiguous=True)

BCAST_IMPLS = ["p2p-binomial", "mcast-seg-nack", "hier-mcast", "auto"]


def _bcast_run(impl, size, n_ops, params):
    def main(env):
        env.comm.use_collectives(bcast=impl)
        for _ in range(n_ops):
            data = yield from env.comm.bcast(
                bytes(size) if env.rank == 0 else None, 0)
            assert len(data) == size
        return True

    result = run_spmd(NPROCS, main, topology=TOPOLOGY, params=params,
                      seed=SEED)
    assert all(result.returns)
    return result.stats


def _per_call_trunk(impl, size):
    """Trunk frames of ONE bcast, isolating channel-setup IGMP by
    differencing a two-op and a one-op run (quiet, deterministic)."""
    one = _bcast_run(impl, size, 1, QUIET_AUTO)
    two = _bcast_run(impl, size, 2, QUIET_AUTO)
    return two["frames_trunk"] - one["frames_trunk"]


def check_trunk_claim():
    """Criterion: hier-mcast bcast puts strictly fewer frames on the
    trunks than the flat engine, matching the closed forms exactly."""
    rows = []
    for size in SIZES:
        nsegs = plan_transport(size, QUIET_AUTO).nsegs
        flat = _per_call_trunk("mcast-seg-nack", size)
        hier = _per_call_trunk("hier-mcast", size)
        assert hier < flat, (
            f"hier-mcast bcast at {size} B crossed the trunks "
            f"{hier} times, the flat engine only {flat}")
        assert flat == model_seg_bcast_trunk_frames(TOPO.seg_of_rank, 0,
                                                    nsegs)
        assert hier == model_hier_frames("bcast", TOPO.seg_of_rank, 0,
                                         size, QUIET_AUTO)[1]
        rows.append((size, nsegs, flat, hier))
    return rows


def check_auto_model_consistency():
    """Criterion: the topology+loss-aware policy never picks an impl
    whose modeled frame count exceeds the best available candidate."""
    picks = []
    for params, tag in ((QUIET_AUTO, "loss-free"),
                        (replace(QUIET_AUTO, loss=0.10), "10% loss")):
        for op in ("bcast", "reduce", "allreduce"):
            for size in SIZES:
                costs = modeled_frame_costs(op, size, NPROCS, params,
                                            TOPO, root=0)
                pick = auto_impl(op, size, NPROCS, params, topo=TOPO)
                assert costs[pick] == min(costs.values()), (
                    f"auto {op}@{size}B ({tag}) picked {pick} "
                    f"({costs[pick]:.0f} modeled frames); best is "
                    f"{min(costs.values()):.0f} in {costs}")
                picks.append((tag, op, size, pick))
    return picks


def check_auto_end_to_end():
    """Every rank of an auto bcast on the tree dispatches the modeled
    argmin, consistently."""
    def main(env):
        env.comm.use_collectives(bcast="auto")
        for size in SIZES:
            data = yield from env.comm.bcast(
                bytes(size) if env.rank == 0 else None, 0)
            assert len(data) == size
        return [name for op, name in env.comm.impl_log if op == "bcast"]

    result = run_spmd(NPROCS, main, topology=TOPOLOGY,
                      params=QUIET_AUTO, seed=SEED)
    expected = [auto_impl("bcast", size, NPROCS, QUIET_AUTO, topo=TOPO)
                for size in SIZES]
    for log in result.returns:
        assert log == expected, (log, expected)
    return expected


def measure_bcast_latency(impl, size, reps):
    """Median over reps of the slowest rank's bcast duration (jittered
    platform, barrier-fenced reps)."""
    def main(env):
        env.comm.use_collectives(bcast=impl)
        durations = []
        yield from env.comm.bcast(b"w" if env.rank == 0 else None, 0)
        for _ in range(reps):
            yield from env.comm.barrier()
            start = env.now
            data = yield from env.comm.bcast(
                bytes(size) if env.rank == 0 else None, 0)
            assert len(data) == size
            durations.append(env.now - start)
        return durations

    result = run_spmd(NPROCS, main, topology=TOPOLOGY,
                      params=AUTO_PARAMS, seed=SEED)
    per_rep = [max(d[i] for d in result.returns) for i in range(reps)]
    return statistics.median(per_rep)


def check_latency_sweep():
    table = {}
    for impl in BCAST_IMPLS:
        for size in SIZES:
            table[impl, size] = measure_bcast_latency(impl, size,
                                                      BENCH_REPS)
    for size in SIZES:
        # sanity: hierarchy must not be pathologically slower than flat
        assert table["hier-mcast", size] < 3 * table["mcast-seg-nack",
                                                     size]
    return table


def _run():
    trunk_rows = check_trunk_claim()
    picks = check_auto_model_consistency()
    e2e = check_auto_end_to_end()
    latency = check_latency_sweep()
    return trunk_rows, picks, e2e, latency


def _markdown(trunk_rows, picks, e2e, latency):
    lines = ["# fabric-scaling", "",
             f"_platform_: {TOPOLOGY}, {NPROCS} ranks, "
             f"segment_bytes=auto, reps={BENCH_REPS}, seed={SEED}", "",
             "## Per-call trunk serializations (bcast, loss-free, "
             "exact vs closed forms)", "",
             "| size (B) | segments | flat mcast-seg-nack | hier-mcast |",
             "|---:|---:|---:|---:|"]
    for size, nsegs, flat, hier in trunk_rows:
        lines.append(f"| {size} | {nsegs} | {flat} | {hier} |")
    lines += ["", "## Median bcast latency (us, jittered platform)", "",
              "| size (B) | " + " | ".join(BCAST_IMPLS) + " |",
              "|---:|" + "---:|" * len(BCAST_IMPLS)]
    for size in SIZES:
        cells = " | ".join(f"{latency[impl, size]:.0f}"
                           for impl in BCAST_IMPLS)
        lines.append(f"| {size} | {cells} |")
    picks_str = "; ".join(f"{op}@{s}B ({tag}) -> {name}"
                          for tag, op, s, name in picks)
    lines += ["", f"_auto picks (modeled argmin, asserted)_: {picks_str}",
              "", f"_end-to-end auto bcast dispatches_: {e2e}", ""]
    return "\n".join(lines)


def test_fabric_scaling(benchmark):
    trunk_rows, picks, e2e, latency = benchmark.pedantic(
        _run, rounds=1, iterations=1)
    if not SMOKE:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "fabric-scaling.md").write_text(
            _markdown(trunk_rows, picks, e2e, latency))
    print()
    for size, nsegs, flat, hier in trunk_rows:
        print(f"{size:>7} B ({nsegs:>3} segs): trunk frames "
              f"flat={flat:<4} hier={hier}")
    for impl in BCAST_IMPLS:
        meds = ", ".join(f"{latency[impl, s]:.0f}us@{s}B" for s in SIZES)
        print(f"{impl:<15} {meds}")
