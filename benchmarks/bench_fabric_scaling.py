"""Multi-segment fabric scaling: hierarchical vs flat collectives on a
tiered switch topology — re-ported onto the declarative sweep harness.

The ``fabric-scaling`` area of :mod:`repro.bench.sweep_areas` carries
the cases (per-call trunk serializations, the latency sweep, the auto
policy audit and the end-to-end dispatch check on a ``tree:2x4``
fabric) and asserts the old script's claims as postconditions:

1. per call, ``hier-mcast`` serializes strictly fewer trunk frames
   than the flat ``mcast-seg-nack``, and both match the closed forms
   (``model_seg_bcast_trunk_frames`` / ``model_hier_frames``) exactly;
2. the topology+loss-aware policy never picks an implementation whose
   modeled frame count exceeds the best candidate, and an end-to-end
   ``bcast="auto"`` run dispatches exactly the modeled argmin on every
   rank (asserted inside the runners);
3. median hier-mcast latency stays within 3x of the flat engine.

``REPRO_SEG_SMOKE=1`` selects the tiny gate scale (the committed
``BENCH_fabric-scaling.json`` baseline); results are persisted only by
``make bench-baselines``.
"""

import os

from repro.bench.sweep import find_series, run_area

SMOKE = os.environ.get("REPRO_SEG_SMOKE") == "1"
SCALE = "gate" if SMOKE else "full"


def test_fabric_scaling(benchmark):
    doc = benchmark.pedantic(run_area, args=("fabric-scaling",),
                             kwargs={"scale": SCALE},
                             rounds=1, iterations=1)
    dispatch = find_series(doc, "auto-dispatch")["metrics"]["dispatch"]
    print()
    print(f"fabric-scaling [{SCALE}]: {len(doc['series'])} cases, "
          f"all postconditions hold; auto bcast dispatched {dispatch}")
