"""Paper Fig. 7 — MPI_Bcast, 4 processes, Fast Ethernet **hub**.

Claims under test:
* multicast (both sync variants) beats MPICH for messages ≳ 1 frame;
* for small messages the scout overhead makes multicast slower;
* MPICH's cost grows ~(N-1) payload copies; multicast's grows ~1 copy.
"""

from _common import by_label, run_and_archive

from repro.bench import crossover


def _run():
    return run_and_archive("fig7")


def test_fig07_bcast_4procs_hub(benchmark):
    series, _notes = benchmark.pedantic(_run, rounds=1, iterations=1)
    mpich = by_label(series, "mpich")
    linear = by_label(series, "linear")
    binary = by_label(series, "binary")

    # Small messages: scout cost makes multicast slower (or equal).
    assert mpich.median(0) < binary.median(0)
    assert mpich.median(0) < linear.median(0)

    # Large messages: multicast wins decisively.
    for impl in (linear, binary):
        assert impl.median(5000) < 0.75 * mpich.median(5000)

    # The crossover falls in the paper's "about one Ethernet frame" zone.
    for impl in (linear, binary):
        x = crossover(impl, mpich)
        assert x is not None and 0 < x <= 2000, f"crossover at {x}"

    # MPICH's slope (µs growth over the sweep) far exceeds multicast's:
    # it sends N-1 = 3 copies of every extra byte.
    mpich_slope = mpich.median(5000) - mpich.median(0)
    binary_slope = binary.median(5000) - binary.median(0)
    assert mpich_slope > 2.0 * binary_slope
