"""Paper Fig. 8 — MPI_Bcast, 4 processes, Fast Ethernet **switch**.

Same three curves as Fig. 7 but over the store-and-forward switch:
multicast still wins above the crossover, MPICH still wins below it.
"""

from _common import by_label, run_and_archive

from repro.bench import crossover


def _run():
    return run_and_archive("fig8")


def test_fig08_bcast_4procs_switch(benchmark):
    series, _notes = benchmark.pedantic(_run, rounds=1, iterations=1)
    mpich = by_label(series, "mpich")
    linear = by_label(series, "linear")
    binary = by_label(series, "binary")

    assert mpich.median(0) < binary.median(0)

    for impl in (linear, binary):
        assert impl.median(5000) < 0.8 * mpich.median(5000)
        x = crossover(impl, mpich)
        assert x is not None and x <= 2000, f"crossover at {x}"
