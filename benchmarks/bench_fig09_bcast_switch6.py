"""Paper Fig. 9 — MPI_Bcast, 6 processes, switch.

Additional claim at 6 nodes: the binary algorithm shows *extra variance*
because two inner tree nodes race to deliver their scouts to rank 0 at
nearly the same time (the paper's explanation of Fig. 9's scatter).  In
our reproduction that race is visible as spread in the binary series.
"""

from _common import by_label, run_and_archive

from repro.bench import crossover


def _run():
    return run_and_archive("fig9")


def test_fig09_bcast_6procs_switch(benchmark):
    series, _notes = benchmark.pedantic(_run, rounds=1, iterations=1)
    mpich = by_label(series, "mpich")
    linear = by_label(series, "linear")
    binary = by_label(series, "binary")

    for impl in (linear, binary):
        assert impl.median(5000) < 0.7 * mpich.median(5000)
        x = crossover(impl, mpich)
        assert x is not None and x <= 1500, f"crossover at {x}"

    # The multicast advantage at 6 procs exceeds the 4-proc one: MPICH
    # pays 5 copies here.
    assert mpich.median(5000) / binary.median(5000) > 1.6
