"""Paper Fig. 10 — MPI_Bcast, 9 processes, switch (the full cluster).

At nine processes the gap is widest: MPICH serializes 8 payload copies,
multicast still sends one.  The binary sync now beats the linear sync
(4 scout steps vs 8 sequential root receives), the ordering the paper
anticipated from its step-count analysis.
"""

from _common import by_label, run_and_archive

from repro.bench import crossover


def _run():
    return run_and_archive("fig10")


def test_fig10_bcast_9procs_switch(benchmark):
    series, _notes = benchmark.pedantic(_run, rounds=1, iterations=1)
    mpich = by_label(series, "mpich")
    linear = by_label(series, "linear")
    binary = by_label(series, "binary")

    for impl in (linear, binary):
        assert impl.median(5000) < 0.55 * mpich.median(5000)
        x = crossover(impl, mpich)
        assert x is not None and x <= 1000, f"crossover at {x}"

    # Binary's log-depth sync beats linear's N-1 sequential receives at
    # every size once N is this large.
    for size in binary.sizes:
        assert binary.median(size) <= linear.median(size) * 1.05
