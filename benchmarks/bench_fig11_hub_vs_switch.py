"""Paper Fig. 11 — hub vs switch, 4 processes, MPICH vs mcast-binary.

Claims under test:
* with multicast, the **hub beats the switch at every size** — a hub
  repeats bits with no store-and-forward penalty, and multicast adds no
  extra load for the shared wire to serialize;
* with MPICH, the hub wins for small messages but loses once its single
  collision domain must serialize every copy of a large message, while
  the switch forwards copies on parallel port pairs.  (Paper: crossover
  ≈ 3000 B; our reproduction converges near the top of the 5 kB sweep —
  recorded as a quantitative deviation in EXPERIMENTS.md.)
"""

from _common import by_label, run_and_archive


def _run():
    return run_and_archive("fig11")


def test_fig11_hub_vs_switch(benchmark):
    series, _notes = benchmark.pedantic(_run, rounds=1, iterations=1)
    mpich_hub = by_label(series, "mpich/hub")
    mpich_sw = by_label(series, "mpich/switch")
    mcast_sw = by_label(series, "mcast binary/switch")
    mcast_hub = by_label(series, "mcast binary/hub")

    # Multicast: hub strictly better than switch at every size.
    for size in mcast_hub.sizes:
        assert mcast_hub.median(size) < mcast_sw.median(size)

    # MPICH: hub clearly better at small sizes ...
    assert mpich_hub.median(0) < mpich_sw.median(0)
    assert mpich_hub.median(1000) < mpich_sw.median(1000)
    # ... but the advantage shrinks monotonically toward the crossover:
    gap_small = mpich_sw.median(500) - mpich_hub.median(500)
    gap_large = mpich_sw.median(5000) - mpich_hub.median(5000)
    assert gap_large < 0.4 * gap_small

    # Multicast-over-hub is the best configuration overall for any
    # size ≥ one frame (the paper's headline for this figure).
    for size in (1500, 3000, 5000):
        others = (mpich_hub, mpich_sw, mcast_sw)
        assert all(mcast_hub.median(size) < o.median(size) for o in others)
