"""Paper Fig. 12 — scaling with 3/6/9 processes over the switch.

Claim under test: "With the linear implementation, the extra cost for
additional processes is nearly constant with respect to message size.
This is not true for MPICH."  I.e. the 9-proc/3-proc latency *gap* is
flat in message size for the linear multicast (more scouts, same single
payload) but grows steeply for MPICH (more payload copies per byte).
"""

from _common import by_label, run_and_archive


def _run():
    return run_and_archive("fig12")


def test_fig12_scaling_3_6_9(benchmark):
    series, _notes = benchmark.pedantic(_run, rounds=1, iterations=1)
    mpich3 = by_label(series, "mpich (3 proc)")
    mpich9 = by_label(series, "mpich (9 proc)")
    lin3 = by_label(series, "linear (3 proc)")
    lin9 = by_label(series, "linear (9 proc)")

    # Per-process extra cost of the linear multicast: constant in size.
    lin_gap_small = lin9.median(0) - lin3.median(0)
    lin_gap_large = lin9.median(5000) - lin3.median(5000)
    assert lin_gap_small > 0
    assert 0.5 < lin_gap_large / lin_gap_small < 1.5   # ~flat

    # MPICH's per-process extra cost grows strongly with size.
    mp_gap_small = mpich9.median(0) - mpich3.median(0)
    mp_gap_large = mpich9.median(5000) - mpich3.median(5000)
    assert mp_gap_large > 2.5 * mp_gap_small

    # Linear scales better than MPICH at 9 procs for every size ≥ 500 B.
    for size in (500, 1000, 2500, 5000):
        assert lin9.median(size) < mpich9.median(size)
