"""Paper Fig. 13 — MPI_Barrier over the hub, 2-9 processes.

Claims under test: the multicast barrier (binary scout reduction + one
empty multicast release) beats the 3-phase MPICH barrier on average,
and the gap grows with the number of processes.  (x-axis = process
count; stored under the series' "size" key.)
"""

from _common import by_label, run_and_archive


def _run():
    return run_and_archive("fig13")


def test_fig13_barrier_hub(benchmark):
    series, _notes = benchmark.pedantic(_run, rounds=1, iterations=1)
    mpich = by_label(series, "MPICH")
    mcast = by_label(series, "multicast")

    # Multicast wins at every process count from 3 up (2 is a near-tie:
    # one sendrecv vs scout+release — recorded in EXPERIMENTS.md).
    for n in range(3, 10):
        assert mcast.median(n) < mpich.median(n), f"n={n}"
    assert mcast.median(2) < mpich.median(2) * 1.35

    # The absolute gap grows with the process count.
    gap_small = mpich.median(3) - mcast.median(3)
    gap_large = mpich.median(9) - mcast.median(9)
    assert gap_large > gap_small

    # Multicast barrier scales ~logarithmically: going 4 -> 8 procs adds
    # one scout level, far less than MPICH's added phases/messages.
    assert (mcast.median(8) - mcast.median(4)) < \
        (mpich.median(8) - mpich.median(4)) + 120.0
