"""Paper §3's frame/message-count table, regenerated and verified.

Unlike the latency figures this is exact: the closed-form counts
(paper formulas and the header-aware model) must equal the simulator's
frame counters to the frame.
"""

from _common import run_and_archive  # noqa: F401  (kept for parity)

import pathlib

from repro.analysis import (model_mcast_bcast_frames,
                            model_mpich_bcast_frames,
                            paper_mcast_bcast_frames,
                            paper_mpich_barrier_messages,
                            paper_mpich_bcast_frames)
from repro.bench import run_figure
from repro.runtime import run_spmd
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

QUIET = quiet(FAST_ETHERNET_SWITCH)
RESULTS = pathlib.Path(__file__).parent / "results"


def _measure_bcast_frames(impl: str, n: int, m: int) -> dict:
    marks = {}

    def main(env):
        obj = bytes(m) if env.rank == 0 else None
        yield env.sim.timeout(max(0.0, 50_000.0 - env.sim.now))
        if env.rank == 0:
            marks["before"] = env.host.stats.snapshot()
        yield from env.comm.bcast(obj, root=0)

    result = run_spmd(n, main, params=QUIET,
                      collectives={"bcast": impl})
    kb = marks["before"]["frames_by_kind"]
    ka = result.stats["frames_by_kind"]
    return {k: ka.get(k, 0) - kb.get(k, 0) for k in set(ka) | set(kb)}


def _run():
    rows, _notes = run_figure("framecounts")
    lines = ["# framecounts", "",
             "| " + " | ".join(rows[0].keys()) + " |",
             "|" + "|".join(["---"] * len(rows[0])) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(v) for v in row.values()) + " |")
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / "framecounts.md").write_text("\n".join(lines))
    return rows


def test_framecount_table(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert len(rows) == 8 * 4     # n in 2..9, four sizes

    # Spot-verify the model columns against live simulation counters.
    for (n, m) in [(4, 0), (7, 5000), (9, 3000)]:
        mpich = _measure_bcast_frames("p2p-binomial", n, m)
        assert mpich.get("p2p", 0) == model_mpich_bcast_frames(QUIET, n, m)

        mcast = _measure_bcast_frames("mcast-binary", n, m)
        scouts, data = model_mcast_bcast_frames(QUIET, n, m)
        assert mcast.get("scout", 0) == scouts
        assert mcast.get("mcast-data", 0) == data

    # And the paper's idealized formulas track the model asymptotically:
    # same (N-1) multiplier, off only by protocol headers.
    assert paper_mpich_bcast_frames(9, 0) == 8
    assert paper_mcast_bcast_frames(9, 0) == 9
    assert paper_mpich_barrier_messages(9) == 26
