"""Segmented pipelined broadcast vs whole-payload retransmission —
re-ported onto the declarative sweep harness.

The cartesian cases (payload size × transport plan × induced loss,
plus the seeded-loss repair closed loop and the latency sweep incl.
the payload-aware ``"auto"`` policy) and every reproduction criterion
the old bespoke script asserted inline now live in the
``segmented-bcast`` area of :mod:`repro.bench.sweep_areas`:

1. per-segment frame counts match ``seg_nack_frame_count`` exactly,
   loss-free and with one repair round;
2. selective NACK repair beats ``mcast-ack``'s whole-payload
   retransmission on the wire at the many-segment end;
3. the crossover is gone: the batched auto plan never puts more
   payload frames on the wire than ``mcast-ack`` under symmetric loss,
   and its datagram count matches ``seg_nack_datagram_count``;
4. (full scale) the auto plan's loss-free median beats the fixed
   per-segment plan's below the batching crossover, and both segmented
   plans beat ``mcast-ack``'s median at the ≥32-segment end;
5. seeded-loss repair traffic lands in the [x/3, 1.5x] band around
   ``expected_seg_repair_frames``.

``run_area(..., check=True)`` runs those postconditions, so this
driver fails exactly where the old script did.  Results are persisted
only by ``make bench-baselines`` (gate scale, committed as
``benchmarks/results/BENCH_segmented-bcast.json``); this test never
writes files.  ``REPRO_SEG_SMOKE=1`` selects the tiny gate scale so CI
exercises the entry point in seconds.
"""

import os

from repro.bench.sweep import find_series, run_area

SMOKE = os.environ.get("REPRO_SEG_SMOKE") == "1"
SCALE = "gate" if SMOKE else "full"


def test_segmented_bcast(benchmark):
    doc = benchmark.pedantic(run_area, args=("segmented-bcast",),
                             kwargs={"scale": SCALE},
                             rounds=1, iterations=1)
    repair = find_series(doc, "repair")["metrics"]
    print()
    print(f"segmented-bcast [{SCALE}]: {len(doc['series'])} cases, "
          f"all postconditions hold; seeded-loss repair "
          f"{repair['frames_repair']} frames vs model "
          f"{repair['frames_repair_expected']:.0f}")
