"""Segmented pipelined broadcast vs whole-payload retransmission.

Sweeps **payload size × transport plan × induced loss** for the
``mcast-seg-nack`` broadcast and puts it against the PVM-style
``mcast-ack`` baseline the paper dismissed.  Since PR 2 the sweep
includes the **adaptive** transport plan (``segment_bytes="auto"``):
frame-sized segments batched into a single datagram below the
~10-segment crossover, so small payloads no longer pay the per-segment
receive tax that used to hand ``mcast-ack`` the small-message end.

The loss model drops the *first* copy of selected data units at every
odd-ranked receiver, so every scheme needs its repair machinery each
iteration:

* for ``mcast-seg-nack`` the unit is one ``mcast-seg`` datagram whose
  batch contains a segment with index ≡ 3 mod 8, so the root must run
  one selective repair round per broadcast;
* for ``mcast-ack`` the unit is the whole-payload datagram, so the root
  must re-multicast the **entire** payload until the second copy lands.

Assertions (the reproduction criteria for this extension):

1. at a ≥ 32-segment payload under loss, ``mcast-seg-nack`` completes in
   **fewer total frames** and **lower median latency** than
   ``mcast-ack``;
2. per-segment frame counts of loss-free and one-repair-round runs match
   the closed-form formula in :mod:`repro.core.segment`
   (``seg_nack_frame_count``);
3. the crossover is gone: at **every** payload size in the sweep the
   auto plan puts no more payload-carrying frames on the wire than
   ``mcast-ack`` under symmetric first-copy loss, and batching cuts the
   datagram count to the ``seg_nack_datagram_count`` closed form;
4. at the below-crossover size, the auto plan's loss-free median beats
   the fixed per-segment plan's (the receive tax it no longer pays);
5. under *probabilistic* seeded loss the measured extra frames of a
   lossy run land in a **[expected/3, 1.5·expected]** band around
   :func:`~repro.analysis.framecount.expected_seg_repair_frames` — the
   model now accounts for repair re-batching (all still-missing
   segments of a round share one repair plan), so the band is tighter
   than the legacy factor-of-two one in ``bench_deep_fabric``.

``REPRO_SEG_SMOKE=1`` shrinks the sweep to a single tiny point so CI can
exercise the entry point in seconds.
"""

import os
from dataclasses import replace

from _common import REPS, SEED, RESULTS_DIR, by_label

from repro import run_spmd
from repro.bench import markdown_table, table
from repro.bench.harness import measure_bcast
from repro.core.segment import (plan_segments, plan_transport,
                                seg_nack_datagram_count,
                                seg_nack_frame_count)
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

SMOKE = os.environ.get("REPRO_SEG_SMOKE") == "1"

NPROCS = 4
SIZES = [12_000] if SMOKE else [1000, 12_000, 48_000]
SEG_BYTES = [1460] if SMOKE else [730, 1460]
BENCH_REPS = min(REPS, 3) if SMOKE else REPS
#: wide enough for mcast-ack's full-payload retransmission storms
WINDOW_US = 150_000.0

QUIET = quiet(FAST_ETHERNET_SWITCH)
AUTO = replace(FAST_ETHERNET_SWITCH, segment_bytes="auto")
QUIET_AUTO = quiet(AUTO)


# ---------------------------------------------------------------- loss
def _drop_first_copy(unit_of):
    """Filter dropping the first arrival of each distinct data unit."""
    seen = set()

    def flt(dgram):
        unit = unit_of(dgram)
        if unit is None or unit in seen:
            return False
        seen.add(unit)
        return True

    return flt


def _seg_unit(dgram):
    """A ``mcast-seg`` datagram whose batch holds a segment ≡ 3 mod 8."""
    if dgram.kind != "mcast-seg":
        return None
    _root, seq, seg = dgram.payload
    segs = seg if isinstance(seg, tuple) else (seg,)
    if not any(s.index % 8 == 3 for s in segs):
        return None
    return (seq, min(s.index for s in segs))


def _any_data_unit(kind):
    """First-copy-per-broadcast unit, symmetric across impls (used by
    the frame-count comparison so a 1-segment payload still sees loss)."""
    def unit_of(dgram):
        if dgram.kind != kind:
            return None
        return (dgram.payload[1],)          # the broadcast's seq
    return unit_of


_datagram_unit = _any_data_unit("mcast-data")


def _lossy_setup(unit_of):
    def setup(env):
        if env.rank % 2 == 1:
            env.comm.mcast.data_sock.drop_filter = _drop_first_copy(unit_of)
    return setup


# ---------------------------------------------------------- frame counts
def _count_frames(impl, size, params, lossy, unit_of=None):
    """One quiet single-shot broadcast; returns (stats, ok)."""
    payload = bytes(size)
    if unit_of is None:
        unit_of = _seg_unit if impl == "mcast-seg-nack" else _datagram_unit
    setup = _lossy_setup(unit_of) if lossy else None

    def main(env):
        env.comm.use_collectives(bcast=impl)
        if setup is not None:
            setup(env)
        obj = payload if env.rank == 0 else None
        out = yield from env.comm.bcast(obj, 0)
        return out == payload

    result = run_spmd(NPROCS, main, params=params, seed=SEED)
    return result.stats, all(result.returns)


def _seg_frames(stats):
    kinds = stats["frames_by_kind"]
    return sum(kinds.get(k, 0) for k in
               ("mcast-seg", "mcast-seg-hdr", "seg-report", "seg-dec",
                "scout"))


def _ack_frames(stats):
    kinds = stats["frames_by_kind"]
    return kinds.get("mcast-data", 0) + kinds.get("scout", 0)


def check_frame_formula():
    """Per-segment frame counts must match the documented formula."""
    size = SIZES[-1]
    nsegs = len(plan_segments(size, QUIET.segment_bytes))

    stats, ok = _count_frames("mcast-seg-nack", size, QUIET, lossy=False)
    assert ok
    assert _seg_frames(stats) == seg_nack_frame_count(NPROCS, nsegs)
    assert stats["frames_by_kind"]["mcast-seg"] == nsegs
    assert stats["retransmissions"] == 0

    stats, ok = _count_frames("mcast-seg-nack", size, QUIET, lossy=True)
    assert ok
    union = [i for i in range(nsegs) if i % 8 == 3]
    assert _seg_frames(stats) == seg_nack_frame_count(
        NPROCS, nsegs, [len(union)])
    assert stats["frames_by_kind"]["mcast-seg"] == nsegs + len(union)
    assert stats["retransmissions"] == len(union)
    return nsegs


def check_fewer_frames_than_ack():
    """Selective repair must beat whole-payload retransmission on wire."""
    size = SIZES[-1]
    seg_stats, seg_ok = _count_frames("mcast-seg-nack", size, QUIET,
                                      lossy=True)
    ack_stats, ack_ok = _count_frames("mcast-ack", size, QUIET, lossy=True)
    assert seg_ok and ack_ok
    assert _seg_frames(seg_stats) < _ack_frames(ack_stats), (
        f"seg-nack used {_seg_frames(seg_stats)} frames, "
        f"ack used {_ack_frames(ack_stats)}")
    return _seg_frames(seg_stats), _ack_frames(ack_stats)


def check_auto_plan_frames():
    """The crossover criterion: at every size in the sweep, the auto
    plan's payload-carrying ``mcast-seg`` frames stay at or below
    ``mcast-ack``'s ``mcast-data`` frames under symmetric first-copy
    loss, and its datagram count matches the batched closed form
    loss-free."""
    pairs = []
    for size in SIZES:
        seg_stats, seg_ok = _count_frames(
            "mcast-seg-nack", size, QUIET_AUTO, lossy=True,
            unit_of=_any_data_unit("mcast-seg"))
        ack_stats, ack_ok = _count_frames(
            "mcast-ack", size, QUIET, lossy=True,
            unit_of=_any_data_unit("mcast-data"))
        assert seg_ok and ack_ok
        seg_data = seg_stats["frames_by_kind"].get("mcast-seg", 0)
        ack_data = ack_stats["frames_by_kind"].get("mcast-data", 0)
        assert seg_data <= ack_data, (
            f"auto seg-nack sent {seg_data} payload frames at {size} B, "
            f"mcast-ack only {ack_data}")
        pairs.append((size, seg_data, ack_data))

        # loss-free datagram count matches the batched formula
        tp = plan_transport(size, QUIET_AUTO)
        stats, ok = _count_frames("mcast-seg-nack", size, QUIET_AUTO,
                                  lossy=False)
        assert ok
        wireup = stats["frames_by_kind"].get("p2p", 0)
        assert (stats["datagrams_sent"] - wireup
                == seg_nack_datagram_count(NPROCS, tp.nsegs, tp.batch))
    return pairs


def check_repair_model_band():
    """Criterion 5: with ``NetParams.loss`` doing real seeded drops, the
    measured repair traffic tracks ``expected_seg_repair_frames`` within
    [x/3, 1.5x] — a band tight enough that re-introducing the old
    union-compounding overestimate (~5x too many round-2 frames at this
    operating point) fails it from above, and dropping repair rounds
    fails it from below."""
    from repro.analysis.framecount import expected_seg_repair_frames

    n, loss, size = 8, 0.05, 96_000
    n_ops = 2 if SMOKE else 4

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        for _ in range(n_ops):
            out = yield from env.comm.bcast(
                bytes(size) if env.rank == 0 else None, 0)
            assert len(out) == size
        return True

    clean = run_spmd(n, main, params=QUIET_AUTO, seed=SEED)
    lossy = run_spmd(n, main, params=replace(QUIET_AUTO, loss=loss),
                     seed=SEED)
    assert all(clean.returns) and all(lossy.returns)
    assert lossy.stats["drops_lossy"] > 0
    measured = lossy.stats["frames_sent"] - clean.stats["frames_sent"]
    nsegs = plan_transport(size, QUIET_AUTO).nsegs
    expected = n_ops * expected_seg_repair_frames(n, nsegs, loss)
    assert expected / 3 <= measured <= 1.5 * expected, (
        f"measured {measured} repair frames outside the tightened model "
        f"band [{expected / 3:.0f}, {1.5 * expected:.0f}]")
    return measured, expected


# ---------------------------------------------------------------- latency
def _sweep():
    series = []
    for seg_bytes in SEG_BYTES:
        params = replace(FAST_ETHERNET_SWITCH, segment_bytes=seg_bytes)
        series.append(measure_bcast(
            "mcast-seg-nack", "switch", NPROCS, SIZES, reps=BENCH_REPS,
            seed=SEED, params=params, window_us=WINDOW_US,
            setup=_lossy_setup(_seg_unit),
            label=f"seg-nack seg={seg_bytes} lossy"))
    series.append(measure_bcast(
        "mcast-seg-nack", "switch", NPROCS, SIZES, reps=BENCH_REPS,
        seed=SEED, params=AUTO, window_us=WINDOW_US,
        setup=_lossy_setup(_seg_unit), label="seg-nack auto lossy"))
    series.append(measure_bcast(
        "mcast-seg-nack", "switch", NPROCS, SIZES, reps=BENCH_REPS,
        seed=SEED, params=FAST_ETHERNET_SWITCH, window_us=WINDOW_US,
        label="seg-nack lossless"))
    series.append(measure_bcast(
        "mcast-seg-nack", "switch", NPROCS, SIZES, reps=BENCH_REPS,
        seed=SEED, params=AUTO, window_us=WINDOW_US,
        label="seg-nack auto lossless"))
    series.append(measure_bcast(
        "mcast-ack", "switch", NPROCS, SIZES, reps=BENCH_REPS,
        seed=SEED, params=FAST_ETHERNET_SWITCH, window_us=WINDOW_US,
        setup=_lossy_setup(_datagram_unit), label="ack (PVM-style) lossy"))
    # PR 3: the payload-aware policy layer against the fixed entries it
    # chooses between (loss-free, like the selection's frame model).
    series.append(measure_bcast(
        "p2p-binomial", "switch", NPROCS, SIZES, reps=BENCH_REPS,
        seed=SEED, params=FAST_ETHERNET_SWITCH, window_us=WINDOW_US,
        label="p2p-binomial lossless"))
    series.append(measure_bcast(
        "auto", "switch", NPROCS, SIZES, reps=BENCH_REPS,
        seed=SEED, params=AUTO, window_us=WINDOW_US,
        label="auto (policy) lossless"))
    return series


def _run():
    nsegs = check_frame_formula()
    seg_frames, ack_frames = check_fewer_frames_than_ack()
    auto_pairs = check_auto_plan_frames()
    repair_measured, repair_expected = check_repair_model_band()
    series = _sweep()
    auto_str = "; ".join(f"{s}B: {a}<={b}" for s, a, b in auto_pairs)
    notes = (f"{SIZES[-1]} B = {nsegs} segments; induced loss at odd "
             f"ranks; seg-nack repaired it in {seg_frames} frames vs "
             f"ack's {ack_frames}; auto-plan payload frames vs ack "
             f"under symmetric loss: {auto_str}; seeded-loss repair "
             f"traffic {repair_measured} frames vs model "
             f"{repair_expected:.0f} (band [x/3, 1.5x])")
    return series, notes


def test_segmented_bcast(benchmark):
    series, notes = benchmark.pedantic(_run, rounds=1, iterations=1)

    seg = by_label(series, f"seg-nack seg={SEG_BYTES[-1]} lossy")
    auto = by_label(series, "seg-nack auto lossy")
    auto_clean = by_label(series, "seg-nack auto lossless")
    fixed_clean = by_label(series, "seg-nack lossless")
    ack = by_label(series, "ack (PVM-style) lossy")
    p2p_clean = by_label(series, "p2p-binomial lossless")
    policy = by_label(series, "auto (policy) lossless")

    # The payload-aware "auto" tracks the impl it chose per size: the
    # p2p tree below the frame-count crossover (modulo the log2(N)-deep
    # scout announcement), the segmented multicast above it.
    from repro.mpi.collective.policy import auto_impl
    for size in policy.sizes:
        chosen = auto_impl("bcast", size, NPROCS, AUTO)
        ref = (p2p_clean if chosen == "p2p-binomial" else auto_clean)
        assert policy.median(size) <= ref.median(size) * 1.35 + 400, (
            f"auto bcast median {policy.median(size):.0f} us at {size} B "
            f"vs chosen {chosen}'s {ref.median(size):.0f} us")

    # Selective NACK repair beats whole-payload retransmission at the
    # many-segment end — for the fixed per-segment plan AND the auto one.
    big = SIZES[-1]
    if not SMOKE:
        assert len(plan_segments(big, SEG_BYTES[-1])) >= 32
        assert seg.median(big) < ack.median(big)
        assert auto.median(big) < ack.median(big)
        # Below the crossover the auto plan's single batched datagram
        # drops the per-segment receive tax the fixed plan still pays.
        below = 12_000
        assert auto_clean.median(below) < fixed_clean.median(below)

    # Only the full sweep records results: the smoke run's single-point
    # table must not overwrite the archived perf trajectory.
    if not SMOKE:
        RESULTS_DIR.mkdir(exist_ok=True)
        md = ["# segmented-bcast", "", f"_expectation_: {notes}", "",
              markdown_table(series,
                             title="segmented bcast median latency (us)")]
        (RESULTS_DIR / "segmented-bcast.md").write_text("\n".join(md))
    print()
    print(table(series, title=f"segmented bcast (reps={BENCH_REPS}, "
                              f"seed={SEED})"))
