"""Segmented reduce/allreduce vs the MPICH p2p trees, plus "auto" —
re-ported onto the declarative sweep harness.

The ``segmented-reduce`` area of :mod:`repro.bench.sweep_areas` carries
PR 3's reduction-side cases and asserts the old script's claims as
postconditions:

1. **payload frames** — the turn-based ``mcast-seg-combine`` reduce
   puts no more payload-carrying frames on the wire than the binomial
   tree, and the composed segmented allreduce beats
   ``p2p-reduce-bcast`` outright at every size; loss-free stream
   counts match the closed forms in :mod:`repro.analysis.framecount`
   exactly (in-runner asserts);
2. **selective repair** — under induced first-copy loss the segmented
   reduce re-multicasts only the lost datagrams' segments, never whole
   payloads (in-runner asserts);
3. **"auto" is never a worse choice** — the payload-aware policy's
   pick matches the closed-form prediction and its measured total
   frames never exceed the best fixed entry; its median latency tracks
   the faster fixed entry.

``REPRO_SEG_SMOKE=1`` selects the tiny gate scale (the committed
``BENCH_segmented-reduce.json`` baseline); results are persisted only
by ``make bench-baselines``.
"""

import os

from repro.bench.sweep import find_series, run_area

SMOKE = os.environ.get("REPRO_SEG_SMOKE") == "1"
SCALE = "gate" if SMOKE else "full"


def test_segmented_reduce(benchmark):
    doc = benchmark.pedantic(run_area, args=("segmented-reduce",),
                             kwargs={"scale": SCALE},
                             rounds=1, iterations=1)
    repair = find_series(doc, "repair")["metrics"]
    print()
    print(f"segmented-reduce [{SCALE}]: {len(doc['series'])} cases, all "
          f"postconditions hold; selective repair re-sent "
          f"{repair['retransmissions']} segment batches")
