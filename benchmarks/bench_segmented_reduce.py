"""Segmented reduce/allreduce vs the MPICH p2p trees, plus "auto".

PR 3's reduction-side sweep.  Three claims, asserted per size:

1. **payload frames** — the turn-based ``mcast-seg-combine`` reduce puts
   no more payload-carrying frames on the wire than the binomial tree
   (each contribution crosses the wire once either way; the segment
   envelope never costs an extra frame), and the composed segmented
   allreduce beats ``p2p-reduce-bcast`` outright at every size: its
   broadcast half is **one** multicast stream against the tree's
   ``N-1`` re-sends (``N`` payload streams vs ``2(N-1)``).  Loss-free
   counts must match the closed forms in
   :mod:`repro.analysis.framecount` exactly.
2. **selective repair** — under induced first-copy loss the segmented
   reduce re-multicasts only the lost datagrams' segments, not whole
   payloads.
3. **"auto" is never a worse choice** — the payload-aware policy
   resolves reduce/allreduce locally (zero announcement cost) and its
   measured median latency tracks the best fixed entry at every size;
   its per-call choices (``comm.impl_log``) match the closed-form
   prediction.

``REPRO_SEG_SMOKE=1`` shrinks the sweep to a single size so CI can
exercise the entry point in seconds (results are not archived then).
"""

import os
from dataclasses import replace

import numpy as np

from _common import REPS, SEED, RESULTS_DIR, by_label

from repro import run_spmd
from repro.analysis.framecount import (model_p2p_tree_frames,
                                       model_seg_allreduce_frames,
                                       model_seg_reduce_frames)
from repro.bench import markdown_table, run_figure, table
from repro.bench.figures import SEGCOLL_PARAMS
from repro.core.segment import plan_segments
from repro.mpi.collective.policy import auto_impl
from repro.mpi.ops import SUM
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

SMOKE = os.environ.get("REPRO_SEG_SMOKE") == "1"

NPROCS = 4
SIZES = [12_000] if SMOKE else [1000, 12_000, 48_000]
BENCH_REPS = min(REPS, 3) if SMOKE else max(8, REPS // 2)

QUIET = quiet(FAST_ETHERNET_SWITCH)
QUIET_AUTO = quiet(replace(FAST_ETHERNET_SWITCH, segment_bytes="auto"))


def _payload(size):
    return np.full(max(1, size // 8), 2.0, dtype=np.float64)


def _drop_first_copies(want=None):
    """Induced loss: drop the first copy of each ``mcast-seg`` datagram
    whose leading segment index satisfies ``want`` (default: all of
    them); second copies — the repairs — pass."""
    seen = set()

    def flt(dgram):
        if dgram.kind != "mcast-seg":
            return False
        seg = dgram.payload[2]
        first = seg[0].index if isinstance(seg, tuple) else seg.index
        if want is not None and not want(first):
            return False
        key = (dgram.payload[0], dgram.payload[1], first)
        if key in seen:
            return False
        seen.add(key)
        return True

    return flt


def _run_once(op, impl, size, params, lossy_ranks=(), drop=None):
    """One quiet single-shot collective; returns (stats, ok, impl_log)."""
    expected = float(sum(range(1, NPROCS + 1)))

    def main(env):
        env.comm.use_collectives(**{op: impl})
        if env.rank in lossy_ranks:
            env.comm.mcast.data_sock.drop_filter = (
                drop() if drop else _drop_first_copies())
        arr = np.full(max(1, size // 8), float(env.rank + 1),
                      dtype=np.float64)
        if op == "reduce":
            out = yield from env.comm.reduce(arr, SUM, 0)
            ok = out is None or bool(np.all(out == expected))
        else:
            out = yield from env.comm.allreduce(arr, SUM)
            ok = bool(np.all(out == expected))
        return ok, list(env.comm.impl_log)

    result = run_spmd(NPROCS, main, params=params, seed=SEED)
    oks = [ok for ok, _log in result.returns]
    return result.stats, all(oks), result.returns[0][1]


def _null_frames(params):
    """Wireup-only frame baseline: (p2p frames, total frames) of a run
    with no collective, subtracted from the measured runs."""
    result = run_spmd(NPROCS, lambda env: iter(()), params=params,
                      seed=SEED)
    return (result.stats["frames_by_kind"].get("p2p", 0),
            result.stats["frames_sent"])


def _p2p_payload_frames(stats, baseline):
    return stats["frames_by_kind"].get("p2p", 0) - baseline[0]


def _seg_payload_frames(stats):
    return stats["frames_by_kind"].get("mcast-seg", 0)


def check_frame_formulas():
    """Loss-free payload+control frames must match the closed forms."""
    size = SIZES[-1]
    nsegs = len(plan_segments(size, QUIET.segment_bytes))

    def seg_frames(stats):
        kinds = stats["frames_by_kind"]
        return sum(kinds.get(k, 0) for k in
                   ("mcast-seg", "mcast-seg-hdr", "seg-report", "seg-dec",
                    "scout"))

    stats, ok, _ = _run_once("reduce", "mcast-seg-combine", size, QUIET)
    assert ok
    assert seg_frames(stats) == model_seg_reduce_frames(NPROCS, nsegs)
    assert _seg_payload_frames(stats) == (NPROCS - 1) * nsegs
    assert stats["retransmissions"] == 0

    stats, ok, _ = _run_once("allreduce", "mcast-seg-nack", size, QUIET)
    assert ok
    assert seg_frames(stats) == model_seg_allreduce_frames(NPROCS, nsegs)
    assert _seg_payload_frames(stats) == NPROCS * nsegs
    return nsegs


def check_payload_frames_vs_p2p():
    """Criterion: at every size, segmented reduce matches (and the
    segmented allreduce beats) the p2p defaults in payload frames."""
    baseline = _null_frames(QUIET_AUTO)
    rows = []
    for size in SIZES:
        p2p_stats, ok1, _ = _run_once("reduce", "p2p-binomial", size,
                                      QUIET_AUTO)
        seg_stats, ok2, _ = _run_once("reduce", "mcast-seg-combine",
                                      size, QUIET_AUTO)
        assert ok1 and ok2
        p2p = _p2p_payload_frames(p2p_stats, baseline)
        seg = _seg_payload_frames(seg_stats)
        assert seg <= p2p, (f"seg reduce sent {seg} payload frames at "
                            f"{size} B, p2p only {p2p}")
        assert p2p == model_p2p_tree_frames(QUIET_AUTO, NPROCS, size)

        p2p_stats, ok1, _ = _run_once("allreduce", "p2p-reduce-bcast",
                                      size, QUIET_AUTO)
        seg_stats, ok2, _ = _run_once("allreduce", "mcast-seg-nack",
                                      size, QUIET_AUTO)
        assert ok1 and ok2
        p2p_ar = _p2p_payload_frames(p2p_stats, baseline)
        seg_ar = _seg_payload_frames(seg_stats)
        assert seg_ar < p2p_ar, (f"seg allreduce sent {seg_ar} payload "
                                 f"frames at {size} B vs p2p's {p2p_ar}")
        rows.append((size, seg, p2p, seg_ar, p2p_ar))
    return rows


def check_selective_repair():
    """Induced loss at the (only) consumer costs repairs proportional to
    what was actually lost — never a whole-payload resend."""
    size = SIZES[-1]

    def drop_some():
        return _drop_first_copies(want=lambda first: first % 8 == 3)

    # the root is the only rank that consumes reduce data: loss anywhere
    # else is free (bystanders post no descriptors), loss at the root is
    # what the NACK repair must absorb
    stats, ok, _ = _run_once("reduce", "mcast-seg-combine", size, QUIET,
                             lossy_ranks=(0,), drop=drop_some)
    assert ok
    nsegs = len(plan_segments(size, QUIET.segment_bytes))
    lost_per_turn = len([i for i in range(nsegs) if i % 8 == 3])
    # exactly the union was re-multicast, once per contributing turn
    assert stats["retransmissions"] == (NPROCS - 1) * lost_per_turn
    assert (stats["frames_by_kind"]["mcast-seg"]
            == (NPROCS - 1) * (nsegs + lost_per_turn))


def check_auto_choices():
    """The policy's per-call choice matches the closed-form prediction,
    and the choice is never worse than the best fixed entry in measured
    **total** frames on the wire — the policy's own metric, payload and
    control alike (control is exactly what makes p2p win small
    payloads)."""
    baseline = _null_frames(QUIET_AUTO)
    picks = []
    for size in SIZES:
        for op, p2p_impl, seg_impl in (
                ("reduce", "p2p-binomial", "mcast-seg-combine"),
                ("allreduce", "p2p-reduce-bcast", "mcast-seg-nack")):
            expect = auto_impl(op, size, NPROCS, QUIET_AUTO)
            stats, ok, log = _run_once(op, "auto", size, QUIET_AUTO)
            assert ok
            chosen = [name for o, name in log if o == op]
            assert expect in chosen, (op, size, log, expect)
            p2p_stats, _, _ = _run_once(op, p2p_impl, size, QUIET_AUTO)
            seg_stats, _, _ = _run_once(op, seg_impl, size, QUIET_AUTO)
            best = min(p2p_stats["frames_sent"],
                       seg_stats["frames_sent"]) - baseline[1]
            mine = stats["frames_sent"] - baseline[1]
            assert mine <= best, (
                f"auto {op} at {size} B put {mine} frames on the wire; "
                f"the best fixed entry needs only {best}")
            picks.append((op, size, expect))
    return picks


def _sweep():
    series, notes = run_figure("segcoll", reps=BENCH_REPS, seed=SEED,
                               sizes=SIZES)
    return series, notes


def _run():
    nsegs = check_frame_formulas()
    frame_rows = check_payload_frames_vs_p2p()
    check_selective_repair()
    picks = check_auto_choices()
    series, fig_notes = _sweep()
    frames_str = "; ".join(
        f"{s}B: reduce {a}<={b}, allreduce {c}<{d}"
        for s, a, b, c, d in frame_rows)
    picks_str = "; ".join(f"{op}@{s}B->{name}" for op, s, name in picks)
    notes = (f"{SIZES[-1]} B = {nsegs} segments; payload frames vs p2p: "
             f"{frames_str}; auto picks: {picks_str}. {fig_notes}")
    return series, notes


def test_segmented_reduce(benchmark):
    series, notes = benchmark.pedantic(_run, rounds=1, iterations=1)

    # "auto" runs the impl the closed-form policy predicts, so its
    # measured median must track that fixed series (resolution is local
    # and free for reduce/allreduce; slack covers jitter-draw skew
    # between separately seeded runs).
    for op in ("reduce", "allreduce"):
        fixed = {"p2p-binomial": by_label(series, f"{op} p2p"),
                 "p2p-reduce-bcast": by_label(series, f"{op} p2p"),
                 "mcast-seg-combine": by_label(series, f"{op} seg"),
                 "mcast-seg-nack": by_label(series, f"{op} seg")}
        auto = by_label(series, f"{op} auto")
        for size in auto.sizes:
            # predict with the SAME params the sweep measured under
            chosen = fixed[auto_impl(op, size, NPROCS, SEGCOLL_PARAMS)]
            assert auto.median(size) <= chosen.median(size) * 1.15, (
                f"auto {op} median {auto.median(size):.0f} us at "
                f"{size} B vs its chosen impl's "
                f"{chosen.median(size):.0f} us")

    if not SMOKE:
        RESULTS_DIR.mkdir(exist_ok=True)
        md = ["# segmented-reduce", "", f"_expectation_: {notes}", "",
              markdown_table(series,
                             title="segmented reduce/allreduce median "
                                   "latency (us)")]
        (RESULTS_DIR / "segmented-reduce.md").write_text("\n".join(md))
    print()
    print(table(series, title=f"segmented reduce/allreduce "
                              f"(reps={BENCH_REPS}, seed={SEED})"))
