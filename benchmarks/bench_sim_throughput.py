"""Simulator speed: events/sec and wall-clock of thousand-host fabrics.

The ``sim-throughput`` area of :mod:`repro.bench.sweep_areas` measures
the machine running the simulation rather than the simulated network:

1. **workload** — one flat segmented broadcast across ``tree:8x8``
   (64 hosts) and ``tree:32x32`` (1024 hosts): events dispatched, peak
   pending records and the final sim clock are exact (any increase is
   a kernel regression caught by ``make bench-gate``); wall seconds
   and events/sec are banded wide (``wall*`` / ``rate*`` — see
   docs/BENCHMARKS.md) so only order-of-magnitude collapses fail;
2. **gate-sweep** — wall seconds of the whole ``deep-fabric`` gate
   sweep with the analytic fluid backend on (``fluid``) and off
   (``des``): the committed pair records the backend's speedup, and a
   postcondition keeps fluid at least 2x ahead.

Postconditions also enforce the smoke budget: the 1024-host broadcast
must finish inside ``THRU_BUDGET_S`` wall seconds.

``REPRO_SEG_SMOKE=1`` selects the tiny gate scale (the committed
``BENCH_sim-throughput.json`` baseline); the full scale adds
``tree:16x16``.
"""

import os

from repro.bench.sweep import find_series, run_area

SMOKE = os.environ.get("REPRO_SEG_SMOKE") == "1"
SCALE = "gate" if SMOKE else "full"


def test_sim_throughput(benchmark):
    doc = benchmark.pedantic(run_area, args=("sim-throughput",),
                             kwargs={"scale": SCALE},
                             rounds=1, iterations=1)
    big = find_series(doc, "workload", fabric="tree:32x32")["metrics"]
    fluid = find_series(doc, "gate-sweep", mode="fluid")["metrics"]
    des = find_series(doc, "gate-sweep", mode="des")["metrics"]
    print()
    print(f"sim-throughput [{SCALE}]: 1024-host bcast dispatched "
          f"{big['events']} events in {big['wall_s']:.2f}s "
          f"({big['rate_events_per_s']:.0f}/s, peak {big['peak_live']} "
          f"live); deep-fabric gate sweep {fluid['wall_s']:.2f}s fluid "
          f"vs {des['wall_s']:.2f}s DES")
