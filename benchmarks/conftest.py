"""Make the benchmarks directory importable (for ``_common``)."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))
