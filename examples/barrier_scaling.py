#!/usr/bin/env python3
"""Barrier scaling on the shared hub — the paper's Fig. 13.

Sweeps the cluster from 2 to 9 workstations and compares the MPICH
three-phase barrier against the multicast barrier (binary scout
reduction + one data-less multicast release).  Also prints the message
counts from the paper's closed-form analysis next to the measured
latencies, so the "why" is visible: the multicast barrier replaces
``2(N-K) + K·log2(K)`` point-to-point messages with ``N-1`` scouts and
a single multicast.

Run:  python examples/barrier_scaling.py
"""

from repro.analysis import (paper_mcast_barrier_messages,
                            paper_mpich_barrier_messages)
from repro.bench import measure_barrier


def main() -> None:
    print(f"{'procs':>5} | {'MPICH msgs':>10} | {'mcast msgs':>10} | "
          f"{'MPICH us':>9} | {'dissem us':>9} | {'mcast us':>9} | "
          f"speedup")
    print("-" * 78)
    for n in range(2, 10):
        mpich = measure_barrier("p2p-mpich", "hub", n, reps=15, seed=n)
        dis = measure_barrier("p2p-dissemination", "hub", n, reps=15,
                              seed=200 + n)
        mcast = measure_barrier("mcast", "hub", n, reps=15, seed=100 + n)
        mpich_us = mpich.median(0)
        mcast_us = mcast.median(0)
        scouts, releases = paper_mcast_barrier_messages(n)
        print(f"{n:>5} | {paper_mpich_barrier_messages(n):>10} | "
              f"{f'{scouts}+{releases}mc':>10} | {mpich_us:>9.1f} | "
              f"{dis.median(0):>9.1f} | {mcast_us:>9.1f} | "
              f"{mpich_us / mcast_us:>6.2f}x")
    print()
    print("The multicast release frees all waiting processes with ONE")
    print("frame; MPICH needs a release message per non-power-of-2 rank")
    print("plus log2(K) pairwise exchange rounds.")


if __name__ == "__main__":
    main()
