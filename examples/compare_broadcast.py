#!/usr/bin/env python3
"""Reproduce the paper's headline figure from the public API.

Sweeps message size 0-5 kB for MPI_Bcast with 4 processes over both the
hub and the switch (paper Figs. 7, 8 and 11), prints the median-latency
tables and ASCII plots, and reports the measured crossover points.

Run:  python examples/compare_broadcast.py [--reps 15]
"""

import argparse

from repro.bench import (PAPER_SIZES, ascii_plot, crossover, measure_bcast,
                         table)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=15,
                        help="iterations per size (paper used 20-30)")
    parser.add_argument("--procs", type=int, default=4)
    args = parser.parse_args()

    for topology in ("hub", "switch"):
        series = [
            measure_bcast("p2p-binomial", topology, args.procs,
                          PAPER_SIZES, reps=args.reps, seed=1,
                          label=f"mpich/{topology}"),
            measure_bcast("mcast-linear", topology, args.procs,
                          PAPER_SIZES, reps=args.reps, seed=2,
                          label=f"mcast linear/{topology}"),
            measure_bcast("mcast-binary", topology, args.procs,
                          PAPER_SIZES, reps=args.reps, seed=3,
                          label=f"mcast binary/{topology}"),
        ]
        print(table(series,
                    title=f"MPI_Bcast, {args.procs} processes, {topology} "
                          f"(median of {args.reps} runs, us)"))
        print()
        print(ascii_plot(series, title=f"{topology}: latency vs size"))
        mpich = series[0]
        for ser in series[1:]:
            x = crossover(ser, mpich)
            print(f"  {ser.label} beats mpich from "
                  f"{x if x is not None else '>5000'} bytes")
        print()


if __name__ == "__main__":
    main()
