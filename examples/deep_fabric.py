#!/usr/bin/env python3
"""Recursive multi-tier fabrics and leaders-of-leaders collectives.

Builds a three-tier ``tree:2x2x2`` cluster (a core switch, two mid
switches, four leaf switches of two hosts — see
:mod:`repro.simnet.fabric`), walks the multi-level topology discovery
API (segment paths, true trunk-hop distances), shows the recursive
hierarchy ``hier-mcast`` elects (per-leaf groups, leader groups, and a
leaders-of-leaders group at the core), and compares per-call trunk
traffic of the flat segmented gather against the hierarchical one.

Run:  python examples/deep_fabric.py
"""

from dataclasses import replace

from repro import run_spmd
from repro.mpi.collective.hier import (group_members, hier_state,
                                       tree_internal_nodes)
from repro.simnet import FAST_ETHERNET_SWITCH, quiet

TOPOLOGY = "tree:2x2x2"
NPROCS = 8
SIZE = 24_000

PARAMS = quiet(replace(FAST_ETHERNET_SWITCH, segment_bytes="auto"))
#: per-tier trunk wiring: a gigabit core tier, fast-ethernet below
TRUNKS = [replace(PARAMS, rate_mbps=1000.0), PARAMS]


def show_topology() -> None:
    def main(env):
        yield from env.comm.barrier()
        if env.rank == 0:
            cluster = env.comm.world.cluster
            env.records["segments"] = [
                (cluster.segment_path(s), cluster.segment_members(s))
                for s in range(cluster.nsegments)]
            env.records["matrix"] = cluster.trunk_distance_matrix()
            st = hier_state(env.comm)
            env.records["tree"] = [
                (node.path, group_members(node))
                for node in tree_internal_nodes(st.tree)]
        return True

    result = run_spmd(NPROCS, main, topology=TOPOLOGY, params=PARAMS,
                      trunk_params=TRUNKS)
    rec = result.records[0]
    print(f"topology {TOPOLOGY}: {len(rec['segments'])} segments, "
          f"3 switch tiers")
    for s, (path, members) in enumerate(rec["segments"]):
        print(f"  segment {s} at switch path {path}: hosts {members}")
    print("trunk-hop distance matrix (hosts 0..7; up to 4 hops "
          "across the tree):")
    for row in rec["matrix"]:
        print("  ", row)
    print("recursive leader hierarchy (leaders of leaders):")
    for path, members in rec["tree"]:
        where = "core" if path == () else f"switch {path}"
        print(f"  group at {where}: leader ranks {list(members)}")


def trunk_frames(impl: str, n_ops: int) -> int:
    def main(env):
        env.comm.use_collectives(gather=impl)
        for _ in range(n_ops):
            got = yield from env.comm.gather(
                bytes([env.rank]) * (SIZE // NPROCS), 0)
            assert (got is None) == (env.rank != 0)
        return True

    result = run_spmd(NPROCS, main, topology=TOPOLOGY, params=PARAMS,
                      trunk_params=TRUNKS)
    return result.stats["frames_trunk"]


def compare_trunk_traffic() -> None:
    print(f"\nper-call trunk serializations, {SIZE} B gather:")
    for impl in ("mcast-seg-root-follow", "hier-mcast"):
        per_call = trunk_frames(impl, 2) - trunk_frames(impl, 1)
        print(f"  {impl:<21} {per_call:>4} trunk frames")
    print("the hierarchy gathers within each leaf, then leader groups "
          "bridge each\ntier — every tier's trunks carry each "
          "contribution once, not once per\ncontrol sweep of every "
          "remote rank.")


if __name__ == "__main__":
    show_topology()
    compare_trunk_traffic()
