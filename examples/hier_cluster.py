#!/usr/bin/env python3
"""Hierarchical collectives on a tiered switch fabric.

Builds a ``tree:2x4`` cluster (two 4-host leaf switches behind a core,
joined by trunks — see :mod:`repro.simnet.fabric`), walks the topology
discovery API, elects per-segment leaders the way ``hier-mcast`` does,
and compares the trunk traffic of a flat segmented broadcast against
the hierarchical one.  The trunks are the scarce, shared resource of a
multi-segment fabric: the hierarchy pays them once per segment and once
per *leader* for control, instead of once per remote rank.

Run:  python examples/hier_cluster.py
"""

from dataclasses import replace

from repro import run_spmd
from repro.mpi.collective.hier import hier_state
from repro.simnet import FAST_ETHERNET_SWITCH, quiet

TOPOLOGY = "tree:2x4"
NPROCS = 8
SIZE = 24_000

PARAMS = quiet(replace(FAST_ETHERNET_SWITCH, segment_bytes="auto"))
#: the backbone can differ from the edge — here a gigabit trunk
TRUNK = replace(PARAMS, rate_mbps=1000.0)


def show_topology() -> None:
    def main(env):
        yield from env.comm.barrier()
        if env.rank == 0:
            cluster = env.comm.world.cluster
            env.records["segments"] = [
                cluster.segment_members(s)
                for s in range(cluster.nsegments)]
            env.records["matrix"] = cluster.trunk_distance_matrix()
            st = hier_state(env.comm)
            env.records["leaders"] = st.leaders
        return True

    result = run_spmd(NPROCS, main, topology=TOPOLOGY, params=PARAMS,
                      trunk_params=TRUNK)
    rec = result.records[0]
    print(f"topology {TOPOLOGY}: {len(rec['segments'])} segments")
    for s, members in enumerate(rec["segments"]):
        leader = rec["leaders"][s]
        print(f"  segment {s}: hosts {members} (leader: rank {leader})")
    print("trunk-hop distance matrix (hosts 0..7):")
    for row in rec["matrix"]:
        print("  ", row)


def trunk_frames(impl: str, n_ops: int) -> int:
    def main(env):
        env.comm.use_collectives(bcast=impl)
        for _ in range(n_ops):
            data = yield from env.comm.bcast(
                bytes(SIZE) if env.rank == 0 else None, 0)
            assert len(data) == SIZE
        return True

    result = run_spmd(NPROCS, main, topology=TOPOLOGY, params=PARAMS,
                      trunk_params=TRUNK)
    return result.stats["frames_trunk"]


def compare_trunk_traffic() -> None:
    print(f"\nper-call trunk serializations, {SIZE} B bcast:")
    for impl in ("mcast-seg-nack", "hier-mcast"):
        per_call = trunk_frames(impl, 2) - trunk_frames(impl, 1)
        print(f"  {impl:<15} {per_call:>4} trunk frames")
    print("the hierarchy pays each trunk once per segment for data and "
          "once per leader\nfor control — the flat engine pays it once "
          "per remote rank per control sweep.")


if __name__ == "__main__":
    show_topology()
    compare_trunk_traffic()
