#!/usr/bin/env python3
"""The paper's §4 scenario: multiple roots broadcasting to one group.

Four processes share one multicast group (one communicator).  Processes
1, 2 and 3 broadcast in that program order — the paper argues the scout
synchronization preserves this order *provided the MPI code is safe*
(every rank issues the collectives in the same order).

This script (a) verifies a safe schedule statically, (b) runs it on the
simulator under heavy artificial skew and shows every rank receives the
broadcasts in program order, and (c) shows the static checker rejecting
an unsafe schedule.

Run:  python examples/ordered_groups.py
"""

from repro.core.ordering import (UnsafeScheduleError, check_safe_schedule,
                                 run_bcast_sequence)
from repro.runtime import UniformSkew, run_spmd

ROOTS = [1, 2, 3]   # the paper's processes 6, 7, 8, as ranks of the group


def main() -> None:
    # (a) static safety check: all ranks issue the same collective
    # sequence on the same communicator -> safe.
    schedule = [("bcast", "world", root) for root in ROOTS]
    check_safe_schedule({rank: schedule for rank in range(4)})
    print("static check: schedule is safe (identical on every rank)")

    # (b) run it with scout-synchronized multicast under skewed starts.
    def program(env):
        received = yield from run_bcast_sequence(env, ROOTS)
        return received

    result = run_spmd(4, program, topology="switch", seed=9,
                      skew=UniformSkew(4000.0, seed=3),
                      collectives={"bcast": "mcast-binary"})
    expected = [(root, i) for i, root in enumerate(ROOTS)]
    print("\nper-rank arrival order (root, call-index):")
    for rank, got in enumerate(result.returns):
        marker = "ok" if got == expected else "ORDER VIOLATION"
        print(f"  rank {rank}: {got}   [{marker}]")
    assert all(got == expected for got in result.returns)

    # (c) an unsafe schedule: rank 3 issues the broadcasts in a
    # different order -> rejected before it can deadlock the group.
    bad = {rank: schedule for rank in range(3)}
    bad[3] = list(reversed(schedule))
    try:
        check_safe_schedule(bad)
    except UnsafeScheduleError as exc:
        print(f"\nunsafe schedule rejected as expected:\n  {exc}")


if __name__ == "__main__":
    main()
