#!/usr/bin/env python3
"""A real SPMD application on the simulated cluster: 1-D Jacobi heat
diffusion with halo exchange — the kind of workload the paper's
introduction motivates ("message passing in a cluster of computers").

Each rank owns a strip of the rod.  Per iteration:

* halo exchange with neighbours (point-to-point sendrecv);
* Jacobi update of the interior (NumPy, vectorized per the guides);
* every ``CHECK_EVERY`` iterations, a global residual allreduce and a
  broadcast of the "continue/stop" decision from rank 0.

The collective traffic (bcast + the barrier separating phases) is where
the paper's implementations differ, so the same program is run twice —
once on MPICH-style collectives, once on multicast — and the completion
times and wire costs are compared.  The numerics are asserted identical.

Run:  python examples/parallel_jacobi.py
"""

import numpy as np

from repro import run_spmd
from repro.mpi import MAX

POINTS_PER_RANK = 200
CHECK_EVERY = 5
TOLERANCE = 1e-3
MAX_ITERS = 200


def jacobi_program(env):
    comm = env.comm
    rank, size = env.rank, env.size

    # Rank 0 distributes the run parameters (a broadcast, like any real
    # MPI application's setup phase).
    params = ({"tol": TOLERANCE, "max_iters": MAX_ITERS}
              if rank == 0 else None)
    params = yield from comm.bcast(params, root=0)

    # Local strip with one ghost cell on each side; fixed hot boundary
    # on the left end of the global rod.
    u = np.zeros(POINTS_PER_RANK + 2)
    if rank == 0:
        u[0] = 100.0

    iters = 0
    residual = np.inf
    while iters < params["max_iters"]:
        # halo exchange with neighbours
        if rank > 0:
            left = yield from comm.sendrecv(
                float(u[1]), dest=rank - 1, sendtag=1,
                source=rank - 1, recvtag=2)
            u[0] = left
        if rank < size - 1:
            right = yield from comm.sendrecv(
                float(u[-2]), dest=rank + 1, sendtag=2,
                source=rank + 1, recvtag=1)
            u[-1] = right

        new = u.copy()
        new[1:-1] = 0.5 * (u[:-2] + u[2:])
        if rank == 0:
            new[0] = 100.0
        diff = float(np.max(np.abs(new - u)))
        u = new
        iters += 1

        if iters % CHECK_EVERY == 0:
            residual = yield from comm.allreduce(diff, MAX)
            stop = residual < params["tol"] if rank == 0 else None
            stop = yield from comm.bcast(stop, root=0)
            # Global-field broadcast: every rank needs the whole rod for
            # its adaptive damping factor (a multi-kB payload — the size
            # regime where the paper's multicast broadcast earns its
            # keep; the tiny stop-flag broadcast above is below the
            # crossover and gains nothing).
            strips = yield from comm.gather(u[1:-1].copy(), root=0)
            field = np.concatenate(strips) if rank == 0 else None
            field = yield from comm.bcast(field, root=0)
            damping = 1.0 / (1.0 + float(np.abs(field).mean()) * 1e-6)
            u[1:-1] *= damping
            if stop:
                break

    checksum = yield from comm.allreduce(float(u[1:-1].sum()), MAX)
    return {"iters": iters, "residual": residual,
            "local_sum": float(u[1:-1].sum()), "checksum": checksum}


def run(collectives, label):
    result = run_spmd(6, jacobi_program, topology="hub", seed=4,
                      collectives=collectives)
    wall = result.sim_time_us
    frames = result.stats["frames_sent"]
    returns = result.returns
    print(f"{label:>28}: {wall / 1000.0:8.2f} ms simulated, "
          f"{frames:5d} frames, {returns[0]['iters']} iterations, "
          f"residual {returns[0]['residual']:.2e}")
    return returns, wall, frames


def main() -> None:
    print("1-D Jacobi heat diffusion, 6 ranks x "
          f"{POINTS_PER_RANK} points, hub cluster\n")
    mpich, wall_a, frames_a = run(
        {"bcast": "p2p-binomial", "barrier": "p2p-mpich"},
        "MPICH collectives")
    mcast, wall_b, frames_b = run(
        {"bcast": "mcast-binary", "barrier": "mcast"},
        "multicast collectives")

    # identical numerics, different wires
    for a, b in zip(mpich, mcast):
        assert a["iters"] == b["iters"]
        assert abs(a["local_sum"] - b["local_sum"]) < 1e-9
    print("\nnumerics identical across collective implementations.")
    saved = frames_a - frames_b
    pct = (1 - wall_b / wall_a) * 100
    if saved > 0:
        print(f"multicast saved {saved} frames and {pct:.1f}% of "
              f"simulated time — the global-field broadcasts sit above "
              f"the crossover, where one multicast replaces N-1 copies.")
    else:
        print(f"multicast cost {-saved} extra frames ({-pct:.1f}% more "
              f"time): this run's collectives were all below the "
              f"crossover, where scouts outweigh the saved copies — the "
              f"small-message regime of the paper's Figs. 7-10.")


if __name__ == "__main__":
    main()
