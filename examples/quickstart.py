#!/usr/bin/env python3
"""Quickstart: broadcast over IP multicast vs MPICH, in 40 lines.

Builds a 7-node simulated Fast-Ethernet cluster, broadcasts a 4 kB
payload with the MPICH binomial tree and with the paper's binary-scout
multicast, and prints latency and wire cost for both.

Run:  python examples/quickstart.py
"""

from repro import run_spmd


def make_program(payload_size):
    def main(env):
        # mpi4py-style API; blocking calls use `yield from`.
        data = bytes(payload_size) if env.rank == 0 else None
        t0 = env.now
        data = yield from env.comm.bcast(data, root=0)
        env.log("latency_us", env.now - t0)
        yield from env.comm.barrier()
        return len(data)

    return main


def run(impl: str, payload_size: int = 4000, nprocs: int = 7):
    result = run_spmd(
        nprocs,
        make_program(payload_size),
        topology="hub",              # the paper's shared-Ethernet platform
        seed=42,
        collectives={"bcast": impl, "barrier": "mcast"},
    )
    assert result.returns == [payload_size] * nprocs
    latency = max(r["latency_us"][0] for r in result.records)
    kinds = result.stats["frames_by_kind"]
    return latency, kinds


if __name__ == "__main__":
    print("MPI_Bcast of 4000 bytes to 7 processes over a Fast Ethernet hub")
    print(f"{'implementation':>22} | {'latency':>10} | frames on the wire")
    print("-" * 70)
    for impl in ("p2p-binomial", "mcast-binary", "mcast-linear"):
        latency, kinds = run(impl)
        wire = {k: v for k, v in kinds.items()
                if k in ("p2p", "scout", "mcast-data")}
        print(f"{impl:>22} | {latency:>8.1f}us | {wire}")
    print()
    print("mcast sends ONE copy of the payload plus N-1 empty scouts;")
    print("MPICH sends N-1 full copies — that is the whole paper.")
