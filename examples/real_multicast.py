#!/usr/bin/env python3
"""The paper's protocols on REAL sockets: UDP multicast over loopback.

Runs five rank-threads wired through a genuine 239.x.y.z multicast
group, broadcasts with both scout algorithms and the binomial baseline,
runs both barrier flavours, and finishes with a small allreduce — all on
the actual kernel network stack rather than the simulator.

Skips politely when the environment forbids loopback multicast.

Run:  python examples/real_multicast.py
"""

import sys
import time

from repro.sockets import multicast_available, run_threads


def program(comm):
    results = {}

    # broadcast, all implementations
    for impl in ("binary", "linear", "p2p", "ack"):
        payload = {"impl": impl, "blob": b"x" * 2000} \
            if comm.rank == 0 else None
        t0 = time.perf_counter()
        data = comm.bcast(payload, root=0, impl=impl)
        results[f"bcast-{impl}"] = (data["impl"],
                                    (time.perf_counter() - t0) * 1e6)

    # barrier, both implementations
    for impl in ("mcast", "p2p"):
        t0 = time.perf_counter()
        comm.barrier(impl=impl)
        results[f"barrier-{impl}"] = (time.perf_counter() - t0) * 1e6

    # allreduce over the binomial tree + multicast broadcast
    results["allreduce"] = comm.allreduce(comm.rank + 1,
                                          lambda a, b: a + b)
    return results


def main() -> int:
    if not multicast_available():
        print("loopback UDP multicast unavailable here - skipping demo")
        return 0
    n = 5
    print(f"running {n} rank-threads over a real 239.x multicast group\n")
    all_results = run_threads(n, program)

    print("rank 0 view (wall-clock times are loopback+threads, i.e. NOT")
    print("the paper's performance story - see the simulator for that):")
    for key, value in all_results[0].items():
        print(f"  {key:>16}: {value}")

    total = n * (n + 1) // 2
    assert all(r["allreduce"] == total for r in all_results)
    assert all(r["bcast-binary"][0] == "binary" for r in all_results)
    print(f"\nall {n} ranks agree: allreduce(1..{n}) = {total}")
    print("protocol logic validated against the real network stack")
    return 0


if __name__ == "__main__":
    sys.exit(main())
