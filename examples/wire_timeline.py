#!/usr/bin/env python3
"""Watch the algorithms on the wire.

Records every frame transmission during one 4 kB broadcast to 7
processes and draws a Gantt strip per frame kind, for the MPICH binomial
tree and for the binary-scout multicast.  The paper's Fig. 2 vs Fig. 3
contrast — many payload copies vs a scout wave followed by ONE payload —
appears directly in the wire occupancy.

Run:  python examples/wire_timeline.py
"""

from repro.bench.timeline import ascii_timeline, record_timeline
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_HUB

SIZE = 4000
PROCS = 7
QUIESCE = 50_000.0


def one_bcast(env):
    obj = bytes(SIZE) if env.rank == 0 else None
    # idle until a common tick so MPI-init traffic is out of the picture
    yield env.sim.timeout(max(0.0, QUIESCE - env.sim.now))
    obj = yield from env.comm.bcast(obj, root=0)
    return len(obj)


def main() -> None:
    for impl, label in (("p2p-binomial", "MPICH binomial tree"),
                        ("mcast-binary", "binary-scout multicast")):
        events = record_timeline(
            PROCS, one_bcast, topology="hub",
            params=quiet(FAST_ETHERNET_HUB),
            collectives={"bcast": impl},
            skip_before_us=QUIESCE)
        data_frames = sum(1 for e in events
                          if e.kind in ("p2p", "mcast-data"))
        print(ascii_timeline(
            events, width=70,
            title=f"{label}: bcast {SIZE} B to {PROCS} procs "
                  f"({data_frames} payload-carrying frames)"))
        print()
    print("same payload, same receivers: the multicast wire goes quiet")
    print("after one copy; MPICH keeps serializing copies.")


if __name__ == "__main__":
    main()
