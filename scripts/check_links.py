#!/usr/bin/env python3
"""Markdown link checker for the docs gate (``make docs-check``).

Walks the Markdown files/directories given on the command line,
extracts inline links (``[text](target)``), and verifies every
*relative* target resolves to an existing file or directory (anchors
are stripped; ``http(s)://`` and ``mailto:`` targets are only
format-checked, never fetched — CI must not depend on the network).

Exit status: 0 when every link resolves, 1 otherwise (each broken link
is reported on stderr).
"""

from __future__ import annotations

import pathlib
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def iter_markdown(paths: list[str]):
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        elif path.suffix == ".md":
            yield path


def check_file(path: pathlib.Path) -> list[str]:
    errors = []
    text = path.read_text()
    # fenced code blocks may hold example markdown — skip them
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = (path.parent / rel).resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_links.py <file-or-dir>...", file=sys.stderr)
        return 2
    errors = []
    checked = 0
    for md in iter_markdown(argv):
        checked += 1
        errors.extend(check_file(md))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {checked} markdown file(s), "
          f"{len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
