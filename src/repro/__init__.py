"""repro — reproduction of *MPI Collective Operations over IP Multicast*
(H. A. Chen, Y. O. Carrasco, A. W. Apon; IPPS 2000).

The package rebuilds the paper's whole experimental stack in Python:

* :mod:`repro.simnet` — a discrete-event Fast-Ethernet substrate
  (CSMA/CD hub, store-and-forward switch with IGMP snooping, UDP/IP with
  receiver-readiness semantics);
* :mod:`repro.mpi` — an MPI-1 subset with MPICH-style point-to-point and
  baseline collectives (binomial broadcast, 3-phase barrier, ...);
* :mod:`repro.core` — **the contribution**: broadcast and barrier over IP
  multicast with binary-tree / linear scout synchronization, plus naive,
  ack-retransmit (PVM-style) and sequencer (Orca-style) baselines;
* :mod:`repro.runtime` — an mpiexec-like SPMD launcher;
* :mod:`repro.sockets` — the same collective algorithms over *real* UDP
  multicast sockets (loopback), for functional validation;
* :mod:`repro.bench` / :mod:`repro.analysis` — the harness that
  regenerates every figure in the paper, and the closed-form models it is
  checked against.

Quickstart::

    from repro import run_spmd

    def main(env):
        data = {"hello": "world"} if env.rank == 0 else None
        data = yield from env.comm.bcast(data, root=0)
        return data

    result = run_spmd(9, main, topology="hub",
                      collectives={"bcast": "mcast-binary"})
    print(result.returns, f"{result.sim_time_us:.0f} µs")
"""

from . import core  # noqa: F401  (registers multicast collectives)
from .runtime import (FixedSkew, NoSkew, RankEnv, RunResult, UniformSkew,
                      run_spmd)

__version__ = "1.0.0"

__all__ = ["FixedSkew", "NoSkew", "RankEnv", "RunResult", "UniformSkew",
           "run_spmd", "__version__"]
