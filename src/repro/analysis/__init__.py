"""``repro.analysis`` — closed-form models the simulator is checked against."""

from .framecount import (mcast_bcast_total_frames, model_mcast_bcast_frames,
                         model_mpich_bcast_frames,
                         paper_frames_per_message, paper_mcast_barrier_messages,
                         paper_mcast_bcast_frames,
                         paper_mpich_barrier_messages,
                         paper_mpich_bcast_frames)
from .latency import LatencyModel, PointEstimate

__all__ = [
    "LatencyModel", "PointEstimate", "mcast_bcast_total_frames",
    "model_mcast_bcast_frames", "model_mpich_bcast_frames",
    "paper_frames_per_message", "paper_mcast_barrier_messages",
    "paper_mcast_bcast_frames", "paper_mpich_barrier_messages",
    "paper_mpich_bcast_frames",
]
