"""Analytic fluid backend: answer sweep cases without running the DES.

The closed-form frame models of :mod:`repro.analysis.framecount` are
*asserted equal* to the simulator's counters by the bench postconditions
(``deep_post_flat_models``, ``fab_post_trunk_models``, ...).  Where a
model is exact, running the discrete-event simulator to obtain the same
integer is pure wall-clock cost — thousands of scheduled events to
reproduce a number the model computes in microseconds.  This module is
the dispatch layer that decides *when the model may stand in for the
simulator* and computes the answer:

* **eligibility** is keyed off :data:`~repro.analysis.framecount.
  MODEL_COVERAGE` — only (op, impl) pairs whose ledger entry names a
  closed-form model (not an ``"estimate: ..."`` marker) qualify, minus
  the ``hier-mcast`` ops whose :func:`~repro.analysis.framecount.
  model_hier_frames` walk is documented estimate-grade
  (:data:`HIER_EXACT_OPS` keeps bcast/reduce/allreduce, drops
  scatter/gather/allgather), and only at ``loss == 0`` — repair
  traffic is stochastic, the DES owns it;
* **answers** are per-call trunk serializations
  (:func:`trunk_frames_per_call`) — the steady-state metric the
  fabric-scaling and deep-fabric sweep areas persist — computed by the
  very model functions the postconditions assert against, so a fluid
  answer and a DES measurement cannot disagree without the gate
  noticing;
* **cross-check** — ``tests/test_fluid.py`` re-runs the DES for every
  gate-scale case the backend answers and asserts exact equality, so
  the shortcut never silently drifts from the machine it models.

Latency is deliberately *not* answered: :class:`~repro.analysis.
latency.LatencyModel` is validated within a tolerance, not exactly, and
only on single-tier platforms — estimate-grade numbers must come from
the simulator (or stay advisory).  The sweep runner consults this
module only for exact integer frame metrics; everything else still runs
the DES.  Setting ``REPRO_FLUID=0`` in the environment forces the
sweep areas to run the DES even for eligible cases.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..core.segment import plan_transport
from ..simnet.calibration import NetParams
from .framecount import (MODEL_COVERAGE, model_hier_frames,
                         model_seg_bcast_trunk_frames,
                         model_seg_reduce_trunk_frames,
                         model_seg_scatter_trunk_frames)

__all__ = ["HIER_EXACT_OPS", "exact_model", "answers",
           "trunk_frames_per_call"]

#: ``model_hier_frames`` ops whose loss-free walk is exact (every phase
#: streams the same payload); scatter/gather/allgather approximate
#: bundle envelopes and stay estimate-grade (see its docstring).
HIER_EXACT_OPS = frozenset({"bcast", "reduce", "allreduce"})


def exact_model(op: str, impl: str) -> bool:
    """True iff the (op, impl) frame model is exact per the coverage
    ledger: the entry names a closed form (no ``"estimate:"`` marker)
    and, for ``hier-mcast``, the op is in :data:`HIER_EXACT_OPS`."""
    entry = MODEL_COVERAGE.get((op, impl))
    if entry is None or entry.startswith("estimate:"):
        return False
    if impl == "hier-mcast" and op not in HIER_EXACT_OPS:
        return False
    return True


def _share_nsegs(size: int, n: int, params: NetParams) -> int:
    """Segments of one rank's ``size // n`` share (the deep-fabric
    benches hand every rank an equal ``bytes(size // n)`` element)."""
    return plan_transport(size // n, params).nsegs


def _trunk_seg_bcast(seg_of, root, size, params, paths):
    nsegs = plan_transport(size, params).nsegs
    return model_seg_bcast_trunk_frames(seg_of, root, nsegs, paths)


def _trunk_seg_reduce(seg_of, root, size, params, paths):
    nsegs = plan_transport(size, params).nsegs
    return model_seg_reduce_trunk_frames(seg_of, root, nsegs, paths)


def _trunk_seg_scatter(seg_of, root, size, params, paths):
    n = len(seg_of)
    share = _share_nsegs(size, n, params)
    return model_seg_scatter_trunk_frames(seg_of, root, (n - 1) * share,
                                          paths)


def _trunk_seg_gather(seg_of, root, size, params, paths):
    share = _share_nsegs(size, len(seg_of), params)
    return model_seg_reduce_trunk_frames(seg_of, root, share, paths)


def _trunk_hier(op: str):
    def model(seg_of, root, size, params, paths):
        _frames, trunk = model_hier_frames(op, seg_of, root, size,
                                           params, paths)
        return int(round(trunk))
    return model


#: (op, impl) -> per-call trunk-serialization model.  ``size`` is the
#: collective's benched payload size; per-rank shares (``size // n``
#: for scatter/gather) are derived inside, matching the sweep bodies.
#: p2p-binomial is absent although its *total-frame* ledger entry is
#: exact: ``model_p2p_tree_trunk_frames`` omits the rendezvous sync
#: traffic's trunk crossings (it is a policy cost estimate), so the
#: DES keeps those cases.
_TRUNK_MODELS: dict[tuple[str, str], Callable] = {
    ("bcast", "mcast-seg-nack"): _trunk_seg_bcast,
    ("reduce", "mcast-seg-combine"): _trunk_seg_reduce,
    ("scatter", "mcast-seg-root"): _trunk_seg_scatter,
    ("gather", "mcast-seg-root-follow"): _trunk_seg_gather,
    ("bcast", "hier-mcast"): _trunk_hier("bcast"),
    ("reduce", "hier-mcast"): _trunk_hier("reduce"),
    ("allreduce", "hier-mcast"): _trunk_hier("allreduce"),
}


def answers(op: str, impl: str, params: NetParams) -> bool:
    """True iff the backend may answer (op, impl) on ``params``: the
    frame model is exact, a trunk model is wired, and the platform is
    loss-free (repair traffic is stochastic — DES territory)."""
    if params.loss > 0.0:
        return False
    return exact_model(op, impl) and (op, impl) in _TRUNK_MODELS


def trunk_frames_per_call(op: str, impl: str,
                          seg_of_rank: Sequence[int], root: int,
                          size: int, params: NetParams,
                          paths=None) -> Optional[int]:
    """Exact per-call trunk serializations of one collective, or
    ``None`` when the model may not stand in for the simulator.

    ``seg_of_rank`` / ``paths`` describe the fabric exactly as the
    sweep areas do (:data:`~repro.bench.sweep_areas.DEEP_FABRICS`);
    ``size`` is the benched payload size.  The returned value is what
    ``NetStats.frames_trunk`` grows by per steady-state call — the
    quantity the trunk sweep families measure by differencing a two-op
    and a one-op run.
    """
    if not answers(op, impl, params):
        return None
    model = _TRUNK_MODELS[(op, impl)]
    return int(model(tuple(seg_of_rank), root, size, params, paths))
