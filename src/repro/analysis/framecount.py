"""Closed-form frame/message counts (paper §3) and their exact
header-aware counterparts.

The paper states costs with the idealized ``floor(M/T)+1`` fragment model
(M = message bytes, T = frame capacity).  Our stack additionally carries
protocol headers (the MPI envelope on p2p messages; the 8-byte multicast
envelope), so this module offers both:

* ``paper_*``  — the formulas exactly as printed, for documentation and
  asymptotic checks;
* ``model_*``  — header-aware counts that must match the simulator's
  frame counters *exactly* (asserted in tests and the frame-count bench).
"""

from __future__ import annotations

from ..core.channel import MCAST_HEADER_BYTES
from ..mpi.collective.barrier_p2p import largest_power_of_two_leq
from ..simnet.calibration import NetParams

__all__ = [
    "paper_frames_per_message", "paper_mpich_bcast_frames",
    "paper_mcast_bcast_frames", "paper_mpich_barrier_messages",
    "paper_mcast_barrier_messages", "model_mpich_bcast_frames",
    "model_mcast_bcast_frames", "mcast_bcast_total_frames",
    "model_p2p_tree_frames", "model_seg_reduce_frames",
    "model_seg_allreduce_frames", "model_seg_scatter_frames",
]


def paper_frames_per_message(m: int, t: int = 1500) -> int:
    """The paper's ``floor(M/T) + 1`` frames for an M-byte message."""
    if m < 0:
        raise ValueError(f"message size must be >= 0, got {m}")
    if t <= 0:
        raise ValueError(f"frame size must be > 0, got {t}")
    return m // t + 1


def paper_mpich_bcast_frames(n: int, m: int, t: int = 1500) -> int:
    """MPICH broadcast: ``(floor(M/T)+1) * (N-1)`` network frames."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return paper_frames_per_message(m, t) * (n - 1)


def paper_mcast_bcast_frames(n: int, m: int, t: int = 1500) -> int:
    """Multicast broadcast: ``(N-1)`` scouts ``+ floor(M/T)+1`` data."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return 0
    return (n - 1) + paper_frames_per_message(m, t)


def paper_mpich_barrier_messages(n: int) -> int:
    """``2(N-K) + K log2 K`` point-to-point messages (paper §3.2)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    k = largest_power_of_two_leq(n)
    return 2 * (n - k) + k * (k.bit_length() - 1)


def paper_mcast_barrier_messages(n: int) -> tuple[int, int]:
    """``(N-1)`` unicast scouts + one multicast release."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return (0, 0)
    return (n - 1, 1)


# ---------------------------------------------------------------------------
# header-aware counts that match the simulator exactly
# ---------------------------------------------------------------------------
def model_mpich_bcast_frames(params: NetParams, n: int, m: int) -> int:
    """Exact frames for the binomial broadcast over our p2p engine."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return params.frames_for(m + params.mpi_header) * (n - 1)


def model_mcast_bcast_frames(params: NetParams, n: int,
                             m: int) -> tuple[int, int]:
    """Exact (scout, data) frames for the scouted multicast broadcast."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return (0, 0)
    scouts = n - 1
    data = params.frames_for(m + MCAST_HEADER_BYTES)
    return (scouts, data)


def mcast_bcast_total_frames(params: NetParams, n: int, m: int) -> int:
    scouts, data = model_mcast_bcast_frames(params, n, m)
    return scouts + data


# ---------------------------------------------------------------------------
# reduction-side collectives (PR 3: segmented reduce/scatter/allreduce)
# ---------------------------------------------------------------------------
def model_p2p_tree_frames(params: NetParams, n: int, m: int) -> int:
    """Exact frames of a binomial tree moving the whole payload across
    every edge once — the p2p reduce (and gather) payload cost."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return params.frames_for(m + params.mpi_header) * (n - 1)


def model_seg_reduce_frames(n: int, nsegs: int) -> int:
    """Loss-free frames of ``mcast-seg-combine``: one engine stream per
    non-root contributor, each exactly the broadcast round structure
    (:func:`~repro.core.segment.seg_nack_frame_count`)."""
    from ..core.segment import seg_nack_frame_count

    if n < 2:
        return 0
    return (n - 1) * seg_nack_frame_count(n, nsegs)


def model_seg_allreduce_frames(n: int, nsegs: int) -> int:
    """Loss-free frames of the segmented allreduce: the mcast reduce
    plus one segmented broadcast of the result."""
    from ..core.segment import seg_nack_frame_count

    if n < 2:
        return 0
    return model_seg_reduce_frames(n, nsegs) + seg_nack_frame_count(
        n, nsegs)


def model_seg_scatter_frames(n: int, seg_counts) -> int:
    """Loss-free frames of ``mcast-seg-root``: one engine stream over
    the concatenation of every non-root rank's fragments
    (``seg_counts`` lists the per-rank segment counts, root's 0)."""
    from ..core.segment import seg_nack_frame_count

    if n < 2:
        return 0
    return seg_nack_frame_count(n, sum(seg_counts))
