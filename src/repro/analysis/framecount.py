"""Closed-form frame/message counts (paper §3) and their exact
header-aware counterparts.

The paper states costs with the idealized ``floor(M/T)+1`` fragment model
(M = message bytes, T = frame capacity).  Our stack additionally carries
protocol headers (the MPI envelope on p2p messages; the 8-byte multicast
envelope), so this module offers both:

* ``paper_*``  — the formulas exactly as printed, for documentation and
  asymptotic checks;
* ``model_*``  — header-aware counts that must match the simulator's
  frame counters *exactly* (asserted in tests and the frame-count bench).
"""

from __future__ import annotations

from ..core.channel import MCAST_HEADER_BYTES
from ..mpi.collective.barrier_p2p import largest_power_of_two_leq
from ..simnet.calibration import NetParams

__all__ = [
    "paper_frames_per_message", "paper_mpich_bcast_frames",
    "paper_mcast_bcast_frames", "paper_mpich_barrier_messages",
    "paper_mcast_barrier_messages", "model_mpich_bcast_frames",
    "model_mcast_bcast_frames", "mcast_bcast_total_frames",
    "model_p2p_tree_frames", "model_seg_reduce_frames",
    "model_seg_allreduce_frames", "model_seg_scatter_frames",
    "expected_seg_repair_frames", "binomial_cross_edges",
    "model_p2p_tree_trunk_frames", "model_seg_bcast_trunk_frames",
    "model_seg_reduce_trunk_frames", "model_hier_bcast_frames",
    "model_hier_reduce_frames",
]


def paper_frames_per_message(m: int, t: int = 1500) -> int:
    """The paper's ``floor(M/T) + 1`` frames for an M-byte message."""
    if m < 0:
        raise ValueError(f"message size must be >= 0, got {m}")
    if t <= 0:
        raise ValueError(f"frame size must be > 0, got {t}")
    return m // t + 1


def paper_mpich_bcast_frames(n: int, m: int, t: int = 1500) -> int:
    """MPICH broadcast: ``(floor(M/T)+1) * (N-1)`` network frames."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return paper_frames_per_message(m, t) * (n - 1)


def paper_mcast_bcast_frames(n: int, m: int, t: int = 1500) -> int:
    """Multicast broadcast: ``(N-1)`` scouts ``+ floor(M/T)+1`` data."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return 0
    return (n - 1) + paper_frames_per_message(m, t)


def paper_mpich_barrier_messages(n: int) -> int:
    """``2(N-K) + K log2 K`` point-to-point messages (paper §3.2)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    k = largest_power_of_two_leq(n)
    return 2 * (n - k) + k * (k.bit_length() - 1)


def paper_mcast_barrier_messages(n: int) -> tuple[int, int]:
    """``(N-1)`` unicast scouts + one multicast release."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return (0, 0)
    return (n - 1, 1)


# ---------------------------------------------------------------------------
# header-aware counts that match the simulator exactly
# ---------------------------------------------------------------------------
def model_mpich_bcast_frames(params: NetParams, n: int, m: int) -> int:
    """Exact frames for the binomial broadcast over our p2p engine."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return params.frames_for(m + params.mpi_header) * (n - 1)


def model_mcast_bcast_frames(params: NetParams, n: int,
                             m: int) -> tuple[int, int]:
    """Exact (scout, data) frames for the scouted multicast broadcast."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return (0, 0)
    scouts = n - 1
    data = params.frames_for(m + MCAST_HEADER_BYTES)
    return (scouts, data)


def mcast_bcast_total_frames(params: NetParams, n: int, m: int) -> int:
    scouts, data = model_mcast_bcast_frames(params, n, m)
    return scouts + data


# ---------------------------------------------------------------------------
# reduction-side collectives (PR 3: segmented reduce/scatter/allreduce)
# ---------------------------------------------------------------------------
def model_p2p_tree_frames(params: NetParams, n: int, m: int) -> int:
    """Exact frames of a binomial tree moving the whole payload across
    every edge once — the p2p reduce (and gather) payload cost."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return params.frames_for(m + params.mpi_header) * (n - 1)


def model_seg_reduce_frames(n: int, nsegs: int) -> int:
    """Loss-free frames of ``mcast-seg-combine``: one engine stream per
    non-root contributor, each exactly the broadcast round structure
    (:func:`~repro.core.segment.seg_nack_frame_count`)."""
    from ..core.segment import seg_nack_frame_count

    if n < 2:
        return 0
    return (n - 1) * seg_nack_frame_count(n, nsegs)


def model_seg_allreduce_frames(n: int, nsegs: int) -> int:
    """Loss-free frames of the segmented allreduce: the mcast reduce
    plus one segmented broadcast of the result."""
    from ..core.segment import seg_nack_frame_count

    if n < 2:
        return 0
    return model_seg_reduce_frames(n, nsegs) + seg_nack_frame_count(
        n, nsegs)


def model_seg_scatter_frames(n: int, seg_counts) -> int:
    """Loss-free frames of ``mcast-seg-root``: one engine stream over
    the concatenation of every non-root rank's fragments
    (``seg_counts`` lists the per-rank segment counts, root's 0)."""
    from ..core.segment import seg_nack_frame_count

    if n < 2:
        return 0
    return seg_nack_frame_count(n, sum(seg_counts))


# ---------------------------------------------------------------------------
# loss expectation (PR 4: fold NetParams.loss into the auto estimates)
# ---------------------------------------------------------------------------
def expected_seg_repair_frames(n: int, nsegs: int, loss: float,
                               max_rounds: int = 8) -> float:
    """Expected extra frames of one engine stream's NACK repair loop at
    per-round data-frame loss probability ``loss``.

    Repair round ``r`` re-multicasts about ``S * loss**r`` segments (the
    survivors of round r-1's losses) and pays the per-round control
    sweep — arming scouts, reports, decisions: ``3(N-1)`` frames.  The
    sum runs while a round is still *expected* to happen (at least half
    a segment outstanding), so a lossless stream costs nothing and a
    10%-lossy 100-segment stream adds roughly one repair round of ~10
    segments plus control.  This is the term the auto policy adds to
    every segmented-multicast estimate; the p2p trees ride the
    simulator's reliable unicast path and carry no such term.
    """
    if n < 2 or nsegs < 1 or loss <= 0.0:
        return 0.0
    loss = min(loss, 0.99)
    extra = 0.0
    expect = nsegs * loss
    rounds = 0
    while expect >= 0.5 and rounds < max_rounds:
        extra += expect + 3 * (n - 1)
        expect *= loss
        rounds += 1
    return extra


# ---------------------------------------------------------------------------
# tiered-fabric trunk accounting (PR 4: multi-segment topologies)
# ---------------------------------------------------------------------------
# The models below count *trunk serializations* — every time a frame is
# re-serialized on a switch-to-switch link of a two-tier fabric
# (``NetStats.frames_trunk``).  A multicast frame that must reach every
# one of K occupied segments crosses K trunks (one up from the sender's
# leaf, K-1 down); a unicast between different segments crosses 2.
# One-time channel-setup IGMP traffic is excluded: these are per-call,
# steady-state counts, and the benches compare snapshots around a single
# collective.

def binomial_cross_edges(seg_of_rank, root: int) -> int:
    """Edges of the binomial gather/broadcast tree rooted at ``root``
    whose endpoints sit in different segments (``seg_of_rank`` maps each
    communicator rank to its segment id)."""
    size = len(seg_of_rank)
    cross = 0
    for rel in range(1, size):
        mask = 1
        while not rel & mask:
            mask <<= 1
        parent_rel = rel & ~mask
        child = (rel + root) % size
        parent = (parent_rel + root) % size
        if seg_of_rank[child] != seg_of_rank[parent]:
            cross += 1
    return cross


def model_p2p_tree_trunk_frames(params: NetParams, seg_of_rank,
                                root: int, m: int) -> int:
    """Trunk serializations of a binomial tree moving an ``m``-byte
    payload across every edge once (p2p bcast/reduce): each
    cross-segment edge pays two trunk hops per payload frame."""
    per_msg = params.frames_for(m + params.mpi_header)
    return 2 * binomial_cross_edges(seg_of_rank, root) * per_msg


def _mcast_stream_trunk_frames(seg_of_rank, root: int,
                               nsegs: int) -> int:
    """Trunk serializations of ONE loss-free engine stream (header +
    ``nsegs`` data frames + one round of control) rooted at ``root`` on
    a fabric: data crosses every occupied segment's trunk once, the two
    scout gathers pay their cross edges, and each remote receiver's
    report and decision pay a round trip."""
    k = len(set(seg_of_rank))
    if k <= 1:
        return 0
    remote = sum(1 for s in seg_of_rank if s != seg_of_rank[root])
    cross = binomial_cross_edges(seg_of_rank, root)
    return ((1 + nsegs) * k     # header + data, once per occupied segment
            + 2 * (2 * cross)   # header-phase + arming scout gathers
            + 2 * (2 * remote))  # reports + decisions, root round trips


def model_seg_bcast_trunk_frames(seg_of_rank, root: int,
                                 nsegs: int) -> int:
    """Loss-free trunk serializations of the flat ``mcast-seg-nack``
    broadcast on a tiered fabric (exact; asserted by
    ``benchmarks/bench_fabric_scaling.py``)."""
    return _mcast_stream_trunk_frames(seg_of_rank, root, nsegs)


def model_seg_reduce_trunk_frames(seg_of_rank, root: int,
                                  nsegs: int) -> int:
    """Loss-free trunk serializations of the flat ``mcast-seg-combine``
    reduce: one engine stream per non-root contributor, each rooted at
    its turn's sender (every stream's data still crosses every occupied
    trunk — all members joined the group)."""
    size = len(seg_of_rank)
    return sum(_mcast_stream_trunk_frames(seg_of_rank, turn, nsegs)
               for turn in range(size) if turn != root)


def _hier_phases(seg_sizes, root_seg: int):
    """(intra-root-segment size, leader count, other segment sizes)."""
    k = len(seg_sizes)
    others = [sz for s, sz in enumerate(seg_sizes) if s != root_seg]
    return seg_sizes[root_seg], k, others


def model_hier_bcast_frames(seg_sizes, root_seg: int,
                            nsegs: int) -> tuple[int, int]:
    """Loss-free (host frames, trunk serializations) of the
    ``hier-mcast`` broadcast: root's segment stream + the leaders'
    stream + one stream per other segment.  Only the leaders' phase
    touches the trunks: K leaders occupy K distinct segments, so its
    data crosses K trunks per frame and its control is K-1 leader round
    trips (exact; asserted by the fabric bench)."""
    from ..core.segment import seg_nack_frame_count

    root_sz, k, others = _hier_phases(seg_sizes, root_seg)
    frames = (seg_nack_frame_count(root_sz, nsegs)
              + seg_nack_frame_count(k, nsegs)
              + sum(seg_nack_frame_count(sz, nsegs) for sz in others))
    # leaders phase: one stream over K leaders, one per distinct segment
    trunk = _mcast_stream_trunk_frames(tuple(range(k)), 0, nsegs)
    return frames, trunk


def model_hier_reduce_frames(seg_sizes, root_seg: int,
                             nsegs: int) -> tuple[int, int]:
    """Loss-free (host frames, trunk serializations) of the
    ``hier-mcast`` reduce: per-segment reduces to the leaders, then a
    leaders' reduce across the trunk (K-1 contributor streams, each
    crossing every trunk)."""
    root_sz, k, others = _hier_phases(seg_sizes, root_seg)
    frames = (model_seg_reduce_frames(root_sz, nsegs)
              + model_seg_reduce_frames(k, nsegs)
              + sum(model_seg_reduce_frames(sz, nsegs) for sz in others))
    # leaders phase: K-1 contributor streams over the K leaders
    trunk = (k - 1) * _mcast_stream_trunk_frames(tuple(range(k)), 0,
                                                 nsegs)
    return frames, trunk
