"""Closed-form frame/message counts (paper §3) and their exact
header-aware counterparts.

The paper states costs with the idealized ``floor(M/T)+1`` fragment model
(M = message bytes, T = frame capacity).  Our stack additionally carries
protocol headers (the MPI envelope on p2p messages; the 8-byte multicast
envelope), so this module offers both:

* ``paper_*``  — the formulas exactly as printed, for documentation and
  asymptotic checks;
* ``model_*``  — header-aware counts that must match the simulator's
  frame counters *exactly* (asserted in tests and the frame-count bench).
"""

from __future__ import annotations

from ..core.channel import MCAST_HEADER_BYTES
from ..mpi.collective.barrier_p2p import largest_power_of_two_leq
from ..simnet.calibration import NetParams

__all__ = [
    "paper_frames_per_message", "paper_mpich_bcast_frames",
    "paper_mcast_bcast_frames", "paper_mpich_barrier_messages",
    "paper_mcast_barrier_messages", "model_mpich_bcast_frames",
    "model_mcast_bcast_frames", "mcast_bcast_total_frames",
    "model_p2p_tree_frames", "model_seg_reduce_frames",
    "model_seg_allreduce_frames", "model_seg_scatter_frames",
    "expected_seg_repair_frames", "binomial_cross_edges",
    "binomial_tree_trunk_hops", "multicast_trunk_edges",
    "model_p2p_tree_trunk_frames", "model_seg_bcast_trunk_frames",
    "model_seg_reduce_trunk_frames", "model_seg_scatter_trunk_frames",
    "model_seg_allgather_trunk_frames", "model_hier_frames",
    "MODEL_COVERAGE",
]


def paper_frames_per_message(m: int, t: int = 1500) -> int:
    """The paper's ``floor(M/T) + 1`` frames for an M-byte message."""
    if m < 0:
        raise ValueError(f"message size must be >= 0, got {m}")
    if t <= 0:
        raise ValueError(f"frame size must be > 0, got {t}")
    return m // t + 1


def paper_mpich_bcast_frames(n: int, m: int, t: int = 1500) -> int:
    """MPICH broadcast: ``(floor(M/T)+1) * (N-1)`` network frames."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return paper_frames_per_message(m, t) * (n - 1)


def paper_mcast_bcast_frames(n: int, m: int, t: int = 1500) -> int:
    """Multicast broadcast: ``(N-1)`` scouts ``+ floor(M/T)+1`` data."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return 0
    return (n - 1) + paper_frames_per_message(m, t)


def paper_mpich_barrier_messages(n: int) -> int:
    """``2(N-K) + K log2 K`` point-to-point messages (paper §3.2)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    k = largest_power_of_two_leq(n)
    return 2 * (n - k) + k * (k.bit_length() - 1)


def paper_mcast_barrier_messages(n: int) -> tuple[int, int]:
    """``(N-1)`` unicast scouts + one multicast release."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return (0, 0)
    return (n - 1, 1)


# ---------------------------------------------------------------------------
# header-aware counts that match the simulator exactly
# ---------------------------------------------------------------------------
def model_mpich_bcast_frames(params: NetParams, n: int, m: int) -> int:
    """Exact frames for the binomial broadcast over our p2p engine."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return params.frames_for(m + params.mpi_header) * (n - 1)


def model_mcast_bcast_frames(params: NetParams, n: int,
                             m: int) -> tuple[int, int]:
    """Exact (scout, data) frames for the scouted multicast broadcast."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return (0, 0)
    scouts = n - 1
    data = params.frames_for(m + MCAST_HEADER_BYTES)
    return (scouts, data)


def mcast_bcast_total_frames(params: NetParams, n: int, m: int) -> int:
    scouts, data = model_mcast_bcast_frames(params, n, m)
    return scouts + data


# ---------------------------------------------------------------------------
# reduction-side collectives (PR 3: segmented reduce/scatter/allreduce)
# ---------------------------------------------------------------------------
def model_p2p_tree_frames(params: NetParams, n: int, m: int) -> int:
    """Exact frames of a binomial tree moving the whole payload across
    every edge once — the p2p reduce (and gather) payload cost."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return params.frames_for(m + params.mpi_header) * (n - 1)


def model_seg_reduce_frames(n: int, nsegs: int) -> int:
    """Loss-free frames of ``mcast-seg-combine``: one engine stream per
    non-root contributor, each exactly the broadcast round structure
    (:func:`~repro.core.segment.seg_nack_frame_count`)."""
    from ..core.segment import seg_nack_frame_count

    if n < 2:
        return 0
    return (n - 1) * seg_nack_frame_count(n, nsegs)


def model_seg_allreduce_frames(n: int, nsegs: int) -> int:
    """Loss-free frames of the segmented allreduce: the mcast reduce
    plus one segmented broadcast of the result."""
    from ..core.segment import seg_nack_frame_count

    if n < 2:
        return 0
    return model_seg_reduce_frames(n, nsegs) + seg_nack_frame_count(
        n, nsegs)


def model_seg_scatter_frames(n: int, seg_counts) -> int:
    """Loss-free frames of ``mcast-seg-root``: one engine stream over
    the concatenation of every non-root rank's fragments
    (``seg_counts`` lists the per-rank segment counts, root's 0)."""
    from ..core.segment import seg_nack_frame_count

    if n < 2:
        return 0
    return seg_nack_frame_count(n, sum(seg_counts))


# ---------------------------------------------------------------------------
# loss expectation (PR 4: fold NetParams.loss into the auto estimates)
# ---------------------------------------------------------------------------
def expected_seg_repair_frames(n: int, nsegs: int, loss: float,
                               max_rounds: int = 8,
                               receivers: "int | None" = None) -> float:
    """Expected extra frames of one engine stream's NACK repair loop at
    per-receiver data-frame loss probability ``loss``.

    The root repairs the **union** of its receivers' missing sets.  A
    given receiver is still missing a given segment after ``r``
    transmissions (the original plus ``r - 1`` repairs) with
    probability exactly ``loss**r`` — every transmission is an
    independent Bernoulli drop, and the engine re-batches each round's
    repair plan into one multicast re-send of the union, so the number
    of *frames* a segment costs in round ``r`` does not depend on how
    many receivers missed it.  With ``R`` receivers a segment therefore
    lands in round ``r``'s plan with probability
    ``1 - (1 - loss**r)**R`` (~ ``R * loss**r`` for small loss), and
    round ``r`` adds that expected segment count plus the per-round
    control sweep (arming scouts, reports, decisions: ``3(N-1)``
    frames).  An earlier version of this model compounded the
    *union* probability geometrically (``u**r`` with
    ``u = 1-(1-loss)**R``), which overestimates late rounds badly —
    round 2 by ~5x at n=8, loss=0.05 — because the union is over
    per-receiver misses that each thin out as ``loss**r``;
    ``benchmarks/bench_segmented_bcast.py::check_repair_model_band``
    pins the tightened accuracy and ``benchmarks/bench_deep_fabric.py``
    closes the loop on a tiered fabric.

    ``receivers`` defaults to ``n - 1`` (the broadcast case: every
    non-root posts for the data); streams with a single consuming
    receiver — the reduce/gather turn loops, where bystanders post
    nothing and report empty — pass ``receivers=1``.  The sum runs
    while a round is still *expected* to happen (at least half a
    segment outstanding), so a lossless stream costs nothing.  This is
    the term the auto policy adds to every segmented-multicast
    estimate; the p2p trees ride the simulator's reliable unicast path
    and carry no such term.
    """
    if n < 2 or nsegs < 1 or loss <= 0.0:
        return 0.0
    if receivers is None:
        receivers = n - 1
    receivers = max(receivers, 1)
    p = min(loss, 0.99)
    extra = 0.0
    for r in range(1, max_rounds + 1):
        expect = nsegs * (1.0 - (1.0 - p ** r) ** receivers)
        if expect < 0.5:
            break
        extra += expect + 3 * (n - 1)
    return extra


# ---------------------------------------------------------------------------
# tiered-fabric trunk accounting (PR 4 two-tier; PR 5 recursive trees)
# ---------------------------------------------------------------------------
# The models below count *trunk serializations* — every time a frame is
# re-serialized on a switch-to-switch link of a tiered fabric
# (``NetStats.frames_trunk``).  ``paths`` maps each dense segment id to
# its switch-tree path (:meth:`~repro.simnet.topology.Cluster.
# segment_path`); ``None`` keeps PR 4's two-tier geometry, where every
# segment hangs directly off the core: a multicast frame reaching K
# occupied segments crosses K trunks, a cross-segment unicast crosses 2.
# On deeper trees a multicast frame crosses every edge of the switch
# subtree spanning the interested segments once, and a unicast pays the
# up-over-down path between its endpoints' leaves.  One-time
# channel-setup IGMP traffic is excluded: these are per-call,
# steady-state counts, and the benches compare snapshots around a single
# collective.

def _seg_paths(seg_of_rank, paths):
    """Resolve ``paths`` (two-tier default: segment s at path (s,))."""
    if paths is not None:
        return paths
    return tuple((s,) for s in range(max(seg_of_rank) + 1))


def multicast_trunk_edges(root_seg: int, segs, paths) -> int:
    """Trunk edges a multicast frame from ``root_seg`` serializes on to
    reach every segment in ``segs``: the edges of the switch subtree
    spanning the union of root-to-segment paths (K on a two-tier
    fabric with K occupied segments, if any is remote)."""
    edges: set[tuple] = set()
    pa = paths[root_seg]
    for seg in set(segs):
        if seg == root_seg:
            continue
        pb = paths[seg]
        common = 0
        for a, b in zip(pa, pb):
            if a != b:
                break
            common += 1
        for i in range(common + 1, len(pa) + 1):
            edges.add(pa[:i])
        for i in range(common + 1, len(pb) + 1):
            edges.add(pb[:i])
    return len(edges)


def binomial_cross_edges(seg_of_rank, root: int) -> int:
    """Edges of the binomial gather/broadcast tree rooted at ``root``
    whose endpoints sit in different segments (``seg_of_rank`` maps each
    communicator rank to its segment id)."""
    size = len(seg_of_rank)
    cross = 0
    for rel in range(1, size):
        mask = 1
        while not rel & mask:
            mask <<= 1
        parent_rel = rel & ~mask
        child = (rel + root) % size
        parent = (parent_rel + root) % size
        if seg_of_rank[child] != seg_of_rank[parent]:
            cross += 1
    return cross


def binomial_tree_trunk_hops(seg_of_rank, root: int,
                             paths=None) -> int:
    """Total trunk hops of the binomial tree's edges rooted at
    ``root``: each edge pays the switch-tree distance between its
    endpoints' segments (2 per cross edge on a two-tier fabric —
    the generalization of :func:`binomial_cross_edges`)."""
    from ..simnet.fabric import path_trunk_hops

    paths = _seg_paths(seg_of_rank, paths)
    size = len(seg_of_rank)
    total = 0
    for rel in range(1, size):
        mask = 1
        while not rel & mask:
            mask <<= 1
        parent_rel = rel & ~mask
        child = (rel + root) % size
        parent = (parent_rel + root) % size
        total += path_trunk_hops(paths[seg_of_rank[child]],
                                 paths[seg_of_rank[parent]])
    return total


def model_p2p_tree_trunk_frames(params: NetParams, seg_of_rank,
                                root: int, m: int, paths=None) -> int:
    """Trunk serializations of a binomial tree moving an ``m``-byte
    payload across every edge once (p2p bcast/reduce): each
    cross-segment edge pays its trunk-path hops per payload frame."""
    per_msg = params.frames_for(m + params.mpi_header)
    return binomial_tree_trunk_hops(seg_of_rank, root, paths) * per_msg


def _mcast_stream_trunk_frames(seg_of_rank, root: int, nsegs: int,
                               paths=None) -> int:
    """Trunk serializations of ONE loss-free engine stream (header +
    ``nsegs`` data frames + one round of control) rooted at ``root`` on
    a fabric: data crosses every edge of the switch subtree spanning
    the occupied segments once, the two scout gathers pay their edges'
    trunk paths, and each remote receiver's report and decision pay the
    receiver-root path each way."""
    from ..simnet.fabric import path_trunk_hops

    if len(set(seg_of_rank)) <= 1:
        return 0
    paths = _seg_paths(seg_of_rank, paths)
    root_seg = seg_of_rank[root]
    data_edges = multicast_trunk_edges(root_seg, seg_of_rank, paths)
    gathers = binomial_tree_trunk_hops(seg_of_rank, root, paths)
    round_trips = sum(path_trunk_hops(paths[s], paths[root_seg])
                     for i, s in enumerate(seg_of_rank) if i != root)
    return ((1 + nsegs) * data_edges  # header + data, once per edge
            + 2 * gathers             # header-phase + arming gathers
            + 2 * round_trips)        # reports + decisions


def model_seg_bcast_trunk_frames(seg_of_rank, root: int, nsegs: int,
                                 paths=None) -> int:
    """Loss-free trunk serializations of the flat ``mcast-seg-nack``
    broadcast on a tiered fabric (exact; asserted by
    ``benchmarks/bench_fabric_scaling.py`` and
    ``benchmarks/bench_deep_fabric.py``)."""
    return _mcast_stream_trunk_frames(seg_of_rank, root, nsegs, paths)


def model_seg_reduce_trunk_frames(seg_of_rank, root: int, nsegs: int,
                                  paths=None) -> int:
    """Loss-free trunk serializations of the flat ``mcast-seg-combine``
    reduce (and of the ``mcast-seg-root-follow`` gather, which runs the
    same turn loop): one engine stream per non-root contributor, each
    rooted at its turn's sender (every stream's data still crosses
    every occupied trunk edge — all members joined the group)."""
    size = len(seg_of_rank)
    return sum(_mcast_stream_trunk_frames(seg_of_rank, turn, nsegs,
                                          paths)
               for turn in range(size) if turn != root)


def model_seg_scatter_trunk_frames(seg_of_rank, root: int, nsegs: int,
                                   paths=None) -> int:
    """Loss-free trunk serializations of the flat ``mcast-seg-root``
    scatter: one engine stream of all ``nsegs`` per-rank-addressed
    segments (exact — the per-rank ``needed`` subsets change what
    receivers reassemble, not what crosses the wire)."""
    return _mcast_stream_trunk_frames(seg_of_rank, root, nsegs, paths)


def model_seg_allgather_trunk_frames(seg_of_rank, nsegs: int,
                                     paths=None) -> int:
    """Loss-free trunk serializations of the flat ``mcast-seg-paced``
    allgather: the rank-0-anchored ready round (scout gather up, one
    "go" unicast per rank back down) plus one engine stream per rank,
    each rooted at its turn's sender."""
    from ..simnet.fabric import path_trunk_hops

    if len(set(seg_of_rank)) <= 1:
        return 0
    paths = _seg_paths(seg_of_rank, paths)
    ready = (binomial_tree_trunk_hops(seg_of_rank, 0, paths)
             + sum(path_trunk_hops(paths[s], paths[seg_of_rank[0]])
                   for i, s in enumerate(seg_of_rank) if i != 0))
    return ready + sum(
        _mcast_stream_trunk_frames(seg_of_rank, turn, nsegs, paths)
        for turn in range(len(seg_of_rank)))


# ---------------------------------------------------------------------------
# recursive hierarchy models (PR 5: phase-walking, any tree depth —
# superseding PR 4's two-tier closed forms, which the phase walk
# reproduces bit-for-bit on two-tier fabrics)
# ---------------------------------------------------------------------------
def _phase_stream(seg_of_rank, phase, turn: int, nsegs: int, paths,
                  loss: float,
                  receivers: "int | None" = None) -> tuple[float, int]:
    """(host frames incl. expected repairs, trunk serializations) of one
    engine stream of ``nsegs`` segments served by comm rank ``turn``
    inside ``phase``'s group (``receivers=1`` for single-consumer
    turn-loop streams, default every other member)."""
    from ..core.segment import seg_nack_frame_count

    members = phase.members
    frames = (seg_nack_frame_count(len(members), nsegs)
              + expected_seg_repair_frames(len(members), nsegs, loss,
                                           receivers=receivers))
    segs = tuple(seg_of_rank[m] for m in members)
    trunk = _mcast_stream_trunk_frames(segs, members.index(turn), nsegs,
                                       paths)
    return frames, trunk


def model_hier_frames(op: str, seg_of_rank, root: int, nbytes: int,
                      params: NetParams, paths=None,
                      loss: float = 0.0) -> tuple[float, float]:
    """(host frames, trunk serializations) of one ``hier-mcast`` call
    on an arbitrary-depth hierarchy, by walking the *same* phase plans
    the implementation executes (:mod:`repro.mpi.collective.hier`), so
    model and behaviour cannot drift.

    Loss-free (``loss=0``) the ``bcast`` and ``reduce`` counts are
    **exact** — every phase streams the same payload — and asserted
    against ``NetStats.frames_trunk`` by
    ``benchmarks/bench_deep_fabric.py``.  The ``scatter`` / ``gather``
    / ``allgather`` counts approximate per-phase bundle sizes by their
    member payload shares (the wire carries pickled bundle objects
    whose envelope the closed form ignores), so they are
    estimate-grade: good enough to rank candidates in the auto policy,
    checked by the bench only for the strict hier-below-flat
    inequality.  With ``loss > 0`` every phase additionally carries its
    expected NACK-repair traffic — repairs stay inside the losing
    phase's switch subtree, which is most of the hierarchy's win on
    lossy fabrics.
    """
    from ..core.segment import plan_transport
    from ..mpi.collective.hier import (allgather_phases, bcast_phases,
                                       build_hier_tree, scatter_phases,
                                       up_phases)
    from ..simnet.fabric import path_trunk_hops

    size = len(seg_of_rank)
    if size < 2 or len(set(seg_of_rank)) < 2:
        return (0.0, 0.0)
    tree = build_hier_tree(seg_of_rank, paths)
    rpaths = _seg_paths(seg_of_rank, paths)
    frames = 0.0
    trunk = 0.0

    def nsegs_of(payload_bytes: int) -> int:
        return plan_transport(max(payload_bytes, 0), params).nsegs

    def p2p_hop(src: int, dst: int, payload_bytes: int):
        nonlocal frames, trunk
        per = params.frames_for(payload_bytes + params.mpi_header)
        frames += per
        trunk += per * path_trunk_hops(rpaths[seg_of_rank[src]],
                                       rpaths[seg_of_rank[dst]])

    if op == "bcast":
        nsegs = nsegs_of(nbytes)
        for phase in bcast_phases(tree, root):
            f, t = _phase_stream(seg_of_rank, phase, phase.root, nsegs,
                                 paths, loss)
            frames, trunk = frames + f, trunk + t
        return frames, trunk
    if op == "reduce":
        nsegs = nsegs_of(nbytes)
        phases, holder = up_phases(tree, root)
        for phase in phases:
            for turn in phase.members:
                if turn == phase.root:
                    continue
                f, t = _phase_stream(seg_of_rank, phase, turn, nsegs,
                                     paths, loss, receivers=1)
                frames, trunk = frames + f, trunk + t
        if holder != root:
            p2p_hop(holder, root, nbytes)
        return frames, trunk
    if op == "allreduce":
        f1, t1 = model_hier_frames("reduce", seg_of_rank, 0, nbytes,
                                   params, paths, loss)
        f2, t2 = model_hier_frames("bcast", seg_of_rank, 0, nbytes,
                                   params, paths, loss)
        return f1 + f2, t1 + t2

    def subtree_sizes(phase) -> dict[int, int]:
        """member rank -> ranks its bundle covers (its child subtree,
        or itself on a leaf phase)."""
        if phase.node.is_leaf:
            return {m: 1 for m in phase.members}
        out = {}
        for member in phase.members:
            for child in phase.node.children:
                if member in child.members:
                    out[member] = len(child.members)
                    break
        return out

    if op == "scatter":
        share = -(-nbytes // size)
        plan = scatter_phases(tree, root)
        if plan.root_leaf is not None:
            nsegs = nsegs_of(share * (len(plan.root_leaf.members) - 1))
            f, t = _phase_stream(seg_of_rank, plan.root_leaf, root,
                                 nsegs, paths, loss)
            frames, trunk = frames + f, trunk + t
        root_leaf_members = {m for m in range(size)
                             if seg_of_rank[m] == seg_of_rank[root]}
        outside = size - len(root_leaf_members)
        if plan.hoist is not None:
            p2p_hop(plan.hoist[0], plan.hoist[1], share * outside)
        for phase in plan.internals:
            sizes = subtree_sizes(phase)
            bundle = sum(share * sizes[m] for m in phase.members
                         if m != phase.root)
            f, t = _phase_stream(seg_of_rank, phase, phase.root,
                                 nsegs_of(bundle), paths, loss)
            frames, trunk = frames + f, trunk + t
        for phase in plan.leaves:
            nsegs = nsegs_of(share * (len(phase.members) - 1))
            f, t = _phase_stream(seg_of_rank, phase, phase.root, nsegs,
                                 paths, loss)
            frames, trunk = frames + f, trunk + t
        return frames, trunk
    if op == "gather":
        phases, holder = up_phases(tree, root)
        for phase in phases:
            sizes = subtree_sizes(phase)
            for turn in phase.members:
                if turn == phase.root:
                    continue
                f, t = _phase_stream(seg_of_rank, phase, turn,
                                     nsegs_of(nbytes * sizes[turn]),
                                     paths, loss, receivers=1)
                frames, trunk = frames + f, trunk + t
        if holder != root:
            p2p_hop(holder, root, nbytes * size)
        return frames, trunk
    if op == "allgather":
        plan = allgather_phases(tree)
        for phase in plan.up:
            sizes = subtree_sizes(phase)
            frames += 2 * (len(phase.members) - 1)   # paced ready round
            segs = tuple(seg_of_rank[m] for m in phase.members)
            anchor = phase.members[0]
            trunk += (binomial_tree_trunk_hops(segs, 0, rpaths)
                      + sum(path_trunk_hops(rpaths[seg_of_rank[m]],
                                            rpaths[seg_of_rank[anchor]])
                            for m in phase.members[1:]))
            for turn in phase.members:
                f, t = _phase_stream(seg_of_rank, phase, turn,
                                     nsegs_of(nbytes * sizes[turn]),
                                     paths, loss)
                frames, trunk = frames + f, trunk + t
        full = nsegs_of(nbytes * size)
        for phase in plan.down:
            f, t = _phase_stream(seg_of_rank, phase, phase.root, full,
                                 paths, loss)
            frames, trunk = frames + f, trunk + t
        return frames, trunk
    raise KeyError(f"no hierarchical frame model for collective "
                   f"{op!r}")


# ---------------------------------------------------------------------------
# model coverage ledger (PR 6: executed by the REG01 lint rule)
# ---------------------------------------------------------------------------
#: (op, impl) -> the closed-form frame model backing it, as a dotted
#: function path, or an explicit ``"estimate: <why>"`` marker for
#: implementations whose traffic has no asserted closed form.  The
#: REG01 rule (``python -m repro.lint``) checks this table both ways
#: against the live registry: every registered implementation must
#: appear here (a missing entry is a silent modeling gap — the
#: ROADMAP's alltoall/scan/exscan/reduce_scatter holes are visible
#: below as estimate markers, not absences), and every entry must name
#: a registered implementation and a resolvable function.
MODEL_COVERAGE: dict[tuple[str, str], str] = {
    ("bcast", "p2p-binomial"):
        "repro.analysis.framecount.model_mpich_bcast_frames",
    ("bcast", "p2p-linear"):
        "repro.analysis.framecount.model_mpich_bcast_frames",
    ("bcast", "mcast-binary"):
        "repro.analysis.framecount.model_mcast_bcast_frames",
    ("bcast", "mcast-linear"):
        "repro.analysis.framecount.model_mcast_bcast_frames",
    ("bcast", "mcast-naive"):
        "estimate: unreliable one-shot blast; delivered count depends "
        "on receiver readiness, only the send side is closed-form",
    ("bcast", "mcast-ack"):
        "estimate: ack-implosion retransmit traffic depends on timing "
        "(the PVM-style baseline exists to measure, not to model)",
    ("bcast", "mcast-seg-nack"):
        "repro.core.segment.seg_nack_frame_count",
    ("bcast", "mcast-sequencer"):
        "estimate: sequencer hop doubles data frames; ordering traffic "
        "modeled only asymptotically (DESIGN.md)",
    ("bcast", "hier-mcast"):
        "repro.analysis.framecount.model_hier_frames",
    ("barrier", "p2p-mpich"):
        "repro.analysis.framecount.paper_mpich_barrier_messages",
    ("barrier", "p2p-dissemination"):
        "estimate: ceil(log2 N) rounds of N messages each; asserted "
        "only as a message count in tests, not a frame model",
    ("barrier", "mcast"):
        "repro.core.mcast_barrier.barrier_mcast_message_count",
    ("barrier", "hier-mcast"):
        "estimate: per-phase mcast barriers over the recursive tree; "
        "no closed form asserted yet (latency-bound op)",
    ("reduce", "p2p-binomial"):
        "repro.analysis.framecount.model_p2p_tree_frames",
    ("reduce", "mcast-seg-combine"):
        "repro.analysis.framecount.model_seg_reduce_frames",
    ("reduce", "hier-mcast"):
        "repro.analysis.framecount.model_hier_frames",
    ("allreduce", "p2p-reduce-bcast"):
        "estimate: composition — 2 x model_p2p_tree_frames (reduce "
        "down, bcast back)",
    ("allreduce", "mcast-seg-nack"):
        "repro.analysis.framecount.model_seg_allreduce_frames",
    ("allreduce", "hier-mcast"):
        "repro.analysis.framecount.model_hier_frames",
    ("gather", "p2p-binomial"):
        "estimate: inner edges re-forward growing subtree batches; "
        "policy uses the (size-1) contributions lower bound",
    ("gather", "mcast-seg-root-follow"):
        "repro.analysis.framecount.model_seg_reduce_frames",
    ("gather", "hier-mcast"):
        "repro.analysis.framecount.model_hier_frames",
    ("scatter", "p2p-binomial"):
        "estimate: per-level subtree shares (exact only at power-of-"
        "two sizes); see policy.p2p_frame_estimate",
    ("scatter", "mcast-seg-root"):
        "repro.analysis.framecount.model_seg_scatter_frames",
    ("scatter", "hier-mcast"):
        "repro.analysis.framecount.model_hier_frames",
    ("allgather", "p2p-gather-bcast"):
        "estimate: composition — gather lower bound + full-list "
        "broadcast; see policy.p2p_frame_estimate",
    ("allgather", "mcast-paced"):
        "estimate: unsegmented per-turn streaming; superseded by "
        "mcast-seg-paced, kept as a measured baseline",
    ("allgather", "mcast-seg-paced"):
        "estimate: composition — paced ready round (2(N-1)) + N x "
        "seg_nack_frame_count; see policy.seg_frame_estimate",
    ("allgather", "hier-mcast"):
        "repro.analysis.framecount.model_hier_frames",
    ("alltoall", "p2p-pairwise"):
        "estimate: (N-1) pairwise exchanges; ROADMAP gap — no "
        "multicast rival or asserted closed form yet",
    ("scan", "p2p-linear"):
        "estimate: N-1 chained hops; ROADMAP gap — no multicast rival "
        "or asserted closed form yet",
    ("exscan", "p2p-linear"):
        "estimate: N-1 chained hops (shifted scan); ROADMAP gap",
    ("reduce_scatter", "p2p-reduce-scatter"):
        "estimate: reduce-to-root + scatter composition; ROADMAP gap",
}
