"""LogP-flavoured closed-form latency predictions.

These models predict collective completion time from the calibration
constants alone — no simulation — under two idealizations: no collisions
(hub) and no cross-traffic queueing (switch).  They serve two purposes:

1. **validation** — the simulator must agree with the model within a
   tolerance on quiet (jitter-free) runs, which pins the simulator's
   timing plumbing down analytically (``tests/test_analysis.py``);
2. **explanation** — the crossover analysis (where multicast starts
   beating MPICH) can be computed in closed form and compared with the
   empirical crossover from the benchmark harness.

Model vocabulary (all µs):

* ``o_s``/``o_r`` — per-datagram software send/receive cost (TCP-ish for
  the p2p engine, UDP-ish for multicast);
* ``W(b)`` — wire time of a datagram of ``b`` user bytes (sum of its
  fragments' wire times);
* ``S`` — switch store-and-forward penalty (lookup + second
  serialization of the first fragment + propagation), zero on the hub.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.channel import MCAST_HEADER_BYTES, SCOUT_BYTES
from ..mpi.collective.barrier_p2p import largest_power_of_two_leq
from ..simnet.calibration import NetParams
from ..simnet.frame import wire_bytes
from ..simnet.ip import fragment_sizes
from ..simnet.units import bytes_to_us

__all__ = ["LatencyModel", "PointEstimate"]


@dataclass(frozen=True)
class PointEstimate:
    """One predicted latency with its dominant components (µs)."""

    total: float
    software: float
    wire: float
    switching: float


class LatencyModel:
    """Closed-form predictor for one (params, topology) platform."""

    def __init__(self, params: NetParams, topology: str = "switch"):
        if topology not in ("hub", "switch"):
            raise ValueError(f"unknown topology {topology!r}")
        self.params = params
        self.topology = topology

    # -- primitives ----------------------------------------------------------
    def wire_time(self, user_bytes: int) -> float:
        """Serialization time of one datagram's frames on one link."""
        p = self.params
        return sum(bytes_to_us(wire_bytes(sz), p.rate_mbps)
                   for sz in fragment_sizes(p, user_bytes))

    def switch_penalty(self, user_bytes: int) -> float:
        """Extra one-way cost of crossing the switch vs. the hub.

        Store-and-forward re-serializes every fragment on the egress
        link; fragments pipeline, so only the *first* fragment's second
        serialization adds latency (later ones overlap the ingress of
        their successors when fragments are equal-sized; for the common
        1-fragment case this is exact).
        """
        if self.topology == "hub":
            return 0.0
        p = self.params
        first = fragment_sizes(p, user_bytes)[0]
        return (p.switch_latency_us + p.prop_delay_us
                + bytes_to_us(wire_bytes(first), p.rate_mbps))

    def one_way(self, user_bytes: int, o_s: float, o_r: float) -> float:
        """Software + wire + delivery cost of one unicast datagram."""
        p = self.params
        nfrags = p.frames_for(user_bytes)
        return (o_s + p.per_frame_tx_us * (nfrags - 1)
                + self.wire_time(user_bytes)
                + self.switch_penalty(user_bytes)
                + p.prop_delay_us
                + p.per_frame_rx_us + p.mpi_match_us + o_r)

    def p2p_one_way(self, payload_bytes: int) -> float:
        """One MPI p2p message (TCP-ish costs + MPI envelope)."""
        p = self.params
        return self.one_way(payload_bytes + p.mpi_header,
                            p.tcp_send_us, p.tcp_recv_us)

    def scout_one_way(self) -> float:
        """One scout (UDP costs, no MPI matching)."""
        p = self.params
        return (p.udp_send_us + self.wire_time(SCOUT_BYTES)
                + self.switch_penalty(SCOUT_BYTES) + p.prop_delay_us
                + p.per_frame_rx_us + p.udp_recv_us)

    def mcast_one_way(self, payload_bytes: int,
                      control: bool = False) -> float:
        """One multicast datagram reaching the (slowest) receiver.

        ``control=True`` models the data-less barrier release, which
        skips the payload-handling extras.
        """
        p = self.params
        b = payload_bytes + MCAST_HEADER_BYTES
        nfrags = p.frames_for(b)
        extras = (0.0 if control
                  else p.mcast_send_extra_us + p.mcast_recv_extra_us)
        return (p.udp_send_us + extras
                + p.per_frame_tx_us * (nfrags - 1)
                + self.wire_time(b) + self.switch_penalty(b)
                + p.prop_delay_us + p.per_frame_rx_us + p.udp_recv_us)

    # -- collectives ---------------------------------------------------------
    def mpich_bcast(self, n: int, m: int) -> float:
        """Binomial-tree broadcast completion time.

        Completion of the slowest rank, computed by walking the binomial
        schedule: a parent sends to children sequentially (each send
        occupies it for ``o_s + gap``); the message then needs its wire +
        delivery time.  On the hub, all transmissions additionally share
        one wire, which adds full serialization of every copy.
        """
        if n <= 1:
            return 0.0
        p = self.params
        msg = m + p.mpi_header
        o_s = p.tcp_send_us + p.per_frame_tx_us * (p.frames_for(msg) - 1)
        rest = (self.wire_time(msg) + self.switch_penalty(msg)
                + p.prop_delay_us + p.per_frame_rx_us + p.mpi_match_us
                + p.tcp_recv_us)

        if self.topology == "switch":
            ready = self._binomial_schedule(n, o_s, rest)
            return max(ready.values())

        # Hub: every copy serializes on the shared wire.  The last copy
        # finishes after (n-1) wire times plus the pipeline of software
        # costs along the deepest tree path.
        depth = (n - 1).bit_length()
        return ((n - 1) * self.wire_time(msg)
                + depth * (o_s + p.per_frame_rx_us + p.mpi_match_us
                           + p.tcp_recv_us))

    def _binomial_schedule(self, n: int, o_s: float,
                           rest: float) -> dict[int, float]:
        """Exact no-contention schedule of the MPICH binomial bcast."""
        from ..mpi.collective.bcast_p2p import binomial_children

        ready: dict[int, float] = {0: 0.0}
        order = [0]
        for r in order:
            t = ready[r]
            for child in binomial_children(r, n):
                t += o_s                    # sender occupies its CPU
                ready[child] = t + rest     # then the message travels
                order.append(child)
        return ready

    def mcast_bcast(self, n: int, m: int, variant: str = "binary") -> float:
        """Scout sync + one multicast."""
        if n <= 1:
            return 0.0
        if variant == "binary":
            steps = (n - 1).bit_length()
            sync = steps * self.scout_one_way()
        elif variant == "linear":
            p = self.params
            # Root consumes N-1 scouts; arrivals pipeline on the wire but
            # serialize in the root's receive path (recv + per-frame rx).
            per = p.udp_recv_us + p.per_frame_rx_us
            sync = (self.scout_one_way() + (n - 2) * per
                    if n > 1 else 0.0)
        else:
            raise ValueError(f"unknown variant {variant!r}")
        return sync + self.mcast_one_way(m)

    def mpich_barrier(self, n: int) -> float:
        """Three-phase barrier critical path (sync messages are empty)."""
        if n <= 1:
            return 0.0
        k = largest_power_of_two_leq(n)
        one = self.p2p_one_way(0)
        phases = (1 if n > k else 0) + k.bit_length() - 1 + (1 if n > k
                                                             else 0)
        return phases * one

    def mcast_barrier(self, n: int) -> float:
        if n <= 1:
            return 0.0
        steps = (n - 1).bit_length()
        return (steps * self.scout_one_way()
                + self.mcast_one_way(0, control=True))

    # -- crossover ---------------------------------------------------------
    def bcast_crossover_bytes(self, n: int, variant: str = "binary",
                              lo: int = 0, hi: int = 64000) -> int | None:
        """Smallest message size where multicast beats MPICH (None if
        never within [lo, hi])."""
        for m in range(lo, hi + 1, 50):
            if self.mcast_bcast(n, m, variant) < self.mpich_bcast(n, m):
                return m
        return None
