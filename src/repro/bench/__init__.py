"""``repro.bench`` — the harness that regenerates every paper figure,
plus the declarative sweep runner behind ``BENCH_<area>.json``."""

from .figures import (FIGURES, MCAST_BINARY, MCAST_LINEAR, MPICH,
                      PAPER_SIZES, run_figure, sweep_markdown)
from .harness import (Sample, Series, measure_allreduce, measure_barrier,
                      measure_bcast, measure_reduce)
from .report import (ascii_plot, crossover, markdown_table, series_summary,
                     table)
from .sweep import (diff_docs, dumps_canonical, load_areas, run_area)

__all__ = [
    "FIGURES", "MCAST_BINARY", "MCAST_LINEAR", "MPICH", "PAPER_SIZES",
    "Sample", "Series", "ascii_plot", "crossover", "diff_docs",
    "dumps_canonical", "load_areas", "markdown_table",
    "measure_allreduce", "measure_barrier", "measure_bcast",
    "measure_reduce", "run_area", "run_figure", "series_summary",
    "sweep_markdown", "table",
]
