"""``repro.bench`` — the harness that regenerates every paper figure."""

from .figures import (FIGURES, MCAST_BINARY, MCAST_LINEAR, MPICH,
                      PAPER_SIZES, run_figure)
from .harness import (Sample, Series, measure_allreduce, measure_barrier,
                      measure_bcast, measure_reduce)
from .report import (ascii_plot, crossover, markdown_table, series_summary,
                     table)

__all__ = [
    "FIGURES", "MCAST_BINARY", "MCAST_LINEAR", "MPICH", "PAPER_SIZES",
    "Sample", "Series", "ascii_plot", "crossover", "markdown_table",
    "measure_allreduce", "measure_barrier", "measure_bcast",
    "measure_reduce", "run_figure", "series_summary", "table",
]
