"""Command-line entry point: ``repro-bench --figure fig7``.

Regenerates any of the paper's figures as a latency table plus an ASCII
plot, or dumps the frame-count table.  ``--all`` iterates everything
(this is how EXPERIMENTS.md's measured columns were produced).

Beyond the paper's figures the registry carries this repo's extension
sweeps — ``ablation`` (reliability schemes) and ``segcoll`` (the PR 3
segmented reduce/allreduce vs their p2p defaults vs the payload-aware
``"auto"`` policy).

The docs generators and the sweep runner ride the same entry point::

    python -m repro.bench.cli registry-doc          # docs/collectives.md
    python -m repro.bench.cli registry-doc --check  # exit 1 if stale
    python -m repro.bench.cli sweep segmented-bcast # BENCH_*.json + md
    python -m repro.bench.cli sweep --check         # the bench-gate diff
    python -m repro.bench.cli bench-doc        # docs/benchmarks-index.md
    python -m repro.bench.cli profile deep-fabric \
        "trunk-hier[fabric=tree:2x2x2,op=gather]"   # cProfile one case

``sweep`` with no area names runs every registered area (see
``docs/BENCHMARKS.md`` for the document schema and gate tolerances).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from .figures import FIGURES, run_figure
from .report import ascii_plot, crossover, markdown_table, table

__all__ = ["main"]


def _render_figure(figure_id: str, reps: int, seed: int,
                   markdown: bool) -> str:
    out = []
    if figure_id == "framecounts":
        rows, notes = run_figure(figure_id)
        cols = list(rows[0].keys())
        out.append(f"== {figure_id}: {notes}")
        out.append(" | ".join(c.rjust(18) for c in cols))
        for row in rows:
            out.append(" | ".join(str(row[c]).rjust(18) for c in cols))
        return "\n".join(out)

    series, notes = run_figure(figure_id, reps=reps, seed=seed)
    out.append(f"== {figure_id} ==")
    out.append(f"expectation: {notes}")
    out.append("")
    render = markdown_table if markdown else table
    out.append(render(series, title=f"{figure_id}: median latency (us)"))
    out.append("")
    if not markdown:
        out.append(ascii_plot(series, title=f"{figure_id} medians"))
    # Crossovers of every multicast series against the first MPICH series.
    mpich = next((s for s in series if "mpich" in s.label), None)
    if mpich is not None:
        for ser in series:
            if ser is mpich or "mpich" in ser.label:
                continue
            x = crossover(ser, mpich)
            out.append(f"crossover {ser.label} vs {mpich.label}: "
                       f"{x if x is not None else 'never in range'}")
    return "\n".join(out)


def _registry_doc_cmd(output: str, check: bool) -> int:
    from .registry_doc import collective_registry_doc, default_doc_path

    path = pathlib.Path(output) if output else default_doc_path()
    fresh = collective_registry_doc()
    if check:
        current = path.read_text() if path.exists() else ""
        if current != fresh:
            print(f"{path} is stale — regenerate with "
                  f"'python -m repro.bench.cli registry-doc'",
                  file=sys.stderr)
            return 1
        print(f"{path} is up to date")
        return 0
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(fresh)
    print(f"wrote {path}")
    return 0


def _bench_doc_cmd(output: str, check: bool) -> int:
    from .bench_doc import benchmarks_index_doc, default_index_path

    path = pathlib.Path(output) if output else default_index_path()
    fresh = benchmarks_index_doc()
    if check:
        current = path.read_text() if path.exists() else ""
        if current != fresh:
            print(f"{path} is stale — regenerate with "
                  f"'python -m repro.bench.cli bench-doc'",
                  file=sys.stderr)
            return 1
        print(f"{path} is up to date")
        return 0
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(fresh)
    print(f"wrote {path}")
    return 0


def _sweep_cmd(areas, scale: str, base_seed: int, workers,
               results_dir, check: bool) -> int:
    from . import sweep
    from .figures import sweep_markdown

    known = sweep.load_areas()
    targets = areas or sorted(known)
    unknown = [a for a in targets if a not in known]
    if unknown:
        print(f"unknown area(s) {unknown}; known: {sorted(known)}",
              file=sys.stderr)
        return 2
    results = (pathlib.Path(results_dir) if results_dir
               else sweep.results_dir())
    failed = False
    for area in targets:
        doc = sweep.run_area(area, scale=scale, base_seed=base_seed,
                             workers=workers)
        json_path = sweep.baseline_path(area, results)
        md_path = results / f"{area}.md"
        if check:
            if not json_path.exists():
                print(f"{area}: no committed baseline {json_path} — "
                      f"run 'make bench-baselines'", file=sys.stderr)
                failed = True
                continue
            import json as _json
            baseline = _json.loads(json_path.read_text())
            report = sweep.diff_docs(baseline, doc)
            for note in report.improvements:
                print(f"{area}: improvement: {note}")
            for err in report.errors:
                print(f"{area}: {err}", file=sys.stderr)
            stale_md = (not md_path.exists()
                        or md_path.read_text()
                        != sweep_markdown(baseline))
            if stale_md:
                print(f"{area}: {md_path} does not match the committed "
                      f"baseline — regenerate with 'make "
                      f"bench-baselines'", file=sys.stderr)
            if report.errors or stale_md:
                failed = True
            else:
                print(f"{area}: ok — {report.matched} series within "
                      f"tolerance")
        else:
            results.mkdir(parents=True, exist_ok=True)
            json_path.write_text(sweep.dumps_canonical(doc))
            md_path.write_text(sweep_markdown(doc))
            print(f"wrote {json_path}")
            print(f"wrote {md_path}")
    return 1 if failed else 0


def _profile_cmd(args_list, scale: str, base_seed: int, sort: str,
                 limit: int) -> int:
    """cProfile one sweep case (or a whole area) and print the stats."""
    import cProfile
    import pstats

    from . import sweep

    if not args_list:
        print("profile needs an area name (and optionally a case key)",
              file=sys.stderr)
        return 2
    area, case = args_list[0], (args_list[1] if len(args_list) > 1
                                else None)
    known = sweep.load_areas()
    if area not in known:
        print(f"unknown area {area!r}; known: {sorted(known)}",
              file=sys.stderr)
        return 2
    profiler = cProfile.Profile()
    if case is None:
        profiler.enable()
        sweep.run_area(area, scale=scale, base_seed=base_seed,
                       workers=1, check=True)
        profiler.disable()
        target = f"area {area!r} [{scale}]"
    else:
        for family in known[area].families(scale):
            for axes in sweep.expand(family.axes):
                if sweep.case_key(family.name, axes) == case:
                    seed = sweep.case_seed(area, base_seed,
                                           case)
                    profiler.enable()
                    family.runner(scale=scale, seed=seed, **axes)
                    profiler.disable()
                    target = f"case {case!r} of {area!r} [{scale}]"
                    break
            else:
                continue
            break
        else:
            keys = [sweep.case_key(f.name, a)
                    for f in known[area].families(scale)
                    for a in sweep.expand(f.axes)]
            print(f"no case {case!r} in area {area!r} at scale "
                  f"{scale!r}; cases: {keys}", file=sys.stderr)
            return 2
    print(f"profile of {target}, sorted by {sort}:")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(sort).print_stats(limit)
    return 0


def _trace_cmd(args_list, scale: str, base_seed: int, output) -> int:
    """Run one sweep case under the flight recorder and export it
    (Perfetto ``trace.json`` + per-rank ``report.txt``), checking the
    per-collective frame attribution against the NetStats deltas."""
    import os

    from .. import obs
    from . import sweep

    if not args_list:
        print("trace needs an area name and a case key",
              file=sys.stderr)
        return 2
    area, case = args_list[0], (args_list[1] if len(args_list) > 1
                                else None)
    known = sweep.load_areas()
    if area not in known:
        print(f"unknown area {area!r}; known: {sorted(known)}",
              file=sys.stderr)
        return 2
    cases = {sweep.case_key(f.name, axes): (f, axes)
             for f in known[area].families(scale)
             for axes in sweep.expand(f.axes)}
    if case not in cases:
        print(f"no case {case!r} in area {area!r} at scale {scale!r}; "
              f"cases: {sorted(cases)}", file=sys.stderr)
        return 2
    family, axes = cases[case]
    # Force the event-level simulator (the fluid backend sends no
    # frames) and arm the recorder for every run_spmd inside the case.
    saved = {k: os.environ.get(k) for k in (obs.TRACE_ENV, "REPRO_FLUID")}
    os.environ[obs.TRACE_ENV] = "1"
    os.environ["REPRO_FLUID"] = "0"
    obs.drain_recorders()               # drop stale recorders, if any
    try:
        seed = sweep.case_seed(area, base_seed, case)
        family.runner(scale=scale, seed=seed, **axes)
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        recorders = obs.drain_recorders()
    if not recorders:
        print(f"case {case!r} ran no traced SPMD program",
              file=sys.stderr)
        return 1
    exact = True
    for run, rec in enumerate(recorders):
        totals = dict(rec.frame_totals())
        delta = {k: v for k, v in
                 rec.stats_delta()["frames_by_kind"].items() if v}
        ok = totals == delta
        exact = exact and ok
        print(f"run {run}: {len(rec.calls)} collective calls, "
              f"{len(rec.events)} events; frame attribution "
              f"{'exact' if ok else 'MISMATCH'}")
        if rec.hang_report:
            print(rec.hang_report, file=sys.stderr)
    out = pathlib.Path(output) if output else (
        pathlib.Path("trace_out") / case)
    paths = obs.write_trace(out, recorders)
    print(f"wrote {paths['trace']}")
    print(f"wrote {paths['report']}")
    return 0 if exact else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate figures from 'MPI Collective Operations "
                    "over IP Multicast' (IPPS 2000) on the simulator.")
    parser.add_argument("command", nargs="?",
                        choices=["registry-doc", "sweep", "bench-doc",
                                 "profile", "trace"],
                        help="registry-doc: (re)generate the "
                             "docs/collectives.md reference; sweep: run "
                             "declarative benchmark sweeps into "
                             "BENCH_<area>.json; bench-doc: (re)generate "
                             "docs/benchmarks-index.md from the "
                             "committed baselines; profile: cProfile one "
                             "sweep case (or a whole area) and print the "
                             "hot spots; trace: run one sweep case under "
                             "the flight recorder and export trace.json "
                             "+ report.txt (see docs/OBSERVABILITY.md)")
    parser.add_argument("areas", nargs="*",
                        help="sweep: area names (default: all "
                             "registered areas); profile/trace: an area "
                             "name plus a case key like "
                             "'trunk-flat[fabric=tree:2x2x2,op=bcast]'")
    parser.add_argument("--figure", choices=sorted(FIGURES),
                        help="which figure/table to regenerate")
    parser.add_argument("--all", action="store_true",
                        help="regenerate every figure")
    parser.add_argument("--reps", type=int, default=25,
                        help="iterations per point (paper used 20-30)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--markdown", action="store_true",
                        help="emit Markdown tables (for EXPERIMENTS.md)")
    parser.add_argument("--check", action="store_true",
                        help="registry-doc/bench-doc: fail if the doc "
                             "is stale instead of rewriting it; sweep: "
                             "diff the fresh run against the committed "
                             "BENCH_*.json baselines (the bench gate) "
                             "instead of writing")
    parser.add_argument("--output", default=None,
                        help="registry-doc/bench-doc: target path "
                             "(default docs/collectives.md / "
                             "docs/benchmarks-index.md); trace: output "
                             "directory (default trace_out/<case-key>)")
    parser.add_argument("--scale", choices=["gate", "full"],
                        default="gate",
                        help="sweep: gate = the tiny committed-baseline "
                             "sweep; full = the big one")
    parser.add_argument("--base-seed", type=int, default=1,
                        help="sweep: base seed the per-case seeds are "
                             "derived from (baselines use 1)")
    parser.add_argument("--workers", type=int, default=None,
                        help="sweep: worker processes (default: cpu "
                             "count capped at 8; 1 = inline)")
    parser.add_argument("--results-dir", default=None,
                        help="sweep: where BENCH_*.json + <area>.md "
                             "live (default benchmarks/results/)")
    parser.add_argument("--sort", default="cumulative",
                        help="profile: pstats sort key "
                             "(default cumulative)")
    parser.add_argument("--limit", type=int, default=25,
                        help="profile: rows of stats to print")
    args = parser.parse_args(argv)

    if args.command == "registry-doc":
        return _registry_doc_cmd(args.output, args.check)
    if args.command == "bench-doc":
        return _bench_doc_cmd(args.output, args.check)
    if args.command == "sweep":
        return _sweep_cmd(args.areas, args.scale, args.base_seed,
                          args.workers, args.results_dir, args.check)
    if args.command == "profile":
        return _profile_cmd(args.areas, args.scale, args.base_seed,
                            args.sort, args.limit)
    if args.command == "trace":
        return _trace_cmd(args.areas, args.scale, args.base_seed,
                          args.output)
    if args.areas:
        parser.error("area arguments are only valid with 'sweep'")
    if not args.figure and not args.all:
        parser.error("pass --figure <id>, --all, or registry-doc")

    targets = sorted(FIGURES) if args.all else [args.figure]
    for figure_id in targets:
        print(_render_figure(figure_id, args.reps, args.seed,
                             args.markdown))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
