"""Command-line entry point: ``repro-bench --figure fig7``.

Regenerates any of the paper's figures as a latency table plus an ASCII
plot, or dumps the frame-count table.  ``--all`` iterates everything
(this is how EXPERIMENTS.md's measured columns were produced).

Beyond the paper's figures the registry carries this repo's extension
sweeps — ``ablation`` (reliability schemes) and ``segcoll`` (the PR 3
segmented reduce/allreduce vs their p2p defaults vs the payload-aware
``"auto"`` policy).

The docs generator rides the same entry point::

    python -m repro.bench.cli registry-doc            # write docs/collectives.md
    python -m repro.bench.cli registry-doc --check    # exit 1 if stale
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from .figures import FIGURES, run_figure
from .report import ascii_plot, crossover, markdown_table, table

__all__ = ["main"]


def _render_figure(figure_id: str, reps: int, seed: int,
                   markdown: bool) -> str:
    out = []
    if figure_id == "framecounts":
        rows, notes = run_figure(figure_id)
        cols = list(rows[0].keys())
        out.append(f"== {figure_id}: {notes}")
        out.append(" | ".join(c.rjust(18) for c in cols))
        for row in rows:
            out.append(" | ".join(str(row[c]).rjust(18) for c in cols))
        return "\n".join(out)

    series, notes = run_figure(figure_id, reps=reps, seed=seed)
    out.append(f"== {figure_id} ==")
    out.append(f"expectation: {notes}")
    out.append("")
    render = markdown_table if markdown else table
    out.append(render(series, title=f"{figure_id}: median latency (us)"))
    out.append("")
    if not markdown:
        out.append(ascii_plot(series, title=f"{figure_id} medians"))
    # Crossovers of every multicast series against the first MPICH series.
    mpich = next((s for s in series if "mpich" in s.label), None)
    if mpich is not None:
        for ser in series:
            if ser is mpich or "mpich" in ser.label:
                continue
            x = crossover(ser, mpich)
            out.append(f"crossover {ser.label} vs {mpich.label}: "
                       f"{x if x is not None else 'never in range'}")
    return "\n".join(out)


def _registry_doc_cmd(output: str, check: bool) -> int:
    from .registry_doc import collective_registry_doc, default_doc_path

    path = pathlib.Path(output) if output else default_doc_path()
    fresh = collective_registry_doc()
    if check:
        current = path.read_text() if path.exists() else ""
        if current != fresh:
            print(f"{path} is stale — regenerate with "
                  f"'python -m repro.bench.cli registry-doc'",
                  file=sys.stderr)
            return 1
        print(f"{path} is up to date")
        return 0
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(fresh)
    print(f"wrote {path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate figures from 'MPI Collective Operations "
                    "over IP Multicast' (IPPS 2000) on the simulator.")
    parser.add_argument("command", nargs="?", choices=["registry-doc"],
                        help="registry-doc: (re)generate the "
                             "docs/collectives.md reference")
    parser.add_argument("--figure", choices=sorted(FIGURES),
                        help="which figure/table to regenerate")
    parser.add_argument("--all", action="store_true",
                        help="regenerate every figure")
    parser.add_argument("--reps", type=int, default=25,
                        help="iterations per point (paper used 20-30)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--markdown", action="store_true",
                        help="emit Markdown tables (for EXPERIMENTS.md)")
    parser.add_argument("--check", action="store_true",
                        help="registry-doc: fail if the doc is stale "
                             "instead of rewriting it")
    parser.add_argument("--output", default=None,
                        help="registry-doc: target path (default "
                             "docs/collectives.md)")
    args = parser.parse_args(argv)

    if args.command == "registry-doc":
        return _registry_doc_cmd(args.output, args.check)
    if not args.figure and not args.all:
        parser.error("pass --figure <id>, --all, or registry-doc")

    targets = sorted(FIGURES) if args.all else [args.figure]
    for figure_id in targets:
        print(_render_figure(figure_id, args.reps, args.seed,
                             args.markdown))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
