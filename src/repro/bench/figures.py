"""Experiment definitions — one per table/figure of the paper.

Each figure function runs the full measurement for that figure and
returns ``(series_list, notes)``; ``check_*`` helpers assert the paper's
qualitative claims (who wins, where the crossover falls), which is what
"reproduction" means here — absolute µs belong to the authors' testbed,
shapes belong to the algorithms.

Registry: :data:`FIGURES` maps figure ids ("fig7" ... "fig13",
"framecounts", "ablation") to runner callables.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from ..analysis.framecount import (model_mcast_bcast_frames,
                                   model_mpich_bcast_frames,
                                   paper_mcast_bcast_frames,
                                   paper_mpich_barrier_messages,
                                   paper_mpich_bcast_frames)
from ..simnet.calibration import FAST_ETHERNET_SWITCH
from .harness import (Series, measure_allreduce, measure_barrier,
                      measure_bcast, measure_reduce)

__all__ = ["FIGURES", "PAPER_SIZES", "SEGCOLL_PARAMS", "run_figure",
           "MPICH", "MCAST_BINARY", "MCAST_LINEAR"]

#: the paper sweeps message sizes 0..5000 bytes
PAPER_SIZES = [0, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000]

MPICH = "p2p-binomial"
MCAST_BINARY = "mcast-binary"
MCAST_LINEAR = "mcast-linear"


def _bcast_triplet(topology: str, nprocs: int, sizes, reps, seed):
    """The three curves of Figs. 7-10: MPICH, mcast linear, mcast binary."""
    common = dict(topology=topology, nprocs=nprocs, sizes=list(sizes),
                  reps=reps)
    return [
        measure_bcast(MPICH, seed=seed, label=f"mpich/{topology}",
                      **common),
        measure_bcast(MCAST_LINEAR, seed=seed + 1,
                      label=f"mcast linear/{topology}", **common),
        measure_bcast(MCAST_BINARY, seed=seed + 2,
                      label=f"mcast binary/{topology}", **common),
    ]


def fig7(reps: int = 25, seed: int = 0, sizes=None):
    """MPI_Bcast, 4 processes, Fast Ethernet **hub** (paper Fig. 7)."""
    series = _bcast_triplet("hub", 4, sizes or PAPER_SIZES, reps, seed)
    notes = ("paper: multicast (both variants) beats MPICH above ~1000 B; "
             "below that, scout cost makes multicast slower; MPICH shows "
             "the largest collision-driven variance")
    return series, notes


def fig8(reps: int = 25, seed: int = 0, sizes=None):
    """MPI_Bcast, 4 processes, Fast Ethernet **switch** (paper Fig. 8)."""
    series = _bcast_triplet("switch", 4, sizes or PAPER_SIZES, reps, seed)
    notes = "paper: same ordering as the hub with a crossover near 1 kB"
    return series, notes


def fig9(reps: int = 25, seed: int = 0, sizes=None):
    """MPI_Bcast, 6 processes, switch (paper Fig. 9)."""
    series = _bcast_triplet("switch", 6, sizes or PAPER_SIZES, reps, seed)
    notes = ("paper: multicast wins for large messages; binary shows extra "
             "variance at 6 nodes (two inner nodes race to scout rank 0)")
    return series, notes


def fig10(reps: int = 25, seed: int = 0, sizes=None):
    """MPI_Bcast, 9 processes, switch (paper Fig. 10)."""
    series = _bcast_triplet("switch", 9, sizes or PAPER_SIZES, reps, seed)
    notes = "paper: the multicast advantage widens with process count"
    return series, notes


def fig11(reps: int = 25, seed: int = 0, sizes=None):
    """Hub vs switch, 4 processes, MPICH vs mcast binary (paper Fig. 11)."""
    sizes = sizes or PAPER_SIZES
    series = [
        measure_bcast(MPICH, "hub", 4, sizes, reps, seed,
                      label="mpich/hub"),
        measure_bcast(MPICH, "switch", 4, sizes, reps, seed + 1,
                      label="mpich/switch"),
        measure_bcast(MCAST_BINARY, "switch", 4, sizes, reps, seed + 2,
                      label="mcast binary/switch"),
        measure_bcast(MCAST_BINARY, "hub", 4, sizes, reps, seed + 3,
                      label="mcast binary/hub"),
    ]
    notes = ("paper: with multicast the hub beats the switch at every "
             "size (no store-and-forward penalty); with MPICH the hub "
             "wins only below ~3000 B, after which its shared wire "
             "saturates and the switch's parallel paths win")
    return series, notes


def fig12(reps: int = 25, seed: int = 0, sizes=None):
    """Scaling 3/6/9 processes, switch, MPICH vs mcast linear (Fig. 12)."""
    sizes = sizes or PAPER_SIZES
    series = []
    for i, n in enumerate((3, 6, 9)):
        series.append(measure_bcast(MPICH, "switch", n, sizes, reps,
                                    seed + i, label=f"mpich ({n} proc)"))
    for i, n in enumerate((3, 6, 9)):
        series.append(measure_bcast(MCAST_LINEAR, "switch", n, sizes, reps,
                                    seed + 3 + i,
                                    label=f"linear ({n} proc)"))
    notes = ("paper: the linear multicast's extra cost per process is "
             "nearly constant w.r.t. message size, unlike MPICH whose "
             "per-process cost grows with size")
    return series, notes


def fig13(reps: int = 30, seed: int = 0, procs=None):
    """MPI_Barrier over the hub, 2-9 processes (paper Fig. 13).

    The x-axis is the process count; the series value is stored under
    size key 0, so we relabel per-n series into two aggregate curves.
    """
    procs = procs or list(range(2, 10))
    mpich = Series(label="MPICH barrier/hub", impl="p2p-mpich",
                   topology="hub", nprocs=0)
    mcast = Series(label="multicast barrier/hub", impl="mcast",
                   topology="hub", nprocs=0)
    for n in procs:
        s_mpich = measure_barrier("p2p-mpich", "hub", n, reps=reps,
                                  seed=seed + n)
        s_mcast = measure_barrier("mcast", "hub", n, reps=reps,
                                  seed=seed + 100 + n)
        for smp in s_mpich.samples:
            mpich.samples.append(type(smp)(size=n, iteration=smp.iteration,
                                           latency_us=smp.latency_us))
        for smp in s_mcast.samples:
            mcast.samples.append(type(smp)(size=n, iteration=smp.iteration,
                                           latency_us=smp.latency_us))
    notes = ("paper: multicast barrier is faster on average at every "
             "process count, and the gap grows with the count "
             "(x-axis here = number of processes)")
    return [mpich, mcast], notes


def framecounts(nmax: int = 9, sizes=None):
    """§3's closed-form frame/message counts as a table (not timed)."""
    from ..simnet.calibration import FAST_ETHERNET_SWITCH as P

    sizes = sizes or [0, 1500, 3000, 5000]
    rows = []
    for n in range(2, nmax + 1):
        for m in sizes:
            rows.append({
                "n": n, "m": m,
                "paper_mpich_bcast": paper_mpich_bcast_frames(n, m),
                "paper_mcast_bcast": paper_mcast_bcast_frames(n, m),
                "model_mpich_bcast": model_mpich_bcast_frames(P, n, m),
                "model_mcast_bcast": sum(model_mcast_bcast_frames(P, n, m)),
                "mpich_barrier_msgs": paper_mpich_barrier_messages(n),
                "mcast_barrier_msgs": n - 1 + 1,
            })
    return rows, "frame-count formulas (paper §3) vs header-aware model"


def ablation_reliability(reps: int = 15, seed: int = 0, sizes=None):
    """Scouted sync vs PVM-style ack vs Orca-style sequencer (§2/§5)."""
    sizes = sizes or [0, 1000, 2000, 4000]
    series = [
        measure_bcast("mcast-binary", "switch", 6, sizes, reps, seed,
                      label="scout binary"),
        measure_bcast("mcast-linear", "switch", 6, sizes, reps, seed + 1,
                      label="scout linear"),
        measure_bcast("mcast-ack", "switch", 6, sizes, reps, seed + 2,
                      label="ack (PVM-style)"),
        measure_bcast("mcast-sequencer", "switch", 6, sizes, reps,
                      seed + 3, label="sequencer (Orca-style)"),
        measure_bcast(MPICH, "switch", 6, sizes, reps, seed + 4,
                      label="mpich"),
    ]
    notes = ("paper §2: the ack-based PVM approach 'did not produce "
             "improvement in performance' — the ack implosion erases the "
             "multicast win; scout sync keeps it")
    return series, notes


#: measurement window for the reduction sweeps — the turn-based
#: segmented reduce at the largest size outlasts the default window
SEGCOLL_WINDOW_US = 80_000.0

#: the platform the segcoll sweep measures on — adaptive transport plan
#: on the paper's switch.  Exported so bench_segmented_reduce.py
#: predicts the "auto" series' choices with the SAME parameters the
#: series resolved with.
SEGCOLL_PARAMS = replace(FAST_ETHERNET_SWITCH, segment_bytes="auto")


def seg_collectives(reps: int = 15, seed: int = 0, sizes=None):
    """Segmented reduce/allreduce vs their p2p defaults vs "auto".

    The new-in-PR-3 sweep: ``mcast-seg-combine`` (reduce) and the
    composed segmented allreduce against the MPICH trees, with the
    payload-aware ``"auto"`` policy as a third series per op.  Sizes are
    multiples of 8 (float64 payloads).
    """
    sizes = sizes or [1000, 12_000, 48_000]
    sizes = [(-(-s // 8)) * 8 for s in sizes]
    series = []
    for impl, tag in (("p2p-binomial", "p2p"),
                      ("mcast-seg-combine", "seg"),
                      ("auto", "auto")):
        series.append(measure_reduce(
            impl, "switch", 4, sizes, reps=reps, seed=seed,
            params=SEGCOLL_PARAMS, window_us=SEGCOLL_WINDOW_US,
            label=f"reduce {tag}"))
    for impl, tag in (("p2p-reduce-bcast", "p2p"),
                      ("mcast-seg-nack", "seg"),
                      ("auto", "auto")):
        series.append(measure_allreduce(
            impl, "switch", 4, sizes, reps=reps, seed=seed + 1,
            params=SEGCOLL_PARAMS, window_us=SEGCOLL_WINDOW_US,
            label=f"allreduce {tag}"))
    notes = ("segmented reduce matches the p2p tree's payload frames "
             "and adds selective NACK repair; the segmented allreduce "
             "multicasts the broadcast half (N payload streams vs "
             "MPICH's 2(N-1)); 'auto' resolves per call from the "
             "closed-form frame estimates and should track the better "
             "fixed series at every size")
    return series, notes


FIGURES: dict[str, Callable] = {
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "framecounts": framecounts,
    "ablation": ablation_reliability,
    "segcoll": seg_collectives,
}


def run_figure(figure_id: str, **kwargs):
    """Run one experiment by id ("fig7".."fig13", "framecounts", ...)."""
    try:
        fn = FIGURES[figure_id]
    except KeyError:
        raise KeyError(f"unknown figure {figure_id!r}; "
                       f"known: {sorted(FIGURES)}") from None
    return fn(**kwargs)


# ---------------------------------------------------------------------------
# sweep-document rendering (benchmarks/results/<area>.md)
# ---------------------------------------------------------------------------
def _sweep_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value).replace("|", "\\|")


def sweep_markdown(doc: dict) -> str:
    """Render one sweep document (`BENCH_<area>.json`) as Markdown.

    This replaces the bespoke benchmark scripts' ad-hoc prints: the
    committed tables under ``benchmarks/results/`` are generated from
    the canonical JSON, one section per case family.  Long string
    metrics (dispatch logs, audit trails) render as footnotes below
    their family's table.
    """
    area = doc["area"]
    lines = [
        f"# {area}", "",
        f"_{doc['title']}_", "",
        f"_sweep_: schema `{doc['schema']}`, scale `{doc['scale']}`, "
        f"base seed {doc['base_seed']}, {len(doc['series'])} cases — "
        f"generated from `BENCH_{area}.json` by "
        f"`python -m repro.bench.cli sweep {area}` "
        f"(see `docs/BENCHMARKS.md`)", "",
    ]
    families: dict[str, list] = {}
    for entry in doc["series"]:
        families.setdefault(entry["family"], []).append(entry)
    for family in sorted(families):
        entries = families[family]
        axes = sorted({name for e in entries for name in e["axes"]})
        metrics = sorted({name for e in entries
                          for name in e["metrics"]})
        short = [m for m in metrics
                 if not any(isinstance(e["metrics"].get(m), str)
                            and len(e["metrics"][m]) > 60
                            for e in entries)]
        long = [m for m in metrics if m not in short]
        lines.append(f"## {family}")
        lines.append("")
        header = axes + short
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "|".join(
            "---" if h in axes else "---:" for h in header) + "|")
        for entry in entries:
            cells = [_sweep_cell(entry["axes"].get(a, "—"))
                     for a in axes]
            cells += [_sweep_cell(entry["metrics"][m])
                      if m in entry["metrics"] else "—"
                      for m in short]
            lines.append("| " + " | ".join(cells) + " |")
        lines.append("")
        for m in long:
            for entry in entries:
                if m in entry["metrics"]:
                    lines.append(f"* **{entry['key']}** `{m}`: "
                                 f"{entry['metrics'][m]}")
            lines.append("")
    return "\n".join(lines)
