"""Measurement harness reproducing the paper's methodology (§4):

"The performance of the MPI collective operations is measured as the
longest completion time of the collective operation among all processes.
For each message size, 20 to 30 different experiments were run.  The
graphs show the measured time for all experiments with a line through
the median of the times."

So, per (implementation, topology, nprocs, size): run ``reps``
iterations; per iteration every rank records its own duration; the
iteration's latency is the **max over ranks**; the series reports all
samples plus the median.  A small per-iteration compute phase staggers
entries (real SPMD ranks never enter a collective in lockstep), which —
on the hub — is what makes CSMA/CD collisions and their variance appear,
exactly as in the paper's scatter plots.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..runtime import run_spmd
from ..runtime.skew import compute_phase
from ..simnet.calibration import NetParams

__all__ = ["Sample", "Series", "measure_bcast", "measure_barrier",
           "measure_reduce", "measure_allreduce"]

#: mean µs of the pseudo-compute phase between iterations
DEFAULT_THINK_US = 60.0


@dataclass
class Sample:
    size: int
    iteration: int
    latency_us: float


@dataclass
class Series:
    """All samples of one implementation across a sweep."""

    label: str
    impl: str
    topology: str
    nprocs: int
    samples: list[Sample] = field(default_factory=list)

    def latencies(self, size: int) -> list[float]:
        return [s.latency_us for s in self.samples if s.size == size]

    def median(self, size: int) -> float:
        lats = self.latencies(size)
        if not lats:
            raise KeyError(f"no samples for size {size} in {self.label}")
        return statistics.median(lats)

    def spread(self, size: int) -> tuple[float, float]:
        lats = self.latencies(size)
        return (min(lats), max(lats))

    @property
    def sizes(self) -> list[int]:
        return sorted({s.size for s in self.samples})

    def medians(self) -> dict[int, float]:
        return {size: self.median(size) for size in self.sizes}


#: per-iteration measurement window (µs) — generously above the largest
#: collective latency on any platform in the sweeps, so iterations never
#: bleed into each other
WINDOW_US = 20_000.0


def _window_sync(env, base: float, index: int,
                 window_us: float = WINDOW_US) -> float:
    """Align all ranks on iteration ``index``'s window start."""
    target = base + index * window_us
    now = env.now
    if target > now:
        return target - now
    return 0.0


def _agree_base(env):
    """Broadcast a common window origin from rank 0 (untimed, p2p)."""
    from ..mpi.collective.bcast_p2p import bcast_binomial

    base = env.now + 10_000.0 if env.rank == 0 else None
    base = yield from bcast_binomial(env.comm, base, 0)
    return base


def _bcast_workload(sizes, reps, think_us, setup=None,
                    window_us=WINDOW_US):
    """SPMD body: timed bcast loop, per-rank durations into records.

    ``setup(env)`` runs once per rank before the loop — benchmarks use it
    to install fault-injection filters (e.g. induced multicast loss for
    the segmented-broadcast sweep).  ``window_us`` overrides the
    per-iteration measurement window for workloads whose collectives
    (e.g. ``mcast-ack`` at many-segment sizes under loss) outlast the
    default.

    Iterations are separated by **measurement windows**: every rank idles
    until a common absolute start tick (the window-mode technique of
    standard MPI benchmarks, equivalent to clock-synchronized starts),
    then burns a small jittered think time, then runs the timed
    collective.  Without this, two artifacts corrupt the comparison: the
    eager-protocol root pipelines broadcasts ahead of its receivers, and
    barrier-exit stagger (itself one p2p message wide) leaks into the
    timed region and penalizes whichever algorithm finishes unevenly.
    """

    def main(env):
        comm = env.comm
        if setup is not None:
            setup(env)
        base = yield from _agree_base(env)
        k = 0
        for size in sizes:
            payload = bytes(size)
            for it in range(reps):
                delay = _window_sync(env, base, k, window_us)
                k += 1
                if delay > 0:
                    yield env.sim.timeout(delay)
                # staggered entry, like real compute between collectives
                yield from compute_phase(env, think_us)
                t0 = env.now
                obj = payload if comm.rank == 0 else None
                obj = yield from comm.bcast(obj, root=0)
                env.log("durations", (size, it, env.now - t0))
                if len(obj) != size:  # pragma: no cover - correctness net
                    raise AssertionError("bcast corrupted payload")

    return main


def _reduce_workload(op, sizes, reps, think_us, setup=None,
                     window_us=WINDOW_US):
    """SPMD body for reduce/allreduce sweeps (same windowing as bcast).

    Payloads are float64 NumPy arrays (``size`` bytes each, so ``size``
    must be a multiple of 8): the buffer path sizes them exactly and
    elementwise SUM keeps the payload size constant across the tree,
    unlike ``bytes`` whose ``+`` would concatenate.
    """
    from ..mpi.ops import SUM

    def main(env):
        comm = env.comm
        if setup is not None:
            setup(env)
        base = yield from _agree_base(env)
        k = 0
        for size in sizes:
            arr = np.full(max(1, size // 8), float(env.rank + 1),
                          dtype=np.float64)
            for it in range(reps):
                delay = _window_sync(env, base, k, window_us)
                k += 1
                if delay > 0:
                    yield env.sim.timeout(delay)
                yield from compute_phase(env, think_us)
                t0 = env.now
                if op == "reduce":
                    out = yield from comm.reduce(arr, SUM, 0)
                    ok = comm.rank != 0 or out is not None
                else:
                    out = yield from comm.allreduce(arr, SUM)
                    ok = out is not None
                env.log("durations", (size, it, env.now - t0))
                if not ok:  # pragma: no cover - correctness net
                    raise AssertionError(f"{op} lost its result")

    return main


def _barrier_workload(reps, think_us):
    def main(env):
        base = yield from _agree_base(env)
        for it in range(reps):
            delay = _window_sync(env, base, it)
            if delay > 0:
                yield env.sim.timeout(delay)
            yield from compute_phase(env, think_us)
            t0 = env.now
            yield from env.comm.barrier()
            env.log("durations", (0, it, env.now - t0))

    return main


def _collect(result, label, impl, topology, nprocs) -> Series:
    """Fold per-rank duration records into max-over-ranks samples."""
    series = Series(label=label, impl=impl, topology=topology,
                    nprocs=nprocs)
    per_iter: dict[tuple[int, int], float] = {}
    for rank_records in result.record_series("durations"):
        for size, it, duration in rank_records:
            key = (size, it)
            per_iter[key] = max(per_iter.get(key, 0.0), duration)
    for (size, it), latency in sorted(per_iter.items()):
        series.samples.append(Sample(size=size, iteration=it,
                                     latency_us=latency))
    return series


def measure_bcast(impl: str, topology: str, nprocs: int,
                  sizes: list[int], reps: int = 25, seed: int = 0,
                  params: Optional[NetParams] = None,
                  think_us: float = DEFAULT_THINK_US,
                  label: Optional[str] = None,
                  setup=None,
                  window_us: float = WINDOW_US) -> Series:
    """Latency sweep of one broadcast implementation.

    ``impl`` is a registry name ("p2p-binomial", "mcast-binary", ...).
    ``setup(env)`` runs per rank before the timed loop (fault injection);
    ``window_us`` widens the measurement window for slow collectives.
    """
    result = run_spmd(nprocs,
                      _bcast_workload(sizes, reps, think_us, setup=setup,
                                      window_us=window_us),
                      topology=topology, params=params, seed=seed,
                      collectives={"bcast": impl})
    return _collect(result, label or f"{impl}/{topology}/{nprocs}p",
                    impl, topology, nprocs)


def _measure_reduction(op, impl, topology, nprocs, sizes, reps, seed,
                       params, think_us, label, setup, window_us):
    result = run_spmd(nprocs,
                      _reduce_workload(op, sizes, reps, think_us,
                                       setup=setup, window_us=window_us),
                      topology=topology, params=params, seed=seed,
                      collectives={op: impl})
    return _collect(result, label or f"{op}:{impl}/{topology}/{nprocs}p",
                    impl, topology, nprocs)


def measure_reduce(impl: str, topology: str, nprocs: int,
                   sizes: list[int], reps: int = 25, seed: int = 0,
                   params: Optional[NetParams] = None,
                   think_us: float = DEFAULT_THINK_US,
                   label: Optional[str] = None, setup=None,
                   window_us: float = WINDOW_US) -> Series:
    """Latency sweep of one reduce implementation (incl. ``"auto"``)."""
    return _measure_reduction("reduce", impl, topology, nprocs, sizes,
                              reps, seed, params, think_us, label, setup,
                              window_us)


def measure_allreduce(impl: str, topology: str, nprocs: int,
                      sizes: list[int], reps: int = 25, seed: int = 0,
                      params: Optional[NetParams] = None,
                      think_us: float = DEFAULT_THINK_US,
                      label: Optional[str] = None, setup=None,
                      window_us: float = WINDOW_US) -> Series:
    """Latency sweep of one allreduce implementation (incl. ``"auto"``)."""
    return _measure_reduction("allreduce", impl, topology, nprocs, sizes,
                              reps, seed, params, think_us, label, setup,
                              window_us)


def measure_barrier(impl: str, topology: str, nprocs: int,
                    reps: int = 25, seed: int = 0,
                    params: Optional[NetParams] = None,
                    think_us: float = DEFAULT_THINK_US,
                    label: Optional[str] = None) -> Series:
    """Latency samples of one barrier implementation (size axis = {0})."""
    result = run_spmd(nprocs, _barrier_workload(reps, think_us),
                      topology=topology, params=params, seed=seed,
                      collectives={"barrier": impl})
    return _collect(result, label or f"{impl}/{topology}/{nprocs}p",
                    impl, topology, nprocs)
