"""Rendering and shape-checking of benchmark series.

``table`` prints the same rows the paper's graphs plot (median latency
per message size per implementation); ``ascii_plot`` sketches the curves
in a terminal; ``crossover`` finds where one series starts beating
another — the quantity the paper's Figs. 7–10 discussion revolves around.
"""

from __future__ import annotations

import statistics
from typing import Optional, Sequence

from .harness import Series

__all__ = ["table", "ascii_plot", "crossover", "markdown_table",
           "series_summary"]


def table(series_list: Sequence[Series], title: str = "",
          xlabel: str = "size (bytes)") -> str:
    """Fixed-width median table, one column per series."""
    sizes = sorted({s for ser in series_list for s in ser.sizes})
    head = [xlabel.rjust(14)] + [ser.label.rjust(24) for ser in series_list]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(head))
    lines.append("-+-".join("-" * len(h) for h in head))
    for size in sizes:
        row = [f"{size:>14d}"]
        for ser in series_list:
            try:
                med = ser.median(size)
                lo, hi = ser.spread(size)
                row.append(f"{med:>10.1f} [{lo:>6.0f},{hi:>6.0f}]"[:24]
                           .rjust(24))
            except KeyError:
                row.append(" " * 24)
        lines.append(" | ".join(row))
    return "\n".join(lines)


def markdown_table(series_list: Sequence[Series], title: str = "",
                   xlabel: str = "size (bytes)") -> str:
    """The same medians as a Markdown table (for EXPERIMENTS.md)."""
    sizes = sorted({s for ser in series_list for s in ser.sizes})
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    header = [xlabel] + [ser.label for ser in series_list]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join(["---"] * len(header)) + "|")
    for size in sizes:
        row = [str(size)]
        for ser in series_list:
            try:
                row.append(f"{ser.median(size):.0f}")
            except KeyError:
                row.append("")
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def crossover(a: Series, b: Series) -> Optional[int]:
    """Smallest common size where median(a) < median(b), None if never.

    Usage: ``crossover(mcast_series, mpich_series)`` returns where the
    multicast implementation starts winning.
    """
    common = sorted(set(a.sizes) & set(b.sizes))
    for size in common:
        if a.median(size) < b.median(size):
            return size
    return None


def series_summary(ser: Series) -> dict:
    """Aggregate stats for logging / EXPERIMENTS.md."""
    meds = ser.medians()
    all_lats = [s.latency_us for s in ser.samples]
    return {
        "label": ser.label,
        "sizes": ser.sizes,
        "median_by_size": meds,
        "overall_min": min(all_lats),
        "overall_max": max(all_lats),
        "overall_median": statistics.median(all_lats),
    }


def ascii_plot(series_list: Sequence[Series], width: int = 72,
               height: int = 20, title: str = "") -> str:
    """Median-latency curves as ASCII art (size on x, latency on y)."""
    sizes = sorted({s for ser in series_list for s in ser.sizes})
    if not sizes:
        return "(no data)"
    all_meds = [ser.median(s) for ser in series_list for s in ser.sizes]
    y_max = max(all_meds) * 1.05
    y_min = 0.0
    x_min, x_max = min(sizes), max(sizes)
    span_x = max(x_max - x_min, 1)
    grid = [[" "] * width for _ in range(height)]
    marks = "ox+*#@%&"
    for idx, ser in enumerate(series_list):
        mark = marks[idx % len(marks)]
        for size in ser.sizes:
            x = int((size - x_min) / span_x * (width - 1))
            y = int((ser.median(size) - y_min) / (y_max - y_min)
                    * (height - 1))
            grid[height - 1 - y][x] = mark
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:>8.0f} us ┤" )
    for row in grid:
        lines.append("            │" + "".join(row))
    lines.append("          0 └" + "─" * width)
    lines.append(f"             {x_min:<10d}"
                 + f"{x_max:>{max(width - 10, 1)}d} bytes")
    for idx, ser in enumerate(series_list):
        lines.append(f"   {marks[idx % len(marks)]} = {ser.label}")
    return "\n".join(lines)
