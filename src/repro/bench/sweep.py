"""Declarative cartesian sweep runner + the persisted perf trajectory.

An **area** is a named set of case *families*; a family is a cartesian
product of axes (topology, payload size, loss regime, op, impl, ...)
plus a runner that measures one case on the simulator.  Cases fan out
across worker processes, each seeded deterministically from the area
name, the base seed and the case key — so the resulting document is
bit-for-bit identical across reruns and across worker counts (results
are collected in case order, never completion order).  The one
sanctioned exception: metrics named ``wall*`` / ``rate*`` measure the
host machine (wall seconds, events/sec) and vary run to run — the
gate bands them wide (:data:`WALL_REL_TOL`) instead of exactly.

:func:`run_area` collects every case into one canonical, versioned
``BENCH_<area>.json`` document (frame / trunk-frame / latency / repair
series plus env + git metadata) and then runs the area's
**postconditions** — the reproduction criteria that used to live as
ad-hoc assertions in the bespoke ``benchmarks/bench_*.py`` scripts.

:func:`diff_docs` is the regression gate behind ``make bench-gate``:
exact metrics (frame counts, retransmissions, dispatch strings) must
match the committed baseline bit-for-bit, latency and wall/rate
metrics may drift inside documented bands (:data:`REL_TOL` /
:data:`ABS_TOL_US` / :data:`WALL_REL_TOL`), and new or removed series
fail outright.  ``docs/BENCHMARKS.md`` documents
the schema and the gate contract field by field.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import os
import pathlib
import platform
import subprocess
import sys
import zlib
from concurrent import futures
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

__all__ = [
    "SCHEMA", "SCALES", "REL_TOL", "ABS_TOL_US", "WALL_REL_TOL",
    "Family", "AreaSpec",
    "AREAS", "register_area", "load_areas", "expand", "case_key",
    "case_seed", "run_area", "run_meta", "dumps_canonical",
    "find_series", "metric", "DiffReport", "diff_docs", "results_dir",
    "baseline_path",
]

#: bump on any backwards-incompatible change to the document layout
SCHEMA = "repro.bench.sweep/v1"

#: "gate" — the tiny, environment-independent sweep whose document is
#: committed under benchmarks/results/ and re-run by `make bench-gate`;
#: "full" — the big sweep the bespoke benchmark drivers run.
SCALES = ("gate", "full")

#: metrics whose names start with this prefix are latency samples:
#: the gate compares them within the band below instead of exactly
LATENCY_PREFIX = "latency"

#: relative latency tolerance of the gate (fraction of the baseline)
REL_TOL = 0.25
#: absolute latency slack of the gate, microseconds
ABS_TOL_US = 100.0

#: ``wall*`` metrics are host wall-clock seconds (higher is worse) and
#: ``rate*`` metrics are throughput rates (lower is worse).  Unlike
#: simulated latencies they measure the machine running the gate, so
#: their band is deliberately huge — it exists to catch order-of-
#: magnitude performance collapses (an accidental O(n^2) kernel, a
#: disabled fluid backend), not scheduler jitter.
WALL_PREFIX = "wall"
RATE_PREFIX = "rate"
WALL_REL_TOL = 3.0          # fail only past 4x the committed value

#: the base seed every committed baseline was generated with
DEFAULT_BASE_SEED = 1


@dataclass(frozen=True)
class Family:
    """One cartesian case family inside an area.

    ``axes`` maps axis name to its ordered value tuple (insertion
    order fixes the expansion order); an empty dict yields a single
    case with no axes.  ``runner(scale=..., seed=..., **axes)`` must
    be a module-level callable (workers re-resolve it by family name)
    returning a flat ``{metric_name: int | float | str}`` dict.
    """

    name: str
    axes: dict
    runner: Callable


@dataclass(frozen=True)
class AreaSpec:
    """A sweep area: families per scale + postconditions over the doc."""

    name: str
    title: str
    families: Callable[[str], Sequence[Family]]
    postconditions: tuple = ()


AREAS: dict[str, AreaSpec] = {}


def register_area(spec: AreaSpec) -> AreaSpec:
    if spec.name in AREAS:
        raise ValueError(f"area {spec.name!r} registered twice")
    AREAS[spec.name] = spec
    return spec


def load_areas() -> dict[str, AreaSpec]:
    """The registry with the in-tree areas imported (side effect)."""
    from . import sweep_areas  # noqa: F401  (registration side effect)

    return AREAS


# ---------------------------------------------------------------------------
# case expansion and deterministic per-case seeds
# ---------------------------------------------------------------------------
def expand(axes: dict) -> list[dict]:
    """Cartesian product of ``axes`` as a list of per-case dicts."""
    if not axes:
        return [{}]
    names = list(axes)
    return [dict(zip(names, values))
            for values in itertools.product(*(axes[n] for n in names))]


def case_key(family: str, axes: dict) -> str:
    """Canonical series key: ``family[a=1,b=x]`` with axes sorted."""
    if not axes:
        return family
    inner = ",".join(f"{name}={axes[name]}" for name in sorted(axes))
    return f"{family}[{inner}]"


def case_seed(area: str, base_seed: int, key: str) -> int:
    """Deterministic per-case seed: stable across runs, machines and
    worker counts; distinct per (area, base seed, case key)."""
    text = f"{area}:{base_seed}:{key}"
    return zlib.crc32(text.encode("utf-8")) & 0x7FFFFFFF


# ---------------------------------------------------------------------------
# execution — optionally fanned out across worker processes
# ---------------------------------------------------------------------------
def default_workers() -> int:
    """``REPRO_SWEEP_WORKERS`` env override, else cpu count capped at 8."""
    env = os.environ.get("REPRO_SWEEP_WORKERS")
    if env is not None:
        return max(int(env), 0)
    return min(os.cpu_count() or 1, 8)


def _run_case(area: str, scale: str, family: str, axes: dict,
              seed: int) -> dict:
    spec = AREAS[area]
    fam = next(f for f in spec.families(scale) if f.name == family)
    metrics = fam.runner(scale=scale, seed=seed, **axes)
    for name, value in metrics.items():
        if not isinstance(value, (int, float, str)) \
                or isinstance(value, bool):
            raise TypeError(
                f"{area}/{case_key(family, axes)}: metric {name!r} must "
                f"be int, float or str, got {type(value).__name__}")
    return metrics


def _run_case_star(args) -> dict:
    return _run_case(*args)


def run_area(area: str, scale: str = "gate",
             base_seed: int = DEFAULT_BASE_SEED,
             workers: Optional[int] = None,
             check: bool = True) -> dict:
    """Run one area's sweep and return its canonical document.

    Worker processes are forked (the registry — including any areas a
    test registered — is inherited); pass ``workers=0``/``1`` or set
    ``REPRO_SWEEP_WORKERS=1`` to run inline.  With ``check=True`` the
    area's postconditions run on the collected document and raise
    ``AssertionError`` on any violated reproduction criterion.
    """
    spec = load_areas()[area]
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; known: {SCALES}")
    cases = []
    for fam in spec.families(scale):
        for axes in expand(fam.axes):
            key = case_key(fam.name, axes)
            cases.append((fam.name, axes, key,
                          case_seed(area, base_seed, key)))
    keys = [key for _f, _a, key, _s in cases]
    if len(set(keys)) != len(keys):
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        raise ValueError(f"{area}: duplicate case keys {dupes}")

    args = [(area, scale, fam, axes, seed)
            for fam, axes, key, seed in cases]
    if workers is None:
        workers = default_workers()
    use_pool = (workers > 1 and len(cases) > 1
                and "fork" in multiprocessing.get_all_start_methods())
    if use_pool:
        ctx = multiprocessing.get_context("fork")
        with futures.ProcessPoolExecutor(
                max_workers=min(workers, len(cases)),
                mp_context=ctx) as pool:
            results = list(pool.map(_run_case_star, args))
    else:
        results = [_run_case(*a) for a in args]

    series = [{"key": key, "family": fam, "axes": axes, "seed": seed,
               "metrics": metrics}
              for (fam, axes, key, seed), metrics in zip(cases, results)]
    series.sort(key=lambda s: s["key"])
    doc = {
        "schema": SCHEMA,
        "area": area,
        "title": spec.title,
        "scale": scale,
        "base_seed": base_seed,
        "meta": run_meta(),
        "series": series,
    }
    if check:
        for post in spec.postconditions:
            post(doc)
    return doc


# ---------------------------------------------------------------------------
# provenance metadata
# ---------------------------------------------------------------------------
def _repo_root() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parents[3]


def _git_output(*args: str) -> Optional[str]:
    try:
        proc = subprocess.run(["git", *args], cwd=_repo_root(),
                              capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip()


def run_meta() -> dict:
    """Env + git provenance of one sweep run.  Deliberately excludes
    wall-clock timestamps so reruns stay bit-for-bit identical; the
    gate (:func:`diff_docs`) never compares this block."""
    status = _git_output("status", "--porcelain")
    return {
        "python": platform.python_version(),
        "platform": sys.platform,
        "git_commit": _git_output("rev-parse", "HEAD"),
        "git_branch": _git_output("rev-parse", "--abbrev-ref", "HEAD"),
        "git_dirty": None if status is None else bool(status),
    }


# ---------------------------------------------------------------------------
# canonical serialization + lookup helpers
# ---------------------------------------------------------------------------
def dumps_canonical(doc: dict) -> str:
    """The one true byte representation of a sweep document."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def results_dir() -> pathlib.Path:
    """``benchmarks/results/`` at the repository root."""
    return _repo_root() / "benchmarks" / "results"


def baseline_path(area: str,
                  results: Optional[pathlib.Path] = None) -> pathlib.Path:
    return (results or results_dir()) / f"BENCH_{area}.json"


def find_series(doc: dict, family: str, **axes) -> dict:
    """The unique series entry of ``family`` matching ``axes`` exactly."""
    key = case_key(family, axes)
    for entry in doc["series"]:
        if entry["key"] == key:
            return entry
    raise KeyError(f"{doc.get('area')}: no series {key!r}")


def metric(doc: dict, family: str, name: str, **axes) -> Any:
    """One metric value of one case (postcondition workhorse)."""
    entry = find_series(doc, family, **axes)
    try:
        return entry["metrics"][name]
    except KeyError:
        raise KeyError(f"{entry['key']}: no metric {name!r} "
                       f"(have {sorted(entry['metrics'])})") from None


# ---------------------------------------------------------------------------
# the regression gate
# ---------------------------------------------------------------------------
@dataclass
class DiffReport:
    """Outcome of one baseline-vs-fresh comparison."""

    area: str
    errors: list = field(default_factory=list)
    improvements: list = field(default_factory=list)
    matched: int = 0

    @property
    def ok(self) -> bool:
        return not self.errors


def diff_docs(baseline: dict, fresh: dict, rel_tol: float = REL_TOL,
              abs_tol_us: float = ABS_TOL_US) -> DiffReport:
    """Gate a fresh sweep document against the committed baseline.

    * document identity fields (schema, area, scale, base seed) must
      match — a gate run at the wrong scale is meaningless;
    * a series present only in the baseline ("removed") or only in the
      fresh run ("new") is an error: baselines update intentionally,
      via ``make bench-baselines``;
    * ``latency*`` metrics fail only when the fresh value exceeds
      ``baseline * (1 + rel_tol) + abs_tol_us``; a fresh value below
      ``baseline * (1 - rel_tol) - abs_tol_us`` is recorded as an
      improvement (not an error — but refresh the baseline);
    * ``wall*`` metrics (host wall-clock seconds, higher worse) and
      ``rate*`` metrics (throughput, lower worse) use the deliberately
      huge :data:`WALL_REL_TOL` band — they gate against performance
      collapses, not scheduler jitter;
    * every other numeric metric is exact: any increase is an error,
      any decrease an improvement note;
    * string metrics (e.g. auto-dispatch sequences) compare exactly.

    The ``meta`` block (env + git provenance) is never compared.
    """
    report = DiffReport(area=str(fresh.get("area", "?")))
    for name in ("schema", "area", "scale", "base_seed"):
        if baseline.get(name) != fresh.get(name):
            report.errors.append(
                f"{name} mismatch: baseline {baseline.get(name)!r} vs "
                f"fresh {fresh.get(name)!r}")
    base = {s["key"]: s for s in baseline.get("series", [])}
    new = {s["key"]: s for s in fresh.get("series", [])}
    for key in sorted(base.keys() - new.keys()):
        report.errors.append(
            f"removed series {key!r}: in the committed baseline but "
            f"not produced by this run")
    for key in sorted(new.keys() - base.keys()):
        report.errors.append(
            f"new series {key!r}: not in the committed baseline — "
            f"refresh intentionally with 'make bench-baselines'")
    for key in sorted(base.keys() & new.keys()):
        bm = base[key]["metrics"]
        fm = new[key]["metrics"]
        for name in sorted(set(bm) - set(fm)):
            report.errors.append(f"{key}: metric {name!r} vanished")
        for name in sorted(set(fm) - set(bm)):
            report.errors.append(f"{key}: new metric {name!r} — "
                                 f"refresh the baseline")
        for name in sorted(set(bm) & set(fm)):
            bv, fv = bm[name], fm[name]
            if isinstance(bv, str) or isinstance(fv, str):
                if bv != fv:
                    report.errors.append(
                        f"{key}: {name} changed: {bv!r} -> {fv!r}")
            elif name.startswith(LATENCY_PREFIX):
                ceiling = bv * (1.0 + rel_tol) + abs_tol_us
                floor = bv * (1.0 - rel_tol) - abs_tol_us
                if fv > ceiling:
                    report.errors.append(
                        f"{key}: {name} regressed beyond band: "
                        f"{fv:.1f} > {bv:.1f} * {1 + rel_tol:.2f} + "
                        f"{abs_tol_us:.0f}")
                elif fv < floor:
                    report.improvements.append(
                        f"{key}: {name} improved {bv:.1f} -> {fv:.1f}")
            elif name.startswith(WALL_PREFIX):
                if fv > bv * (1.0 + WALL_REL_TOL):
                    report.errors.append(
                        f"{key}: {name} collapsed: {fv:.3f} > "
                        f"{bv:.3f} * {1 + WALL_REL_TOL:.0f}")
                elif fv < bv * 0.5:
                    report.improvements.append(
                        f"{key}: {name} improved {bv:.3f} -> {fv:.3f}")
            elif name.startswith(RATE_PREFIX):
                if fv < bv / (1.0 + WALL_REL_TOL):
                    report.errors.append(
                        f"{key}: {name} collapsed: {fv:.0f} < "
                        f"{bv:.0f} / {1 + WALL_REL_TOL:.0f}")
                elif fv > bv * 2.0:
                    report.improvements.append(
                        f"{key}: {name} improved {bv:.0f} -> {fv:.0f}")
            else:
                if fv > bv:
                    report.errors.append(
                        f"{key}: {name} regressed exactly: "
                        f"{bv} -> {fv}")
                elif fv < bv:
                    report.improvements.append(
                        f"{key}: {name} improved {bv} -> {fv}")
        report.matched += 1
    return report
