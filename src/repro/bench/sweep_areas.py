"""The in-tree sweep areas — the bespoke benchmark scripts re-ported
onto :mod:`repro.bench.sweep`.

Five areas — one per former bespoke script, plus the simulator's own
speed:

* ``segmented-bcast`` (was ``benchmarks/bench_segmented_bcast.py``):
  frame counts of the segmented NACK-repair broadcast vs the PVM-style
  ``mcast-ack`` baseline under induced loss, the seeded-loss repair
  closed loop, and the latency sweep incl. the ``"auto"`` policy;
* ``fabric-scaling`` (was ``bench_fabric_scaling.py``): per-call trunk
  serializations of flat vs hierarchical broadcast on a two-tier
  ``tree:2x4`` fabric, the auto policy's model-consistency audit, and
  the latency sweep;
* ``deep-fabric`` (was ``bench_deep_fabric.py``): exact trunk models
  for flat and hierarchical collectives on three-tier and
  heterogeneous trees, hierarchy trunk wins, auto dispatch, and the
  loss-model closed loop;
* ``segmented-reduce`` (was ``bench_segmented_reduce.py``): payload
  frames of the turn-based segmented reduce/allreduce vs the MPICH
  binomial trees, selective segment repair under induced loss, and
  the ``"auto"`` never-worse postcondition over frames and latency;
* ``sim-throughput`` (new with the speed overhaul): wall-clock and
  events/sec of a 1024-host broadcast plus the deep-fabric gate sweep
  with the analytic fluid backend on vs off.  Event/clock metrics are
  exact; ``wall*``/``rate*`` metrics are banded wide in
  :func:`repro.bench.sweep.diff_docs` and so are the one deliberate
  exception to gate documents being rerun-deterministic.

Where a case asks only for a loss-free trunk-frame count that the
coverage ledger marks exact, :mod:`repro.analysis.fluid` answers it
analytically instead of simulating (``REPRO_FLUID=0`` forces the DES;
``tests/test_fluid.py`` proves both paths emit identical documents).

Every reproduction criterion the scripts used to ``assert`` inline is
now either an in-runner assertion (correctness of the collective's
result) or an area **postcondition** over the collected document — so
``run_area(..., check=True)`` fails exactly where the old scripts did.

Two scales per area: ``"gate"`` is tiny and **environment-independent**
(its documents are committed under ``benchmarks/results/`` and re-run
by ``make bench-gate``); ``"full"`` is the big sweep and may read
``REPRO_BENCH_REPS``.
"""

from __future__ import annotations

import os
from dataclasses import replace

import numpy as np

from ..analysis import fluid
from ..analysis.framecount import (expected_seg_repair_frames,
                                   model_hier_frames,
                                   model_seg_allgather_trunk_frames,
                                   model_seg_bcast_trunk_frames,
                                   model_seg_reduce_trunk_frames,
                                   model_seg_scatter_trunk_frames)
from ..core.segment import (plan_segments, plan_transport,
                            seg_nack_datagram_count,
                            seg_nack_frame_count)
from ..mpi.ops import SUM
from ..runtime import run_spmd
from ..simnet import quiet
from ..simnet.calibration import FAST_ETHERNET_SWITCH
from .harness import measure_bcast
from .sweep import AreaSpec, Family, find_series, metric, register_area

FIXED = FAST_ETHERNET_SWITCH
AUTO = replace(FAST_ETHERNET_SWITCH, segment_bytes="auto")
QUIET = quiet(FIXED)
QUIET_AUTO = quiet(AUTO)


def _fluid_enabled() -> bool:
    """May the analytic fluid backend stand in for the DES?  On by
    default; ``REPRO_FLUID=0`` forces every case to simulate (used by
    the parity tests to prove both paths produce the same document)."""
    return os.environ.get("REPRO_FLUID", "1") != "0"


def _env_reps(default: int) -> int:
    """Full-scale rep count (gate scales never read the environment)."""
    return int(os.environ.get("REPRO_BENCH_REPS", str(default)))


# ---------------------------------------------------------------------------
# induced-loss machinery (verbatim semantics from the bespoke scripts)
# ---------------------------------------------------------------------------
def _drop_first_copy(unit_of):
    """Filter dropping the first arrival of each distinct data unit."""
    seen = set()

    def flt(dgram):
        unit = unit_of(dgram)
        if unit is None or unit in seen:
            return False
        seen.add(unit)
        return True

    return flt


def _seg_unit(dgram):
    """A ``mcast-seg`` datagram whose batch holds a segment ≡ 3 mod 8."""
    if dgram.kind != "mcast-seg":
        return None
    _root, seq, seg = dgram.payload
    segs = seg if isinstance(seg, tuple) else (seg,)
    if not any(s.index % 8 == 3 for s in segs):
        return None
    return (seq, min(s.index for s in segs))


def _any_data_unit(kind):
    """First-copy-per-broadcast unit, symmetric across impls (used by
    the frame-count comparison so a 1-segment payload still sees loss)."""
    def unit_of(dgram):
        if dgram.kind != kind:
            return None
        return (dgram.payload[1],)          # the broadcast's seq
    return unit_of


def _lossy_setup(unit_of):
    def setup(env):
        if env.rank % 2 == 1:
            env.comm.mcast.data_sock.drop_filter = _drop_first_copy(unit_of)
    return setup


# ===========================================================================
# area: segmented-bcast
# ===========================================================================
SEG_NPROCS = 4
#: wide enough for mcast-ack's full-payload retransmission storms
SEG_WINDOW_US = 150_000.0

#: variant -> (registry impl, NetParams, lossy?)
_SEG_VARIANTS = {
    "seg-fixed-lossy": ("mcast-seg-nack", FIXED, True),
    "seg-auto-lossy": ("mcast-seg-nack", AUTO, True),
    "seg-fixed-clean": ("mcast-seg-nack", FIXED, False),
    "seg-auto-clean": ("mcast-seg-nack", AUTO, False),
    "ack-lossy": ("mcast-ack", FIXED, True),
    "p2p-clean": ("p2p-binomial", FIXED, False),
    "policy-clean": ("auto", AUTO, False),
}
_SEG_VARIANTS_FULL = dict(_SEG_VARIANTS)
_SEG_VARIANTS_FULL["seg-730-lossy"] = (
    "mcast-seg-nack", replace(FIXED, segment_bytes=730), True)


def _seg_sizes(scale: str) -> tuple:
    return (12_000,) if scale == "gate" else (1000, 12_000, 48_000)


def _seg_reps(scale: str) -> int:
    return 3 if scale == "gate" else _env_reps(20)


def _seg_loss_unit(impl: str, plan: str):
    """The bespoke scripts' per-impl induced-loss units: the fixed
    per-segment plan loses segments ≡ 3 mod 8, the batched auto plan
    and the ack baseline lose the first copy of each call's data."""
    if impl == "mcast-ack":
        return _any_data_unit("mcast-data")
    if plan == "auto":
        return _any_data_unit("mcast-seg")
    return _seg_unit


def seg_frames_case(scale, seed, impl, size, loss):
    """One quiet single-shot broadcast; stream/data/datagram counts."""
    if impl == "ack":
        registry_impl, params = "mcast-ack", QUIET
        plan = "fixed"
    elif impl == "seg-auto":
        registry_impl, params = "mcast-seg-nack", QUIET_AUTO
        plan = "auto"
    else:                                   # seg-fixed
        registry_impl, params = "mcast-seg-nack", QUIET
        plan = "fixed"
    setup = (_lossy_setup(_seg_loss_unit(registry_impl, plan))
             if loss == "induced" else None)
    payload = bytes(size)

    def main(env):
        env.comm.use_collectives(bcast=registry_impl)
        if setup is not None:
            setup(env)
        obj = payload if env.rank == 0 else None
        out = yield from env.comm.bcast(obj, 0)
        return out == payload

    result = run_spmd(SEG_NPROCS, main, params=params, seed=seed)
    assert all(result.returns), f"{impl}@{size}B/{loss}: corrupt payload"
    kinds = result.stats["frames_by_kind"]
    if registry_impl == "mcast-ack":
        stream = kinds.get("mcast-data", 0) + kinds.get("scout", 0)
        data = kinds.get("mcast-data", 0)
    else:
        stream = sum(kinds.get(k, 0) for k in
                     ("mcast-seg", "mcast-seg-hdr", "seg-report",
                      "seg-dec", "scout"))
        data = kinds.get("mcast-seg", 0)
    return {
        "frames_stream": stream,
        "frames_data": data,
        "datagrams_net": (result.stats["datagrams_sent"]
                          - kinds.get("p2p", 0)),
        "retransmissions": result.stats["retransmissions"],
    }


def seg_repair_case(scale, seed):
    """Seeded probabilistic loss vs ``expected_seg_repair_frames``."""
    n, loss, size = 8, 0.05, 96_000
    n_ops = 2 if scale == "gate" else 4

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        for _ in range(n_ops):
            out = yield from env.comm.bcast(
                bytes(size) if env.rank == 0 else None, 0)
            assert len(out) == size
        return True

    clean = run_spmd(n, main, params=QUIET_AUTO, seed=seed)
    lossy = run_spmd(n, main, params=replace(QUIET_AUTO, loss=loss),
                     seed=seed)
    assert all(clean.returns) and all(lossy.returns)
    nsegs = plan_transport(size, QUIET_AUTO).nsegs
    return {
        "frames_repair": (lossy.stats["frames_sent"]
                          - clean.stats["frames_sent"]),
        "frames_repair_expected":
            n_ops * expected_seg_repair_frames(n, nsegs, loss),
        "drops_lossy": lossy.stats["drops_lossy"],
    }


def seg_latency_case(scale, seed, variant, size):
    """Max-over-ranks bcast latency of one variant at one size."""
    variants = (_SEG_VARIANTS if scale == "gate" else _SEG_VARIANTS_FULL)
    impl, params, lossy = variants[variant]
    setup = (_lossy_setup(_seg_loss_unit(impl, "any")) if lossy else None)
    series = measure_bcast(
        impl, "switch", SEG_NPROCS, [size], reps=_seg_reps(scale),
        seed=seed, params=params, window_us=SEG_WINDOW_US, setup=setup,
        label=variant)
    lo, hi = series.spread(size)
    return {"latency_us_median": series.median(size),
            "latency_us_min": lo, "latency_us_max": hi}


def _seg_families(scale):
    sizes = _seg_sizes(scale)
    variants = (_SEG_VARIANTS if scale == "gate" else _SEG_VARIANTS_FULL)
    return [
        Family("frames", {"impl": ("seg-fixed", "seg-auto", "ack"),
                          "size": sizes, "loss": ("clean", "induced")},
               seg_frames_case),
        Family("repair", {}, seg_repair_case),
        Family("latency", {"variant": tuple(variants), "size": sizes},
               seg_latency_case),
    ]


def _seg_union(nsegs: int) -> list:
    return [i for i in range(nsegs) if i % 8 == 3]


def seg_post_frame_formula(doc):
    """Per-segment frame counts match the closed formula (criterion 2
    of the bespoke script), loss-free and with one repair round."""
    size = _seg_sizes(doc["scale"])[-1]
    nsegs = len(plan_segments(size, QUIET.segment_bytes))
    union = _seg_union(nsegs)

    def get(loss, name):
        return metric(doc, "frames", name, impl="seg-fixed",
                      size=size, loss=loss)

    assert get("clean", "frames_stream") == \
        seg_nack_frame_count(SEG_NPROCS, nsegs)
    assert get("clean", "frames_data") == nsegs
    assert get("clean", "retransmissions") == 0
    assert get("induced", "frames_stream") == \
        seg_nack_frame_count(SEG_NPROCS, nsegs, [len(union)])
    assert get("induced", "frames_data") == nsegs + len(union)
    assert get("induced", "retransmissions") == len(union)


def seg_post_beats_ack(doc):
    """Selective repair beats whole-payload retransmission on the wire
    at the many-segment end (criterion 1)."""
    size = _seg_sizes(doc["scale"])[-1]
    seg = metric(doc, "frames", "frames_stream", impl="seg-fixed",
                 size=size, loss="induced")
    ack = metric(doc, "frames", "frames_stream", impl="ack",
                 size=size, loss="induced")
    assert seg < ack, (f"seg-nack used {seg} frames at {size} B, "
                       f"ack only {ack}")


def seg_post_auto_plan(doc):
    """The crossover criterion (3): at every size the auto plan puts
    no more payload frames on the wire than mcast-ack under symmetric
    first-copy loss, and its loss-free datagram count matches the
    batched closed form."""
    for size in _seg_sizes(doc["scale"]):
        seg_data = metric(doc, "frames", "frames_data", impl="seg-auto",
                          size=size, loss="induced")
        ack_data = metric(doc, "frames", "frames_data", impl="ack",
                          size=size, loss="induced")
        assert seg_data <= ack_data, (
            f"auto seg-nack sent {seg_data} payload frames at {size} B, "
            f"mcast-ack only {ack_data}")
        tp = plan_transport(size, QUIET_AUTO)
        dg = metric(doc, "frames", "datagrams_net", impl="seg-auto",
                    size=size, loss="clean")
        assert dg == seg_nack_datagram_count(SEG_NPROCS, tp.nsegs,
                                             tp.batch)


def seg_post_repair_band(doc):
    """Criterion 5: measured seeded-loss repair traffic inside the
    [expected/3, 1.5*expected] model band."""
    entry = find_series(doc, "repair")
    measured = entry["metrics"]["frames_repair"]
    expected = entry["metrics"]["frames_repair_expected"]
    assert entry["metrics"]["drops_lossy"] > 0
    assert expected / 3 <= measured <= 1.5 * expected, (
        f"measured {measured} repair frames outside the model band "
        f"[{expected / 3:.0f}, {1.5 * expected:.0f}]")


def seg_post_policy_tracks(doc):
    """The payload-aware policy tracks the impl it chose per size
    (modulo the scout announcement + window jitter)."""
    from ..mpi.collective.policy import auto_impl

    for size in _seg_sizes(doc["scale"]):
        def med(variant):
            return metric(doc, "latency", "latency_us_median",
                          variant=variant, size=size)

        chosen = auto_impl("bcast", size, SEG_NPROCS, AUTO)
        ref = med("p2p-clean" if chosen == "p2p-binomial"
                  else "seg-auto-clean")
        assert med("policy-clean") <= ref * 1.35 + 400, (
            f"auto bcast median {med('policy-clean'):.0f} us at "
            f"{size} B vs chosen {chosen}'s {ref:.0f} us")


def seg_post_full_orderings(doc):
    """Full-scale-only latency orderings (criteria 1 and 4): seg-nack
    and the auto plan beat mcast-ack at the ≥32-segment end, and the
    auto plan's loss-free median beats the fixed plan's below the
    batching crossover."""
    if doc["scale"] != "full":
        return
    big = _seg_sizes("full")[-1]

    def med(variant, size):
        return metric(doc, "latency", "latency_us_median",
                      variant=variant, size=size)

    assert len(plan_segments(big, FIXED.segment_bytes)) >= 32
    assert med("seg-fixed-lossy", big) < med("ack-lossy", big)
    assert med("seg-auto-lossy", big) < med("ack-lossy", big)
    assert med("seg-auto-clean", 12_000) < med("seg-fixed-clean", 12_000)


register_area(AreaSpec(
    name="segmented-bcast",
    title="Segmented NACK-repair broadcast vs whole-payload "
          "retransmission, under loss",
    families=_seg_families,
    postconditions=(seg_post_frame_formula, seg_post_beats_ack,
                    seg_post_auto_plan, seg_post_repair_band,
                    seg_post_policy_tracks, seg_post_full_orderings),
))


# ===========================================================================
# area: fabric-scaling
# ===========================================================================
FAB_TOPOLOGY = "tree:2x4"
FAB_NPROCS = 8
FAB_SEG_OF = (0, 0, 0, 0, 1, 1, 1, 1)
FAB_IMPLS = ("p2p-binomial", "mcast-seg-nack", "hier-mcast", "auto")
_FAB_ENGINE = {"flat": "mcast-seg-nack", "hier": "hier-mcast"}


def _fab_sizes(scale: str) -> tuple:
    return (24_000,) if scale == "gate" else (2000, 24_000, 96_000)


def _fab_reps(scale: str) -> int:
    return 2 if scale == "gate" else max(5, _env_reps(20) // 4)


def _bcast_trunk(topology, nprocs, impl, size, n_ops, seed):
    def main(env):
        env.comm.use_collectives(bcast=impl)
        for _ in range(n_ops):
            data = yield from env.comm.bcast(
                bytes(size) if env.rank == 0 else None, 0)
            assert len(data) == size
        return True

    result = run_spmd(nprocs, main, topology=topology,
                      params=QUIET_AUTO, seed=seed)
    assert all(result.returns)
    return result.stats["frames_trunk"]


def _fab_per_call_des(impl, size, seed):
    """Per-call trunk frames measured by the simulator (two-op minus
    one-op, isolating channel-setup IGMP)."""
    one = _bcast_trunk(FAB_TOPOLOGY, FAB_NPROCS, impl, size, 1, seed)
    two = _bcast_trunk(FAB_TOPOLOGY, FAB_NPROCS, impl, size, 2, seed)
    return two - one


def fab_trunk_case(scale, seed, engine, size):
    """Trunk frames of ONE bcast (quiet, deterministic).  The fluid
    backend answers when its model is exact (same integer, no
    simulation); ``REPRO_FLUID=0`` forces the DES."""
    impl = _FAB_ENGINE[engine]
    if _fluid_enabled():
        trunk = fluid.trunk_frames_per_call("bcast", impl, FAB_SEG_OF,
                                            0, size, QUIET_AUTO)
        if trunk is not None:
            return {"frames_trunk_call": trunk}
    return {"frames_trunk_call": _fab_per_call_des(impl, size, seed)}


def fab_latency_case(scale, seed, impl, size):
    """Median over reps of the slowest rank's bcast duration (jittered
    platform, barrier-fenced reps)."""
    import statistics

    reps = _fab_reps(scale)

    def main(env):
        env.comm.use_collectives(bcast=impl)
        durations = []
        yield from env.comm.bcast(b"w" if env.rank == 0 else None, 0)
        for _ in range(reps):
            yield from env.comm.barrier()
            start = env.now
            data = yield from env.comm.bcast(
                bytes(size) if env.rank == 0 else None, 0)
            assert len(data) == size
            durations.append(env.now - start)
        return durations

    result = run_spmd(FAB_NPROCS, main, topology=FAB_TOPOLOGY,
                      params=AUTO, seed=seed)
    per_rep = [max(d[i] for d in result.returns) for i in range(reps)]
    return {"latency_us_median": statistics.median(per_rep)}


def fab_audit_case(scale, seed):
    """The policy's pick equals the modeled argmin for every benched
    (op, size), loss-free and at 10% loss (asserted in-runner)."""
    from ..mpi.collective.policy import (TopoInfo, auto_impl,
                                         modeled_frame_costs)

    topo = TopoInfo(seg_of_rank=FAB_SEG_OF, contiguous=True)
    picks = []
    for params, tag in ((QUIET_AUTO, "loss-free"),
                        (replace(QUIET_AUTO, loss=0.10), "10% loss")):
        for op in ("bcast", "reduce", "allreduce"):
            for size in _fab_sizes(scale):
                costs = modeled_frame_costs(op, size, FAB_NPROCS,
                                            params, topo, root=0)
                pick = auto_impl(op, size, FAB_NPROCS, params,
                                 topo=topo)
                assert costs[pick] == min(costs.values()), (
                    f"auto {op}@{size}B ({tag}) picked {pick} "
                    f"({costs[pick]:.0f} modeled frames); costs {costs}")
                picks.append(f"{tag}:{op}@{size}->{pick}")
    return {"audited": len(picks), "picks": ";".join(picks)}


def fab_dispatch_case(scale, seed):
    """Every rank of an auto bcast dispatches the modeled argmin."""
    from ..mpi.collective.policy import TopoInfo, auto_impl

    sizes = _fab_sizes(scale)

    def main(env):
        env.comm.use_collectives(bcast="auto")
        for size in sizes:
            data = yield from env.comm.bcast(
                bytes(size) if env.rank == 0 else None, 0)
            assert len(data) == size
        return [name for op, name in env.comm.impl_log if op == "bcast"]

    result = run_spmd(FAB_NPROCS, main, topology=FAB_TOPOLOGY,
                      params=QUIET_AUTO, seed=seed)
    topo = TopoInfo(seg_of_rank=FAB_SEG_OF, contiguous=True)
    expected = [auto_impl("bcast", size, FAB_NPROCS, QUIET_AUTO,
                          topo=topo) for size in sizes]
    for log in result.returns:
        assert log == expected, (log, expected)
    return {"dispatch": ",".join(expected)}


def _fab_families(scale):
    sizes = _fab_sizes(scale)
    return [
        Family("trunk", {"engine": ("flat", "hier"), "size": sizes},
               fab_trunk_case),
        Family("latency", {"impl": FAB_IMPLS, "size": sizes},
               fab_latency_case),
        Family("auto-audit", {}, fab_audit_case),
        Family("auto-dispatch", {}, fab_dispatch_case),
    ]


def fab_post_trunk_models(doc):
    """Hier-mcast bcast puts strictly fewer frames on the trunks than
    the flat engine, and both match the closed forms exactly."""
    for size in _fab_sizes(doc["scale"]):
        nsegs = plan_transport(size, QUIET_AUTO).nsegs
        flat = metric(doc, "trunk", "frames_trunk_call", engine="flat",
                      size=size)
        hier = metric(doc, "trunk", "frames_trunk_call", engine="hier",
                      size=size)
        assert hier < flat, (
            f"hier-mcast bcast at {size} B crossed the trunks {hier} "
            f"times, the flat engine only {flat}")
        assert flat == model_seg_bcast_trunk_frames(FAB_SEG_OF, 0, nsegs)
        assert hier == model_hier_frames("bcast", FAB_SEG_OF, 0, size,
                                         QUIET_AUTO)[1]


def fab_post_latency_sanity(doc):
    """The trunk savings are not bought with pathological slowdowns."""
    for size in _fab_sizes(doc["scale"]):
        hier = metric(doc, "latency", "latency_us_median",
                      impl="hier-mcast", size=size)
        flat = metric(doc, "latency", "latency_us_median",
                      impl="mcast-seg-nack", size=size)
        assert hier < 3 * flat, (
            f"hier-mcast median {hier:.0f} us at {size} B vs flat "
            f"{flat:.0f} us")


register_area(AreaSpec(
    name="fabric-scaling",
    title="Hierarchical vs flat collectives on a two-tier switch "
          "fabric (trunk frames, auto policy, latency)",
    families=_fab_families,
    postconditions=(fab_post_trunk_models, fab_post_latency_sanity),
))


# ===========================================================================
# area: deep-fabric
# ===========================================================================
#: topology -> (n, seg_of_rank, per-segment switch-tree paths)
DEEP_FABRICS = {
    "tree:2x2x2": (8, (0, 0, 1, 1, 2, 2, 3, 3),
                   ((0, 0), (0, 1), (1, 0), (1, 1))),
    "tree:[4,8,2]": (14, (0,) * 4 + (1,) * 8 + (2,) * 2,
                     ((0,), (1,), (2,))),
}

DEEP_FLAT_IMPL = {"bcast": "mcast-seg-nack",
                  "reduce": "mcast-seg-combine",
                  "scatter": "mcast-seg-root",
                  "gather": "mcast-seg-root-follow",
                  "allgather": "mcast-seg-paced"}


def _deep_size(scale: str) -> int:
    return 24_000 if scale == "gate" else 48_000


def _deep_flat_ops(scale: str) -> tuple:
    if scale == "gate":
        return ("bcast", "scatter", "gather")
    return ("bcast", "reduce", "scatter", "gather", "allgather")


def _deep_hier_ops(scale: str) -> tuple:
    if scale == "gate":
        return ("bcast", "gather")
    return ("bcast", "reduce", "scatter", "gather", "allgather")


def _deep_hier_exact_ops(scale: str) -> tuple:
    return ("bcast",) if scale == "gate" else ("bcast", "reduce")


def _deep_win_ops(scale: str, fabric: str) -> tuple:
    if scale == "gate":
        return ("gather",)
    ops = ["reduce", "gather", "scatter", "allgather"]
    if fabric == "tree:[4,8,2]":
        ops.append("bcast")     # few leaders vs many ranks
    return tuple(ops)


def _op_body(op, size):
    def body(env):
        n = env.comm.size
        if op == "bcast":
            out = yield from env.comm.bcast(
                bytes(size) if env.rank == 0 else None, 0)
            assert len(out) == size
        elif op == "reduce":
            # float64 payload of exactly `size` bytes: partials keep
            # their size through the fold at every hierarchy level
            yield from env.comm.reduce(
                np.zeros(size // 8, dtype=np.float64), SUM, 0)
        elif op == "scatter":
            objs = ([bytes(size // n)] * n if env.rank == 0 else None)
            out = yield from env.comm.scatter(objs, 0)
            assert len(out) == size // n
        elif op == "gather":
            yield from env.comm.gather(bytes(size // n), 0)
        elif op == "allgather":
            out = yield from env.comm.allgather(bytes(size // n))
            assert len(out) == n
        else:  # pragma: no cover - config error
            raise KeyError(op)
    return body


def _deep_trunk(topology, n, op, impl, size, n_ops, seed):
    body = _op_body(op, size)

    def main(env):
        env.comm.use_collectives(**{op: impl})
        for _ in range(n_ops):
            yield from body(env)
        return True

    result = run_spmd(n, main, topology=topology, params=QUIET_AUTO,
                      seed=seed)
    assert all(result.returns)
    return result.stats["frames_trunk"]


def _deep_per_call(topology, n, op, impl, size, seed):
    """Per-call trunk frames (two-op minus one-op, as upstream)."""
    return (_deep_trunk(topology, n, op, impl, size, 2, seed)
            - _deep_trunk(topology, n, op, impl, size, 1, seed))


def _deep_case(scale, seed, fabric, op, impl):
    """One per-call trunk measurement, fluid-first: when the frame
    model for (op, impl) is exact, the analytic backend supplies the
    integer the DES would measure (the area postconditions assert the
    equality whenever the DES does run); otherwise — estimate-grade
    models, lossy platforms, ``REPRO_FLUID=0`` — fall back to the
    two-op-minus-one-op simulation."""
    n, seg_of, paths = DEEP_FABRICS[fabric]
    size = _deep_size(scale)
    if _fluid_enabled():
        trunk = fluid.trunk_frames_per_call(op, impl, seg_of, 0, size,
                                            QUIET_AUTO, paths)
        if trunk is not None:
            return {"frames_trunk_call": trunk}
    return {"frames_trunk_call":
            _deep_per_call(fabric, n, op, impl, size, seed)}


def deep_flat_case(scale, seed, fabric, op):
    return _deep_case(scale, seed, fabric, op, DEEP_FLAT_IMPL[op])


def deep_hier_case(scale, seed, fabric, op):
    return _deep_case(scale, seed, fabric, op, "hier-mcast")


def deep_repair_case(scale, seed):
    """The loss-model closed loop at the legacy [x/4, 2x] band."""
    n, loss = 8, 0.05
    n_ops = 2 if scale == "gate" else 4
    size = 48_000 if scale == "gate" else 96_000

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        for _ in range(n_ops):
            out = yield from env.comm.bcast(
                bytes(size) if env.rank == 0 else None, 0)
            assert len(out) == size
        return True

    clean = run_spmd(n, main, params=QUIET_AUTO, seed=seed)
    lossy = run_spmd(n, main, params=replace(QUIET_AUTO, loss=loss),
                     seed=seed)
    assert all(clean.returns) and all(lossy.returns)
    nsegs = plan_transport(size, QUIET_AUTO).nsegs
    return {
        "frames_repair": (lossy.stats["frames_sent"]
                          - clean.stats["frames_sent"]),
        "frames_repair_expected":
            n_ops * expected_seg_repair_frames(n, nsegs, loss),
        "drops_lossy": lossy.stats["drops_lossy"],
    }


def deep_audit_case(scale, seed, fabric):
    """Auto model-consistency on deep trees (asserted in-runner)."""
    from ..mpi.collective.policy import (TopoInfo, auto_impl,
                                         modeled_frame_costs)

    n, seg_of, paths = DEEP_FABRICS[fabric]
    topo = TopoInfo(seg_of_rank=seg_of, contiguous=True, paths=paths)
    picks = []
    for params, tag in ((QUIET_AUTO, "loss-free"),
                        (replace(QUIET_AUTO, loss=0.05), "5% loss")):
        for op in ("bcast", "reduce", "allreduce", "scatter",
                   "gather", "allgather"):
            for size in (2000, _deep_size(scale)):
                costs = modeled_frame_costs(op, size, n, params, topo,
                                            root=0)
                pick = auto_impl(op, size, n, params, topo=topo)
                assert costs[pick] == min(costs.values()), (
                    f"auto {op}@{size}B on {fabric} ({tag}) picked "
                    f"{pick}; costs {costs}")
                picks.append(f"{tag}:{op}@{size}->{pick}")
    return {"audited": len(picks), "picks": ";".join(picks)}


def deep_dispatch_case(scale, seed):
    """Every rank of an auto gather + bcast on the three-tier tree
    dispatches the modeled argmin."""
    from ..mpi.collective.policy import TopoInfo, auto_impl

    fabric = "tree:2x2x2"
    n, seg_of, paths = DEEP_FABRICS[fabric]
    size = _deep_size(scale)

    def main(env):
        env.comm.use_collectives(gather="auto", bcast="auto")
        yield from env.comm.gather(bytes(size // env.comm.size), 0)
        out = yield from env.comm.bcast(
            bytes(size) if env.rank == 0 else None, 0)
        assert len(out) == size
        return [name for _op, name in env.comm.impl_log]

    result = run_spmd(n, main, topology=fabric, params=QUIET_AUTO,
                      seed=seed)
    topo = TopoInfo(seg_of_rank=seg_of, contiguous=True, paths=paths)
    expected = [auto_impl("gather", size // n, n, QUIET_AUTO, topo=topo),
                auto_impl("bcast", size, n, QUIET_AUTO, topo=topo)]
    for log in result.returns:
        assert log == expected, (log, expected)
    return {"dispatch": ",".join(expected)}


def _deep_families(scale):
    fabrics = tuple(DEEP_FABRICS)
    return [
        Family("trunk-flat", {"fabric": fabrics,
                              "op": _deep_flat_ops(scale)},
               deep_flat_case),
        Family("trunk-hier", {"fabric": fabrics,
                              "op": _deep_hier_ops(scale)},
               deep_hier_case),
        Family("repair", {}, deep_repair_case),
        Family("auto-audit", {"fabric": fabrics}, deep_audit_case),
        Family("auto-dispatch", {}, deep_dispatch_case),
    ]


def deep_post_flat_models(doc):
    """Flat segmented trunk counts == closed forms on deep trees."""
    size = _deep_size(doc["scale"])
    for fabric, (n, seg_of, paths) in DEEP_FABRICS.items():
        nsegs = plan_transport(size, QUIET_AUTO).nsegs
        share = plan_transport(size // n, QUIET_AUTO).nsegs
        models = {
            "bcast": model_seg_bcast_trunk_frames(seg_of, 0, nsegs,
                                                  paths),
            "reduce": model_seg_reduce_trunk_frames(seg_of, 0, nsegs,
                                                    paths),
            "scatter": model_seg_scatter_trunk_frames(
                seg_of, 0, (n - 1) * share, paths),
            "gather": model_seg_reduce_trunk_frames(seg_of, 0, share,
                                                    paths),
            "allgather": model_seg_allgather_trunk_frames(seg_of, share,
                                                          paths),
        }
        for op in _deep_flat_ops(doc["scale"]):
            sim = metric(doc, "trunk-flat", "frames_trunk_call",
                         fabric=fabric, op=op)
            assert sim == models[op], (
                f"flat {op} on {fabric}: sim {sim} != model "
                f"{models[op]}")


def deep_post_hier_models_and_wins(doc):
    """Hier bcast/reduce trunk counts == the phase-walking model, and
    hier strictly below flat where confinement wins."""
    size = _deep_size(doc["scale"])
    for fabric, (n, seg_of, paths) in DEEP_FABRICS.items():
        for op in _deep_hier_exact_ops(doc["scale"]):
            _f, trunk_model = model_hier_frames(op, seg_of, 0, size,
                                                QUIET_AUTO, paths)
            sim = metric(doc, "trunk-hier", "frames_trunk_call",
                         fabric=fabric, op=op)
            assert sim == trunk_model, (
                f"hier {op} on {fabric}: sim {sim} != model "
                f"{trunk_model}")
        for op in _deep_win_ops(doc["scale"], fabric):
            flat = metric(doc, "trunk-flat", "frames_trunk_call",
                          fabric=fabric, op=op)
            hier = metric(doc, "trunk-hier", "frames_trunk_call",
                          fabric=fabric, op=op)
            assert hier < flat, (
                f"hier {op} on {fabric} crossed the trunks {hier} "
                f"times, the flat engine only {flat}")


def deep_post_repair_band(doc):
    """Measured repair traffic inside the legacy [x/4, 2x] band."""
    entry = find_series(doc, "repair")
    measured = entry["metrics"]["frames_repair"]
    expected = entry["metrics"]["frames_repair_expected"]
    assert entry["metrics"]["drops_lossy"] > 0
    assert expected / 4 <= measured <= 2 * expected, (
        f"measured {measured} repair frames outside the model band "
        f"[{expected / 4:.0f}, {2 * expected:.0f}]")


register_area(AreaSpec(
    name="deep-fabric",
    title="Flat vs hierarchical collectives on three-tier and "
          "heterogeneous switch trees, with the loss closed loop",
    families=_deep_families,
    postconditions=(deep_post_flat_models,
                    deep_post_hier_models_and_wins,
                    deep_post_repair_band),
))


# ===========================================================================
# area: segmented-reduce
# ===========================================================================
SEGRED_NPROCS = 4

#: op -> {role: registry impl} — the reduction-side rivals of PR 3
_SEGRED_IMPLS = {
    "reduce": {"p2p": "p2p-binomial", "seg": "mcast-seg-combine"},
    "allreduce": {"p2p": "p2p-reduce-bcast", "seg": "mcast-seg-nack"},
}


def _segred_sizes(scale: str) -> tuple:
    return (12_000,) if scale == "gate" else (1000, 12_000, 48_000)


def _segred_reps(scale: str) -> int:
    return 2 if scale == "gate" else max(8, _env_reps(20) // 2)


def _segred_drop_unit(want=None):
    """First-copy unit of each ``mcast-seg`` datagram whose leading
    segment index satisfies ``want`` (default all) — the induced-loss
    policy of the old ``bench_segmented_reduce.py``."""
    def unit_of(dgram):
        if dgram.kind != "mcast-seg":
            return None
        seg = dgram.payload[2]
        first = seg[0].index if isinstance(seg, tuple) else seg.index
        if want is not None and not want(first):
            return None
        return (dgram.payload[0], dgram.payload[1], first)
    return unit_of


def _segred_run(op, impl, size, params, seed, lossy_ranks=(), want=None):
    """One quiet single-shot reduce/allreduce; asserts the numeric
    result on every rank, returns (stats, impl_log of rank 0)."""
    expected = float(sum(range(1, SEGRED_NPROCS + 1)))

    def main(env):
        env.comm.use_collectives(**{op: impl})
        if env.rank in lossy_ranks:
            env.comm.mcast.data_sock.drop_filter = _drop_first_copy(
                _segred_drop_unit(want))
        arr = np.full(max(1, size // 8), float(env.rank + 1),
                      dtype=np.float64)
        if op == "reduce":
            out = yield from env.comm.reduce(arr, SUM, 0)
            ok = out is None or bool(np.all(out == expected))
        else:
            out = yield from env.comm.allreduce(arr, SUM)
            ok = bool(np.all(out == expected))
        return ok, list(env.comm.impl_log)

    result = run_spmd(SEGRED_NPROCS, main, params=params, seed=seed)
    assert all(ok for ok, _log in result.returns), (op, impl, size)
    return result.stats, result.returns[0][1]


def _segred_null_frames(seed):
    """Wireup-only frame baseline: (p2p frames, total frames) of a run
    with no collective, subtracted from the measured runs."""
    result = run_spmd(SEGRED_NPROCS, lambda env: iter(()),
                      params=QUIET_AUTO, seed=seed)
    return (result.stats["frames_by_kind"].get("p2p", 0),
            result.stats["frames_sent"])


def segred_frames_case(scale, seed, op, size):
    """Payload frames on the wire: the segmented engine vs the p2p
    default, loss-free (each contribution crosses the wire once either
    way; the broadcast half of the segmented allreduce is ONE stream
    against the tree's N-1 re-sends)."""
    from ..analysis.framecount import model_p2p_tree_frames

    base_p2p, _ = _segred_null_frames(seed)
    p2p_stats, _ = _segred_run(op, _SEGRED_IMPLS[op]["p2p"], size,
                               QUIET_AUTO, seed)
    seg_stats, _ = _segred_run(op, _SEGRED_IMPLS[op]["seg"], size,
                               QUIET_AUTO, seed)
    p2p = p2p_stats["frames_by_kind"].get("p2p", 0) - base_p2p
    seg = seg_stats["frames_by_kind"].get("mcast-seg", 0)
    if op == "reduce":
        assert p2p == model_p2p_tree_frames(QUIET_AUTO, SEGRED_NPROCS,
                                            size)
    return {"frames_payload_p2p": p2p, "frames_payload_seg": seg}


def segred_formulas_case(scale, seed):
    """Loss-free stream frames == the closed forms, with the fixed
    per-segment plan (the formulas count segments exactly)."""
    from ..analysis.framecount import (model_seg_allreduce_frames,
                                       model_seg_reduce_frames)

    size = _segred_sizes(scale)[-1]
    nsegs = len(plan_segments(size, QUIET.segment_bytes))

    def stream(stats):
        kinds = stats["frames_by_kind"]
        return sum(kinds.get(k, 0) for k in
                   ("mcast-seg", "mcast-seg-hdr", "seg-report",
                    "seg-dec", "scout"))

    red_stats, _ = _segred_run("reduce", "mcast-seg-combine", size,
                               QUIET, seed)
    assert stream(red_stats) == model_seg_reduce_frames(SEGRED_NPROCS,
                                                        nsegs)
    assert red_stats["retransmissions"] == 0
    ar_stats, _ = _segred_run("allreduce", "mcast-seg-nack", size,
                              QUIET, seed)
    assert stream(ar_stats) == model_seg_allreduce_frames(SEGRED_NPROCS,
                                                          nsegs)
    return {"nsegs": nsegs,
            "frames_stream_reduce": stream(red_stats),
            "frames_stream_allreduce": stream(ar_stats)}


def segred_repair_case(scale, seed):
    """Selective repair: induced loss at the root (the only consumer of
    reduce data) re-multicasts exactly the lost segments, never whole
    payloads."""
    size = _segred_sizes(scale)[-1]
    stats, _ = _segred_run("reduce", "mcast-seg-combine", size, QUIET,
                           seed, lossy_ranks=(0,),
                           want=lambda first: first % 8 == 3)
    nsegs = len(plan_segments(size, QUIET.segment_bytes))
    lost_per_turn = len([i for i in range(nsegs) if i % 8 == 3])
    assert stats["retransmissions"] == (SEGRED_NPROCS - 1) * lost_per_turn
    assert (stats["frames_by_kind"]["mcast-seg"]
            == (SEGRED_NPROCS - 1) * (nsegs + lost_per_turn))
    return {"retransmissions": stats["retransmissions"],
            "frames_data": stats["frames_by_kind"]["mcast-seg"]}


def segred_auto_case(scale, seed, op, size):
    """The payload-aware policy: the per-call choice matches the
    closed-form prediction, measured in **total** frames on the wire
    (control traffic included — it is what makes p2p win small
    payloads)."""
    from ..mpi.collective.policy import auto_impl

    _, base_total = _segred_null_frames(seed)
    expect = auto_impl(op, size, SEGRED_NPROCS, QUIET_AUTO)
    auto_stats, log = _segred_run(op, "auto", size, QUIET_AUTO, seed)
    chosen = [name for o, name in log if o == op]
    assert expect in chosen, (op, size, log, expect)
    p2p_stats, _ = _segred_run(op, _SEGRED_IMPLS[op]["p2p"], size,
                               QUIET_AUTO, seed)
    seg_stats, _ = _segred_run(op, _SEGRED_IMPLS[op]["seg"], size,
                               QUIET_AUTO, seed)
    best = min(p2p_stats["frames_sent"],
               seg_stats["frames_sent"]) - base_total
    mine = auto_stats["frames_sent"] - base_total
    return {"frames_auto": mine, "frames_best_fixed": best,
            "pick": expect}


def segred_latency_case(scale, seed, op, size):
    """Median latencies of the p2p default, the segmented engine and
    "auto" under the jittered platform (barrier-fenced reps)."""
    import statistics

    reps = _segred_reps(scale)
    out = {}
    for role, impl in (("p2p", _SEGRED_IMPLS[op]["p2p"]),
                       ("seg", _SEGRED_IMPLS[op]["seg"]),
                       ("auto", "auto")):
        def main(env):
            env.comm.use_collectives(**{op: impl})
            durations = []
            arr = np.full(max(1, size // 8), float(env.rank + 1),
                          dtype=np.float64)
            for _ in range(reps):
                yield from env.comm.barrier()
                start = env.now
                if op == "reduce":
                    yield from env.comm.reduce(arr, SUM, 0)
                else:
                    yield from env.comm.allreduce(arr, SUM)
                durations.append(env.now - start)
            return durations

        result = run_spmd(SEGRED_NPROCS, main, params=AUTO, seed=seed)
        per_rep = [max(d[i] for d in result.returns)
                   for i in range(reps)]
        out[f"latency_us_{role}"] = statistics.median(per_rep)
    return out


def _segred_families(scale):
    sizes = _segred_sizes(scale)
    ops = tuple(_SEGRED_IMPLS)
    return [
        Family("frames", {"op": ops, "size": sizes},
               segred_frames_case),
        Family("formulas", {}, segred_formulas_case),
        Family("repair", {}, segred_repair_case),
        Family("auto", {"op": ops, "size": sizes}, segred_auto_case),
        Family("latency", {"op": ops, "size": sizes},
               segred_latency_case),
    ]


def segred_post_payload_frames(doc):
    """Segmented reduce never exceeds p2p in payload frames; the
    composed segmented allreduce beats p2p outright at every size."""
    for size in _segred_sizes(doc["scale"]):
        red_seg = metric(doc, "frames", "frames_payload_seg",
                         op="reduce", size=size)
        red_p2p = metric(doc, "frames", "frames_payload_p2p",
                         op="reduce", size=size)
        assert red_seg <= red_p2p, (size, red_seg, red_p2p)
        ar_seg = metric(doc, "frames", "frames_payload_seg",
                        op="allreduce", size=size)
        ar_p2p = metric(doc, "frames", "frames_payload_p2p",
                        op="allreduce", size=size)
        assert ar_seg < ar_p2p, (size, ar_seg, ar_p2p)


def segred_post_auto_never_worse(doc):
    """The policy's pick is never worse than the best fixed entry in
    measured total frames — the auto-never-worse criterion."""
    for size in _segred_sizes(doc["scale"]):
        for op in _SEGRED_IMPLS:
            mine = metric(doc, "auto", "frames_auto", op=op, size=size)
            best = metric(doc, "auto", "frames_best_fixed", op=op,
                          size=size)
            assert mine <= best, (
                f"auto {op} at {size} B put {mine} frames on the "
                f"wire; the best fixed entry needs only {best}")


def segred_post_auto_latency_tracks(doc):
    """"auto" resolves reduce/allreduce locally (zero announcement
    cost): its median must track the faster fixed entry (generous
    slack — separately seeded jitter draws)."""
    for size in _segred_sizes(doc["scale"]):
        for op in _SEGRED_IMPLS:
            auto = metric(doc, "latency", "latency_us_auto", op=op,
                          size=size)
            best = min(metric(doc, "latency", "latency_us_p2p", op=op,
                              size=size),
                       metric(doc, "latency", "latency_us_seg", op=op,
                              size=size))
            assert auto <= best * 1.5, (
                f"auto {op} median {auto:.0f} us at {size} B vs best "
                f"fixed {best:.0f} us")


register_area(AreaSpec(
    name="segmented-reduce",
    title="Segmented reduce/allreduce vs the MPICH p2p trees, plus "
          "the payload-aware auto policy",
    families=_segred_families,
    postconditions=(segred_post_payload_frames,
                    segred_post_auto_never_worse,
                    segred_post_auto_latency_tracks),
))


# ===========================================================================
# area: sim-throughput
# ===========================================================================
#: topology -> rank count of the thousand-host throughput workloads
THRU_FABRICS = {"tree:8x8": 64, "tree:32x32": 1024}
THRU_SIZE = 24_000

#: generous wall budget (seconds) for the 1024-host broadcast — the
#: make-smoke guard: an order-of-magnitude kernel regression blows it,
#: scheduler jitter on a loaded CI box does not
THRU_BUDGET_S = 60.0


def _thru_fabrics(scale: str) -> tuple:
    if scale == "gate":
        return tuple(THRU_FABRICS)
    return ("tree:8x8", "tree:16x16", "tree:32x32")


def _thru_nprocs(fabric: str) -> int:
    if fabric in THRU_FABRICS:
        return THRU_FABRICS[fabric]
    segs, hosts = fabric.split(":")[1].split("x")
    return int(segs) * int(hosts)


def thru_workload_case(scale, seed, fabric):
    """One flat segmented broadcast across the whole fabric: exact
    event/clock counters (any increase is a kernel regression) plus
    banded wall-clock and events/sec."""
    import time

    n = _thru_nprocs(fabric)

    def main(env):
        env.comm.use_collectives(bcast="mcast-seg-nack")
        out = yield from env.comm.bcast(
            bytes(THRU_SIZE) if env.rank == 0 else None, 0)
        assert len(out) == THRU_SIZE
        return True

    t0 = time.perf_counter()
    result = run_spmd(n, main, topology=fabric, params=QUIET_AUTO,
                      seed=seed)
    wall = time.perf_counter() - t0
    assert all(result.returns)
    sim = result.cluster.sim
    return {
        "events": sim.processed,
        "peak_live": sim.peak_live,
        "sim_clock_us": result.sim_time_us,
        "wall_s": round(wall, 3),
        "rate_events_per_s": round(sim.processed / wall, 1),
    }


def thru_sweep_case(scale, seed, mode):
    """Wall seconds of the whole deep-fabric gate sweep, with the
    analytic fluid backend answering eligible cases (``fluid``) and
    with every case simulated (``des``).  The committed pair is the
    recorded evidence of the backend's speedup."""
    import time

    from .sweep import run_area as _run_area

    old = os.environ.get("REPRO_FLUID")
    os.environ["REPRO_FLUID"] = "1" if mode == "fluid" else "0"
    try:
        t0 = time.perf_counter()
        doc = _run_area("deep-fabric", scale="gate", workers=1,
                        check=True)
        wall = time.perf_counter() - t0
    finally:
        if old is None:
            os.environ.pop("REPRO_FLUID", None)
        else:
            os.environ["REPRO_FLUID"] = old
    return {"cases": len(doc["series"]), "wall_s": round(wall, 3)}


def _thru_families(scale):
    return [
        Family("workload", {"fabric": _thru_fabrics(scale)},
               thru_workload_case),
        Family("gate-sweep", {"mode": ("fluid", "des")},
               thru_sweep_case),
    ]


def thru_post_smoke_budget(doc):
    """The 1024-host broadcast completes inside the smoke budget."""
    wall = metric(doc, "workload", "wall_s", fabric="tree:32x32")
    assert wall < THRU_BUDGET_S, (
        f"1024-host bcast took {wall:.1f}s — over the {THRU_BUDGET_S:.0f}s "
        f"smoke budget; the kernel has regressed an order of magnitude")


def thru_post_fluid_wins(doc):
    """The analytic backend strictly beats running every case in the
    DES (2x floor — the committed evidence shows ~5x)."""
    fluid_wall = metric(doc, "gate-sweep", "wall_s", mode="fluid")
    des_wall = metric(doc, "gate-sweep", "wall_s", mode="des")
    assert metric(doc, "gate-sweep", "cases", mode="fluid") == \
        metric(doc, "gate-sweep", "cases", mode="des")
    assert fluid_wall * 2 <= des_wall, (
        f"fluid sweep {fluid_wall:.3f}s vs DES {des_wall:.3f}s — the "
        f"backend no longer pays for itself")


def thru_post_trace_off_wall(doc):
    """Tracing off costs ~nothing: the flight-recorder hooks on the
    frame/round/dispatch hot paths are one predictable ``recorder is
    None`` branch each, so with ``REPRO_TRACE`` unset the workload must
    process the *exact* committed event count in wall time within the
    usual band of the committed (pre-hook) baseline."""
    import json

    from .sweep import WALL_REL_TOL, baseline_path, find_series

    path = baseline_path("sim-throughput")
    if not path.exists():
        return                  # nothing committed to hold against
    baseline = json.loads(path.read_text())
    if (baseline.get("scale") != doc.get("scale")
            or baseline.get("base_seed") != doc.get("base_seed")):
        return                  # ad-hoc run; the gate diff still applies
    for fabric in _thru_fabrics(doc.get("scale", "gate")):
        try:
            base = find_series(baseline, "workload", fabric=fabric)
            fresh = find_series(doc, "workload", fabric=fabric)
        except KeyError:
            continue
        assert fresh["metrics"]["events"] == base["metrics"]["events"], (
            f"workload[{fabric}]: processed {fresh['metrics']['events']} "
            f"events vs the committed {base['metrics']['events']} — the "
            f"tracing hooks must schedule nothing")
        base_wall = base["metrics"]["wall_s"]
        wall = fresh["metrics"]["wall_s"]
        assert wall <= base_wall * (1.0 + WALL_REL_TOL), (
            f"workload[{fabric}]: {wall:.3f}s wall vs committed "
            f"{base_wall:.3f}s — tracing-off overhead regressed past "
            f"the {WALL_REL_TOL:.0f}x band")


register_area(AreaSpec(
    name="sim-throughput",
    title="Simulator speed: events/sec and wall-clock of thousand-host "
          "fabrics, and the analytic-backend speedup",
    families=_thru_families,
    postconditions=(thru_post_smoke_budget, thru_post_fluid_wins,
                    thru_post_trace_off_wall),
))
