"""Wire-activity timelines: see the algorithms happen.

:func:`record_timeline` runs an SPMD program with full frame tracing and
returns the chronological list of wire events; :func:`ascii_timeline`
renders them as a Gantt-like strip per frame kind.  The scout-then-
multicast structure of the paper's Fig. 3/4 becomes directly visible::

    scout        |  ##  ## ##                                         |
    mcast-data   |            ########                                |
    p2p          |                                                    |

Used by ``examples/wire_timeline.py`` and the trace-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..runtime import run_spmd
from ..simnet.calibration import NetParams
from ..simnet.trace import Tracer

__all__ = ["WireEvent", "record_timeline", "ascii_timeline",
           "kinds_in_order"]


@dataclass(frozen=True)
class WireEvent:
    """One frame put on a wire: start time, duration, kind."""

    start_us: float
    duration_us: float
    kind: str


def record_timeline(n: int, main: Callable, *, topology: str = "switch",
                    params: Optional[NetParams] = None, seed: int = 0,
                    collectives: Optional[dict] = None,
                    skip_before_us: float = 0.0) -> list[WireEvent]:
    """Run ``main`` under tracing; returns wire events (sorted by time).

    ``skip_before_us`` drops setup traffic (e.g. MPI init) from the
    result.  Wire durations are computed from frame wire sizes at the
    cluster's link rate.
    """
    # NetStats is one shared object per cluster, so attaching a Tracer
    # from any rank sees every host's sends; run_spmd builds the cluster
    # internally, so hook via a wrapper program whose first act attaches
    # the tracer to the recorder slot (the old implementation monkey-
    # patched ``record_send`` here and could not see frame addressing).
    holder: dict[str, object] = {}

    def wrapper(env):
        if "tracer" not in holder:
            holder["tracer"] = Tracer(env.sim, env.host.stats).install()
            holder["rate"] = env.host.params.rate_mbps
        result = yield from main(env)
        return result

    run_spmd(n, wrapper, topology=topology, params=params, seed=seed,
             collectives=collectives)
    tracer: Tracer = holder["tracer"]  # type: ignore[assignment]
    rate_mbps: float = holder["rate"]  # type: ignore[assignment]
    tracer.uninstall()
    out = [WireEvent(start_us=e.time_us,
                     duration_us=e.size / (rate_mbps / 8.0),
                     kind=e.kind)
           for e in tracer.events if e.time_us >= skip_before_us]
    out.sort(key=lambda e: e.start_us)
    return out


def kinds_in_order(events: list[WireEvent]) -> list[str]:
    """Frame kinds in chronological order (for protocol-order tests)."""
    return [e.kind for e in sorted(events, key=lambda e: e.start_us)]


def ascii_timeline(events: list[WireEvent], width: int = 72,
                   title: str = "") -> str:
    """Render events as one strip per kind (# marks wire occupancy)."""
    if not events:
        return "(no wire activity)"
    t0 = min(e.start_us for e in events)
    t1 = max(e.start_us + e.duration_us for e in events)
    span = max(t1 - t0, 1e-9)
    kinds = sorted({e.kind for e in events})
    strips = {k: [" "] * width for k in kinds}
    for e in events:
        a = int((e.start_us - t0) / span * (width - 1))
        b = int((e.start_us + e.duration_us - t0) / span * (width - 1))
        for x in range(a, max(b, a) + 1):
            strips[e.kind][x] = "#"
    label_w = max(len(k) for k in kinds)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'':>{label_w}}  {t0:.0f} us "
                 f"{'-' * max(width - 24, 1)} {t1:.0f} us")
    for k in kinds:
        lines.append(f"{k:>{label_w}} |{''.join(strips[k])}|")
    return "\n".join(lines)
