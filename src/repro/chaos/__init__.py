"""Chaos engineering for the simulated MPI stack.

The paper's protocols claim liveness and correctness under an
unreliable fabric; this package turns that claim into an executable
contract.  :mod:`repro.chaos.scenarios` is a registry of adversarial
fault scenarios — burst loss, reordering, duplication, trunk
partitions, switch death, host crashes, membership churn, pathological
startup skew — each injected through the first-class seams the
simulator exposes (``Host.frame_fate``, ``HalfLink.fault``,
``Fabric.partition_trunk``, ``Switch.power_off``,
``Cluster.crash_host``), never by monkey-patching.

:mod:`repro.chaos.fuzz` drives them from a seeded property fuzzer
(``python -m repro.chaos.fuzz --budget N --seed S``) asserting the
universal postcondition: every collective either completes with
byte-correct results (checked against a pure-python oracle) or fails
crisply with a typed error (:class:`~repro.core.rounds.McastLost`,
:class:`~repro.simnet.kernel.DeadlockError`,
:class:`~repro.simnet.fabric.PartitionError`) — no hangs, no leaked
descriptors or memberships — and every failure replays bit-identically
from its printed ``(seed, case-key)``.
"""

from .scenarios import SCENARIOS, ScenarioSpec, get, names, timed_fault

__all__ = ["SCENARIOS", "ScenarioSpec", "get", "names", "timed_fault"]
