"""Seeded property fuzzer: random topology x scenario x op x payload.

``python -m repro.chaos.fuzz --budget N --seed S`` generates ``N``
cases, each fully determined by ``(S, index)``: the case parameters
come from a CRC-derived per-case RNG (so case *i* is the same no matter
the budget, the worker count, or which other cases ran), and the
simulation itself is seeded from the case.  Every case asserts the
universal postcondition:

* **completes** → every rank's return value matches a pure-python
  oracle byte for byte, the cluster quiesces (no leaked descriptors,
  consistent membership ledgers) and tears down to nothing; or
* **fails crisply** → a typed error (:class:`~repro.core.rounds
  .McastLost`, :class:`~repro.simnet.kernel.DeadlockError`,
  :class:`~repro.simnet.fabric.PartitionError`) on a scenario that is
  allowed to fail, a flight-recorder hang dump is captured, and after
  healing the injected faults the forced teardown still leaks nothing.

Anything else — a hang at the deadline, an untyped exception, an
oracle mismatch, a leak — is a violation: the fuzzer prints the
``(seed, case-key)`` and a one-line repro command, optionally writes
the dump to ``--artifacts``, and exits non-zero.  Records carry CRCs
of the stats snapshot and the failure artifact, so replay determinism
is checkable bit for bit (``tests/test_chaos.py`` does exactly that,
across reruns and worker counts).
"""

from __future__ import annotations

import argparse
import functools
import hashlib
import json
import multiprocessing
import random
import sys
import zlib
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from ..core.rounds import McastLost
from ..mpi.ops import SUM
from ..obs.hang import build_hang_dump
from ..obs.trace import FlightRecorder
from ..runtime.program import run_spmd
from ..runtime.sanitize import (LeakError, check_quiesced, forced_teardown,
                                full_teardown)
from ..simnet.calibration import FAST_ETHERNET_SWITCH
from ..simnet.fabric import PartitionError, parse_topology
from ..simnet.kernel import DeadlockError
from .scenarios import get, names

__all__ = ["Case", "make_case", "build_program", "run_case", "run_fuzz",
           "repro_command", "DEADLINE_US", "PROFILES"]

#: sim-time budget per case; reaching it with live ranks is a hang
DEADLINE_US = 30_000_000.0

#: the only exceptions that count as "failing crisply"
TYPED_ERRORS = (McastLost, DeadlockError, PartitionError)

OPS = ("bcast", "barrier", "reduce", "allreduce", "gather", "scatter",
       "allgather")

#: payload sizes (bytes); gather-family ops are capped below
SIZES = (16, 200, 1460, 4096, 9000, 20000)

TREES = ("tree:2x2", "tree:2x3", "tree:3x2", "tree:2x2x2", "tree:[3,2,2]")

PROFILES = {
    "mcast": {"bcast": "mcast-seg-nack", "barrier": "mcast",
              "reduce": "mcast-seg-combine", "allreduce": "mcast-seg-nack",
              "gather": "mcast-seg-root-follow",
              "scatter": "mcast-seg-root", "allgather": "mcast-seg-paced"},
    "auto": {"bcast": "auto", "barrier": "mcast", "reduce": "auto",
             "allreduce": "auto", "gather": "auto", "scatter": "auto",
             "allgather": "auto"},
    "hier": {op: "hier-mcast" for op in OPS},
    # None -> registry defaults: the pure point-to-point baseline
    "p2p": None,
}


@dataclass(frozen=True)
class Case:
    """One fuzz case, fully determined by ``(base seed, index)``."""

    index: int
    scenario: str
    topology: str
    n: int
    op: str
    profile: str
    size: int
    root: int
    sim_seed: int

    @property
    def key(self) -> str:
        return (f"{self.scenario}/{self.op}/{self.profile}/"
                f"{self.topology}/n{self.n}/sz{self.size}/r{self.root}/"
                f"i{self.index}")


def _case_rng(base_seed: int, index: int) -> random.Random:
    tag = f"repro-chaos:{base_seed}:{index}".encode()
    return random.Random(zlib.crc32(tag) + (base_seed << 32))


def make_case(base_seed: int, index: int,
              scenario: Optional[str] = None) -> Case:
    """Case ``index`` of the run seeded ``base_seed`` — independent of
    the budget and of every other case, which is what makes a single
    printed ``(seed, index)`` replayable in isolation."""
    rng = _case_rng(base_seed, index)
    scenario_names = names()
    # round-robin over scenarios so any budget >= len(SCENARIOS)
    # exercises all of them; the rest of the case is drawn randomly
    name = scenario if scenario is not None \
        else scenario_names[index % len(scenario_names)]
    spec = get(name)
    topo = rng.choice(TREES) if spec.needs_fabric \
        else rng.choice(("switch",) + TREES)
    n = parse_topology(topo).n if topo != "switch" else rng.randrange(4, 9)
    op = rng.choice(OPS)
    if topo == "switch":
        profile = rng.choice(("mcast", "mcast", "auto", "p2p"))
    else:
        profile = rng.choice(("mcast", "mcast", "hier", "auto", "p2p"))
    size = rng.choice(SIZES)
    if op in ("gather", "scatter", "allgather"):
        size = min(size, 6000)
    return Case(index=index, scenario=name, topology=topo, n=n, op=op,
                profile=profile, size=size, root=rng.randrange(n),
                sim_seed=rng.randrange(2 ** 31))


# ------------------------------------------------------------- oracle
def payload(case: Case, rank: int) -> bytes:
    """Rank ``rank``'s deterministic contribution bytes."""
    prng = random.Random((case.sim_seed * 1_000_003) ^ (rank + 1))
    return prng.randbytes(case.size)


def _digest(value) -> str:
    data = value if isinstance(value, bytes) else str(value).encode()
    return hashlib.sha1(data).hexdigest()[:16]


def _op_program(case: Case) -> Tuple:
    """The rank program running one collective, plus the expected
    per-rank return values (the pure-python oracle)."""
    n, root = case.n, case.root

    if case.op == "bcast":
        blob = payload(case, root)

        def op_main(env):
            data = blob if env.rank == root else None
            out = yield from env.comm.bcast(data, root=root)
            return _digest(out)

        expect = [_digest(blob)] * n

    elif case.op == "barrier":

        def op_main(env):
            yield from env.comm.barrier()
            yield from env.comm.barrier()
            return "ok"

        expect = ["ok"] * n

    elif case.op == "reduce":
        vals = [((case.sim_seed >> 3) + 7 * r) % 99_991 for r in range(n)]
        total = _digest(sum(vals))

        def op_main(env):
            out = yield from env.comm.reduce(vals[env.rank], SUM,
                                             root=root)
            return _digest(out) if env.rank == root else "non-root"

        expect = [total if r == root else "non-root" for r in range(n)]

    elif case.op == "allreduce":
        vals = [((case.sim_seed >> 3) + 7 * r) % 99_991 for r in range(n)]
        total = _digest(sum(vals))

        def op_main(env):
            out = yield from env.comm.allreduce(vals[env.rank], SUM)
            return _digest(out)

        expect = [total] * n

    elif case.op == "gather":
        gathered = _digest(b"".join(payload(case, r) for r in range(n)))

        def op_main(env):
            out = yield from env.comm.gather(payload(case, env.rank),
                                             root=root)
            if env.rank == root:
                return _digest(b"".join(out))
            return "non-root"

        expect = [gathered if r == root else "non-root" for r in range(n)]

    elif case.op == "scatter":
        parts = [payload(case, r) for r in range(n)]

        def op_main(env):
            objs = parts if env.rank == root else None
            out = yield from env.comm.scatter(objs, root=root)
            return _digest(out)

        expect = [_digest(parts[r]) for r in range(n)]

    elif case.op == "allgather":
        gathered = _digest(b"".join(payload(case, r) for r in range(n)))

        def op_main(env):
            out = yield from env.comm.allgather(payload(case, env.rank))
            return _digest(b"".join(out))

        expect = [gathered] * n

    else:
        raise ValueError(f"no oracle for op {case.op!r}")

    return op_main, expect


def build_program(case: Case) -> Tuple:
    """``(main, expected_returns)`` for the case; churn scenarios wrap
    the op in a dup / sub-communicator bcast / free cycle."""
    op_main, expect = _op_program(case)
    if not get(case.scenario).churn:
        return op_main, expect

    def main(env):
        first = yield from op_main(env)
        sub = yield from env.comm.dup()
        token = yield from sub.bcast("churn" if sub.rank == 0 else None,
                                     root=0)
        sub.free()
        second = yield from op_main(env)
        return _digest(f"{first}|{token}|{second}")

    return main, [_digest(f"{e}|churn|{e}") for e in expect]


# ------------------------------------------------------------ running
def _params_for(case: Case):
    # may-fail scenarios get a tight repair budget so a partitioned
    # follower aborts after a few rounds instead of orbiting the
    # deadline; benign scenarios get headroom to actually recover
    spec = get(case.scenario)
    return replace(FAST_ETHERNET_SWITCH,
                   max_repair_rounds=3 if spec.may_fail else 8)


def repro_command(base_seed: int, case: Case) -> str:
    return (f"PYTHONPATH=src python -m repro.chaos.fuzz "
            f"--seed {base_seed} --case {case.index}")


def _crc(obj) -> int:
    blob = json.dumps(obj, sort_keys=True, default=str).encode()
    return zlib.crc32(blob)


def run_case(case: Case, base_seed: int = 0,
             artifacts_dir: Optional[str] = None) -> dict:
    """Run one case end to end and return its deterministic record.

    The record never contains host-machine state (no wall times, no
    raw frame ids): reruns of the same ``(seed, index)`` — in any
    process, under any worker count — produce an equal record.
    """
    spec = get(case.scenario)
    inj_rng = random.Random(case.sim_seed ^ 0x5EEDC4A0)
    recorder = FlightRecorder()
    heals: list = []

    def on_cluster(cluster):
        recorder.attach(cluster)
        if spec.inject is not None:
            heals.extend(spec.inject(cluster, inj_rng))

    skew = spec.make_skew(random.Random(case.sim_seed ^ 0x0B5C), case.n) \
        if spec.make_skew else None
    main, expect = build_program(case)

    violations: List[str] = []
    error = None
    artifact = None
    outcome = "completed"
    result = None
    try:
        result = run_spmd(case.n, main, topology=case.topology,
                          params=_params_for(case), seed=case.sim_seed,
                          skew=skew, collectives=PROFILES[case.profile],
                          max_sim_us=DEADLINE_US, on_cluster=on_cluster,
                          strict_deadlock=True)
        cluster, world = result.cluster, result.world
    except TYPED_ERRORS as exc:
        error = exc
        outcome = "failed-crisp"
        cluster = getattr(exc, "repro_cluster", None)
        world = getattr(exc, "repro_world", None)
    except Exception as exc:  # the postcondition under test: no other
        error = exc           # exception type may ever escape a run
        outcome = "untyped-error"
        cluster = getattr(exc, "repro_cluster", None)
        world = getattr(exc, "repro_world", None)
        violations.append(
            f"untyped error escaped: {type(exc).__name__}: {exc}")

    if cluster is None or world is None:
        violations.append("failure carries no repro_cluster/repro_world")
        return _record(case, outcome, error, None, None, violations)

    stats_snapshot = cluster.stats.snapshot()

    if error is None:
        live = sorted(name for name, daemon, _w in
                      cluster.sim.process_snapshot() if not daemon)
        if live:
            outcome = "hang"
            violations.append(
                f"deadline hang at t={result.sim_time_us:.0f}us: "
                f"live processes {live}")
            artifact = recorder.hang_report \
                or build_hang_dump(cluster, "deadline")
        elif result.returns != expect:
            violations.append(
                f"oracle mismatch: returns={result.returns!r} "
                f"expected={expect!r}")
    else:
        artifact = build_hang_dump(cluster, type(error).__name__)
        if isinstance(error, TYPED_ERRORS) and not spec.may_fail:
            violations.append(
                f"scenario {spec.name!r} must complete but failed: "
                f"{type(error).__name__}: {error}")

    # heal every injected fault *before* teardown: IGMP leaves must be
    # able to propagate for the ledger assertions to mean anything
    for heal in heals:
        heal()
    try:
        if error is None and outcome == "completed":
            check_quiesced(cluster)
            full_teardown(cluster, world)
        else:
            forced_teardown(cluster, world)
    except LeakError as exc:
        violations.append(f"leaked state ({outcome}): {exc}")
    finally:
        recorder.detach()

    if violations and outcome == "completed":
        outcome = "violation"
    record = _record(case, outcome, error, stats_snapshot, artifact,
                     violations)
    if artifact is not None and artifacts_dir:
        import os
        os.makedirs(artifacts_dir, exist_ok=True)
        path = os.path.join(artifacts_dir, f"case-i{case.index}.txt")
        with open(path, "w") as fh:
            fh.write(f"# {case.key}\n# {repro_command(base_seed, case)}\n"
                     f"# error: {record['error']}\n\n{artifact}")
    return record


def _record(case: Case, outcome: str, error, stats_snapshot, artifact,
            violations: List[str]) -> dict:
    return {
        "index": case.index,
        "key": case.key,
        "outcome": outcome,
        "error": f"{type(error).__name__}: {error}" if error is not None
                 else None,
        "stats_crc": _crc(stats_snapshot) if stats_snapshot is not None
                     else None,
        "artifact_crc": _crc(artifact) if artifact is not None else None,
        "violations": list(violations),
    }


def _run_indexed(index: int, base_seed: int = 0,
                 scenario: Optional[str] = None,
                 artifacts_dir: Optional[str] = None) -> dict:
    return run_case(make_case(base_seed, index, scenario=scenario),
                    base_seed=base_seed, artifacts_dir=artifacts_dir)


def run_fuzz(seed: int, budget: int, workers: int = 1,
             scenario: Optional[str] = None,
             artifacts_dir: Optional[str] = None,
             progress=None) -> Tuple[List[dict], bool]:
    """Run ``budget`` cases; returns ``(records, ok)``.

    Records come back in case order whatever ``workers`` is, and each
    record is worker-count independent — the determinism contract the
    replay tests pin down.
    """
    runner = functools.partial(_run_indexed, base_seed=seed,
                               scenario=scenario,
                               artifacts_dir=artifacts_dir)
    indices = list(range(budget))
    if workers > 1:
        with multiprocessing.Pool(workers) as pool:
            records = []
            for rec in pool.imap(runner, indices, chunksize=1):
                records.append(rec)
                if progress:
                    progress(rec)
    else:
        records = []
        for index in indices:
            rec = runner(index)
            records.append(rec)
            if progress:
                progress(rec)
    ok = not any(rec["violations"] for rec in records)
    return records, ok


# ---------------------------------------------------------------- CLI
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos.fuzz",
        description="seeded chaos property fuzzer for the MPI stack")
    parser.add_argument("--budget", type=int, default=50,
                        help="number of cases to run (default 50)")
    parser.add_argument("--seed", type=int, default=1,
                        help="base seed; (seed, index) replays a case")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (records stay identical)")
    parser.add_argument("--scenario", choices=names(),
                        help="restrict every case to one scenario")
    parser.add_argument("--case", type=int, default=None, metavar="INDEX",
                        help="replay exactly one case index")
    parser.add_argument("--artifacts", default=None, metavar="DIR",
                        help="write failure hang dumps under DIR")
    parser.add_argument("--list", action="store_true",
                        help="list scenarios and exit")
    args = parser.parse_args(argv)

    if args.list:
        from .scenarios import SCENARIOS
        for name in names():
            spec = SCENARIOS[name]
            tag = "may-fail" if spec.may_fail else "must-complete"
            print(f"{name:<18} [{tag}] {spec.summary}")
        return 0

    if args.case is not None:
        case = make_case(args.seed, args.case, scenario=args.scenario)
        print(f"replaying {case.key}")
        rec = run_case(case, base_seed=args.seed,
                       artifacts_dir=args.artifacts)
        print(json.dumps(rec, indent=2, sort_keys=True))
        return 0 if not rec["violations"] else 1

    tally: dict = {}

    def progress(rec: dict) -> None:
        tally[rec["outcome"]] = tally.get(rec["outcome"], 0) + 1
        done = sum(tally.values())
        if rec["violations"]:
            print(f"FAIL {rec['key']}")
            for v in rec["violations"]:
                print(f"  {v}")
        elif done % 25 == 0:
            print(f"  ... {done}/{args.budget} "
                  f"({', '.join(f'{k}={v}' for k, v in sorted(tally.items()))})")

    print(f"chaos fuzz: budget={args.budget} seed={args.seed} "
          f"scenarios={len(names()) if not args.scenario else 1} "
          f"workers={args.workers}")
    records, ok = run_fuzz(args.seed, args.budget, workers=args.workers,
                           scenario=args.scenario,
                           artifacts_dir=args.artifacts,
                           progress=progress)
    counts = ", ".join(f"{k}={v}" for k, v in sorted(tally.items()))
    print(f"done: {len(records)} cases ({counts})")
    if not ok:
        print("POSTCONDITION VIOLATIONS:")
        for rec in records:
            if rec["violations"]:
                case = make_case(args.seed, rec["index"],
                                 scenario=args.scenario)
                print(f"  {rec['key']}")
                print(f"    replay: {repro_command(args.seed, case)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
