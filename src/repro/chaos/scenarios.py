"""The chaos scenario registry: named, seeded, injectable fault models.

Every scenario is a :class:`ScenarioSpec` — a name, a one-line summary,
whether a crisp typed failure is an accepted outcome (``may_fail``),
and an ``inject(cluster, rng)`` hook returning *heal* callables.  The
hooks use only the simulator's first-class fault seams:

* ``Host.frame_fate`` — receive-side datagram fate (burst loss);
* ``HalfLink.fault`` — wire-level frame fate (reorder via delay,
  duplication);
* ``Fabric.partition_trunk`` / ``Switch.power_off`` /
  ``Cluster.crash_host`` — topology faults, each returning its revert
  callable.

Timed faults go through :func:`timed_fault`, which arms the fault at a
simulation time, pairs it with a ``chaos_fault_begin``/``_end`` span on
the attached flight recorder (so hang dumps can tell injected faults
from protocol bugs), and returns an idempotent heal callable the
caller *must* invoke before teardown — a partitioned trunk would
otherwise block the IGMP leaves the leak sanitizer asserts on.

Data-plane scenarios touch only ``mcast-seg`` frames: the segmented
multicast stream is the protocol under test, and it owns loss recovery,
reordering tolerance and duplicate suppression.  Control traffic
(scouts, p2p, IGMP) rides transports the paper's protocol *assumes* —
p2p has no dedup layer and IGMP joins are refcounted, so corrupting
those would fail runs for reasons no protocol here claims to survive.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..runtime.skew import FixedSkew

__all__ = ["DATA_KINDS", "ScenarioSpec", "SCENARIOS", "register", "get",
           "names", "timed_fault"]

#: frame kinds the data-plane scenarios are allowed to corrupt
DATA_KINDS = ("mcast-seg",)


@dataclass(frozen=True)
class ScenarioSpec:
    """One adversarial fault model.

    ``inject(cluster, rng)`` installs the faults (called from
    ``run_spmd``'s ``on_cluster`` seam, before any rank starts) and
    returns heal callables; ``make_skew(rng, n)`` builds a startup-skew
    model; ``churn`` asks the fuzzer to wrap the op in a
    dup/bcast/free membership cycle.  ``may_fail`` scenarios accept a
    crisp typed failure as a passing outcome; the rest must complete
    byte-correct.  ``needs_fabric`` restricts the scenario to tiered
    ``tree:...`` topologies (it faults trunks).
    """

    name: str
    summary: str
    may_fail: bool
    needs_fabric: bool = False
    churn: bool = False
    inject: Optional[Callable] = None
    make_skew: Optional[Callable] = None


SCENARIOS: dict = {}


def register(spec: ScenarioSpec) -> ScenarioSpec:
    if spec.name in SCENARIOS:
        raise ValueError(f"duplicate chaos scenario {spec.name!r}")
    SCENARIOS[spec.name] = spec
    return spec


def get(name: str) -> ScenarioSpec:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown chaos scenario {name!r}; "
                       f"known: {names()}") from None


def names() -> List[str]:
    return sorted(SCENARIOS)


def timed_fault(cluster, name: str, t0_us: float, apply: Callable,
                dur_us: Optional[float] = None) -> Callable:
    """Arm ``apply()`` at simulation time ``t0_us``; return the heal.

    ``apply`` must return its revert callable — exactly the contract of
    ``partition_trunk`` / ``power_off`` / ``crash_host``.  The fault
    window is bracketed with ``chaos_fault_begin``/``chaos_fault_end``
    on the cluster's recorder (when one is attached), and healed either
    at ``t0_us + dur_us`` (transient faults) or when the returned heal
    callable runs (the fuzzer calls every heal before teardown).  Heal
    is idempotent, and arming after heal is a no-op — so a fault
    scheduled past the end of a short run can never fire into the
    teardown drain.
    """
    state = {"undo": None, "token": None, "done": False}

    def arm() -> None:
        if state["done"]:
            return
        rec = cluster.stats.recorder
        if rec is not None:
            state["token"] = rec.chaos_fault_begin(cluster.sim.now, name)
        state["undo"] = apply()

    def heal() -> None:
        if state["done"]:
            return
        state["done"] = True
        if state["undo"] is not None:
            state["undo"]()
        rec = cluster.stats.recorder
        if rec is not None and state["token"] is not None:
            rec.chaos_fault_end(cluster.sim.now, state["token"])

    cluster.sim.schedule_call(t0_us, arm)
    if dur_us is not None:
        cluster.sim.schedule_call(t0_us + dur_us, heal)
    return heal


# ------------------------------------------------------------ fate hooks
def _gilbert_fate(prng: random.Random, p_enter: float, p_exit: float,
                  p_drop: float) -> Callable:
    """Stateful two-state (Gilbert) burst-loss hook for
    ``Host.frame_fate``: good state drops nothing, bad state drops
    ``p_drop`` of the multicast data stream."""
    bad = False

    def fate(dgram):
        nonlocal bad
        if dgram.kind not in DATA_KINDS:
            return None
        if bad:
            if prng.random() < p_exit:
                bad = False
                return None
            return "drop" if prng.random() < p_drop else None
        if prng.random() < p_enter:
            bad = True
            return "drop"
        return None

    return fate


def _stall_fate(prng: random.Random, p: float, lo_us: float,
                hi_us: float) -> Callable:
    """``HalfLink.fault`` hook: FIFO-preserving bursty latency.

    A link occasionally stalls, and every data frame behind the stall
    queues after it — a physical link never reorders its *own* traffic,
    so delayed segments stay in per-link order while still arriving
    late relative to other links, after drain timeouts, and across
    round and turn boundaries.  That cross-link interleaving is where
    the adversarial reordering comes from.
    """
    release = 0.0

    def fate(frame, link):
        nonlocal release
        if frame.kind not in DATA_KINDS:
            return None
        now = link.sim.now
        if prng.random() < p:
            release = max(release, now) + prng.uniform(lo_us, hi_us)
        if release <= now:
            return None
        release += 1e-3   # strictly increasing: keeps the queue FIFO
        return ("delay", release - now)

    return fate


def _dup_fate(prng: random.Random, p: float) -> Callable:
    """``HalfLink.fault`` hook: deliver a fraction of the data stream
    twice — duplicate suppression is the reassembler's job."""

    def fate(frame, link):
        if frame.kind in DATA_KINDS and prng.random() < p:
            return "dup"
        return None

    return fate


def _access_links(cluster) -> list:
    """Both halves of every host access link, host-address order."""
    links = []
    for addr in sorted(cluster.host_links):
        up, down = cluster.host_links[addr]
        links.extend((up, down))
    return links


# --------------------------------------------------------- injections
def _inject_burst_loss(cluster, rng: random.Random) -> list:
    sub = random.Random(rng.randrange(2 ** 63))

    def apply():
        for host in cluster.hosts:
            host.frame_fate = _gilbert_fate(
                random.Random(sub.randrange(2 ** 63)),
                p_enter=0.03, p_exit=0.3, p_drop=0.9)

        def revert():
            for host in cluster.hosts:
                host.frame_fate = None

        return revert

    return [timed_fault(cluster, "burst-loss", 0.0, apply)]


def _inject_reorder(cluster, rng: random.Random) -> list:
    sub = random.Random(rng.randrange(2 ** 63))

    def apply():
        links = _access_links(cluster)
        for link in links:
            link.fault = _stall_fate(
                random.Random(sub.randrange(2 ** 63)),
                p=0.12, lo_us=40.0, hi_us=900.0)

        def revert():
            for link in links:
                link.fault = None

        return revert

    return [timed_fault(cluster, "reorder", 0.0, apply)]


def _inject_duplicate(cluster, rng: random.Random) -> list:
    sub = random.Random(rng.randrange(2 ** 63))

    def apply():
        links = _access_links(cluster)
        for link in links:
            link.fault = _dup_fate(
                random.Random(sub.randrange(2 ** 63)), p=0.10)

        def revert():
            for link in links:
                link.fault = None

        return revert

    return [timed_fault(cluster, "duplicate", 0.0, apply)]


def _inject_trunk_flap(cluster, rng: random.Random) -> list:
    fabric = cluster.fabric
    paths = sorted(fabric.trunks)
    path = paths[rng.randrange(len(paths))]
    t0 = rng.uniform(800.0, 4000.0)
    dur = rng.uniform(1200.0, 5000.0)
    return [timed_fault(cluster, f"trunk-flap:{path}", t0,
                        lambda: fabric.partition_trunk(path), dur_us=dur)]


def _inject_trunk_partition(cluster, rng: random.Random) -> list:
    fabric = cluster.fabric
    paths = sorted(fabric.trunks)
    path = paths[rng.randrange(len(paths))]
    t0 = rng.uniform(800.0, 4000.0)
    return [timed_fault(cluster, f"trunk-partition:{path}", t0,
                        lambda: fabric.partition_trunk(path))]


def _inject_switch_death(cluster, rng: random.Random) -> list:
    if cluster.fabric is not None:
        nodes = [cluster.fabric.nodes[key]
                 for key in sorted(cluster.fabric.nodes)]
    else:
        nodes = [cluster.switch]
    victim = nodes[rng.randrange(len(nodes))]
    t0 = rng.uniform(800.0, 4000.0)
    return [timed_fault(cluster, f"switch-death:{victim.name}", t0,
                        victim.power_off)]


def _inject_host_crash(cluster, rng: random.Random) -> list:
    addrs = sorted(cluster.host_links)
    victim = addrs[rng.randrange(len(addrs))]
    t0 = rng.uniform(800.0, 4000.0)
    return [timed_fault(cluster, f"host-crash:{victim}", t0,
                        lambda: cluster.crash_host(victim))]


def _make_skew_storm(rng: random.Random, n: int) -> FixedSkew:
    delays = [0.0] * n
    for rank in rng.sample(range(n), max(1, n // 2)):
        delays[rank] = rng.uniform(20_000.0, 150_000.0)
    return FixedSkew(delays)


# ------------------------------------------------------------ registry
register(ScenarioSpec(
    "baseline",
    "no faults at all — the fuzzer's control group",
    may_fail=False))

register(ScenarioSpec(
    "burst-loss",
    "Gilbert bursty receive loss of the multicast data stream on "
    "every host",
    may_fail=True, inject=_inject_burst_loss))

register(ScenarioSpec(
    "reorder",
    "randomly delay data frames on the access links so segments "
    "arrive out of order and across round boundaries",
    may_fail=False, inject=_inject_reorder))

register(ScenarioSpec(
    "duplicate",
    "deliver a fraction of the data stream twice on the access links",
    may_fail=False, inject=_inject_duplicate))

register(ScenarioSpec(
    "skew-storm",
    "half the ranks start tens of milliseconds late (pathological "
    "startup skew)",
    may_fail=False, make_skew=_make_skew_storm))

register(ScenarioSpec(
    "churn",
    "membership churn: dup a communicator, run traffic on it, free "
    "it, then run the op again",
    may_fail=False, churn=True))

register(ScenarioSpec(
    "trunk-flap",
    "partition one fabric trunk mid-collective, heal it a few "
    "milliseconds later",
    may_fail=True, needs_fabric=True, inject=_inject_trunk_flap))

register(ScenarioSpec(
    "trunk-partition",
    "permanently partition one fabric trunk mid-collective",
    may_fail=True, needs_fabric=True, inject=_inject_trunk_partition))

register(ScenarioSpec(
    "switch-death",
    "a switch (leaf, spine or the flat switch) dies mid-collective",
    may_fail=True, inject=_inject_switch_death))

register(ScenarioSpec(
    "host-crash",
    "one host's access link goes silent mid-collective (fail-stop "
    "crash)",
    may_fail=True, inject=_inject_host_crash))
