"""``repro.core`` — the paper's contribution: collectives over IP multicast.

Importing this package registers the multicast implementations
(``mcast-binary``, ``mcast-linear``, ``mcast-naive``, ``mcast-ack``,
``mcast-seg-nack`` for bcast; ``mcast`` for barrier; ``mcast-paced`` and
``mcast-seg-paced`` for allgather; ``mcast-sequencer`` extension) in the
collective registry, so any communicator can switch to them with
``comm.use_collectives(bcast="mcast-seg-nack", barrier="mcast")``.
"""

from .channel import (DATA_PORT_BASE, GROUP_ID_BASE, MCAST_HEADER_BYTES,
                      SCOUT_BYTES, SCOUT_PORT_BASE, McastChannel)
from .mcast_allgather import (allgather_mcast_paced,
                              allgather_mcast_unpaced)
from .mcast_barrier import barrier_mcast, barrier_mcast_message_count
from .mcast_bcast import (McastLost, bcast_mcast_ack, bcast_mcast_binary,
                          bcast_mcast_linear, bcast_mcast_naive)
from .ordering import (UnsafeScheduleError, check_safe_schedule,
                       run_bcast_sequence)
from .scout import (binary_tree_steps, scout_count, scout_gather_binary,
                    scout_gather_linear)
from .segment import (Reassembler, Segment, TransportPlan,
                      allgather_mcast_seg_paced, bcast_mcast_seg_nack,
                      chunk_plan, fragment, frame_segment_bytes,
                      plan_segments, plan_transport, reassemble,
                      seg_nack_datagram_count, seg_nack_frame_count)
from . import sequencer  # noqa: F401  (registers mcast-sequencer)

__all__ = [
    "DATA_PORT_BASE", "GROUP_ID_BASE", "MCAST_HEADER_BYTES", "McastChannel",
    "McastLost", "Reassembler", "SCOUT_BYTES", "SCOUT_PORT_BASE", "Segment",
    "TransportPlan", "UnsafeScheduleError", "allgather_mcast_paced",
    "allgather_mcast_seg_paced", "allgather_mcast_unpaced", "barrier_mcast",
    "barrier_mcast_message_count", "bcast_mcast_ack", "bcast_mcast_binary",
    "bcast_mcast_linear", "bcast_mcast_naive", "bcast_mcast_seg_nack",
    "binary_tree_steps", "check_safe_schedule", "chunk_plan", "fragment",
    "frame_segment_bytes", "plan_segments", "plan_transport", "reassemble",
    "run_bcast_sequence", "scout_count", "scout_gather_binary",
    "scout_gather_linear", "seg_nack_datagram_count",
    "seg_nack_frame_count",
]
