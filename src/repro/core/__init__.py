"""``repro.core`` — the paper's contribution: collectives over IP multicast.

Importing this package registers the multicast implementations
(``mcast-binary``, ``mcast-linear``, ``mcast-naive``, ``mcast-ack``,
``mcast-seg-nack`` for bcast; ``mcast`` for barrier; ``mcast-paced`` and
``mcast-seg-paced`` for allgather; ``mcast-seg-combine`` for reduce;
``mcast-seg-nack`` for allreduce; ``mcast-seg-root`` for scatter;
``mcast-seg-root-follow`` for gather; ``mcast-sequencer`` extension) in
the collective registry, so any
communicator can switch to them with
``comm.use_collectives(bcast="mcast-seg-nack", barrier="mcast")`` — or
defer the choice per call to the payload-aware policy layer with
``comm.use_collectives(bcast="auto")``.

The segmented implementations all run on the reusable NACK-repair round
engine of :mod:`repro.core.rounds` (serve/follow, rate pacing,
descriptor-budget feedback, adaptive drain timeouts, repair
re-batching); :mod:`repro.core.segment` owns payload planning
(fragmentation, adaptive sizing/batching, the closed-form frame and
datagram formulas).
"""

from .channel import (DATA_PORT_BASE, GROUP_ID_BASE, MCAST_HEADER_BYTES,
                      SCOUT_BYTES, SCOUT_PORT_BASE, McastChannel)
from .mcast_allgather import (allgather_mcast_paced,
                              allgather_mcast_unpaced)
from .mcast_barrier import barrier_mcast, barrier_mcast_message_count
from .mcast_bcast import (McastLost, bcast_mcast_ack, bcast_mcast_binary,
                          bcast_mcast_linear, bcast_mcast_naive)
from .mcast_gather import gather_mcast_seg_root_follow
from .mcast_reduce import (allreduce_mcast_seg_nack,
                           reduce_mcast_seg_combine, stream_turns)
from .mcast_scatter import scatter_mcast_seg_root
from .ordering import (UnsafeScheduleError, check_safe_schedule,
                       run_bcast_sequence)
from .rounds import (Reassembler, RoundPacer, Segment, chunk_plan,
                     follow_rounds, frame_segment_bytes, reassemble,
                     repair_batch, round_drain_timeout_us,
                     round_namespace, serve_rounds)
from .scout import (binary_tree_steps, scout_count, scout_gather_binary,
                    scout_gather_linear, scout_scatter_binary)
from .segment import (TransportPlan, allgather_mcast_seg_paced,
                      auto_batch, bcast_mcast_seg_nack, fragment,
                      plan_segments, plan_transport,
                      seg_nack_datagram_count, seg_nack_frame_count)
from . import sequencer  # noqa: F401  (registers mcast-sequencer)

__all__ = [
    "DATA_PORT_BASE", "GROUP_ID_BASE", "MCAST_HEADER_BYTES", "McastChannel",
    "McastLost", "Reassembler", "RoundPacer", "SCOUT_BYTES",
    "SCOUT_PORT_BASE", "Segment", "TransportPlan", "UnsafeScheduleError",
    "allgather_mcast_paced", "allgather_mcast_seg_paced",
    "allgather_mcast_unpaced", "allreduce_mcast_seg_nack", "auto_batch",
    "barrier_mcast", "barrier_mcast_message_count", "bcast_mcast_ack",
    "bcast_mcast_binary", "bcast_mcast_linear", "bcast_mcast_naive",
    "bcast_mcast_seg_nack", "binary_tree_steps", "check_safe_schedule",
    "chunk_plan", "follow_rounds", "fragment", "frame_segment_bytes",
    "gather_mcast_seg_root_follow", "plan_segments", "plan_transport",
    "reassemble", "reduce_mcast_seg_combine", "repair_batch",
    "round_drain_timeout_us", "round_namespace", "run_bcast_sequence",
    "scatter_mcast_seg_root", "scout_count", "scout_gather_binary",
    "scout_gather_linear", "scout_scatter_binary",
    "seg_nack_datagram_count", "seg_nack_frame_count", "serve_rounds",
    "stream_turns",
]
