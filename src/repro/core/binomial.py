"""Binomial-tree shape helpers shared by scouts and p2p collectives.

The binomial parent/children layout is pure arithmetic on relative
ranks — no traffic, no sockets — and both layers walk the same tree: the
MPICH-style p2p collectives (:mod:`repro.mpi.collective.bcast_p2p`,
:mod:`repro.mpi.collective.gather_p2p`) move payloads along its edges,
and the scout scatter (:mod:`repro.core.scout`) announces per-call
decisions down it.  It lives in ``core`` so the scout layer never has to
reach up into ``mpi.collective`` (the layering rule LAY01 enforces,
see ``docs/lint.md``); the historical import path
``repro.mpi.collective.bcast_p2p.binomial_children`` keeps working as a
re-export.
"""

from __future__ import annotations

__all__ = ["binomial_parent", "binomial_children"]


def binomial_parent(rel: int) -> int:
    """Parent of relative rank ``rel`` in the binomial broadcast tree."""
    if rel == 0:
        raise ValueError("the root has no parent")
    mask = 1
    while not rel & mask:
        mask <<= 1
    return rel & ~mask


def binomial_children(rel: int, size: int) -> list[int]:
    """Children of relative rank ``rel``, in MPICH send order (big first)."""
    # The mask where `rel` received (its lowest set bit), halved downward.
    mask = 1
    while mask < size and not rel & mask:
        mask <<= 1
    mask >>= 1
    kids = []
    while mask > 0:
        child = rel + mask
        if child < size:
            kids.append(child)
        mask >>= 1
    return kids
