"""The per-communicator multicast channel.

Binds an MPI communicator to one IP multicast group (paper §4: one group
per process group / context) plus two sockets on every member host:

* the **data socket** — joined to the group, ``posted_only``: a multicast
  datagram is delivered only if the receive was already posted, the
  paper's readiness model.  ``IP_MULTICAST_LOOP`` is off so the root does
  not consume its own broadcast;
* the **scout socket** — an ordinary buffered UDP socket carrying the
  small synchronization messages (scouts, barrier-release acks, PVM-style
  acks).  Scouts are matched by ``(source rank, sequence, phase)`` with a
  stash for early arrivals from ranks that have raced ahead.

Every collective call advances the channel's **sequence number**; because
MPI code must be *safe* (all ranks issue collectives on a communicator in
the same order — paper §4), sequence numbers advance identically
everywhere and stale traffic is detectable.  The stash is bounded: scouts
for sequences that already completed, and duplicates of pairs the current
wait has already satisfied, are purged instead of accumulating across
collectives.

For payloads larger than one MTU the channel also speaks *segments*
(:mod:`repro.core.segment`): descriptors are posted in batches
(:meth:`McastChannel.post_data_many`), each ``mcast-seg`` datagram
carries one segment or a *batch* of consecutive segments (each with its
own per-segment envelope), and the NACK-repair control plane (per-round
receiver reports, root decisions) rides the buffered scout socket so it
is immune to the posted-only discipline.  Reports additionally carry the
receiver's descriptor budget (:attr:`McastChannel.recv_budget`), the
feedback the root's rate pacing adapts its burst length to.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..simnet.frame import mcast_mac
from ..simnet.kernel import Event

__all__ = ["McastChannel", "GROUP_ID_BASE", "DATA_PORT_BASE",
           "SCOUT_PORT_BASE", "SCOUT_BYTES", "MCAST_HEADER_BYTES",
           "SEG_HEADER_BYTES"]

#: multicast group-id space reserved for communicators (above the
#: cluster-level GroupAllocator's small ids)
GROUP_ID_BASE = 1 << 16

DATA_PORT_BASE = 20000
SCOUT_PORT_BASE = 40000

#: wire payload of a scout message ("no data": just rank+seq encoding)
SCOUT_BYTES = 4

#: envelope bytes prepended to multicast data (root, seq)
MCAST_HEADER_BYTES = 8

#: extra envelope bytes on a *segment* frame (segment index, total
#: segment count) — on top of MCAST_HEADER_BYTES
SEG_HEADER_BYTES = 4


def _members_trunk_path(comm) -> tuple[int, float]:
    """Worst trunk path between any two members of a communicator view:
    ``(hops, wire µs per payload byte across those hops)``.

    The per-byte term weighs every hop by its own *tier's* trunk rate
    (:meth:`~repro.simnet.fabric.Fabric.trunk_params_for`), so a slow
    backbone under fast edges stretches the drain timeout exactly as
    much as it stretches the store-and-forward path — sizing it from
    the edge rate alone would re-create the premature-NACK livelock on
    any fabric whose trunks are slower than its access links.
    ``(0, 0.0)`` when the view cannot reach a cluster topology (the
    real-socket validation stack) or on flat builds.
    """
    world = getattr(comm, "world", None)
    if world is None:
        world = getattr(getattr(comm, "parent", None), "world", None)
    cluster = getattr(world, "cluster", None)
    fabric = getattr(cluster, "fabric", None)
    if fabric is None:
        return 0, 0.0
    # the path depends only on the endpoints' segments: one
    # representative host per distinct segment, unordered pairs
    reps: dict[int, int] = {}
    for r in range(comm.size):
        addr = comm.addr_of(r)
        reps.setdefault(cluster.segment_of(addr), addr)
    addrs = list(reps.values())
    hops = 0
    us_per_byte = 0.0
    for i, a in enumerate(addrs):
        for b in addrs[i + 1:]:
            tiers = fabric.trunk_path_tiers(a, b)
            hops = max(hops, len(tiers))
            us_per_byte = max(us_per_byte, sum(
                8.0 / fabric.trunk_params_for(t).rate_mbps
                for t in tiers))
    return hops, us_per_byte


class McastChannel:
    """Multicast transport for one communicator, on one rank.

    ``comm`` may be a full :class:`~repro.mpi.communicator.Communicator`
    or any *communicator view* exposing ``rank`` / ``size`` /
    ``addr_of`` / ``host`` / ``sim`` (the hierarchical collectives bind
    channels to segment-local views, see
    :mod:`repro.mpi.collective.hier`).  The default group address and
    ports derive from ``comm.ctx``; explicit ``group`` / ``data_port`` /
    ``scout_port`` override them for channels that subdivide one
    communicator (per-segment groups, the leaders' group).
    """

    def __init__(self, comm, group: Optional[int] = None,
                 data_port: Optional[int] = None,
                 scout_port: Optional[int] = None):
        self.comm = comm
        self.host = comm.host
        self.sim = comm.sim
        self.params = self.host.params
        self.group = (mcast_mac(GROUP_ID_BASE + comm.ctx)
                      if group is None else group)
        self.data_port = (DATA_PORT_BASE + comm.ctx
                          if data_port is None else data_port)
        self.scout_port = (SCOUT_PORT_BASE + comm.ctx
                           if scout_port is None else scout_port)
        self.data_sock = self.host.socket(self.data_port, posted_only=True,
                                          mcast_loop=False)
        self.scout_sock = self.host.socket(self.scout_port)
        self.data_sock.join(self.group)
        self.seq = 0
        #: the members' trunk diameter — the most switch-to-switch hops
        #: any sender-receiver pair of this channel spans on a tiered
        #: fabric, and the wire time (µs per payload byte) those hops'
        #: own trunk tiers add (0 on flat clusters and single-segment
        #: groups).  The round engine's drain timeout allows one extra
        #: store-and-forward serialization per hop at the actual trunk
        #: rate, so a deep tree's far corner — even behind a slow
        #: backbone — never NACKs data that is still in flight.
        self.trunk_hops, self.trunk_us_per_byte = \
            _members_trunk_path(comm)
        self._scout_stash: list[tuple[int, int, str]] = []
        #: receive-descriptor ring size for segmented rounds (None =
        #: unbounded).  Seeded from ``NetParams.seg_recv_budget``; tests
        #: and the overrun benchmark override it per rank.
        self.recv_budget: Optional[int] = self.params.seg_recv_budget
        #: naive-bcast receive timeout (None = block, may deadlock — that
        #: is the point of the naive baseline); tests/benches set this.
        self.naive_timeout_us: Optional[float] = None
        self._closed = False

    # ------------------------------------------------------------------
    def next_seq(self) -> int:
        """Advance the collective sequence (call once per collective)."""
        self.seq += 1
        return self.seq

    # -- scouts ----------------------------------------------------------
    def send_scout(self, dst_rank: int, seq: int,
                   phase: str = "up") -> Generator:
        """Send one scout/ack to ``dst_rank`` (UDP unicast, tiny)."""
        yield from self.scout_sock.sendto(
            (self.comm.rank, seq, phase), SCOUT_BYTES,
            self.comm.addr_of(dst_rank), self.scout_port, kind="scout")

    def wait_scouts(self, src_ranks: set[int], seq: int,
                    phase: str = "up",
                    timeout_us: Optional[float] = None) -> Generator:
        """Collect scouts ``(src, seq, phase)`` from every rank in
        ``src_ranks``; returns the set of ranks still missing (empty on
        success, non-empty only if ``timeout_us`` expired).

        Early scouts for other (seq, phase) pairs are stashed, never lost.
        """
        remaining = set(src_ranks)
        self._drain_stash(remaining, seq, phase)
        satisfied: set[int] = set(src_ranks) - remaining
        deadline = (None if timeout_us is None
                    else self.sim.now + timeout_us)
        while remaining:
            budget = None
            if deadline is not None:
                budget = deadline - self.sim.now
                if budget <= 0:
                    return remaining
            dgram = yield from self.scout_sock.recv(timeout=budget)
            if dgram is None:
                return remaining
            src, s, ph = dgram.payload
            if s == seq and ph == phase and src in remaining:
                remaining.discard(src)
                satisfied.add(src)
            elif s < self.seq:
                pass    # stale: belongs to a completed collective
            elif s == seq and ph == phase and src in satisfied:
                pass    # duplicate of a scout this wait already consumed
            else:
                # Early arrival for another (seq, phase) — or for a rank
                # this call was not asked about (e.g. a sibling subtree's
                # scout racing ahead of ours in the binary gather): stash.
                self._scout_stash.append((src, s, ph))
        return remaining

    def _drain_stash(self, remaining: set[int], seq: int,
                     phase: str) -> None:
        keep = []
        for (src, s, ph) in self._scout_stash:
            if s == seq and ph == phase and src in remaining:
                remaining.discard(src)
            elif s >= self.seq:
                keep.append((src, s, ph))
            # else: stale entry from a completed collective — purge
        self._scout_stash = keep

    # -- tagged control messages (NACK repair + selection control plane) ----
    def send_tagged(self, dst_rank: int, seq: int, tag: str, rnd,
                    value, nbytes: int,
                    kind: Optional[str] = None) -> Generator:
        """Send one ``(tag, rnd, value)`` control message to ``dst_rank``.

        The generic half of :meth:`wait_tagged`: rides the buffered
        scout socket (immune to the posted-only discipline), matched by
        ``(seq, tag, rnd)``.  The segment reports/decisions and the
        "auto" implementation announcements are all instances.
        """
        yield from self.scout_sock.sendto(
            (self.comm.rank, seq, (tag, rnd, value)), nbytes,
            self.comm.addr_of(dst_rank), self.scout_port,
            kind=kind or tag)

    def send_report(self, dst_rank: int, seq: int, rnd,
                    missing, nsegs: int) -> Generator:
        """Send a per-round segment report to ``dst_rank``.

        ``missing`` is the set of segment indices this rank has not
        received after round ``rnd`` (empty = everything arrived).  The
        report also carries this rank's descriptor budget
        (:attr:`recv_budget`) — the feedback the sender's rate pacing
        adapts to.  Wire size: a scout plus an ``nsegs``-bit bitmap plus
        a 4-byte budget field.
        """
        nbytes = SCOUT_BYTES + (nsegs + 7) // 8 + 4
        value = (tuple(sorted(missing)), self.recv_budget)
        yield from self.send_tagged(dst_rank, seq, "seg-report", rnd,
                                    value, nbytes)

    def send_decision(self, dst_rank: int, seq: int, rnd,
                      segments, nsegs: int) -> Generator:
        """Tell ``dst_rank`` what round ``rnd``'s verdict is.

        ``segments`` is the sorted tuple of segment indices the root will
        re-multicast next round, or ``None`` for "done".
        """
        nbytes = SCOUT_BYTES + (nsegs + 7) // 8
        yield from self.send_tagged(dst_rank, seq, "seg-dec", rnd,
                                    segments, nbytes)

    def wait_tagged(self, src_ranks: set[int], seq: int, tag: str,
                    rnd) -> Generator:
        """Collect one ``(tag, rnd, value)`` scout-socket message from
        every rank in ``src_ranks``; returns ``{src: value}``.

        Shares the early-arrival stash with :meth:`wait_scouts` (a report
        can land while a rank is still inside a scout gather, and vice
        versa); the same staleness purge applies.
        """
        remaining = set(src_ranks)
        results: dict[int, Any] = {}

        def match(src, s, ph):
            return (s == seq and isinstance(ph, tuple) and len(ph) == 3
                    and ph[0] == tag and ph[1] == rnd and src in remaining)

        keep = []
        for (src, s, ph) in self._scout_stash:
            if match(src, s, ph):
                results[src] = ph[2]
                remaining.discard(src)
            elif s >= self.seq:
                keep.append((src, s, ph))
        self._scout_stash = keep
        while remaining:
            dgram = yield from self.scout_sock.recv()
            src, s, ph = dgram.payload
            if match(src, s, ph):
                results[src] = ph[2]
                remaining.discard(src)
            elif (s == seq and isinstance(ph, tuple) and len(ph) == 3
                    and ph[0] == tag and ph[1] == rnd and src in results):
                pass    # duplicate of a message this wait already took
            elif s >= self.seq:
                self._scout_stash.append((src, s, ph))
        return results

    # -- multicast data ----------------------------------------------------
    def post_data(self) -> Event:
        """Post the multicast receive — MUST precede the scout send."""
        return self.data_sock.post_recv()

    def post_data_many(self, n: int) -> list[Event]:
        """Post ``n`` multicast receive descriptors (one per expected
        segment) — MUST precede the arming scout."""
        return self.data_sock.post_recv_many(n)

    def cancel_data(self, posted) -> None:
        """Withdraw every untriggered descriptor in ``posted``."""
        self.data_sock.cancel_recv_all(list(posted))

    def wait_data(self, posted: Event) -> Generator:
        """Complete a posted receive: returns ``(root, seq, payload)``.

        Charges the UDP receive cost plus ``mcast_recv_extra_us`` (group
        receive validation / posted-descriptor handling) on the host CPU.
        """
        dgram = yield posted
        cost = self.data_sock.recv_cost_us
        if dgram.kind in ("mcast-data", "mcast-seg"):
            # The extra models payload validation + user-buffer delivery;
            # control multicasts (barrier release, segment headers) skip it.
            cost += self.params.mcast_recv_extra_us
        yield from self.host.cpu.use(self.host.jitter(cost))
        root, seq, payload = dgram.payload
        return root, seq, payload

    def send_data(self, payload: Any, nbytes: int, seq: int,
                  retransmit: bool = False,
                  control: bool = False,
                  kind: Optional[str] = None) -> Generator:
        """Multicast ``payload`` to the whole group in one send.

        ``control=True`` marks data-less protocol multicasts (the barrier
        release, segment headers): they skip the payload-handling extras
        and are traced as ``mcast-release`` frames unless ``kind``
        overrides the trace label.
        """
        if retransmit:
            self.host.stats.retransmissions += 1
        if not control and self.params.mcast_send_extra_us > 0:
            yield from self.host.cpu.use(
                self.host.jitter(self.params.mcast_send_extra_us))
        if kind is None:
            kind = "mcast-release" if control else "mcast-data"
        yield from self.data_sock.sendto(
            (self.comm.rank, seq, payload), nbytes + MCAST_HEADER_BYTES,
            self.group, self.data_port, kind=kind)

    def send_segment(self, segment, seq: int,
                     retransmit: bool = False) -> Generator:
        """Multicast one payload segment (kind ``mcast-seg``).

        Wire size: the segment's chunk bytes plus the data envelope plus
        the per-segment envelope (:data:`SEG_HEADER_BYTES`).
        """
        yield from self.send_data(
            segment, segment.nbytes + SEG_HEADER_BYTES, seq,
            retransmit=retransmit, kind="mcast-seg")

    def send_batch(self, segments, seq: int,
                   retransmit: bool = False) -> Generator:
        """Multicast a batch of segments as **one** ``mcast-seg`` datagram.

        A single-segment batch uses the PR 1 wire format (a bare
        :class:`~repro.core.segment.Segment` payload); a larger batch
        ships the tuple of segments in one datagram, each segment still
        paying its own :data:`SEG_HEADER_BYTES` envelope.  The receiver
        pays the per-datagram software tax **once** for the whole batch —
        that is the entire point of batching below the segment-count
        crossover.
        """
        segments = list(segments)
        if not segments:
            raise ValueError("cannot send an empty segment batch")
        if len(segments) == 1:
            yield from self.send_segment(segments[0], seq,
                                         retransmit=retransmit)
            return
        nbytes = (sum(s.nbytes for s in segments)
                  + SEG_HEADER_BYTES * len(segments))
        yield from self.send_data(tuple(segments), nbytes, seq,
                                  retransmit=retransmit, kind="mcast-seg")

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.data_sock.close()
        self.scout_sock.close()
