"""The per-communicator multicast channel.

Binds an MPI communicator to one IP multicast group (paper §4: one group
per process group / context) plus two sockets on every member host:

* the **data socket** — joined to the group, ``posted_only``: a multicast
  datagram is delivered only if the receive was already posted, the
  paper's readiness model.  ``IP_MULTICAST_LOOP`` is off so the root does
  not consume its own broadcast;
* the **scout socket** — an ordinary buffered UDP socket carrying the
  small synchronization messages (scouts, barrier-release acks, PVM-style
  acks).  Scouts are matched by ``(source rank, sequence, phase)`` with a
  stash for early arrivals from ranks that have raced ahead.

Every collective call advances the channel's **sequence number**; because
MPI code must be *safe* (all ranks issue collectives on a communicator in
the same order — paper §4), sequence numbers advance identically
everywhere and stale traffic is detectable.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..simnet.frame import mcast_mac
from ..simnet.kernel import Event

__all__ = ["McastChannel", "GROUP_ID_BASE", "DATA_PORT_BASE",
           "SCOUT_PORT_BASE", "SCOUT_BYTES", "MCAST_HEADER_BYTES"]

#: multicast group-id space reserved for communicators (above the
#: cluster-level GroupAllocator's small ids)
GROUP_ID_BASE = 1 << 16

DATA_PORT_BASE = 20000
SCOUT_PORT_BASE = 40000

#: wire payload of a scout message ("no data": just rank+seq encoding)
SCOUT_BYTES = 4

#: envelope bytes prepended to multicast data (root, seq)
MCAST_HEADER_BYTES = 8


class McastChannel:
    """Multicast transport for one communicator, on one rank."""

    def __init__(self, comm):
        self.comm = comm
        self.host = comm.host
        self.sim = comm.sim
        self.params = self.host.params
        self.group = mcast_mac(GROUP_ID_BASE + comm.ctx)
        self.data_port = DATA_PORT_BASE + comm.ctx
        self.scout_port = SCOUT_PORT_BASE + comm.ctx
        self.data_sock = self.host.socket(self.data_port, posted_only=True,
                                          mcast_loop=False)
        self.scout_sock = self.host.socket(self.scout_port)
        self.data_sock.join(self.group)
        self.seq = 0
        self._scout_stash: list[tuple[int, int, str]] = []
        #: naive-bcast receive timeout (None = block, may deadlock — that
        #: is the point of the naive baseline); tests/benches set this.
        self.naive_timeout_us: Optional[float] = None
        self._closed = False

    # ------------------------------------------------------------------
    def next_seq(self) -> int:
        """Advance the collective sequence (call once per collective)."""
        self.seq += 1
        return self.seq

    # -- scouts ----------------------------------------------------------
    def send_scout(self, dst_rank: int, seq: int,
                   phase: str = "up") -> Generator:
        """Send one scout/ack to ``dst_rank`` (UDP unicast, tiny)."""
        yield from self.scout_sock.sendto(
            (self.comm.rank, seq, phase), SCOUT_BYTES,
            self.comm.addr_of(dst_rank), self.scout_port, kind="scout")

    def wait_scouts(self, src_ranks: set[int], seq: int,
                    phase: str = "up",
                    timeout_us: Optional[float] = None) -> Generator:
        """Collect scouts ``(src, seq, phase)`` from every rank in
        ``src_ranks``; returns the set of ranks still missing (empty on
        success, non-empty only if ``timeout_us`` expired).

        Early scouts for other (seq, phase) pairs are stashed, never lost.
        """
        remaining = set(src_ranks)
        self._drain_stash(remaining, seq, phase)
        deadline = (None if timeout_us is None
                    else self.sim.now + timeout_us)
        while remaining:
            budget = None
            if deadline is not None:
                budget = deadline - self.sim.now
                if budget <= 0:
                    return remaining
            dgram = yield from self.scout_sock.recv(timeout=budget)
            if dgram is None:
                return remaining
            src, s, ph = dgram.payload
            if s == seq and ph == phase and src in remaining:
                remaining.discard(src)
            else:
                self._scout_stash.append((src, s, ph))
        return remaining

    def _drain_stash(self, remaining: set[int], seq: int,
                     phase: str) -> None:
        keep = []
        for (src, s, ph) in self._scout_stash:
            if s == seq and ph == phase and src in remaining:
                remaining.discard(src)
            else:
                keep.append((src, s, ph))
        self._scout_stash = keep

    # -- multicast data ----------------------------------------------------
    def post_data(self) -> Event:
        """Post the multicast receive — MUST precede the scout send."""
        return self.data_sock.post_recv()

    def wait_data(self, posted: Event) -> Generator:
        """Complete a posted receive: returns ``(root, seq, payload)``.

        Charges the UDP receive cost plus ``mcast_recv_extra_us`` (group
        receive validation / posted-descriptor handling) on the host CPU.
        """
        dgram = yield posted
        cost = self.data_sock.recv_cost_us
        if dgram.kind == "mcast-data":
            # The extra models payload validation + user-buffer delivery;
            # control multicasts (the barrier release) skip it.
            cost += self.params.mcast_recv_extra_us
        yield from self.host.cpu.use(self.host.jitter(cost))
        root, seq, payload = dgram.payload
        return root, seq, payload

    def send_data(self, payload: Any, nbytes: int, seq: int,
                  retransmit: bool = False,
                  control: bool = False) -> Generator:
        """Multicast ``payload`` to the whole group in one send.

        ``control=True`` marks data-less protocol multicasts (the barrier
        release): they skip the payload-handling extras and are traced as
        ``mcast-release`` frames.
        """
        if retransmit:
            self.host.stats.retransmissions += 1
        if not control and self.params.mcast_send_extra_us > 0:
            yield from self.host.cpu.use(
                self.host.jitter(self.params.mcast_send_extra_us))
        yield from self.data_sock.sendto(
            (self.comm.rank, seq, payload), nbytes + MCAST_HEADER_BYTES,
            self.group, self.data_port,
            kind="mcast-release" if control else "mcast-data")

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.data_sock.close()
        self.scout_sock.close()
