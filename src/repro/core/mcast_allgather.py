"""Many-to-many collectives over IP multicast — the paper's future work.

§5 of the paper: "While we have not observed buffer overflow due to a
set of fast senders overrunning a single receiver, it is possible this
may occur in many-to-many communications and needs to be examined
further."  This module examines it.

An **allgather** over multicast lets every rank contribute one payload
and receive everyone else's — N multicasts total instead of MPICH's
gather-plus-broadcast trees.  Two schedules are provided:

* ``mcast-paced`` (the safe one, registered as an ``allgather``
  implementation): after a scout-synchronized "all ready" round, ranks
  multicast strictly **in rank order**, each waiting for its
  predecessor's payload before sending.  A receiver therefore never
  needs more than **one** outstanding receive descriptor: pacing turns
  the many-to-many hazard back into the paper's one-to-many case.
* ``unpaced`` (:func:`allgather_mcast_unpaced`, deliberately *not*
  registered): after the ready round every rank multicasts at once.
  Receivers holding fewer than N-1 posted descriptors can be overrun —
  exactly the buffer-overflow scenario the paper worried about.  The
  function reports per-rank losses instead of hanging, and the ablation
  benchmark (`benchmarks/bench_ablation_overrun.py`) sweeps the
  descriptor budget to chart the overrun boundary.

Both build on the per-communicator :class:`~repro.core.channel.McastChannel`.
For contributions larger than one MTU, :mod:`repro.core.segment` registers
``mcast-seg-paced``: the same rank-ordered pacing, with each turn's payload
fragmented (adaptively sized/batched) and streamed as a pipeline of
segments, and each turn's sender running the broadcast's selective NACK
repair rounds — so induced loss or a descriptor-budget overrun is
repaired by the rank that owns the data instead of raising ``McastLost``.
"""

from __future__ import annotations

from typing import Any, Generator

from ..mpi.collective.registry import register
from ..mpi.datatypes import payload_bytes
from .scout import scout_gather_binary

__all__ = ["allgather_mcast_paced", "allgather_mcast_unpaced"]


def _ready_round(comm, channel, seq: int) -> Generator:
    """Scout-sync "everyone has posted" round (like the barrier, but the
    release rides the scout socket so it cannot consume a data post)."""
    root = 0
    yield from scout_gather_binary(comm, channel, seq, root,
                                   phase="ag-ready")
    if comm.rank == root:
        for dst in range(comm.size):
            if dst != root:
                yield from channel.send_scout(dst, seq, phase="ag-go")
    else:
        missing = yield from channel.wait_scouts({root}, seq,
                                                 phase="ag-go")
        if missing:  # pragma: no cover - no timeout used
            raise AssertionError("allgather ready round timed out")


@register("allgather", "mcast-paced")
def allgather_mcast_paced(comm, obj: Any) -> Generator:
    """Rank-ordered multicast allgather (overrun-free by construction).

    Usage: ``everything = yield from comm.allgather(obj)`` with
    ``comm.use_collectives(allgather="mcast-paced")``.
    """
    channel = comm.mcast
    seq = channel.next_seq()
    size = comm.size
    if size == 1:
        return [obj]

    # One post is enough: pacing guarantees at most one in-flight payload.
    results: list[Any] = [None] * size
    results[comm.rank] = obj

    yield from _ready_round(comm, channel, seq)

    for turn in range(size):
        if turn == comm.rank:
            yield from channel.send_data((turn, obj),
                                         payload_bytes(obj), seq)
            continue
        posted = channel.post_data()
        src, got_seq, (turn_tag, data) = yield from channel.wait_data(
            posted)
        if got_seq != seq or src != turn or turn_tag != turn:
            raise AssertionError(
                f"rank {comm.rank}: allgather pacing violated "
                f"(expected turn {turn}, got src={src}, tag={turn_tag}, "
                f"seq={got_seq}/{seq})")
        results[turn] = data
    return results


def allgather_mcast_unpaced(comm, obj: Any,
                            descriptors: int) -> Generator:
    """All ranks multicast simultaneously; ``descriptors`` receives are
    pre-posted.  Returns ``(results, lost)`` where ``lost`` counts the
    contributions this rank missed (``results`` holds ``None`` there).

    This is the overrun experiment, not a correct collective: with
    ``descriptors < N-1`` a receiver *will* drop whatever arrives while
    it has no free descriptor (paper §5's buffer-overflow worry).  The
    function re-posts as fast as it can consume, so losses measure the
    burst the receiver could not absorb, then uses a timeout to detect
    what never came.
    """
    if descriptors < 1:
        raise ValueError(f"need at least one descriptor, got "
                         f"{descriptors}")
    channel = comm.mcast
    seq = channel.next_seq()
    size = comm.size
    if size == 1:
        return [obj], 0

    results: list[Any] = [None] * size
    results[comm.rank] = obj

    # Pre-post the descriptor budget (VIA-style receive descriptors).
    budget = min(descriptors, size - 1)
    posted = [channel.post_data() for _ in range(budget)]

    yield from _ready_round(comm, channel, seq)

    # Everyone fires at once.
    yield from channel.send_data((comm.rank, obj), payload_bytes(obj),
                                 seq)

    expected = size - 1
    received = 0
    # Consume + re-post until everything arrived or nothing more comes.
    # The drain timeout is generous: several worst-case serializations.
    drain_us = 50_000.0
    while received < expected and posted:
        ev = posted.pop(0)
        if not ev.triggered:
            timer = comm.sim.timeout(drain_us)
            yield comm.sim.any_of([ev, timer])
            if not ev.triggered:
                channel.data_sock.cancel_recv(ev)
                break
        src, got_seq, (tag, data) = yield from channel.wait_data(ev)
        if got_seq == seq and results[tag] is None:
            results[tag] = data
            received += 1
        if received + len(posted) < expected:
            posted.append(channel.post_data())

    # Withdraw every descriptor still outstanding (not just the one that
    # timed out): a stale posted receive would swallow the next
    # collective's multicast payload on this channel and hang it.
    channel.data_sock.cancel_recv_all(posted)

    lost = expected - received
    return results, lost
