"""MPI_Barrier over IP multicast — the paper's §3.2.

The three MPICH phases collapse to one gather plus one multicast:

1. scouts reduce to rank 0 up the binary tree (``N-1`` point-to-point
   messages, ``ceil(log2 N)`` steps);
2. rank 0 releases everyone with a **single data-less multicast**.

Every rank posts its release receive *before* sending its scout up, so
the release multicast cannot outrun a receiver — the same invariant as
the broadcast.  Message count: ``N-1`` unicasts + 1 multicast, versus
MPICH's ``2(N-K) + K log2 K``.
"""

from __future__ import annotations

from typing import Generator

from ..mpi.collective.registry import register
from .scout import scout_gather_binary

__all__ = ["barrier_mcast", "barrier_mcast_message_count"]


def barrier_mcast_message_count(n: int) -> tuple[int, int]:
    """(point-to-point scouts, multicasts) for the multicast barrier."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return (0, 0)
    return (n - 1, 1)


@register("barrier", "mcast")
def barrier_mcast(comm) -> Generator:
    """``yield from barrier_mcast(comm)``."""
    channel = comm.mcast
    seq = channel.next_seq()
    if comm.size == 1:
        return None
    root = 0

    if comm.rank == root:
        yield from scout_gather_binary(comm, channel, seq, root)
        yield from channel.send_data(None, 0, seq, control=True)
        return None

    posted = channel.post_data()
    yield from scout_gather_binary(comm, channel, seq, root)
    src, got_seq, _ = yield from channel.wait_data(posted)
    if got_seq != seq or src != root:  # pragma: no cover - protocol guard
        raise AssertionError(
            f"rank {comm.rank} got stale barrier release "
            f"(seq {got_seq} != {seq}) — unsafe MPI code?")
    return None
