"""MPI_Bcast over IP multicast — the paper's §3.1.

Four registered implementations:

* ``mcast-binary`` — scout sync up a binary tree, then **one** multicast
  of the payload.  Total frames: ``(N-1) + floor(M/T) + 1``;
* ``mcast-linear`` — scout sync with all receivers hitting the root
  directly, then one multicast.  Same frame count, more sequential steps
  at the root;
* ``mcast-naive`` — *no* synchronization: the root multicasts
  immediately.  Correct only if every receiver posted in time; a slow
  receiver silently loses the message (the unreliability the paper's
  §2 explains).  Kept as the negative baseline;
* ``mcast-ack`` — the PVM approach the paper cites ([2], Dunigan & Hall):
  multicast immediately, collect per-receiver acks, retransmit the whole
  payload on timeout until everyone acked.  Reliable, but the paper notes
  it "did not produce improvement in performance" — the retransmissions
  and the ack implosion at the root eat the multicast win.  Our ablation
  benchmark (`benchmarks/bench_ablation_reliability.py`) reproduces that
  verdict.

A fifth implementation, ``mcast-seg-nack`` (:mod:`repro.core.segment`),
addresses exactly the weakness that sinks ``mcast-ack`` at large
payloads: it fragments the payload into single-frame segments sized by
``NetParams.segment_bytes``, streams them back-to-back, and repairs
losses with selective per-segment NACK retransmission instead of
re-multicasting everything.  Loss-free it costs
``1 + 4(N-1) + ceil(M / segment_bytes)`` frames (header multicast, four
scout/report/decision sweeps, one frame per segment — the full formula,
including repair rounds, is derived in the segment module's docstring
and exported as :func:`repro.core.segment.seg_nack_frame_count`).

Invariant shared by binary/linear (the paradigm-mismatch fix): every
receiver **posts its multicast receive before releasing its scout**, so
by the time the root has gathered all scouts, a multicast cannot find an
unready receiver.
"""

from __future__ import annotations

from typing import Any, Generator

from ..mpi.collective.registry import register
from ..mpi.datatypes import payload_bytes
from .rounds import McastLost
from .scout import scout_gather_binary, scout_gather_linear

__all__ = ["bcast_mcast_binary", "bcast_mcast_linear", "bcast_mcast_naive",
           "bcast_mcast_ack", "McastLost"]


def _bcast_scouted(comm, obj: Any, root: int, gather) -> Generator:
    """Common scout-then-multicast skeleton for binary and linear."""
    channel = comm.mcast
    seq = channel.next_seq()
    if comm.size == 1:
        return obj

    if comm.rank == root:
        yield from gather(comm, channel, seq, root)
        yield from channel.send_data(obj, payload_bytes(obj), seq)
        return obj

    posted = channel.post_data()          # BEFORE the scout: the invariant
    yield from gather(comm, channel, seq, root)
    src, got_seq, data = yield from channel.wait_data(posted)
    if got_seq != seq or src != root:  # pragma: no cover - protocol guard
        raise AssertionError(
            f"rank {comm.rank} expected bcast (root={root}, seq={seq}), "
            f"got (root={src}, seq={got_seq}) — unsafe MPI code?")
    return data


@register("bcast", "mcast-binary")
def bcast_mcast_binary(comm, obj: Any, root: int = 0) -> Generator:
    """Binary-tree scout sync + single IP multicast (paper Fig. 3)."""
    result = yield from _bcast_scouted(comm, obj, root,
                                       scout_gather_binary)
    return result


@register("bcast", "mcast-linear")
def bcast_mcast_linear(comm, obj: Any, root: int = 0) -> Generator:
    """Linear scout sync + single IP multicast (paper Fig. 4)."""
    result = yield from _bcast_scouted(comm, obj, root,
                                       scout_gather_linear)
    return result


@register("bcast", "mcast-naive")
def bcast_mcast_naive(comm, obj: Any, root: int = 0) -> Generator:
    """Unsynchronized multicast: loses messages when receivers are slow.

    If ``comm.mcast.naive_timeout_us`` is set, a losing receiver raises
    :class:`McastLost`; otherwise it blocks forever (surfacing as
    :class:`~repro.simnet.kernel.DeadlockError` at simulation end).
    """
    channel = comm.mcast
    seq = channel.next_seq()
    if comm.size == 1:
        return obj

    if comm.rank == root:
        yield from channel.send_data(obj, payload_bytes(obj), seq)
        return obj

    posted = channel.post_data()
    if channel.naive_timeout_us is not None:
        timer = comm.sim.timeout(channel.naive_timeout_us)
        yield comm.sim.any_of([posted, timer])
        if not posted.triggered:
            channel.data_sock.cancel_recv(posted)
            raise McastLost(comm.rank, seq)
    src, got_seq, data = yield from channel.wait_data(posted)
    if got_seq != seq:
        raise McastLost(comm.rank, seq)
    return data


@register("bcast", "mcast-ack")
def bcast_mcast_ack(comm, obj: Any, root: int = 0) -> Generator:
    """PVM-style sender-reliable multicast: ack + retransmit (paper [2]).

    The root multicasts, then waits for an ack from every receiver,
    re-multicasting the **full payload** each ``ack_timeout_us`` until all
    acks arrive (bounded by ``max_retransmits``).  Receivers that missed
    an earlier copy are caught by a retransmission; duplicates are
    discarded by sequence check.
    """
    channel = comm.mcast
    params = comm.host.params
    seq = channel.next_seq()
    if comm.size == 1:
        return obj

    if comm.rank == root:
        nbytes = payload_bytes(obj)
        yield from channel.send_data(obj, nbytes, seq)
        missing = {r for r in range(comm.size) if r != root}
        attempts = 0
        while missing:
            missing = yield from channel.wait_scouts(
                missing, seq, phase="ack",
                timeout_us=params.ack_timeout_us)
            if missing:
                attempts += 1
                if attempts > params.max_retransmits:
                    raise McastLost(comm.rank, seq, reason=(
                        f"bcast_mcast_ack: gave up after {attempts - 1} "
                        f"retransmits; unreachable ranks "
                        f"{sorted(missing)}"))
                yield from channel.send_data(obj, nbytes, seq,
                                             retransmit=True)
        return obj

    # Receiver: keep posting until our sequence number arrives (stale
    # retransmissions of earlier broadcasts are discarded).
    while True:
        posted = channel.post_data()
        src, got_seq, data = yield from channel.wait_data(posted)
        if got_seq == seq and src == root:
            break
    yield from channel.send_scout(root, seq, phase="ack")
    return data
