"""Gather over the segmented multicast round engine.

``gather`` **"mcast-seg-root-follow"**: the shared turn loop of
:func:`repro.core.mcast_reduce.stream_turns` with the root *collecting*
instead of folding — every non-root rank serves its slice (one engine
stream per contributor, in ascending rank order), the **root follows
every stream** via the engine's ``needed``-subset follower (needing the
whole stream), and ranks that are neither the turn's sender nor the
root keep lockstep in **bystander mode** (``needed=set()``): they join
every arming gather and obey every decision without posting a single
descriptor.

Like the segmented reduce, many-to-one traffic gains no frame-count
advantage from multicast — each contribution is consumed at exactly one
rank — so the payload frames match the p2p binomial gather while the
engine supplies what the tree lacks: per-segment selective NACK repair
under loss, descriptor-budget pacing, and adaptive drain timeouts.
Select with ``comm.use_collectives(gather="mcast-seg-root-follow")``.
"""

from __future__ import annotations

from typing import Any, Generator

from ..mpi.collective.registry import register
from .mcast_reduce import stream_turns

__all__ = ["gather_mcast_seg_root_follow"]


@register("gather", "mcast-seg-root-follow")
def gather_mcast_seg_root_follow(comm, obj: Any,
                                 root: int = 0) -> Generator:
    """Returns the rank-ordered list at ``root``; ``None`` elsewhere."""
    if comm.size == 1:
        return [obj]
    out: list[Any] = [None] * comm.size

    def collect(turn: int, value: Any) -> None:
        out[turn] = value

    yield from stream_turns(comm, obj, root, "gat", collect)
    return out if comm.rank == root else None
