"""Reduction collectives over the segmented multicast round engine.

The paper multicasts only the one-to-many side (bcast, barrier release);
its reductions stayed on MPICH's p2p trees.  This module closes that gap
with collectives built on :mod:`repro.core.rounds`, all sharing one
**turn loop** (:func:`stream_turns`): every non-root rank takes a turn
streaming its contribution through the engine (header, arm, paced
segment stream, report, decision, selective repair — exactly the
``mcast-seg-nack`` broadcast structure with the contributor as root),
the root follows each turn, and ranks that are neither the turn's
sender nor the root follow the loop as pure bystanders
(``needed=set()``): they join every arming gather and receive every
decision, staying in lockstep without posting a single descriptor — the
data frames they do not need die at their posted-only sockets.

* ``reduce`` **"mcast-seg-combine"** — the root folds the arriving
  values through the :class:`~repro.mpi.ops.Op` **in rank order**
  (``acc = op(acc, incoming)``), so non-commutative but associative
  operators see operands exactly as MPI requires, at every root.

  Many-to-one traffic gains no *frame-count* advantage from multicast
  (each contribution is needed at exactly one rank), so the payload
  frames match the p2p binomial reduce; what the engine adds is the
  PR 1/2 reliable transport — per-segment selective repair under loss,
  descriptor-budget pacing, adaptive drain timeouts — none of which the
  p2p tree has, plus the building block for:

* ``allreduce`` **"mcast-seg-nack"** — the mcast reduce composed with
  the segmented broadcast (reduce to rank 0, then
  :func:`~repro.core.segment.bcast_mcast_seg_nack`).  Here multicast
  *does* win frames outright: MPICH's reduce-then-broadcast puts
  ``2(N-1)`` copies of the payload on the wire, this puts ``N`` — the
  broadcast half is a single multicast stream.

* ``gather`` **"mcast-seg-root-follow"** lives in
  :mod:`repro.core.mcast_gather`: the same turn loop with the root
  *collecting* instead of folding.

All register in :mod:`repro.mpi.collective.registry`; switch with
``comm.use_collectives(reduce="mcast-seg-combine",
allreduce="mcast-seg-nack")`` or let the payload-, topology- and
loss-aware ``"auto"`` policy (:mod:`repro.mpi.collective.policy`) pick
per call.  On multi-segment fabrics the hierarchical family
(:mod:`repro.mpi.collective.hier`) composes these same collectives per
segment, bridged by leaders.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Generator

from ..mpi.collective.registry import register
from ..mpi.datatypes import payload_bytes
from ..mpi.ops import Op
from .channel import SEG_HEADER_BYTES
from .rounds import follow_rounds, round_namespace, serve_rounds
from .scout import scout_gather_binary
from .segment import bcast_mcast_seg_nack, fragment, plan_transport

__all__ = ["stream_turns", "reduce_mcast_seg_combine",
           "allreduce_mcast_seg_nack"]


def stream_turns(comm, obj: Any, root: int, key: str,
                 consume: Callable[[int, Any], None]) -> Generator:
    """Turn-based many-to-one streaming over the round engine.

    Every rank except ``root`` serves one engine stream carrying its
    ``obj`` (turn order = ascending rank); the root follows each turn
    and hands the reassembled value — and its own ``obj``, which never
    touches the wire — to ``consume(turn, value)`` in strictly
    ascending turn order.  ``key`` namespaces the per-turn repair loops
    and header phases (``"red"`` for reduce, ``"gat"`` for gather) so
    different collectives can never cross-match control traffic.
    """
    channel = comm.mcast
    params = comm.host.params
    seq = channel.next_seq()
    size = comm.size

    if comm.rank != root:
        # the root's contribution never touches the wire: only the
        # ranks that will serve a turn pay the fragmentation copy
        tplan = plan_transport(payload_bytes(obj), params)
        mine = fragment(obj, tplan.segment_bytes)

    for turn in range(size):
        arm_phase, rnd_token = round_namespace(key, turn)
        hdr_phase = (key + "-hdr", turn)
        if turn == root:
            # The root's own contribution never touches the wire.
            if comm.rank == root:
                consume(turn, obj)
            continue
        if comm.rank == turn:
            others = {r for r in range(size) if r != turn}
            yield from scout_gather_binary(comm, channel, seq, turn,
                                           phase=hdr_phase)
            yield from channel.send_data(
                ("seg-hdr", turn, tplan.nsegs, tplan.batch),
                SEG_HEADER_BYTES, seq, control=True, kind="mcast-seg-hdr")
            yield from serve_rounds(comm, channel, seq, turn, mine,
                                    tplan.batch, others, arm_phase,
                                    rnd_token)
        elif comm.rank == root:
            hdr_posted = channel.post_data()
            yield from scout_gather_binary(comm, channel, seq, turn,
                                           phase=hdr_phase)
            while True:
                src, got_seq, hdr = yield from channel.wait_data(
                    hdr_posted)
                if (got_seq == seq and src == turn
                        and isinstance(hdr, tuple)
                        and hdr[0] == "seg-hdr" and hdr[1] == turn):
                    break
                # A straggler from an earlier collective consumed the
                # descriptor; re-post and re-wait (FIFO wire: the header
                # cannot overtake same-source stragglers).
                hdr_posted = channel.post_data()
            reasm = yield from follow_rounds(comm, channel, seq, turn,
                                            hdr[2], hdr[3], arm_phase,
                                            rnd_token)
            consume(turn, reasm.result())
        else:
            # Bystander: stay in lockstep with the turn's repair loop
            # (arm gathers, empty reports, decisions) without posting
            # descriptors — the turn's data is not for us.
            yield from scout_gather_binary(comm, channel, seq, turn,
                                           phase=hdr_phase)
            yield from follow_rounds(comm, channel, seq, turn, 1, 1,
                                     arm_phase, rnd_token, needed=set())


@register("reduce", "mcast-seg-combine")
def reduce_mcast_seg_combine(comm, obj: Any, op: Op,
                             root: int = 0) -> Generator:
    """Segmented NACK-repaired reduce: gather turns folded through ``op``.

    Returns the reduction at ``root``; ``None`` elsewhere.
    """
    if comm.size == 1:
        return copy.copy(obj)
    state: dict[str, Any] = {}

    def fold(turn: int, value: Any) -> None:
        # Fold strictly in ascending turn (= rank) order: MPI allows
        # reordering only for commutative ops, so never reorder.
        state["acc"] = (value if "acc" not in state
                        else op(state["acc"], value))

    yield from stream_turns(comm, obj, root, "red", fold)
    return state.get("acc") if comm.rank == root else None


@register("allreduce", "mcast-seg-nack")
def allreduce_mcast_seg_nack(comm, obj: Any, op: Op) -> Generator:
    """Segmented allreduce: mcast-seg reduce to rank 0, then the
    segmented NACK-repaired broadcast — ``N`` payload streams total
    against MPICH's ``2(N-1)`` tree copies."""
    result = yield from reduce_mcast_seg_combine(comm, obj, op, 0)
    result = yield from bcast_mcast_seg_nack(comm, result, 0)
    return result
