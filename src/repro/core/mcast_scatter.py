"""Scatter over the segmented multicast round engine.

``scatter`` **"mcast-seg-root"**: the root fragments every rank's
element, renumbers the fragments into **one global segment stream**
(per-rank-addressed by index range), and streams the whole thing in a
single paced burst through :func:`~repro.core.rounds.serve_rounds` —
one arm gather, one pipelined stream, one report/decision round,
instead of MPICH's per-subtree store-and-forward hops.

The tiny header multicast carries the per-rank segment *counts*; each
receiver derives its own index range and follows the stream with
``needed=range(start, start+count)``
(:func:`~repro.core.rounds.follow_rounds`): it posts descriptors for the
whole round (multicast delivers every datagram to everyone), but
reassembles and NACK-reports only its own slice — a segment lost on the
way to rank r is repaired only if *r* needs it, so repair cost tracks
real damage, per-rank.  The root's own element never touches the wire.

Against the binomial p2p scatter (whose edges re-forward whole subtree
shares, ~``log2(N)/2`` copies of the payload), the multicast stream puts
each byte on the wire exactly once — the win grows with the process
count, at the price of every receiver paying the receive tax for the
full stream (the classic multicast-scatter trade; the payload-aware
``"auto"`` policy in :mod:`repro.mpi.collective.policy` picks the
winner per call).
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

from ..mpi.collective.registry import register
from .channel import SEG_HEADER_BYTES
from .rounds import (Segment, follow_rounds, resolved_segment_bytes,
                     round_namespace, serve_rounds)
from .scout import scout_gather_binary
from .segment import auto_batch, fragment

__all__ = ["scatter_mcast_seg_root"]


@register("scatter", "mcast-seg-root")
def scatter_mcast_seg_root(comm, objs: Optional[Sequence[Any]],
                           root: int = 0) -> Generator:
    """Returns this rank's element of the root's sequence."""
    channel = comm.mcast
    params = comm.host.params
    seq = channel.next_seq()
    size = comm.size
    if size == 1:
        if objs is None or len(objs) != 1:
            raise ValueError("scatter at root needs exactly size elements")
        return objs[0]
    arm_phase, rnd_token = round_namespace("sc")
    seg_bytes = resolved_segment_bytes(params)

    if comm.rank == root:
        if objs is None or len(objs) != size:
            raise ValueError(
                f"scatter root needs exactly {size} elements, "
                f"got {None if objs is None else len(objs)}")
        counts = []
        flat: list[Segment] = []
        for r in range(size):
            if r == root:
                counts.append(0)
                continue
            frag = fragment(objs[r], seg_bytes)
            counts.append(len(frag))
            flat.extend(frag)
        nsegs = len(flat)
        # Renumber the per-rank fragments into one global stream; each
        # receiver's slice is the contiguous index range its count spans.
        segments = [Segment(i, nsegs, s.nbytes, s.chunk, s.opaque)
                    for i, s in enumerate(flat)]
        receivers = {r for r in range(size) if r != root}
        yield from scout_gather_binary(comm, channel, seq, root,
                                       phase="sc-hdr")
        yield from channel.send_data(
            ("sc-hdr", tuple(counts), auto_batch(params, nsegs)),
            SEG_HEADER_BYTES + 4 * size, seq, control=True,
            kind="mcast-seg-hdr")
        yield from serve_rounds(comm, channel, seq, root, segments,
                                auto_batch(params, nsegs), receivers,
                                arm_phase, rnd_token)
        return objs[root]

    # Receiver: header phase — one descriptor, posted before the scout.
    hdr_posted = channel.post_data()
    yield from scout_gather_binary(comm, channel, seq, root,
                                   phase="sc-hdr")
    while True:
        src, got_seq, hdr = yield from channel.wait_data(hdr_posted)
        if (got_seq == seq and src == root and isinstance(hdr, tuple)
                and hdr[0] == "sc-hdr"):
            break
        hdr_posted = channel.post_data()
    _tag, counts, batch = hdr
    nsegs = sum(counts)
    start = sum(counts[:comm.rank])
    needed = set(range(start, start + counts[comm.rank]))
    reasm = yield from follow_rounds(comm, channel, seq, root, nsegs,
                                     batch, arm_phase, rnd_token,
                                     needed=needed)
    mine = reasm.segments()
    if mine and mine[0].opaque:
        return mine[0].chunk
    return b"".join(s.chunk for s in mine)
