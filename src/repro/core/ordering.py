"""Broadcast ordering and the MPI safety restriction (paper §4).

The paper argues that scout-synchronized multicast preserves broadcast
order whenever the MPI program is *safe*: every process issues the
collective calls of a communicator in the same order.  The reasoning is
inductive — a rank cannot contribute its scout to broadcast *k+1* before
it has received broadcast *k*, so the root of *k+1* cannot multicast
early.

This module provides

* :func:`check_safe_schedule` — static verification that per-rank
  schedules of (communicator, operation) pairs are identical, i.e. the
  program meets the paper's restriction;
* :func:`run_bcast_sequence` — a ready-made SPMD body that executes a
  sequence of broadcasts with given roots (the paper's §4 example uses
  roots 6, 7, 8 in one group) and records the arrival order at each rank,
  so tests and examples can assert order preservation.
"""

from __future__ import annotations

from typing import Any, Generator, Hashable, Sequence

__all__ = ["UnsafeScheduleError", "check_safe_schedule",
           "run_bcast_sequence"]


class UnsafeScheduleError(ValueError):
    """Per-rank collective schedules differ — the program is not safe."""

    def __init__(self, rank_a: int, rank_b: int, index: int,
                 op_a: Any, op_b: Any):
        self.ranks = (rank_a, rank_b)
        self.index = index
        super().__init__(
            f"unsafe MPI program: rank {rank_a} issues {op_a!r} as its "
            f"{index}-th collective but rank {rank_b} issues {op_b!r}")


def check_safe_schedule(
        schedules: dict[int, Sequence[Hashable]]) -> None:
    """Raise :class:`UnsafeScheduleError` unless all schedules agree.

    ``schedules`` maps rank -> ordered list of collective descriptors
    (any hashable: e.g. ``("bcast", comm_ctx, root)``).
    """
    if not schedules:
        return
    ranks = sorted(schedules)
    reference_rank = ranks[0]
    reference = list(schedules[reference_rank])
    for rank in ranks[1:]:
        sched = list(schedules[rank])
        if len(sched) != len(reference):
            raise UnsafeScheduleError(
                reference_rank, rank, min(len(sched), len(reference)),
                (reference[len(sched)] if len(reference) > len(sched)
                 else "<nothing>"),
                (sched[len(reference)] if len(sched) > len(reference)
                 else "<nothing>"))
        for i, (a, b) in enumerate(zip(reference, sched)):
            if a != b:
                raise UnsafeScheduleError(reference_rank, rank, i, a, b)


def run_bcast_sequence(env, roots: Sequence[int],
                       payload_of=lambda root, i: (root, i)) -> Generator:
    """SPMD body: broadcast ``len(roots)`` times with the given roots.

    Returns the list of received payloads in arrival order at this rank —
    identical across ranks iff ordering is preserved.  Use with
    :func:`repro.runtime.run_spmd`.
    """
    comm = env.comm
    received = []
    for i, root in enumerate(roots):
        obj = payload_of(root, i) if comm.rank == root else None
        data = yield from comm.bcast(obj, root=root)
        received.append(data)
    return received
