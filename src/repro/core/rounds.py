"""Reusable multicast round engine: serve/follow with selective NACK repair.

PR 1/2 grew a reliable segmented-multicast transport inside the broadcast
implementation; this module extracts it as a standalone **round engine**
so every collective that streams data through a
:class:`~repro.core.channel.McastChannel` — broadcast, allgather turns,
the reduction-side collectives of :mod:`repro.core.mcast_reduce` /
:mod:`repro.core.mcast_scatter` — shares one serve/follow state machine,
in the spirit of Träff's decomposition of collectives into reusable
communication rounds ("Decomposing Collectives for Exploiting Multi-lane
Communication").

The contract has exactly two sides:

* :func:`serve_rounds` — the **sender**: given a segment stream, it arms
  the group (scout gather), streams the round's datagrams (rate-paced,
  see :class:`RoundPacer`), collects per-receiver NACK reports, folds the
  receivers' descriptor budgets into its pacing, and multicasts repair
  rounds built from the union of missing sets until every receiver
  reports complete (or ``max_retransmits`` is exhausted, in which case it
  tells everyone before raising);
* :func:`follow_rounds` — a **receiver**: it posts one descriptor per
  expected datagram (window-limited by :attr:`McastChannel.recv_budget`),
  arms, drains the round into a :class:`Reassembler`, reports its missing
  bitmap (plus its budget) and obeys the sender's per-round decision.
  A ``needed`` subset restricts what the receiver reassembles and
  reports — the scatter's per-rank addressing, and ``needed=set()`` is a
  pure *bystander* that stays in lockstep with the repair loop without
  posting a single descriptor (used by the multicast reduce, where only
  the root consumes data).

Pacing, budget feedback, selective repair, and the two adaptive
behaviours below are engine concerns — callers only provide the segment
stream, the receiver set, and a *round namespace*
(:func:`round_namespace`) so concurrent/consecutive repair loops on one
channel never cross-match each other's control traffic.

**Adaptive drain timeout** (:func:`round_drain_timeout_us`).  A receiver
that lost a round's *tail* can only detect it by silence.  PR 2 waited a
fixed ``NetParams.seg_drain_timeout_us``; the engine instead scales the
timeout to the round's expected serialization (wire time + send/receive
software + pacing gap, per datagram) plus a fixed arming-skew floor
(``NetParams.seg_drain_floor_us``), capped by the configured timeout.  A
single-datagram round — the whole-round-lost case of the auto transport
plan — now NACKs after ~1-2 ms instead of the full fixed timeout.

**Repair re-batching** (:func:`repair_batch`).  Under the auto transport
policy, a repair round's plan is the actual missing set, not round 0's
chunking: a scattered handful of lost segments re-packs into a single
batched datagram (one descriptor, one per-datagram software tax) whenever
the repair plan fits under ``seg_auto_crossover``.  Both sides derive the
repair batch from ``(plan, params)``, so descriptor counts still match
datagram counts exactly.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from dataclasses import dataclass

from .channel import MCAST_HEADER_BYTES, SEG_HEADER_BYTES
from .scout import scout_gather_binary

__all__ = ["McastLost", "Segment", "Reassembler", "RoundPacer",
           "auto_gap_us", "chunk_plan", "frame_segment_bytes",
           "reassemble", "repair_batch", "repair_round_limit",
           "resolved_segment_bytes", "round_drain_timeout_us",
           "round_namespace", "serve_rounds", "follow_rounds"]


class McastLost(RuntimeError):
    """A multicast transfer was lost for good.

    Raised by the naive (unsynchronized) broadcast when the payload
    never arrives, and by the round engine when the repair-round budget
    (:func:`repair_round_limit`) is exhausted with segments still
    missing — the crisp, typed end of the "complete or fail" contract
    the chaos fuzzer (:mod:`repro.chaos`) asserts.  A subclass of
    ``RuntimeError`` for backward compatibility with callers that catch
    the engine's historical bare error.
    """

    def __init__(self, rank: int, seq, reason: Optional[str] = None):
        self.rank = rank
        self.seq = seq
        super().__init__(
            reason if reason is not None else
            f"rank {rank} lost multicast broadcast seq={seq} "
            f"(receive posted too late and no synchronization was used)")


def repair_round_limit(params) -> int:
    """Repair rounds the engine runs before aborting a transfer:
    ``NetParams.max_repair_rounds`` when set, else the historical
    ``max_retransmits`` bound.  A receiver that can never be satisfied
    (partitioned segment, dead host, a drop hook eating every data
    frame) turns the drain-timeout loop into a livelock; this bound
    converts it into a typed :class:`McastLost` instead."""
    limit = params.max_repair_rounds
    return params.max_retransmits if limit is None else limit


@dataclass(frozen=True)
class Segment:
    """One per-segment-sequenced chunk of a fragmented payload.

    ``opaque`` payloads (anything that is not bytes-like) cannot be
    sliced for real, so one segment carries the whole object and the rest
    carry ``None`` — the *sizes* still follow the segmentation plan, so
    wire timing is identical to a byte payload of the same length.

    Bytes-like payloads travel as zero-copy ``memoryview`` slices over
    the sender's immutable buffer (:func:`repro.core.segment.fragment`);
    :func:`reassemble` is the user boundary where ``bytes`` are
    materialized again.
    """

    index: int     #: position in the stream, 0-based
    nsegs: int     #: total segments of this stream
    nbytes: int    #: user bytes accounted to this segment on the wire
    chunk: Any     #: memoryview slice, or the object (opaque), or None
    opaque: bool = False


def frame_segment_bytes(params) -> int:
    """The largest segment that still rides a single Ethernet frame:
    one MTU's UDP payload minus the data and per-segment envelopes."""
    return max(1, params.max_udp_payload
               - MCAST_HEADER_BYTES - SEG_HEADER_BYTES)


def resolved_segment_bytes(params) -> int:
    """``NetParams.segment_bytes`` with ``"auto"`` resolved to the
    frame-sized segment — what every follower may assume about the
    stream it is about to drain."""
    seg = params.segment_bytes
    return frame_segment_bytes(params) if not isinstance(seg, int) else seg


def chunk_plan(plan: list[int], batch: int) -> list[list[int]]:
    """Group a round's segment indices into per-datagram batches.

    Both sides compute this identically from (plan, batch), so the
    receiver's descriptor count always equals the sender's datagram
    count.  Repair plans re-batch: scattered losses from different
    original batches pack together into fewer repair datagrams.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    return [plan[i:i + batch] for i in range(0, len(plan), batch)]


def repair_batch(params, nplan: int, base_batch: int) -> int:
    """Batch factor for a repair round whose plan has ``nplan`` segments.

    Under the fully-auto transport policy a repair plan that fits below
    the crossover ships as **one** batched datagram regardless of round
    0's chunking — scattered single-segment losses no longer pay one
    per-datagram software tax each.  Explicit integer ``segment_bytes``
    or ``seg_batch`` settings pin the wire behaviour and are honoured
    unchanged.
    """
    if (not isinstance(params.segment_bytes, int)
            and not isinstance(params.seg_batch, int)
            and 0 < nplan <= params.seg_auto_crossover):
        return nplan
    return base_batch


def auto_gap_us(params, datagram_bytes: int) -> float:
    """The resolved ``seg_pace_gap_us="auto"`` inter-datagram gap: the
    receiver drain estimate plus 25% + 10 µs of margin, absorbing the
    skew between a receiver's re-post and the next wire arrival.  Shared
    by the sender's pacer and the follower's drain-timeout estimate so
    the two sides can never disagree about the stream's pace.
    """
    return 1.25 * params.seg_drain_estimate_us(datagram_bytes) + 10.0


def round_drain_timeout_us(params, ndatagrams: int,
                           datagram_bytes: int,
                           trunk_hops: int = 0,
                           trunk_us_per_byte: Optional[float] = None
                           ) -> float:
    """Adaptive drain timeout for one round of ``ndatagrams`` datagrams.

    Expected per-datagram cost = wire serialization + sender software +
    receiver drain software + the (resolved) pacing gap; the timeout is
    that expectation for the whole round plus the
    ``seg_drain_floor_us`` skew floor (covers the arming-gather depth a
    leaf receiver starts its timer ahead of the root's first send),
    capped by the configured ``seg_drain_timeout_us`` so no round ever
    waits *longer* than the PR 2 fixed behaviour.

    ``trunk_hops`` extends the timeout past the cap on tiered fabrics
    (:mod:`repro.simnet.fabric`): each switch-to-switch hop on the
    farthest sender-receiver path store-and-forwards the whole
    datagram once more, so a receiver ``h`` trunks from the root must
    allow ``h`` extra serializations (plus switch latency) before
    declaring the round lost — without this, a deep tree's leaf NACKs
    *before the data can physically arrive* and cancels the very
    descriptor the repair needs, livelocking the repair loop.
    ``trunk_us_per_byte`` prices those serializations at the trunks'
    *own* tier rates (``McastChannel.trunk_us_per_byte``) — a backbone
    slower than the edge needs proportionally more allowance; when
    ``None`` the hops are priced at the edge rate.  The path term
    rides on top of the cap: the cap bounds the flat expectation, the
    fabric depth is real physics.
    """
    cap = params.seg_drain_timeout_us
    per = (datagram_bytes * 8.0 / params.rate_mbps
           + params.udp_send_us + params.mcast_send_extra_us
           + params.seg_drain_estimate_us(datagram_bytes))
    gap = params.seg_pace_gap_us
    if not isinstance(gap, (int, float)):
        gap = auto_gap_us(params, datagram_bytes)
    expected = max(1, ndatagrams) * (per + float(gap))
    if trunk_us_per_byte is None:
        trunk_us_per_byte = trunk_hops * 8.0 / params.rate_mbps
    path = (datagram_bytes * trunk_us_per_byte
            + trunk_hops * params.switch_latency_us)
    return min(cap, params.seg_drain_floor_us + expected) + path


def round_namespace(*key) -> tuple[Callable, Callable]:
    """Build the ``(arm_phase, rnd_token)`` pair namespacing one sender's
    repair loop.

    ``key`` distinguishes concurrent/consecutive loops on one channel
    (e.g. ``("ag", turn)`` for each allgather turn); the empty key is the
    broadcast's single loop.  ``arm_phase(rnd)`` names the scout phase
    arming round ``rnd``; ``rnd_token(rnd)`` tags that round's
    report/decision messages.
    """
    if not key:
        return (lambda r: ("seg-arm", r), lambda r: r)

    def arm_phase(r, _key=key):
        return ("seg-arm",) + _key + (r,)

    def rnd_token(r, _key=key):
        return _key + (r,)

    return arm_phase, rnd_token


def reassemble(segments: list[Segment]) -> Any:
    """Rebuild the payload from a complete segment set (any order).

    This is the zero-copy pipeline's user boundary: the joined result
    is a fresh ``bytes`` object even when the chunks are ``memoryview``
    slices of the sender's buffer.
    """
    if not segments:
        raise ValueError("cannot reassemble zero segments")
    segs = sorted(segments, key=lambda s: s.index)
    nsegs = segs[0].nsegs
    if len(segs) != nsegs or [s.index for s in segs] != list(range(nsegs)):
        raise ValueError(
            f"incomplete segment set: have {[s.index for s in segs]} "
            f"of {nsegs}")
    if segs[0].opaque:
        return segs[0].chunk
    return b"".join(s.chunk for s in segs)


class Reassembler:
    """Collects segments by index, tolerating duplicates and tracking
    the missing bitmap the NACK reports are built from.

    ``needed`` restricts the receiver's interest to a subset of the
    stream (the scatter's per-rank addressing): only needed segments are
    stored and reported missing; the rest still count for round-end
    detection but are otherwise ignored.  ``needed=set()`` is a pure
    bystander.  The default (``None``) needs the whole stream.
    """

    def __init__(self, nsegs: int, needed: Optional[set] = None):
        if nsegs < 1:
            raise ValueError(f"nsegs must be >= 1, got {nsegs}")
        self.nsegs = nsegs
        self.needed = (set(range(nsegs)) if needed is None
                       else set(needed))
        if not all(0 <= i < nsegs for i in self.needed):
            raise ValueError(f"needed {sorted(self.needed)} out of range "
                             f"for a {nsegs}-segment stream")
        self.duplicates = 0
        self._got: dict[int, Segment] = {}

    def add(self, seg: Segment) -> bool:
        """Accept one segment; returns True iff it was stored."""
        if seg.nsegs != self.nsegs or not 0 <= seg.index < self.nsegs:
            raise ValueError(f"segment {seg.index}/{seg.nsegs} does not "
                             f"belong to a {self.nsegs}-segment payload")
        if seg.index not in self.needed:
            return False
        if seg.index in self._got:
            self.duplicates += 1
            return False
        self._got[seg.index] = seg
        return True

    @property
    def complete(self) -> bool:
        return self.needed <= self._got.keys()

    def missing(self) -> set[int]:
        return self.needed - self._got.keys()

    def segments(self) -> list[Segment]:
        """The stored segments, sorted by stream index."""
        return sorted(self._got.values(), key=lambda s: s.index)

    def result(self) -> Any:
        """Rebuild a *whole-stream* payload (``needed`` = everything)."""
        if not self.complete:
            raise ValueError(f"missing segments {sorted(self.missing())}")
        return reassemble(list(self._got.values()))


# ----------------------------------------------------------------------
# root-side rate pacing (paper §5 overrun)
# ----------------------------------------------------------------------
class RoundPacer:
    """Inter-datagram pacing state for one sender's segment stream.

    The *gap* is the idle time the sender inserts before each data
    datagram past the *burst*; the burst is the receivers' smallest
    known descriptor ring (``None`` = unbounded, no pacing unless a gap
    is configured).  The auto gap covers the receiver drain estimate
    with margin, so a ring of even one descriptor is re-posted before
    the next datagram can arrive.
    """

    def __init__(self, params, datagram_bytes: int):
        self._auto_gap = auto_gap_us(params, datagram_bytes)
        gap = params.seg_pace_gap_us
        self.gap_us = self._auto_gap if gap == "auto" else float(gap)
        self.burst: Optional[int] = params.seg_recv_budget
        self._feedback = params.seg_pace_feedback

    def note_budgets(self, budgets) -> None:
        """Fold the budgets carried by a round's NACK reports in.

        With feedback enabled, learning that any receiver runs a finite
        ring turns pacing on for the rounds that follow.
        """
        finite = [b for b in budgets if b is not None]
        if not finite:
            return
        smallest = min(finite)
        self.burst = (smallest if self.burst is None
                      else min(self.burst, smallest))
        if self._feedback and self.gap_us <= 0:
            self.gap_us = self._auto_gap

    def delay_before(self, index: int) -> float:
        """Gap (µs) to insert before the round's ``index``-th datagram."""
        if self.gap_us <= 0:
            return 0.0
        burst = 1 if self.burst is None else max(1, self.burst)
        return self.gap_us if index >= burst else 0.0


# ----------------------------------------------------------------------
# engine internals
# ----------------------------------------------------------------------
def _post_round(channel, ndatagrams: int) -> list:
    """Post the round's initial descriptor window — MUST precede the
    arming scout.  A finite ``recv_budget`` caps the window at the ring
    size; :func:`_consume_round` slides it as datagrams are consumed."""
    budget = channel.recv_budget
    if budget is not None:
        ndatagrams = max(1, min(budget, ndatagrams))
    return channel.post_data_many(ndatagrams)


def _consume_round(comm, channel, posted, ndatagrams: int, seq,
                   reasm: Reassembler, last_index: int,
                   drain_us: float, rnd: int = 0) -> Generator:
    """Drain one round's datagrams into ``reasm``.

    ``posted`` is the pre-arm descriptor window; up to ``ndatagrams``
    descriptors are issued in total, re-posting one as each arrival is
    consumed (the sliding ring of a budget-limited receiver — a re-post
    that loses the race against an unpaced burst is exactly the paper's
    §5 overrun, surfacing as a missing segment in the NACK report).

    Datagrams stream in plan order over a FIFO wire, so the round ends
    the moment ``last_index`` (the highest index of the round's plan)
    arrives — any descriptor still empty then belongs to a lost datagram
    and is cancelled immediately, keeping the NACK on the critical path
    instead of a timeout.  Only when the *tail* of the stream is lost
    does the receiver fall back to ``drain_us`` of silence (the adaptive
    :func:`round_drain_timeout_us`).  Either way every leftover
    descriptor is withdrawn — leaving one behind would swallow a later
    collective's traffic.  Non-segment or stale-sequence datagrams waste
    their descriptor; the segments they displaced are simply reported
    missing and repaired next round.
    """
    issued = len(posted)
    i = 0
    while i < len(posted):
        ev = posted[i]
        if not ev.triggered:
            timer = comm.sim.timeout(drain_us)
            yield comm.sim.any_of([ev, timer])
            if not ev.triggered:
                rec = comm.host.stats.recorder
                if rec is not None:
                    rec.drain_timeout(comm.sim.now, comm.host.addr, rnd,
                                      len(posted) - i)
                channel.cancel_data(posted[i:])
                return
        _src, got_seq, payload = yield from channel.wait_data(ev)
        i += 1
        if issued < ndatagrams:
            posted.append(channel.post_data())
            issued += 1
        if got_seq != seq:
            continue
        if isinstance(payload, Segment):
            batch = (payload,)
        elif (isinstance(payload, tuple) and payload
                and isinstance(payload[0], Segment)):
            batch = payload
        else:
            continue
        done = False
        for seg in batch:
            reasm.add(seg)
            done = done or seg.index == last_index
        if done:
            channel.cancel_data(posted[i:])
            return


# ----------------------------------------------------------------------
# the serve/follow API
# ----------------------------------------------------------------------
def serve_rounds(comm, channel, seq, root: int, segments, batch: int,
                 receivers, arm_phase, rnd_token) -> Generator:
    """Sender side of the NACK repair loop: arm, stream (paced), collect
    reports, decide, repair — until every receiver reports complete.

    ``segments`` is the full stream (round 0's plan is all of it);
    ``receivers`` is the set of ranks that will report — every rank of
    the communicator still joins the arming gathers, so pure bystanders
    must run :func:`follow_rounds` with ``needed=set()``.  ``arm_phase``
    / ``rnd_token`` come from :func:`round_namespace`.
    """
    params = comm.host.params
    rec = comm.host.stats.recorder
    addr = comm.host.addr
    nsegs = len(segments)
    datagram_bytes = (batch * max(s.nbytes for s in segments)
                      + batch * SEG_HEADER_BYTES + MCAST_HEADER_BYTES)
    pacer = RoundPacer(params, datagram_bytes)
    plan = list(range(nsegs))
    rnd = 0
    while True:
        rbatch = batch if rnd == 0 else repair_batch(params, len(plan),
                                                     batch)
        rtok = None
        if rec is not None:
            rtok = rec.round_begin(comm.sim.now, addr, "serve", seq, rnd,
                                   len(plan))
            rec.round_open(comm.sim.now, addr, f"serve:seq{seq}:r{rnd}",
                           None)
        try:
            yield from scout_gather_binary(comm, channel, seq, root,
                                           phase=arm_phase(rnd))
            for i, chunk in enumerate(chunk_plan(plan, rbatch)):
                delay = pacer.delay_before(i)
                if delay > 0:
                    if rec is not None:
                        rec.pacing_stall(comm.sim.now, addr, delay)
                    yield comm.sim.timeout(delay)
                yield from channel.send_batch(
                    [segments[j] for j in chunk], seq, retransmit=rnd > 0)
            reports = yield from channel.wait_tagged(receivers, seq,
                                                     "seg-report",
                                                     rnd_token(rnd))
        finally:
            if rec is not None:
                rec.round_close(comm.sim.now, addr,
                                f"serve:seq{seq}:r{rnd}")
        union: set[int] = set()
        budgets = []
        for missing, budget in reports.values():
            union.update(missing)
            budgets.append(budget)
        pacer.note_budgets(budgets)
        if rec is not None:
            for src in sorted(reports):
                missing, budget = reports[src]
                rec.nack_report(comm.sim.now, addr, src, rnd,
                                tuple(missing), budget)
        if not union:
            decision = None
        elif rnd >= repair_round_limit(params):
            decision = "abort"      # tell receivers before raising,
        else:                       # so nobody arms a dead round
            decision = tuple(sorted(union))
        if rec is not None:
            rec.repair_decision(comm.sim.now, addr, rnd, decision)
        for dst in sorted(receivers):
            yield from channel.send_decision(dst, seq, rnd_token(rnd),
                                             decision, nsegs)
        if rec is not None:
            rec.round_end(comm.sim.now, rtok)
        if decision is None:
            return
        if decision == "abort":
            raise McastLost(comm.rank, seq, reason=(
                f"rank {comm.rank}: gave up after {rnd} repair rounds "
                f"for seq={seq}; still missing segments {sorted(union)}"))
        rnd += 1
        plan = list(decision)


def follow_rounds(comm, channel, seq, root: int, nsegs: int, batch: int,
                  arm_phase, rnd_token,
                  needed: Optional[set] = None) -> Generator:
    """Receiver side of the NACK repair loop; returns the
    :class:`Reassembler`.

    A receiver that has everything it needs keeps arming/reporting
    (other ranks may still need repairs) but posts no descriptors, so
    the repair frames it does not need die at its posted-only socket.
    ``needed`` restricts interest to a stream subset (see
    :class:`Reassembler`); ``needed=set()`` follows the loop as a pure
    bystander.
    """
    params = comm.host.params
    rec = comm.host.stats.recorder
    addr = comm.host.addr
    seg_bytes = resolved_segment_bytes(params)
    reasm = Reassembler(nsegs, needed=needed)
    plan = list(range(nsegs))
    rnd = 0
    if rec is not None:
        rec.round_open(comm.sim.now, addr, f"follow:seq{seq}",
                       reasm.missing)
    try:
        while True:
            rbatch = batch if rnd == 0 else repair_batch(params,
                                                         len(plan), batch)
            rtok = None
            if rec is not None:
                rtok = rec.round_begin(comm.sim.now, addr, "follow", seq,
                                       rnd, len(plan))
            if reasm.complete:
                posted, ndatagrams = [], 0
            else:
                ndatagrams = len(chunk_plan(plan, rbatch))
                posted = _post_round(channel, ndatagrams)
            yield from scout_gather_binary(comm, channel, seq, root,
                                           phase=arm_phase(rnd))
            if ndatagrams:
                dgram_bytes = (min(rbatch, len(plan))
                               * (seg_bytes + SEG_HEADER_BYTES)
                               + MCAST_HEADER_BYTES)
                drain_us = round_drain_timeout_us(
                    params, ndatagrams, dgram_bytes,
                    trunk_hops=getattr(channel, "trunk_hops", 0),
                    trunk_us_per_byte=getattr(channel,
                                              "trunk_us_per_byte", None))
                yield from _consume_round(comm, channel, posted,
                                          ndatagrams, seq, reasm,
                                          last_index=plan[-1],
                                          drain_us=drain_us, rnd=rnd)
            if rec is not None:
                rec.nack_sent(comm.sim.now, addr, rnd,
                              tuple(sorted(reasm.missing())))
            yield from channel.send_report(root, seq, rnd_token(rnd),
                                           reasm.missing(), nsegs)
            decision = yield from channel.wait_tagged({root}, seq,
                                                      "seg-dec",
                                                      rnd_token(rnd))
            plan_t = decision[root]
            if rec is not None:
                rec.round_end(comm.sim.now, rtok,
                              posted_hw=channel.data_sock
                              .posted_high_water)
            if plan_t is None:
                return reasm
            if plan_t == "abort":
                raise McastLost(comm.rank, seq, reason=(
                    f"rank {comm.rank}: root gave up repairing segmented "
                    f"transfer seq={seq}; still missing "
                    f"{sorted(reasm.missing())}"))
            plan = list(plan_t)
            rnd += 1
    finally:
        if rec is not None:
            rec.round_close(comm.sim.now, addr, f"follow:seq{seq}")
