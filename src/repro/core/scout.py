"""Scout synchronization — the heart of the paper's contribution.

Before a root may multicast, it must *know* every receiver has posted its
receive.  The paper proposes two ways to gather that knowledge with
data-less scout messages:

* :func:`scout_gather_binary` — the **binary tree algorithm** (paper
  Fig. 3): scouts propagate up a binomial/binary tree rooted at the
  broadcast root; ``ceil(log2 N)`` sequential steps, ``N-1`` scouts.
  A parent's scout tells the root "my whole subtree is ready", because a
  parent only sends *after* hearing all of its children;
* :func:`scout_gather_linear` — the **linear algorithm** (paper Fig. 4):
  every rank scouts the root directly; the root consumes the ``N-1``
  scouts one at a time (its single receive path makes this ``N-1``
  sequential steps, which is why the paper expects binary to win).

Both return only when the caller may proceed; the *invariant* that makes
the following multicast safe is established by the caller posting its
multicast receive **before** invoking the gather (checked by the
property-based tests in ``tests/test_core_properties.py``).

The tree layout is the textbook binomial gather (MPICH's reduce tree).
The paper's Fig. 3 draws a slightly different edge layout, but the text
only requires "binary tree, height log2(K)+1, N-1 scout messages", which
this satisfies; the observable behaviour the paper reports — including
two inner nodes racing to send to the root at once on 6 nodes (its Fig. 9
discussion) — emerges identically.  DESIGN.md §7 records the choice.
"""

from __future__ import annotations

from typing import Generator

__all__ = ["scout_gather_binary", "scout_gather_linear",
           "scout_scatter_binary", "binary_tree_steps", "scout_count"]


def scout_count(n: int) -> int:
    """Scouts sent by either gather for ``n`` ranks (the paper's N-1)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return n - 1


def binary_tree_steps(n: int) -> int:
    """Sequential steps of the binary gather: ``ceil(log2 n)``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return (n - 1).bit_length()


def scout_gather_binary(comm, channel, seq: int,
                        root: int = 0, phase: str = "up") -> Generator:
    """Binomial-tree scout gather toward ``root``.

    Non-root ranks return once their scout is sent (their subtree is
    ready); the root returns once all ``N-1`` scouts are accounted for.
    """
    size = comm.size
    if size == 1:
        return
    rel = (comm.rank - root) % size
    mask = 1
    while mask < size:
        if rel & mask:
            parent = ((rel & ~mask) + root) % size
            yield from channel.send_scout(parent, seq, phase)
            return
        child_rel = rel | mask
        if child_rel < size:
            child = (child_rel + root) % size
            missing = yield from channel.wait_scouts({child}, seq, phase)
            if missing:  # pragma: no cover - no timeout passed
                raise AssertionError("scout gather timed out")
        mask <<= 1


def scout_scatter_binary(comm, channel, seq: int, root: int = 0,
                         tag: str = "scval", value=None) -> Generator:
    """Binomial top-down scatter of one small ``value`` from ``root`` —
    the mirror of :func:`scout_gather_binary`, riding the buffered scout
    socket as ``(tag, 0, value)`` tagged messages (scout-sized frames,
    ``N-1`` of them, ``ceil(log2 N)`` sequential steps).

    Every rank returns the root's value.  The "auto" collective-selection
    layer uses this to announce the root's per-call implementation
    choice before any rank commits to an algorithm's traffic pattern.
    """
    from .binomial import binomial_children
    from .channel import SCOUT_BYTES

    size = comm.size
    if size == 1:
        return value
    rel = (comm.rank - root) % size
    if rel != 0:
        mask = 1
        while not rel & mask:
            mask <<= 1
        parent = ((rel & ~mask) + root) % size
        got = yield from channel.wait_tagged({parent}, seq, tag, 0)
        value = got[parent]
    for child in binomial_children(rel, size):
        dst = (child + root) % size
        yield from channel.send_tagged(dst, seq, tag, 0, value,
                                       SCOUT_BYTES, kind="scout-dec")
    return value


def scout_gather_linear(comm, channel, seq: int,
                        root: int = 0, phase: str = "up") -> Generator:
    """Linear scout gather: everyone scouts the root directly."""
    size = comm.size
    if size == 1:
        return
    if comm.rank == root:
        others = {r for r in range(size) if r != root}
        missing = yield from channel.wait_scouts(others, seq, phase)
        if missing:  # pragma: no cover - no timeout passed
            raise AssertionError("scout gather timed out")
    else:
        yield from channel.send_scout(root, seq, phase)
