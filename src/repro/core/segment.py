"""Adaptive segmented, pipelined multicast with selective NACK repair.

The paper's reliable baseline (``mcast-ack``) re-multicasts the **whole
payload** whenever any ack is late — the reason it "did not produce
improvement in performance".  This module takes the opposite approach for
payloads larger than one MTU, following the bandwidth-saving segmented
broadcasts of Zhou et al. and Träff's multi-lane decompositions:

1. the payload is **fragmented** into per-segment-sequenced chunks
   (:func:`fragment`), each small enough that one segment rides one
   Ethernet frame at the default :attr:`NetParams.segment_bytes`;
2. the root **streams** all segments back-to-back through the
   :class:`~repro.core.channel.McastChannel` (pipelined: the wire
   serializes while the host prepares the next segment), optionally
   inserting a rate-pacing gap between datagrams;
3. receivers pre-post descriptors, reassemble by segment index, and
   report the **bitmap of missing segments** to the root over the
   buffered scout socket;
4. the root re-multicasts **only the union of missing segments**
   (selective NACK repair), round by round, until every receiver reports
   an empty bitmap.

Since PR 3 the arm/stream/report/decide state machine itself lives in
the reusable round engine of :mod:`repro.core.rounds`
(:func:`~repro.core.rounds.serve_rounds` /
:func:`~repro.core.rounds.follow_rounds`): this module owns payload
*planning* (segment sizing, batching, fragmentation, the closed-form
frame/datagram formulas) plus the broadcast and allgather collectives
built on the engine; :mod:`repro.core.mcast_reduce` and
:mod:`repro.core.mcast_scatter` add the reduction-side collectives on
the same engine.

Round structure of ``mcast-seg-nack`` (N ranks, root r):

* header phase — receivers post one descriptor, scout-sync up the binary
  tree, root multicasts a tiny header carrying the segment count and the
  batch factor;
* round ``k`` — receivers still missing data post one descriptor per
  planned *datagram*, everyone arms via a binary scout gather, the root
  streams the round's segments, every receiver reports its missing set
  (plus its descriptor budget), and the root unicasts a per-receiver
  decision: ``done`` or the next round's repair plan (the sorted union
  of all missing sets).

All repair control (reports, decisions) rides the **buffered** scout
socket, so it is immune to the posted-only discipline; only ``mcast-seg``
data frames can be lost.  Because every receiver learns the exact repair
plan before arming, descriptor counts always match the datagrams the root
will send — no repair frame can steal a descriptor belonging to a later
protocol step.

**Adaptive transport plan** (:func:`plan_transport`).  With
``NetParams.segment_bytes = "auto"`` the logical segment size is derived
from the MTU (one segment per Ethernet frame), and the **batch factor**
(:func:`auto_batch`) adapts to the payload: below
:attr:`NetParams.seg_auto_crossover` segments the whole round ships as a
*single* batched datagram — one receive-descriptor, one per-datagram
software tax — so small payloads never pay the per-segment receive tax
that put the PR 1 crossover against ``mcast-ack`` at ~10 segments.
Above the crossover the batch factor drops to 1 for full
selective-repair granularity.  Explicit integer ``segment_bytes`` /
``seg_batch`` values override the policy.  Repair rounds under the auto
policy re-batch from the *actual* missing set
(:func:`~repro.core.rounds.repair_batch`), so scattered losses pack into
one repair datagram.

**Frame-count formula** (asserted by ``benchmarks/bench_segmented_bcast.py``
and ``tests/test_segment.py``).  For N ranks, S segments, R repair rounds
re-sending unions U_1..U_R (U_0 = all S segments)::

    frames(N, S, R) = 1                       # header multicast
                    + (N-1)                   # header scout gather
                    + sum over rounds r=0..R of
                        (N-1)                 # arming scout gather
                      + |U_r|                 # segment frames
                      + (N-1)                 # per-receiver reports
                      + (N-1)                 # per-receiver decisions
                    = 1 + (N-1)(3(R+1) + 1) + S + sum(|U_r|, r >= 1)

**Batched generalization.**  With batch factor B, round r's |U_r|
segments ride ``ceil(|U_r| / B_r)`` datagrams instead of |U_r| (B_0 = B;
repair rounds may re-batch, see above).  The *Ethernet frame* count
above is unchanged for frame-sized segments: a batched datagram of k
segments IP-fragments into exactly k frames, because each extra segment
adds 4 envelope bytes (:data:`~repro.core.channel.SEG_HEADER_BYTES`)
while each extra fragment offers 20 bytes of header slack.  What
batching changes is the *datagram* count — the unit of per-receive
software tax and of descriptor usage::

    datagrams(N, S, R, B) = 1 + (N-1)(3(R+1) + 1)
                          + ceil(S/B) + sum(ceil(|U_r|/B_r), r >= 1)

(:func:`seg_nack_frame_count` / :func:`seg_nack_datagram_count` export
both closed forms.)  Loss-free this is ``1 + 4(N-1) + S`` frames —
linear in payload like the paper's single multicast, with a constant
per-round synchronization tax; under loss, repair cost is proportional
to what was actually lost, not to the payload (contrast ``mcast-ack``:
one full S-frame resend per timeout).

**Pacing** (paper §5: "a set of fast senders overrunning a single
receiver") is an engine concern — see
:class:`~repro.core.rounds.RoundPacer` and the module docstring of
:mod:`repro.core.rounds` for the descriptor-budget feedback loop.

The allgather variant ``mcast-seg-paced`` applies the same machinery to
the many-to-many case: after the paced ready round, each rank takes a
turn as the "root" of exactly the broadcast round structure above —
header, arm, stream, report, decision — so a lost segment is selectively
repaired by its sender instead of surfacing as ``McastLost``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..mpi.collective.registry import register
from ..mpi.datatypes import payload_bytes
from .channel import SEG_HEADER_BYTES
from .mcast_allgather import _ready_round
from .rounds import (McastLost, Reassembler, Segment, chunk_plan,
                     follow_rounds, frame_segment_bytes, reassemble,
                     round_namespace, serve_rounds)
from .scout import scout_gather_binary

__all__ = ["Segment", "Reassembler", "TransportPlan", "auto_batch",
           "plan_transport", "frame_segment_bytes", "chunk_plan",
           "plan_segments", "fragment", "reassemble",
           "bcast_mcast_seg_nack", "allgather_mcast_seg_paced",
           "seg_nack_frame_count", "seg_nack_datagram_count"]


def plan_segments(nbytes: int, segment_bytes: int) -> list[int]:
    """Chunk sizes for a payload of ``nbytes``: full segments plus one
    remainder for non-divisible sizes.  A zero-byte payload still takes
    one (empty) segment so the protocol always has something to stream.
    """
    if segment_bytes < 1:
        raise ValueError(f"segment_bytes must be >= 1, got {segment_bytes}")
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if nbytes == 0:
        return [0]
    full, part = divmod(nbytes, segment_bytes)
    return [segment_bytes] * full + ([part] if part else [])


@dataclass(frozen=True)
class TransportPlan:
    """The resolved segmentation policy for one payload: logical segment
    size, segments per datagram, and the resulting counts."""

    segment_bytes: int  #: user bytes per logical segment
    batch: int          #: logical segments per ``mcast-seg`` datagram
    nsegs: int          #: total logical segments of the payload

    @property
    def ndatagrams(self) -> int:
        """Data datagrams of the loss-free round (``ceil(S/B)``)."""
        return -(-self.nsegs // self.batch)


def auto_batch(params, nsegs: int) -> int:
    """Resolve ``NetParams.seg_batch`` for a plan of ``nsegs`` segments.

    An explicit int forces that batch factor; otherwise the adaptive
    policy batches the whole plan into one datagram below
    ``seg_auto_crossover`` segments (only when ``segment_bytes`` is also
    ``"auto"``), and falls back to one segment per datagram above it.
    """
    batch = params.seg_batch
    if not isinstance(batch, int):
        auto = params.segment_bytes == "auto"
        batch = (nsegs if auto and nsegs <= params.seg_auto_crossover
                 else 1)
    if batch < 1:
        raise ValueError(f"seg_batch must be >= 1, got {batch}")
    return min(batch, max(nsegs, 1))


def plan_transport(nbytes: int, params) -> TransportPlan:
    """Resolve ``NetParams.segment_bytes`` / ``seg_batch`` for a payload.

    * explicit int ``segment_bytes`` → that size, batch 1 (PR 1 wire
      behaviour) unless ``seg_batch`` is an explicit int;
    * ``segment_bytes="auto"`` → frame-sized segments, and (with
      ``seg_batch="auto"``, the default) the whole payload batched into
      one datagram below ``seg_auto_crossover`` segments, batch 1 above
      it — small payloads never pay the per-segment receive tax, large
      ones keep full selective-repair granularity.
    """
    auto = params.segment_bytes == "auto"
    seg = frame_segment_bytes(params) if auto else params.segment_bytes
    nsegs = len(plan_segments(nbytes, seg))
    return TransportPlan(segment_bytes=seg,
                         batch=auto_batch(params, nsegs), nsegs=nsegs)


def fragment(obj: Any, segment_bytes: int) -> list[Segment]:
    """Fragment ``obj`` into :class:`Segment` chunks of ``segment_bytes``.

    Bytes-like payloads are sliced as zero-copy ``memoryview`` windows
    over one immutable buffer (mutable inputs are snapshotted once, so
    a caller-side ``bytearray`` mutation cannot corrupt in-flight
    segments); :func:`reassemble` materializes ``bytes`` at the user
    boundary.  Any other object is *opaque*: segment 0 references it
    whole, later segments are placeholders whose sizes keep the wire
    accounting exact.
    """
    nbytes = payload_bytes(obj)
    sizes = plan_segments(nbytes, segment_bytes)
    n = len(sizes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        view = memoryview(obj if isinstance(obj, bytes) else bytes(obj))
        out, off = [], 0
        for i, sz in enumerate(sizes):
            out.append(Segment(i, n, sz, view[off:off + sz]))
            off += sz
        return out
    return [Segment(i, n, sz, obj if i == 0 else None, opaque=True)
            for i, sz in enumerate(sizes)]


def seg_nack_frame_count(n: int, nsegs: int,
                         repairs: Optional[list[int]] = None) -> int:
    """The documented *frame*-count formula (see module docstring).

    ``repairs`` lists ``|U_r|`` for each repair round r >= 1.  Valid for
    every batch factor as long as segments are single-frame sized.
    """
    if n < 2:
        return 0
    repairs = repairs or []
    rounds = 1 + len(repairs)
    return 1 + (n - 1) * (3 * rounds + 1) + nsegs + sum(repairs)


def seg_nack_datagram_count(n: int, nsegs: int, batch: int = 1,
                            repairs: Optional[list[int]] = None,
                            repair_batches: Optional[list[int]] = None
                            ) -> int:
    """The documented *datagram*-count formula (see module docstring):
    like :func:`seg_nack_frame_count` but counting per-receive software
    events, so the data terms shrink by the batch factor.

    ``repair_batches`` gives the per-repair-round batch factor when the
    engine re-batched from the missing set
    (:func:`~repro.core.rounds.repair_batch`); it defaults to ``batch``
    for every repair round.
    """
    if n < 2:
        return 0
    repairs = repairs or []
    if repair_batches is None:
        repair_batches = [batch] * len(repairs)
    if len(repair_batches) != len(repairs):
        raise ValueError(f"{len(repairs)} repair rounds but "
                         f"{len(repair_batches)} repair batch factors")
    rounds = 1 + len(repairs)
    data = -(-nsegs // batch) + sum(
        -(-u // b) for u, b in zip(repairs, repair_batches))
    return 1 + (n - 1) * (3 * rounds + 1) + data


# ----------------------------------------------------------------------
# broadcast: segmented + pipelined + selective NACK repair
# ----------------------------------------------------------------------
@register("bcast", "mcast-seg-nack")
def bcast_mcast_seg_nack(comm, obj: Any, root: int = 0) -> Generator:
    """Segmented pipelined broadcast with per-segment NACK repair."""
    channel = comm.mcast
    params = comm.host.params
    seq = channel.next_seq()
    if comm.size == 1:
        return obj
    receivers = {r for r in range(comm.size) if r != root}
    arm_phase, rnd_token = round_namespace()

    if comm.rank == root:
        tplan = plan_transport(payload_bytes(obj), params)
        segments = fragment(obj, tplan.segment_bytes)
        yield from scout_gather_binary(comm, channel, seq, root,
                                       phase="seg-hdr")
        yield from channel.send_data(
            ("seg-hdr", tplan.nsegs, tplan.batch), SEG_HEADER_BYTES, seq,
            control=True, kind="mcast-seg-hdr")
        yield from serve_rounds(comm, channel, seq, root, segments,
                                tplan.batch, receivers, arm_phase,
                                rnd_token)
        return obj

    # Receiver: header phase — one descriptor, posted before the scout.
    hdr_posted = channel.post_data()
    yield from scout_gather_binary(comm, channel, seq, root,
                                   phase="seg-hdr")
    while True:
        src, got_seq, hdr = yield from channel.wait_data(hdr_posted)
        if (got_seq == seq and src == root and isinstance(hdr, tuple)
                and hdr[0] == "seg-hdr"):
            break
        # A straggler frame consumed the descriptor; re-post and re-wait
        # (the header cannot overtake same-source stragglers: FIFO wire).
        hdr_posted = channel.post_data()
    _tag, nsegs, batch = hdr
    reasm = yield from follow_rounds(comm, channel, seq, root, nsegs,
                                     batch, arm_phase, rnd_token)
    return reasm.result()


# ----------------------------------------------------------------------
# allgather: per-turn segmented streaming with per-turn NACK repair
# ----------------------------------------------------------------------
@register("allgather", "mcast-seg-paced")
def allgather_mcast_seg_paced(comm, obj: Any) -> Generator:
    """Rank-ordered allgather with segmented, pipelined contributions.

    Per turn: the sender runs exactly the broadcast round structure with
    itself as root — header scout gather, segment-count announcement,
    arm gather, (paced) segment stream, NACK reports, decisions, repair
    rounds.  Arm synchronization still makes losses impossible under the
    paper's readiness model; a loss injected anyway (``drop_filter``
    fault injection, or a descriptor-budget overrun) is now selectively
    repaired by the turn's sender instead of raising ``McastLost``.
    """
    channel = comm.mcast
    params = comm.host.params
    seq = channel.next_seq()
    size = comm.size
    if size == 1:
        return [obj]

    tplan = plan_transport(payload_bytes(obj), params)
    mine = fragment(obj, tplan.segment_bytes)
    results: list[Any] = [None] * size
    results[comm.rank] = obj

    yield from _ready_round(comm, channel, seq)

    for turn in range(size):
        arm_phase, rnd_token = round_namespace("ag", turn)
        if turn == comm.rank:
            others = {r for r in range(size) if r != turn}
            yield from scout_gather_binary(comm, channel, seq, turn,
                                           phase=("ag-hdr", turn))
            yield from channel.send_data(
                ("seg-hdr", turn, tplan.nsegs, tplan.batch),
                SEG_HEADER_BYTES, seq, control=True, kind="mcast-seg-hdr")
            yield from serve_rounds(comm, channel, seq, turn, mine,
                                    tplan.batch, others, arm_phase,
                                    rnd_token)
            continue
        hdr_posted = channel.post_data()
        yield from scout_gather_binary(comm, channel, seq, turn,
                                       phase=("ag-hdr", turn))
        # A straggler from an earlier turn — a data segment the fabric
        # delayed or duplicated in flight — can land in the header
        # descriptor.  Discard and repost (the stale backlog is bounded
        # by the frames already sent this call); if the budget runs
        # out, fail crisply instead of wedging on a dead sender.
        discards = 2 * size * (tplan.nsegs + 2)
        for _ in range(discards):
            src, got_seq, hdr = yield from channel.wait_data(hdr_posted)
            if (got_seq == seq and src == turn and isinstance(hdr, tuple)
                    and hdr[0] == "seg-hdr" and hdr[1] == turn):
                break
            hdr_posted = channel.post_data()
        else:
            raise McastLost(
                comm.rank, seq,
                reason=f"rank {comm.rank}: seg-paced allgather never saw "
                       f"the turn {turn} header after discarding "
                       f"{discards} stale frame(s) for seq={seq}")
        reasm = yield from follow_rounds(comm, channel, seq, turn,
                                        hdr[2], hdr[3], arm_phase,
                                        rnd_token)
        results[turn] = reasm.result()
    return results
