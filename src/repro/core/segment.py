"""Adaptive segmented, pipelined multicast with selective NACK repair.

The paper's reliable baseline (``mcast-ack``) re-multicasts the **whole
payload** whenever any ack is late — the reason it "did not produce
improvement in performance".  This module takes the opposite approach for
payloads larger than one MTU, following the bandwidth-saving segmented
broadcasts of Zhou et al. and Träff's multi-lane decompositions:

1. the payload is **fragmented** into per-segment-sequenced chunks
   (:func:`fragment`), each small enough that one segment rides one
   Ethernet frame at the default :attr:`NetParams.segment_bytes`;
2. the root **streams** all segments back-to-back through the
   :class:`~repro.core.channel.McastChannel` (pipelined: the wire
   serializes while the host prepares the next segment), optionally
   inserting a rate-pacing gap between datagrams (see *pacing* below);
3. receivers pre-post descriptors (``post_data_many``), reassemble by
   segment index, and report the **bitmap of missing segments** to the
   root over the buffered scout socket — immediately once the round's
   highest-index segment arrives (the stream is FIFO, so nothing later
   is coming), or after ``seg_drain_timeout_us`` of silence when the
   stream's tail was lost;
4. the root re-multicasts **only the union of missing segments**
   (selective NACK repair), round by round, until every receiver reports
   an empty bitmap.

Round structure of ``mcast-seg-nack`` (N ranks, root r):

* header phase — receivers post one descriptor, scout-sync up the binary
  tree, root multicasts a tiny header carrying the segment count and the
  batch factor;
* round ``k`` — receivers still missing data post one descriptor per
  planned *datagram*, everyone arms via a binary scout gather, the root
  streams the round's segments, every receiver reports its missing set
  (plus its descriptor budget), and the root unicasts a per-receiver
  decision: ``done`` or the next round's repair plan (the sorted union
  of all missing sets).

All repair control (reports, decisions) rides the **buffered** scout
socket, so it is immune to the posted-only discipline; only ``mcast-seg``
data frames can be lost.  Because every receiver learns the exact repair
plan before arming, descriptor counts always match the datagrams the root
will send — no repair frame can steal a descriptor belonging to a later
protocol step.

**Adaptive transport plan** (:func:`plan_transport`).  With
``NetParams.segment_bytes = "auto"`` the logical segment size is derived
from the MTU (one segment per Ethernet frame), and the **batch factor**
adapts to the payload: below :attr:`NetParams.seg_auto_crossover`
segments the whole round ships as a *single* batched datagram — one
receive-descriptor, one per-datagram software tax — so small payloads
never pay the per-segment receive tax that put the PR 1 crossover
against ``mcast-ack`` at ~10 segments.  Above the crossover the batch
factor drops to 1 for full selective-repair granularity.  Explicit
integer ``segment_bytes`` / ``seg_batch`` values override the policy.

**Frame-count formula** (asserted by ``benchmarks/bench_segmented_bcast.py``
and ``tests/test_segment.py``).  For N ranks, S segments, R repair rounds
re-sending unions U_1..U_R (U_0 = all S segments)::

    frames(N, S, R) = 1                       # header multicast
                    + (N-1)                   # header scout gather
                    + sum over rounds r=0..R of
                        (N-1)                 # arming scout gather
                      + |U_r|                 # segment frames
                      + (N-1)                 # per-receiver reports
                      + (N-1)                 # per-receiver decisions
                    = 1 + (N-1)(3(R+1) + 1) + S + sum(|U_r|, r >= 1)

**Batched generalization.**  With batch factor B, round r's |U_r|
segments ride ``ceil(|U_r| / B)`` datagrams instead of |U_r|.  The
*Ethernet frame* count above is unchanged for frame-sized segments: a
batched datagram of k segments IP-fragments into exactly k frames,
because each extra segment adds 4 envelope bytes
(:data:`~repro.core.channel.SEG_HEADER_BYTES`) while each extra fragment
offers 20 bytes of header slack.  What batching changes is the
*datagram* count — the unit of per-receive software tax and of
descriptor usage::

    datagrams(N, S, R, B) = 1 + (N-1)(3(R+1) + 1)
                          + ceil(S/B) + sum(ceil(|U_r|/B), r >= 1)

(:func:`seg_nack_frame_count` / :func:`seg_nack_datagram_count` export
both closed forms.)  Loss-free this is ``1 + 4(N-1) + S`` frames —
linear in payload like the paper's single multicast, with a constant
per-round synchronization tax; under loss, repair cost is proportional
to what was actually lost, not to the payload (contrast ``mcast-ack``:
one full S-frame resend per timeout).

**Pacing** (paper §5: "a set of fast senders overrunning a single
receiver").  Receivers may run a finite descriptor ring
(:attr:`McastChannel.recv_budget`): they post at most that many
descriptors and re-post one as each datagram is consumed.  An unpaced
burst longer than the ring then *overruns* the receiver — the dropped
datagrams are NACK-repaired, but each costs a repair round.  The root
therefore paces its stream: ``NetParams.seg_pace_gap_us`` inserts an
inter-datagram gap (``"auto"`` derives it from the receiver drain
estimate :meth:`NetParams.seg_drain_estimate_us`), and with
``seg_pace_feedback`` the NACK reports' budget field makes the root
shrink its burst to the smallest reported ring and auto-pace every
repair round — slow receivers throttle the stream instead of losing it.

The allgather variant ``mcast-seg-paced`` applies the same machinery to
the many-to-many case: after the paced ready round, each rank takes a
turn as the "root" of exactly the broadcast round structure above —
header, arm, stream, report, decision — so a lost segment is selectively
repaired by its sender instead of surfacing as ``McastLost``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..mpi.collective.registry import register
from ..mpi.datatypes import payload_bytes
from .channel import MCAST_HEADER_BYTES, SEG_HEADER_BYTES
from .mcast_allgather import _ready_round
from .scout import scout_gather_binary

__all__ = ["Segment", "Reassembler", "TransportPlan", "plan_transport",
           "frame_segment_bytes", "chunk_plan", "plan_segments",
           "fragment", "reassemble", "bcast_mcast_seg_nack",
           "allgather_mcast_seg_paced", "seg_nack_frame_count",
           "seg_nack_datagram_count"]


@dataclass(frozen=True)
class Segment:
    """One per-segment-sequenced chunk of a fragmented payload.

    ``opaque`` payloads (anything that is not bytes-like) cannot be
    sliced for real, so segment 0 carries the whole object and the rest
    carry ``None`` — the *sizes* still follow the segmentation plan, so
    wire timing is identical to a byte payload of the same length.
    """

    index: int     #: position in the payload, 0-based
    nsegs: int     #: total segments of this payload
    nbytes: int    #: user bytes accounted to this segment on the wire
    chunk: Any     #: bytes slice, or the object (opaque, index 0), or None
    opaque: bool = False


def plan_segments(nbytes: int, segment_bytes: int) -> list[int]:
    """Chunk sizes for a payload of ``nbytes``: full segments plus one
    remainder for non-divisible sizes.  A zero-byte payload still takes
    one (empty) segment so the protocol always has something to stream.
    """
    if segment_bytes < 1:
        raise ValueError(f"segment_bytes must be >= 1, got {segment_bytes}")
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if nbytes == 0:
        return [0]
    full, part = divmod(nbytes, segment_bytes)
    return [segment_bytes] * full + ([part] if part else [])


def frame_segment_bytes(params) -> int:
    """The largest segment that still rides a single Ethernet frame:
    one MTU's UDP payload minus the data and per-segment envelopes."""
    return max(1, params.max_udp_payload
               - MCAST_HEADER_BYTES - SEG_HEADER_BYTES)


@dataclass(frozen=True)
class TransportPlan:
    """The resolved segmentation policy for one payload: logical segment
    size, segments per datagram, and the resulting counts."""

    segment_bytes: int  #: user bytes per logical segment
    batch: int          #: logical segments per ``mcast-seg`` datagram
    nsegs: int          #: total logical segments of the payload

    @property
    def ndatagrams(self) -> int:
        """Data datagrams of the loss-free round (``ceil(S/B)``)."""
        return -(-self.nsegs // self.batch)


def plan_transport(nbytes: int, params) -> TransportPlan:
    """Resolve ``NetParams.segment_bytes`` / ``seg_batch`` for a payload.

    * explicit int ``segment_bytes`` → that size, batch 1 (PR 1 wire
      behaviour) unless ``seg_batch`` is an explicit int;
    * ``segment_bytes="auto"`` → frame-sized segments, and (with
      ``seg_batch="auto"``, the default) the whole payload batched into
      one datagram below ``seg_auto_crossover`` segments, batch 1 above
      it — small payloads never pay the per-segment receive tax, large
      ones keep full selective-repair granularity.
    """
    auto = params.segment_bytes == "auto"
    seg = frame_segment_bytes(params) if auto else params.segment_bytes
    nsegs = len(plan_segments(nbytes, seg))
    batch = params.seg_batch
    if not isinstance(batch, int):
        batch = (nsegs if auto and nsegs <= params.seg_auto_crossover
                 else 1)
    if batch < 1:
        raise ValueError(f"seg_batch must be >= 1, got {batch}")
    return TransportPlan(segment_bytes=seg, batch=min(batch, nsegs),
                         nsegs=nsegs)


def chunk_plan(plan: list[int], batch: int) -> list[list[int]]:
    """Group a round's segment indices into per-datagram batches.

    Both sides compute this identically from (plan, batch), so the
    receiver's descriptor count always equals the sender's datagram
    count.  Repair plans re-batch: scattered losses from different
    original batches pack together into fewer repair datagrams.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    return [plan[i:i + batch] for i in range(0, len(plan), batch)]


def fragment(obj: Any, segment_bytes: int) -> list[Segment]:
    """Fragment ``obj`` into :class:`Segment` chunks of ``segment_bytes``.

    Bytes-like payloads are sliced for real (and round-trip through
    :func:`reassemble` as ``bytes``); any other object is *opaque*:
    segment 0 references it whole, later segments are placeholders whose
    sizes keep the wire accounting exact.
    """
    nbytes = payload_bytes(obj)
    sizes = plan_segments(nbytes, segment_bytes)
    n = len(sizes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        raw = bytes(obj)
        out, off = [], 0
        for i, sz in enumerate(sizes):
            out.append(Segment(i, n, sz, raw[off:off + sz]))
            off += sz
        return out
    return [Segment(i, n, sz, obj if i == 0 else None, opaque=True)
            for i, sz in enumerate(sizes)]


def reassemble(segments: list[Segment]) -> Any:
    """Rebuild the payload from a complete segment set (any order)."""
    if not segments:
        raise ValueError("cannot reassemble zero segments")
    segs = sorted(segments, key=lambda s: s.index)
    nsegs = segs[0].nsegs
    if len(segs) != nsegs or [s.index for s in segs] != list(range(nsegs)):
        raise ValueError(
            f"incomplete segment set: have {[s.index for s in segs]} "
            f"of {nsegs}")
    if segs[0].opaque:
        return segs[0].chunk
    return b"".join(s.chunk for s in segs)


class Reassembler:
    """Collects segments by index, tolerating duplicates and tracking
    the missing bitmap the NACK reports are built from."""

    def __init__(self, nsegs: int):
        if nsegs < 1:
            raise ValueError(f"nsegs must be >= 1, got {nsegs}")
        self.nsegs = nsegs
        self.duplicates = 0
        self._got: dict[int, Segment] = {}

    def add(self, seg: Segment) -> bool:
        """Accept one segment; returns False for a duplicate."""
        if seg.nsegs != self.nsegs or not 0 <= seg.index < self.nsegs:
            raise ValueError(f"segment {seg.index}/{seg.nsegs} does not "
                             f"belong to a {self.nsegs}-segment payload")
        if seg.index in self._got:
            self.duplicates += 1
            return False
        self._got[seg.index] = seg
        return True

    @property
    def complete(self) -> bool:
        return len(self._got) == self.nsegs

    def missing(self) -> set[int]:
        return set(range(self.nsegs)) - self._got.keys()

    def result(self) -> Any:
        if not self.complete:
            raise ValueError(f"missing segments {sorted(self.missing())}")
        return reassemble(list(self._got.values()))


def seg_nack_frame_count(n: int, nsegs: int,
                         repairs: Optional[list[int]] = None) -> int:
    """The documented *frame*-count formula (see module docstring).

    ``repairs`` lists ``|U_r|`` for each repair round r >= 1.  Valid for
    every batch factor as long as segments are single-frame sized.
    """
    if n < 2:
        return 0
    repairs = repairs or []
    rounds = 1 + len(repairs)
    return 1 + (n - 1) * (3 * rounds + 1) + nsegs + sum(repairs)


def seg_nack_datagram_count(n: int, nsegs: int, batch: int = 1,
                            repairs: Optional[list[int]] = None) -> int:
    """The documented *datagram*-count formula (see module docstring):
    like :func:`seg_nack_frame_count` but counting per-receive software
    events, so the data terms shrink by the batch factor."""
    if n < 2:
        return 0
    repairs = repairs or []
    rounds = 1 + len(repairs)
    data = -(-nsegs // batch) + sum(-(-u // batch) for u in repairs)
    return 1 + (n - 1) * (3 * rounds + 1) + data


# ----------------------------------------------------------------------
# root-side rate pacing (paper §5 overrun)
# ----------------------------------------------------------------------
class _RootPacer:
    """Inter-datagram pacing state for one sender's segment stream.

    The *gap* is the idle time the root inserts before each data
    datagram past the *burst*; the burst is the receivers' smallest
    known descriptor ring (``None`` = unbounded, no pacing unless a gap
    is configured).  The auto gap covers the receiver drain estimate
    with margin, so a ring of even one descriptor is re-posted before
    the next datagram can arrive.
    """

    def __init__(self, params, datagram_bytes: int):
        drain = params.seg_drain_estimate_us(datagram_bytes)
        # 25% + 10 µs of margin over the drain estimate absorbs the
        # skew between a receiver's re-post and the next wire arrival.
        self._auto_gap = 1.25 * drain + 10.0
        gap = params.seg_pace_gap_us
        self.gap_us = self._auto_gap if gap == "auto" else float(gap)
        self.burst: Optional[int] = params.seg_recv_budget
        self._feedback = params.seg_pace_feedback

    def note_budgets(self, budgets) -> None:
        """Fold the budgets carried by a round's NACK reports in.

        With feedback enabled, learning that any receiver runs a finite
        ring turns pacing on for the rounds that follow.
        """
        finite = [b for b in budgets if b is not None]
        if not finite:
            return
        smallest = min(finite)
        self.burst = (smallest if self.burst is None
                      else min(self.burst, smallest))
        if self._feedback and self.gap_us <= 0:
            self.gap_us = self._auto_gap

    def delay_before(self, index: int) -> float:
        """Gap (µs) to insert before the round's ``index``-th datagram."""
        if self.gap_us <= 0:
            return 0.0
        burst = 1 if self.burst is None else max(1, self.burst)
        return self.gap_us if index >= burst else 0.0


# ----------------------------------------------------------------------
# shared round machinery (used by the bcast root and each allgather turn)
# ----------------------------------------------------------------------
def _post_round(channel, ndatagrams: int) -> list:
    """Post the round's initial descriptor window — MUST precede the
    arming scout.  A finite ``recv_budget`` caps the window at the ring
    size; :func:`_consume_round` slides it as datagrams are consumed."""
    budget = channel.recv_budget
    if budget is not None:
        ndatagrams = max(1, min(budget, ndatagrams))
    return channel.post_data_many(ndatagrams)


def _consume_round(comm, channel, posted, ndatagrams: int, seq,
                   reasm: Reassembler, last_index: int) -> Generator:
    """Drain one round's datagrams into ``reasm``.

    ``posted`` is the pre-arm descriptor window; up to ``ndatagrams``
    descriptors are issued in total, re-posting one as each arrival is
    consumed (the sliding ring of a budget-limited receiver — a re-post
    that loses the race against an unpaced burst is exactly the paper's
    §5 overrun, surfacing as a missing segment in the NACK report).

    Datagrams stream in plan order over a FIFO wire, so the round ends
    the moment ``last_index`` (the highest index of the round's plan)
    arrives — any descriptor still empty then belongs to a lost datagram
    and is cancelled immediately, keeping the NACK on the critical path
    instead of a timeout.  Only when the *tail* of the stream is lost
    does the receiver fall back to ``seg_drain_timeout_us`` of silence.
    Either way every leftover descriptor is withdrawn — leaving one
    behind would swallow a later collective's traffic.  Non-segment or
    stale-sequence datagrams waste their descriptor; the segments they
    displaced are simply reported missing and repaired next round.
    """
    drain_us = comm.host.params.seg_drain_timeout_us
    issued = len(posted)
    i = 0
    while i < len(posted):
        ev = posted[i]
        if not ev.triggered:
            timer = comm.sim.timeout(drain_us)
            yield comm.sim.any_of([ev, timer])
            if not ev.triggered:
                channel.cancel_data(posted[i:])
                return
        _src, got_seq, payload = yield from channel.wait_data(ev)
        i += 1
        if issued < ndatagrams:
            posted.append(channel.post_data())
            issued += 1
        if got_seq != seq:
            continue
        if isinstance(payload, Segment):
            batch = (payload,)
        elif (isinstance(payload, tuple) and payload
                and isinstance(payload[0], Segment)):
            batch = payload
        else:
            continue
        done = False
        for seg in batch:
            reasm.add(seg)
            done = done or seg.index == last_index
        if done:
            channel.cancel_data(posted[i:])
            return


def _serve_rounds(comm, channel, seq, root: int, segments, batch: int,
                  receivers, arm_phase, rnd_token) -> Generator:
    """Sender side of the NACK repair loop: arm, stream (paced), collect
    reports, decide, repair — until every receiver reports complete.

    ``arm_phase(rnd)`` / ``rnd_token(rnd)`` namespace the scout phases
    and report/decision rounds, so the broadcast and each allgather turn
    reuse this machinery without cross-matching each other's control
    traffic.
    """
    params = comm.host.params
    nsegs = len(segments)
    datagram_bytes = (batch * max(s.nbytes for s in segments)
                      + batch * SEG_HEADER_BYTES + MCAST_HEADER_BYTES)
    pacer = _RootPacer(params, datagram_bytes)
    plan = list(range(nsegs))
    rnd = 0
    while True:
        yield from scout_gather_binary(comm, channel, seq, root,
                                       phase=arm_phase(rnd))
        for i, chunk in enumerate(chunk_plan(plan, batch)):
            delay = pacer.delay_before(i)
            if delay > 0:
                yield comm.sim.timeout(delay)
            yield from channel.send_batch([segments[j] for j in chunk],
                                          seq, retransmit=rnd > 0)
        reports = yield from channel.wait_tagged(receivers, seq,
                                                 "seg-report",
                                                 rnd_token(rnd))
        union: set[int] = set()
        budgets = []
        for missing, budget in reports.values():
            union.update(missing)
            budgets.append(budget)
        pacer.note_budgets(budgets)
        if not union:
            decision = None
        elif rnd >= params.max_retransmits:
            decision = "abort"      # tell receivers before raising,
        else:                       # so nobody arms a dead round
            decision = tuple(sorted(union))
        for dst in sorted(receivers):
            yield from channel.send_decision(dst, seq, rnd_token(rnd),
                                             decision, nsegs)
        if decision is None:
            return
        if decision == "abort":
            raise RuntimeError(
                f"rank {comm.rank}: gave up after {rnd} repair rounds "
                f"for seq={seq}; still missing segments {sorted(union)}")
        rnd += 1
        plan = list(decision)


def _follow_rounds(comm, channel, seq, root: int, nsegs: int, batch: int,
                   arm_phase, rnd_token) -> Generator:
    """Receiver side of the NACK repair loop; returns the full
    :class:`Reassembler`.

    A fully-reassembled receiver keeps arming/reporting (other ranks may
    still need repairs) but posts no descriptors, so the repair frames
    it does not need die at its posted-only socket.
    """
    reasm = Reassembler(nsegs)
    plan = list(range(nsegs))
    rnd = 0
    while True:
        if reasm.complete:
            posted, ndatagrams = [], 0
        else:
            ndatagrams = len(chunk_plan(plan, batch))
            posted = _post_round(channel, ndatagrams)
        yield from scout_gather_binary(comm, channel, seq, root,
                                       phase=arm_phase(rnd))
        yield from _consume_round(comm, channel, posted, ndatagrams, seq,
                                  reasm, last_index=plan[-1])
        yield from channel.send_report(root, seq, rnd_token(rnd),
                                       reasm.missing(), nsegs)
        decision = yield from channel.wait_tagged({root}, seq, "seg-dec",
                                                  rnd_token(rnd))
        plan_t = decision[root]
        if plan_t is None:
            return reasm
        if plan_t == "abort":
            raise RuntimeError(
                f"rank {comm.rank}: root gave up repairing segmented "
                f"transfer seq={seq}; still missing "
                f"{sorted(reasm.missing())}")
        plan = list(plan_t)
        rnd += 1


# ----------------------------------------------------------------------
# broadcast: segmented + pipelined + selective NACK repair
# ----------------------------------------------------------------------
@register("bcast", "mcast-seg-nack")
def bcast_mcast_seg_nack(comm, obj: Any, root: int = 0) -> Generator:
    """Segmented pipelined broadcast with per-segment NACK repair."""
    channel = comm.mcast
    params = comm.host.params
    seq = channel.next_seq()
    if comm.size == 1:
        return obj
    receivers = {r for r in range(comm.size) if r != root}

    if comm.rank == root:
        tplan = plan_transport(payload_bytes(obj), params)
        segments = fragment(obj, tplan.segment_bytes)
        yield from scout_gather_binary(comm, channel, seq, root,
                                       phase="seg-hdr")
        yield from channel.send_data(
            ("seg-hdr", tplan.nsegs, tplan.batch), SEG_HEADER_BYTES, seq,
            control=True, kind="mcast-seg-hdr")
        yield from _serve_rounds(
            comm, channel, seq, root, segments, tplan.batch, receivers,
            arm_phase=lambda r: ("seg-arm", r), rnd_token=lambda r: r)
        return obj

    # Receiver: header phase — one descriptor, posted before the scout.
    hdr_posted = channel.post_data()
    yield from scout_gather_binary(comm, channel, seq, root,
                                   phase="seg-hdr")
    while True:
        src, got_seq, hdr = yield from channel.wait_data(hdr_posted)
        if (got_seq == seq and src == root and isinstance(hdr, tuple)
                and hdr[0] == "seg-hdr"):
            break
        # A straggler frame consumed the descriptor; re-post and re-wait
        # (the header cannot overtake same-source stragglers: FIFO wire).
        hdr_posted = channel.post_data()
    _tag, nsegs, batch = hdr
    reasm = yield from _follow_rounds(
        comm, channel, seq, root, nsegs, batch,
        arm_phase=lambda r: ("seg-arm", r), rnd_token=lambda r: r)
    return reasm.result()


# ----------------------------------------------------------------------
# allgather: per-turn segmented streaming with per-turn NACK repair
# ----------------------------------------------------------------------
@register("allgather", "mcast-seg-paced")
def allgather_mcast_seg_paced(comm, obj: Any) -> Generator:
    """Rank-ordered allgather with segmented, pipelined contributions.

    Per turn: the sender runs exactly the broadcast round structure with
    itself as root — header scout gather, segment-count announcement,
    arm gather, (paced) segment stream, NACK reports, decisions, repair
    rounds.  Arm synchronization still makes losses impossible under the
    paper's readiness model; a loss injected anyway (``drop_filter``
    fault injection, or a descriptor-budget overrun) is now selectively
    repaired by the turn's sender instead of raising ``McastLost``.
    """
    channel = comm.mcast
    params = comm.host.params
    seq = channel.next_seq()
    size = comm.size
    if size == 1:
        return [obj]

    tplan = plan_transport(payload_bytes(obj), params)
    mine = fragment(obj, tplan.segment_bytes)
    results: list[Any] = [None] * size
    results[comm.rank] = obj

    yield from _ready_round(comm, channel, seq)

    for turn in range(size):
        def arm_phase(r, t=turn):
            return ("ag-arm", t, r)

        def rnd_token(r, t=turn):
            return ("ag", t, r)

        if turn == comm.rank:
            others = {r for r in range(size) if r != turn}
            yield from scout_gather_binary(comm, channel, seq, turn,
                                           phase=("ag-hdr", turn))
            yield from channel.send_data(
                ("seg-hdr", turn, tplan.nsegs, tplan.batch),
                SEG_HEADER_BYTES, seq, control=True, kind="mcast-seg-hdr")
            yield from _serve_rounds(comm, channel, seq, turn, mine,
                                     tplan.batch, others, arm_phase,
                                     rnd_token)
            continue
        hdr_posted = channel.post_data()
        yield from scout_gather_binary(comm, channel, seq, turn,
                                       phase=("ag-hdr", turn))
        src, got_seq, hdr = yield from channel.wait_data(hdr_posted)
        if (got_seq != seq or src != turn or not isinstance(hdr, tuple)
                or hdr[0] != "seg-hdr" or hdr[1] != turn):
            raise AssertionError(
                f"rank {comm.rank}: seg-paced allgather pacing violated "
                f"(expected turn {turn} header, got src={src}, "
                f"payload={hdr!r}, seq={got_seq}/{seq})")
        reasm = yield from _follow_rounds(comm, channel, seq, turn,
                                         hdr[2], hdr[3], arm_phase,
                                         rnd_token)
        results[turn] = reasm.result()
    return results
