"""Segmented, pipelined multicast with selective NACK repair.

The paper's reliable baseline (``mcast-ack``) re-multicasts the **whole
payload** whenever any ack is late — the reason it "did not produce
improvement in performance".  This module takes the opposite approach for
payloads larger than one MTU, following the bandwidth-saving segmented
broadcasts of Zhou et al. and Träff's multi-lane decompositions:

1. the payload is **fragmented** into per-segment-sequenced chunks
   (:func:`fragment`), each small enough that one segment rides one
   Ethernet frame at the default :attr:`NetParams.segment_bytes`;
2. the root **streams** all segments back-to-back through the
   :class:`~repro.core.channel.McastChannel` (pipelined: the wire
   serializes while the host prepares the next segment);
3. receivers pre-post one descriptor per expected segment
   (``post_data_many``), reassemble by segment index, and report the
   **bitmap of missing segments** to the root over the buffered scout
   socket — immediately once the round's highest-index segment arrives
   (the stream is FIFO, so nothing later is coming), or after
   ``seg_drain_timeout_us`` of silence when the stream's tail was lost;
4. the root re-multicasts **only the union of missing segments**
   (selective NACK repair), round by round, until every receiver reports
   an empty bitmap.

Round structure of ``mcast-seg-nack`` (N ranks, root r):

* header phase — receivers post one descriptor, scout-sync up the binary
  tree, root multicasts a tiny header carrying the segment count;
* round ``k`` — receivers still missing data post one descriptor per
  planned segment, everyone arms via a binary scout gather, the root
  streams the round's segments, every receiver reports its missing set,
  and the root unicasts a per-receiver decision: ``done`` or the next
  round's repair plan (the sorted union of all missing sets).

All repair control (reports, decisions) rides the **buffered** scout
socket, so it is immune to the posted-only discipline; only ``mcast-seg``
data frames can be lost.  Because every receiver learns the exact repair
plan before arming, descriptor counts always match the frames the root
will send — no repair frame can steal a descriptor belonging to a later
protocol step.

**Frame-count formula** (asserted by ``benchmarks/bench_segmented_bcast.py``
and ``tests/test_segment.py``).  For N ranks, S segments, R repair rounds
re-sending unions U_1..U_R (U_0 = all S segments)::

    frames(N, S, R) = 1                       # header multicast
                    + (N-1)                   # header scout gather
                    + sum over rounds r=0..R of
                        (N-1)                 # arming scout gather
                      + |U_r|                 # segment frames
                      + (N-1)                 # per-receiver reports
                      + (N-1)                 # per-receiver decisions
                    = 1 + (N-1)(3(R+1) + 1) + S + sum(|U_r|, r >= 1)

Loss-free this is ``1 + 4(N-1) + S`` — linear in payload like the
paper's single multicast, with a constant per-round synchronization tax;
under loss, repair cost is proportional to what was actually lost, not to
the payload (contrast ``mcast-ack``: one full S-frame resend per timeout).

The allgather variant ``mcast-seg-paced`` applies the same segmentation
to the many-to-many case: after the paced ready round, each rank takes a
turn announcing its segment count, waiting for everyone to arm, then
streaming its segments.  Pacing (the paper's §5 overrun fix) already
guarantees descriptors are posted in time, so this variant relies on arm
synchronization instead of NACK repair and raises
:class:`~repro.core.mcast_bcast.McastLost` if a segment is lost anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..mpi.collective.registry import register
from ..mpi.datatypes import payload_bytes
from .channel import SEG_HEADER_BYTES
from .mcast_allgather import _ready_round
from .mcast_bcast import McastLost
from .scout import scout_gather_binary

__all__ = ["Segment", "Reassembler", "plan_segments", "fragment",
           "reassemble", "bcast_mcast_seg_nack",
           "allgather_mcast_seg_paced", "seg_nack_frame_count"]


@dataclass(frozen=True)
class Segment:
    """One per-segment-sequenced chunk of a fragmented payload.

    ``opaque`` payloads (anything that is not bytes-like) cannot be
    sliced for real, so segment 0 carries the whole object and the rest
    carry ``None`` — the *sizes* still follow the segmentation plan, so
    wire timing is identical to a byte payload of the same length.
    """

    index: int     #: position in the payload, 0-based
    nsegs: int     #: total segments of this payload
    nbytes: int    #: user bytes accounted to this segment on the wire
    chunk: Any     #: bytes slice, or the object (opaque, index 0), or None
    opaque: bool = False


def plan_segments(nbytes: int, segment_bytes: int) -> list[int]:
    """Chunk sizes for a payload of ``nbytes``: full segments plus one
    remainder for non-divisible sizes.  A zero-byte payload still takes
    one (empty) segment so the protocol always has something to stream.
    """
    if segment_bytes < 1:
        raise ValueError(f"segment_bytes must be >= 1, got {segment_bytes}")
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if nbytes == 0:
        return [0]
    full, part = divmod(nbytes, segment_bytes)
    return [segment_bytes] * full + ([part] if part else [])


def fragment(obj: Any, segment_bytes: int) -> list[Segment]:
    """Fragment ``obj`` into :class:`Segment` chunks of ``segment_bytes``.

    Bytes-like payloads are sliced for real (and round-trip through
    :func:`reassemble` as ``bytes``); any other object is *opaque*:
    segment 0 references it whole, later segments are placeholders whose
    sizes keep the wire accounting exact.
    """
    nbytes = payload_bytes(obj)
    sizes = plan_segments(nbytes, segment_bytes)
    n = len(sizes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        raw = bytes(obj)
        out, off = [], 0
        for i, sz in enumerate(sizes):
            out.append(Segment(i, n, sz, raw[off:off + sz]))
            off += sz
        return out
    return [Segment(i, n, sz, obj if i == 0 else None, opaque=True)
            for i, sz in enumerate(sizes)]


def reassemble(segments: list[Segment]) -> Any:
    """Rebuild the payload from a complete segment set (any order)."""
    if not segments:
        raise ValueError("cannot reassemble zero segments")
    segs = sorted(segments, key=lambda s: s.index)
    nsegs = segs[0].nsegs
    if len(segs) != nsegs or [s.index for s in segs] != list(range(nsegs)):
        raise ValueError(
            f"incomplete segment set: have {[s.index for s in segs]} "
            f"of {nsegs}")
    if segs[0].opaque:
        return segs[0].chunk
    return b"".join(s.chunk for s in segs)


class Reassembler:
    """Collects segments by index, tolerating duplicates and tracking
    the missing bitmap the NACK reports are built from."""

    def __init__(self, nsegs: int):
        if nsegs < 1:
            raise ValueError(f"nsegs must be >= 1, got {nsegs}")
        self.nsegs = nsegs
        self.duplicates = 0
        self._got: dict[int, Segment] = {}

    def add(self, seg: Segment) -> bool:
        """Accept one segment; returns False for a duplicate."""
        if seg.nsegs != self.nsegs or not 0 <= seg.index < self.nsegs:
            raise ValueError(f"segment {seg.index}/{seg.nsegs} does not "
                             f"belong to a {self.nsegs}-segment payload")
        if seg.index in self._got:
            self.duplicates += 1
            return False
        self._got[seg.index] = seg
        return True

    @property
    def complete(self) -> bool:
        return len(self._got) == self.nsegs

    def missing(self) -> set[int]:
        return set(range(self.nsegs)) - self._got.keys()

    def result(self) -> Any:
        if not self.complete:
            raise ValueError(f"missing segments {sorted(self.missing())}")
        return reassemble(list(self._got.values()))


def seg_nack_frame_count(n: int, nsegs: int,
                         repairs: Optional[list[int]] = None) -> int:
    """The documented frame-count formula (see module docstring).

    ``repairs`` lists ``|U_r|`` for each repair round r >= 1.
    """
    if n < 2:
        return 0
    repairs = repairs or []
    rounds = 1 + len(repairs)
    return 1 + (n - 1) * (3 * rounds + 1) + nsegs + sum(repairs)


# ----------------------------------------------------------------------
# shared receive loop
# ----------------------------------------------------------------------
def _consume_round(comm, channel, posted, seq, reasm: Reassembler,
                   last_index: int) -> Generator:
    """Drain one round's posted descriptors into ``reasm``.

    Segments stream in index order over a FIFO wire, so the round ends
    the moment ``last_index`` (the highest index of the round's plan)
    arrives — any descriptor still empty then belongs to a lost segment
    and is cancelled immediately, keeping the NACK on the critical path
    instead of a timeout.  Only when the *tail* of the stream is lost
    does the receiver fall back to ``seg_drain_timeout_us`` of silence.
    Either way every leftover descriptor is withdrawn — leaving one
    behind would swallow a later collective's traffic.  Non-segment or
    stale-sequence datagrams waste their descriptor; the segment they
    displaced is simply reported missing and repaired next round.
    """
    drain_us = comm.host.params.seg_drain_timeout_us
    for i, ev in enumerate(posted):
        if not ev.triggered:
            timer = comm.sim.timeout(drain_us)
            yield comm.sim.any_of([ev, timer])
            if not ev.triggered:
                channel.cancel_data(posted[i:])
                return
        _src, got_seq, payload = yield from channel.wait_data(ev)
        if got_seq == seq and isinstance(payload, Segment):
            reasm.add(payload)
            if payload.index == last_index:
                channel.cancel_data(posted[i + 1:])
                return


# ----------------------------------------------------------------------
# broadcast: segmented + pipelined + selective NACK repair
# ----------------------------------------------------------------------
@register("bcast", "mcast-seg-nack")
def bcast_mcast_seg_nack(comm, obj: Any, root: int = 0) -> Generator:
    """Segmented pipelined broadcast with per-segment NACK repair."""
    channel = comm.mcast
    params = comm.host.params
    seq = channel.next_seq()
    if comm.size == 1:
        return obj
    receivers = {r for r in range(comm.size) if r != root}

    if comm.rank == root:
        segments = fragment(obj, params.segment_bytes)
        nsegs = len(segments)
        yield from scout_gather_binary(comm, channel, seq, root,
                                       phase="seg-hdr")
        yield from channel.send_data(("seg-hdr", nsegs), SEG_HEADER_BYTES,
                                     seq, control=True,
                                     kind="mcast-seg-hdr")
        plan = list(range(nsegs))
        rnd = 0
        while True:
            yield from scout_gather_binary(comm, channel, seq, root,
                                           phase=("seg-arm", rnd))
            for idx in plan:
                yield from channel.send_segment(segments[idx], seq,
                                                retransmit=rnd > 0)
            reports = yield from channel.wait_tagged(receivers, seq,
                                                     "seg-report", rnd)
            union: set[int] = set()
            for missing in reports.values():
                union.update(missing)
            if not union:
                decision = None
            elif rnd >= params.max_retransmits:
                decision = "abort"      # tell receivers before raising,
            else:                       # so nobody arms a dead round
                decision = tuple(sorted(union))
            for dst in sorted(receivers):
                yield from channel.send_decision(dst, seq, rnd, decision,
                                                 nsegs)
            if decision is None:
                return obj
            if decision == "abort":
                raise RuntimeError(
                    f"bcast_mcast_seg_nack: gave up after {rnd} repair "
                    f"rounds; still missing segments {sorted(union)}")
            rnd += 1
            plan = list(decision)

    # Receiver: header phase — one descriptor, posted before the scout.
    hdr_posted = channel.post_data()
    yield from scout_gather_binary(comm, channel, seq, root,
                                   phase="seg-hdr")
    while True:
        src, got_seq, hdr = yield from channel.wait_data(hdr_posted)
        if (got_seq == seq and src == root and isinstance(hdr, tuple)
                and hdr[0] == "seg-hdr"):
            break
        # A straggler frame consumed the descriptor; re-post and re-wait
        # (the header cannot overtake same-source stragglers: FIFO wire).
        hdr_posted = channel.post_data()
    nsegs = hdr[1]
    reasm = Reassembler(nsegs)
    plan = list(range(nsegs))
    rnd = 0
    while True:
        # A fully-reassembled receiver keeps arming/reporting (other
        # ranks may still need repairs) but posts no descriptors, so the
        # repair frames it does not need die at its posted-only socket.
        posted = (channel.post_data_many(len(plan))
                  if not reasm.complete else [])
        yield from scout_gather_binary(comm, channel, seq, root,
                                       phase=("seg-arm", rnd))
        yield from _consume_round(comm, channel, posted, seq, reasm,
                                  last_index=plan[-1])
        yield from channel.send_report(root, seq, rnd, reasm.missing(),
                                       nsegs)
        decision = yield from channel.wait_tagged({root}, seq, "seg-dec",
                                                  rnd)
        plan_t = decision[root]
        if plan_t is None:
            break
        if plan_t == "abort":
            raise RuntimeError(
                f"rank {comm.rank}: root gave up repairing segmented "
                f"bcast seq={seq}; still missing {sorted(reasm.missing())}")
        plan = list(plan_t)
        rnd += 1
    return reasm.result()


# ----------------------------------------------------------------------
# allgather: per-turn segmented streaming, paced by arm synchronization
# ----------------------------------------------------------------------
@register("allgather", "mcast-seg-paced")
def allgather_mcast_seg_paced(comm, obj: Any) -> Generator:
    """Rank-ordered allgather with segmented, pipelined contributions.

    Per turn: the sender waits for a header scout from everyone, announces
    its segment count in a tiny control multicast, waits for everyone to
    arm one descriptor per segment, then streams the segments
    back-to-back.  Arm synchronization makes losses impossible under the
    paper's readiness model; a loss injected anyway (fault filters)
    surfaces as :class:`McastLost` rather than a hang.
    """
    channel = comm.mcast
    params = comm.host.params
    seq = channel.next_seq()
    size = comm.size
    if size == 1:
        return [obj]

    mine = fragment(obj, params.segment_bytes)
    results: list[Any] = [None] * size
    results[comm.rank] = obj

    yield from _ready_round(comm, channel, seq)

    for turn in range(size):
        if turn == comm.rank:
            others = {r for r in range(size) if r != turn}
            yield from channel.wait_scouts(others, seq,
                                           phase=("ag-hdr", turn))
            yield from channel.send_data(("seg-hdr", turn, len(mine)),
                                         SEG_HEADER_BYTES, seq,
                                         control=True,
                                         kind="mcast-seg-hdr")
            yield from channel.wait_scouts(others, seq,
                                           phase=("ag-arm", turn))
            for seg in mine:
                yield from channel.send_segment(seg, seq)
            continue
        hdr_posted = channel.post_data()
        yield from channel.send_scout(turn, seq, phase=("ag-hdr", turn))
        src, got_seq, hdr = yield from channel.wait_data(hdr_posted)
        if (got_seq != seq or src != turn or not isinstance(hdr, tuple)
                or hdr[0] != "seg-hdr" or hdr[1] != turn):
            raise AssertionError(
                f"rank {comm.rank}: seg-paced allgather pacing violated "
                f"(expected turn {turn} header, got src={src}, "
                f"payload={hdr!r}, seq={got_seq}/{seq})")
        reasm = Reassembler(hdr[2])
        posted = channel.post_data_many(hdr[2])
        yield from channel.send_scout(turn, seq, phase=("ag-arm", turn))
        yield from _consume_round(comm, channel, posted, seq, reasm,
                                  last_index=hdr[2] - 1)
        if not reasm.complete:
            raise McastLost(comm.rank, seq)
        results[turn] = reasm.result()
    return results
