"""Sequencer-ordered reliable multicast (Orca-style extension).

The paper's related-work section cites the Orca project's broadcast [8],
which funnels every broadcast through a fixed **sequencer** node to get a
total order.  This module implements that design as an optional fifth
bcast variant, ``mcast-sequencer``, for the ablation study:

1. the root forwards the payload to the sequencer (rank 0) over reliable
   point-to-point (skipped when the root *is* the sequencer);
2. the sequencer stamps the channel sequence number and multicasts;
3. receivers ack the sequencer; the sequencer retransmits on timeout
   (same machinery as ``mcast-ack``).

Compared to scout synchronization this trades the pre-send gather for a
post-send ack implosion at the sequencer plus an extra payload hop for
non-sequencer roots — measurably worse for one-shot broadcasts, but it
gives a *total order* across concurrent roots without requiring safe
code, which the scout algorithms cannot.
"""

from __future__ import annotations

from typing import Any, Generator

from ..mpi.collective.registry import register
from ..mpi.collective.tags import TAG_BCAST
from ..mpi.datatypes import payload_bytes
from .rounds import McastLost

__all__ = ["bcast_mcast_sequencer", "SEQUENCER_RANK"]

#: the fixed sequencer (rank 0 of the communicator)
SEQUENCER_RANK = 0


@register("bcast", "mcast-sequencer")
def bcast_mcast_sequencer(comm, obj: Any, root: int = 0) -> Generator:
    """Orca-style: root → sequencer (p2p), sequencer → group (multicast
    with ack/retransmit reliability)."""
    channel = comm.mcast
    params = comm.host.params
    seq = channel.next_seq()
    if comm.size == 1:
        return obj

    me = comm.rank
    if me == root and root != SEQUENCER_RANK:
        # Ship the payload to the sequencer over the reliable p2p path.
        yield from comm._send_coll(obj, SEQUENCER_RANK, TAG_BCAST)

    if me == SEQUENCER_RANK:
        if root != SEQUENCER_RANK:
            obj = yield from comm._recv_coll(root, TAG_BCAST)
        nbytes = payload_bytes(obj)
        yield from channel.send_data(obj, nbytes, seq)
        missing = {r for r in range(comm.size) if r != SEQUENCER_RANK}
        attempts = 0
        while missing:
            missing = yield from channel.wait_scouts(
                missing, seq, phase="ack",
                timeout_us=params.ack_timeout_us)
            if missing:
                attempts += 1
                if attempts > params.max_retransmits:
                    raise McastLost(comm.rank, seq, reason=(
                        f"sequencer gave up after {attempts - 1} "
                        f"retransmits; unreachable {sorted(missing)}"))
                yield from channel.send_data(obj, nbytes, seq,
                                             retransmit=True)
        return obj

    # Everyone else (including a non-sequencer root) receives the
    # sequencer's multicast and acks it.
    while True:
        posted = channel.post_data()
        src, got_seq, data = yield from channel.wait_data(posted)
        if got_seq == seq and src == SEQUENCER_RANK:
            break
    yield from channel.send_scout(SEQUENCER_RANK, seq, phase="ack")
    return data
