"""``repro.lint`` — protocol-invariant static analysis for this repo.

Generic linters check style; this package checks the invariants the
reproduction's correctness actually rests on, as a custom AST /
import-graph pass plus one executed cross-consistency check:

* **LEAK01** — resource pairing: posted receive descriptors, multicast
  group joins and hier slabs must be released (or ownership handed off)
  on every path (:mod:`repro.lint.leak`);
* **DET01** — determinism: no unseeded randomness, wall-clock reads, or
  unordered set iteration inside the simulation layers
  (:mod:`repro.lint.determinism`);
* **LAY01** — layering: the simnet → core → mpi → analysis import
  discipline, with an explicit allowlist (:mod:`repro.lint.layering`);
* **TAG01** — tag-namespace collisions over ``mpi/collective/tags.py``
  and every ``round_namespace`` call site (:mod:`repro.lint.tagspace`);
* **REG01** — registry cross-consistency, *executed* against the live
  registry/policy/model tables (:mod:`repro.lint.registry_check`);
* **SUP01** — a ``# repro-lint: skip=CODE`` suppression without a
  ``-- justification`` trailer (:mod:`repro.lint.engine`).

CLI: ``python -m repro.lint src tests benchmarks examples`` (exit 1 on
violations), ``--explain CODE`` for the full rationale of a rule.
Suppress a finding with ``# repro-lint: skip=CODE -- why it is safe`` on
the offending line.  ``docs/lint.md`` is the rule catalog; ``make
lint-deep`` and the CI ``lint-deep`` job gate the repo on a clean run.

The runtime half of the same contract is ``REPRO_SANITIZE=1``
(:mod:`repro.runtime.sanitize`): every ``run_spmd`` then asserts the
teardown invariants LEAK01 approximates statically — zero leaked posted
descriptors, zero residual group memberships, a drained event heap.
"""

from .engine import Violation, lint_paths, run_cli

__all__ = ["Violation", "lint_paths", "run_cli"]
