"""Entry point: ``python -m repro.lint src tests benchmarks examples``."""

import sys

from .engine import run_cli

sys.exit(run_cli(sys.argv[1:]))
