"""Small AST helpers shared by the rule modules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

__all__ = ["attach_parents", "parent", "ancestors", "enclosing",
           "walk_functions", "in_function"]

_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)


def attach_parents(tree: ast.AST) -> None:
    """Set ``child._lint_parent`` on every node (idempotent)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._lint_parent = node


def parent(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "_lint_parent", None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    cur = parent(node)
    while cur is not None:
        yield cur
        cur = parent(cur)


def enclosing(node: ast.AST, kinds) -> Optional[ast.AST]:
    """Nearest ancestor of one of the given node types."""
    for anc in ancestors(node):
        if isinstance(anc, kinds):
            return anc
    return None


def in_function(node: ast.AST) -> bool:
    return enclosing(node, _FUNCS) is not None


def walk_functions(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, _FUNCS):
            yield node
