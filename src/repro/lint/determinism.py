"""DET01 — the simulation must be bit-reproducible from its seed.

The predicted-vs-measured repair loop (expected_seg_repair_frames vs
``NetStats.drops_lossy``) and every frame-count assertion in the benches
only mean something if a (topology, params, seed) tuple replays the same
run.  Four things silently break that: unseeded randomness, wall-clock
reads, iteration order of hash-based sets, and iteration order of the
frame-path registry dicts (MAC/multicast tables, membership refcounts,
reassembly state) whose insertion order tracks traffic and frame-pool
history rather than any canonical order.
"""

from __future__ import annotations

import ast

from .astutil import attach_parents, parent, walk_functions
from .engine import SourceFile, Violation

CODE = "DET01"
SUMMARY = "nondeterminism hazard inside the simulation layers"

EXPLAIN = """\
Inside repro.simnet / repro.core / repro.mpi the rule flags:

* unseeded RNGs: `random.Random()` with no seed argument, or the
  module-level `random.random()` / `randint` / `choice` / `shuffle` /
  `sample` / `uniform` / `randrange` / `gauss` functions (they draw from
  the shared, unseeded global RNG).  Seeded `random.Random(seed)`
  substreams are the sanctioned pattern (see simnet.topology);
* wall-clock and entropy reads: `time.time` / `time_ns` /
  `perf_counter` / `monotonic`, `os.urandom`, `uuid.uuid4` — simulation
  time comes from the event kernel (`sim.now`), never the host;
* iterating a `set` (literal, `set()` / `frozenset()` call, set
  comprehension, set-operator expression, `.union`/`.intersection`/
  `.difference` result, or a local name bound to one) in a `for` loop
  or comprehension without `sorted()` — hash order varies with
  PYTHONHASHSEED and insertion history.  Order-insensitive reductions
  (`sum`, `min`, `max`, `len`, `all`, `any`, `sorted`, `set`,
  `frozenset`) over a generator are accepted;
* iterating a frame-path registry dict — an attribute whose name ends
  in `_table`, `_refs` or `_reasm` (switch MAC/multicast tables, NIC
  membership refcounts, IP reassembly state), its `.keys()` /
  `.values()` / `.items()` view, or a local name bound from one via
  `.get()` / `.setdefault()` — without `sorted()`.  Dicts preserve
  insertion order, but for these registries insertion order is a
  trace of traffic and recycled pooled frames, not a canonical order:
  code whose output depends on it diverges between the batched DES
  and the analytic fluid backend even at the same seed.  The same
  order-insensitive consumers as for sets are accepted, plus set
  comprehensions (building a set erases the order again).

The regression test this rule protects is
tests/test_determinism.py::test_lossy_tree_allreduce_reproducible: the
same seeded lossy tree:2x2x2 allreduce twice, identical NetStats.
"""

_SCOPES = ("repro.simnet", "repro.core", "repro.mpi")

_GLOBAL_RANDOM_FNS = {"random", "randint", "choice", "shuffle",
                      "sample", "uniform", "randrange", "gauss",
                      "betavariate", "expovariate", "normalvariate"}
_TIME_FNS = {"time", "time_ns", "perf_counter", "perf_counter_ns",
             "monotonic", "monotonic_ns"}
_SET_METHODS = {"union", "intersection", "difference",
                "symmetric_difference"}
#: attribute-name suffixes of the frame-path registry dicts whose
#: insertion order tracks traffic/pool history (switchdev._mac_table,
#: switchdev._mcast_table, nic._mcast_refs, ipstack._reasm, ...)
_REGISTRY_SUFFIXES = ("_table", "_refs", "_reasm")
_DICT_VIEWS = {"keys", "values", "items"}
_DICT_LOOKUPS = {"get", "setdefault"}
_ORDER_FREE = {"sorted", "sum", "min", "max", "len", "all", "any",
               "set", "frozenset"}
_DESETTERS = {"sorted", "list", "tuple"}     # rebinding launders a set
_COMPS = (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)


def _in_scope(src: SourceFile) -> bool:
    return (src.module is not None
            and any(src.module == s or src.module.startswith(s + ".")
                    for s in _SCOPES))


def _is_setlike(node: ast.AST, set_names: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id in ("set", "frozenset"):
            return True
        if isinstance(fn, ast.Attribute) and fn.attr in _SET_METHODS:
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_setlike(node.left, set_names)
                or _is_setlike(node.right, set_names))
    return False


def _is_registrylike(node: ast.AST, reg_names: set[str]) -> bool:
    """A frame-path registry dict, one of its views, or a name bound to
    a (sub-)registry fetched out of one."""
    if isinstance(node, ast.Attribute):
        return node.attr.endswith(_REGISTRY_SUFFIXES)
    if isinstance(node, ast.Name):
        return node.id in reg_names
    if isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Attribute) and fn.attr in (
                _DICT_VIEWS | _DICT_LOOKUPS):
            return _is_registrylike(fn.value, reg_names)
    return False


def _registry_names(scope: ast.AST) -> set[str]:
    """Names bound to a registry dict somewhere in ``scope`` (e.g.
    ``refs = self._mcast_table.setdefault(group, {})``) and never
    laundered through sorted()/list()/tuple()."""
    names: set[str] = set()
    laundered: set[str] = set()
    for node in ast.walk(scope):
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets
                   if isinstance(t, ast.Name)]
        if not targets:
            continue
        if _is_registrylike(node.value, names):
            names.update(targets)
        elif (isinstance(node.value, ast.Call)
              and isinstance(node.value.func, ast.Name)
              and node.value.func.id in _DESETTERS):
            laundered.update(targets)
    return names - laundered


def _set_names(scope: ast.AST) -> set[str]:
    """Names bound to a set-like value somewhere in ``scope`` (and never
    laundered through sorted()/list()/tuple())."""
    names: set[str] = set()
    laundered: set[str] = set()
    for node in ast.walk(scope):
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets
                   if isinstance(t, ast.Name)]
        if not targets:
            continue
        if _is_setlike(node.value, names | {t for t in targets}):
            names.update(targets)
        elif (isinstance(node.value, ast.Call)
              and isinstance(node.value.func, ast.Name)
              and node.value.func.id in _DESETTERS):
            laundered.update(targets)
    return names - laundered


def _ordered_consumer(comp: ast.AST) -> bool:
    """True when the comprehension's result is consumed by an
    order-insensitive builtin (``sum(x for x in s)`` etc.)."""
    p = parent(comp)
    return (isinstance(p, ast.Call)
            and isinstance(p.func, ast.Name)
            and p.func.id in _ORDER_FREE)


def check_file(src: SourceFile) -> list[Violation]:
    if not _in_scope(src):
        return []
    attach_parents(src.tree)
    out: list[Violation] = []

    def flag(node: ast.AST, msg: str) -> None:
        out.append(Violation(CODE, str(src.path), node.lineno, msg))

    for node in ast.walk(src.tree):
        if isinstance(node, ast.Call):
            fn = node.func
            if (isinstance(fn, ast.Attribute)
                    and isinstance(fn.value, ast.Name)):
                mod, attr = fn.value.id, fn.attr
                if mod == "random" and attr == "Random" and not (
                        node.args or node.keywords):
                    flag(node, "unseeded random.Random() — pass a seed "
                               "(derive per-host substreams from the "
                               "run seed)")
                elif mod == "random" and attr in _GLOBAL_RANDOM_FNS:
                    flag(node, f"random.{attr}() draws from the global "
                               f"unseeded RNG — use a seeded "
                               f"random.Random instance")
            elif (isinstance(fn, ast.Name) and fn.id == "Random"
                    and not (node.args or node.keywords)):
                flag(node, "unseeded Random() — pass a seed")
        elif isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name):
            mod, attr = node.value.id, node.attr
            if mod == "time" and attr in _TIME_FNS:
                flag(node, f"time.{attr} reads the wall clock — "
                           f"simulation time is sim.now")
            elif mod == "os" and attr == "urandom":
                flag(node, "os.urandom is nondeterministic entropy")
            elif mod == "uuid" and attr == "uuid4":
                flag(node, "uuid.uuid4 is nondeterministic entropy")

    # unordered set / registry-dict iteration
    scopes = [src.tree] + list(walk_functions(src.tree))
    for scope in scopes:
        names = _set_names(scope)
        reg_names = _registry_names(scope)
        for node in ast.walk(scope):
            iters = []
            if isinstance(node, ast.For):
                iters.append((node, node.iter))
            elif isinstance(node, _COMPS):
                if _ordered_consumer(node):
                    continue
                for gen in node.generators:
                    iters.append((node, gen.iter))
            for where, it in iters:
                if _is_setlike(it, names):
                    flag(where, "iteration over a set without sorted() "
                                "— hash order is not reproducible "
                                "across runs/interpreters")
                elif _is_registrylike(it, reg_names):
                    # Building a set erases the order again, so a set
                    # comprehension over a registry is fine.
                    if isinstance(where, ast.SetComp):
                        continue
                    flag(where, "iteration over a frame-path registry "
                                "dict without sorted() — its insertion "
                                "order is a trace of traffic and frame-"
                                "pool recycling, not a canonical order")
    # de-dup (nested scopes see the same For nodes)
    seen = set()
    unique = []
    for v in out:
        key = (v.line, v.message)
        if key not in seen:
            seen.add(key)
            unique.append(v)
    return unique
