"""Lint driver: file discovery, suppressions, rule dispatch, CLI.

A *rule* is a module exposing ``CODE`` (e.g. ``"LEAK01"``), ``SUMMARY``
(one line), ``EXPLAIN`` (the ``--explain`` text) and at least one of

* ``check_file(src: SourceFile) -> list[Violation]`` — per-file pass;
* ``finalize(files: list[SourceFile]) -> list[Violation]`` — cross-file
  pass, run once after every file was visited (import graphs, tag
  namespaces, the executed registry check).

Suppressions: ``# repro-lint: skip=CODE[,CODE] -- justification`` on the
*reported line* silences those codes there.  The ``--`` justification is
mandatory — a suppression without one is itself a violation (**SUP01**),
which is how CI fails on new unjustified suppressions.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

__all__ = ["Violation", "SourceFile", "lint_paths", "run_cli"]

#: ``# repro-lint: skip=LEAK01,DET01 -- reason`` (reason group optional,
#: its absence is the SUP01 violation)
_SKIP_RE = re.compile(
    r"#\s*repro-lint:\s*skip=([A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)"
    r"(\s*--\s*\S.*)?")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule code anchored to a file and line."""

    code: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


@dataclass
class SourceFile:
    """One parsed file plus everything rules need to know about it."""

    path: Path               #: as discovered (used in reports)
    text: str
    tree: ast.Module
    #: dotted module name from the ``repro`` package root (``None`` for
    #: files outside a ``repro`` package dir — tests, benchmarks, ...)
    module: Optional[str]
    #: line -> set of rule codes suppressed on that line
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: (line, codes) of suppressions lacking a ``--`` justification
    unjustified: list[tuple[int, str]] = field(default_factory=list)


def module_name(path: Path) -> Optional[str]:
    """Dotted module name of a file under a ``repro`` package root.

    Works on the real tree *and* on fixture trees (anything shaped like
    ``.../repro/<pkg>/<mod>.py``); returns ``None`` when no ``repro``
    directory is on the path.
    """
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    idx = len(parts) - 1 - parts[::-1].index("repro")  # last occurrence
    dotted = parts[idx:]
    leaf = dotted[-1]
    if leaf == "__init__.py":
        dotted = dotted[:-1]
    elif leaf.endswith(".py"):
        dotted[-1] = leaf[:-3]
    else:
        return None
    return ".".join(dotted)


def _scan_suppressions(src: SourceFile) -> None:
    for lineno, line in enumerate(src.text.splitlines(), start=1):
        m = _SKIP_RE.search(line)
        if m is None:
            continue
        codes = {c.strip() for c in m.group(1).split(",")}
        src.suppressions.setdefault(lineno, set()).update(codes)
        if m.group(2) is None:
            src.unjustified.append((lineno, m.group(1)))


def load_file(path: Path) -> SourceFile:
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    src = SourceFile(path=path, text=text, tree=tree,
                     module=module_name(path))
    _scan_suppressions(src)
    return src


def discover(paths: list[str]) -> list[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    out: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(f for f in p.rglob("*.py")
                       if "__pycache__" not in f.parts
                       and not any(part.startswith(".")
                                   for part in f.parts))
        elif p.suffix == ".py":
            out.append(p)
    return sorted(set(out))


def _rules():
    # Imported lazily so ``--explain`` works even if one rule module is
    # being edited; order fixes report order for equal (path, line).
    from . import (determinism, layering, leak, obs_pairing,
                   registry_check, tagspace)

    return [leak, obs_pairing, determinism, layering, tagspace,
            registry_check]


def rule_codes() -> dict[str, object]:
    codes = {mod.CODE: mod for mod in _rules()}
    codes["SUP01"] = sys.modules[__name__]
    return codes


# engine-owned rule: unjustified suppressions
CODE = "SUP01"
SUMMARY = "suppression comment lacks a '-- justification' trailer"
EXPLAIN = """\
Every `# repro-lint: skip=CODE` suppression must say *why* the finding
is safe to ignore:

    sock.post_recv()  # repro-lint: skip=LEAK01 -- consumed by caller

A suppression without the ` -- reason` trailer is reported as SUP01 (and
SUP01 itself cannot be suppressed), so the CI lint-deep job fails on any
new suppression added without a justification.
"""


def lint_paths(paths: list[str]) -> tuple[list[Violation], int]:
    """Lint files/dirs; returns (violations, files scanned).

    Suppressed findings are dropped; SUP01 findings for unjustified
    suppressions are appended and cannot themselves be suppressed.
    """
    files = []
    violations: list[Violation] = []
    for path in discover(paths):
        try:
            files.append(load_file(path))
        except (SyntaxError, UnicodeDecodeError) as exc:
            violations.append(Violation(
                "PARSE", str(path), getattr(exc, "lineno", 1) or 1,
                f"could not parse: {exc.msg if hasattr(exc, 'msg') else exc}"))
    by_path = {str(f.path): f for f in files}
    raw: list[Violation] = []
    for rule in _rules():
        check = getattr(rule, "check_file", None)
        if check is not None:
            for f in files:
                raw.extend(check(f))
        finalize = getattr(rule, "finalize", None)
        if finalize is not None:
            raw.extend(finalize(files))
    for v in raw:
        src = by_path.get(v.path)
        if src is not None and v.code in src.suppressions.get(v.line,
                                                              ()):
            continue
        violations.append(v)
    for f in files:
        for line, codes in f.unjustified:
            violations.append(Violation(
                "SUP01", str(f.path), line,
                f"suppression of {codes} lacks a '-- justification' "
                f"trailer"))
    violations.sort(key=lambda v: (v.path, v.line, v.code))
    return violations, len(files)


def run_cli(argv: list[str]) -> int:
    """``python -m repro.lint [--explain CODE] [paths...]``."""
    if "--explain" in argv:
        idx = argv.index("--explain")
        if idx + 1 >= len(argv):
            print("usage: python -m repro.lint --explain CODE",
                  file=sys.stderr)
            return 2
        code = argv[idx + 1]
        mod = rule_codes().get(code)
        if mod is None:
            print(f"unknown rule code {code!r}; known: "
                  f"{', '.join(sorted(rule_codes()))}", file=sys.stderr)
            return 2
        print(f"{code}: {mod.SUMMARY}\n")
        print(mod.EXPLAIN)
        return 0
    paths = [a for a in argv if not a.startswith("-")]
    if not paths:
        print("usage: python -m repro.lint [--explain CODE] paths...",
              file=sys.stderr)
        return 2
    violations, nfiles = lint_paths(paths)
    for v in violations:
        print(v)
    if violations:
        print(f"{len(violations)} violation(s) in {nfiles} file(s)",
              file=sys.stderr)
        return 1
    print(f"repro.lint: {nfiles} files clean")
    return 0
