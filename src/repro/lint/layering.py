"""LAY01 — the enforced layering of the reproduction's import graph.

The stack mirrors the paper's Fig. 1 and the multilevel design of
Karonis et al.: the network substrate knows nothing of MPI, the
multicast engine knows MPI only through a handful of leaf modules, and
the closed-form models must stay importable without dragging in the
launcher or benches.  ``docs/ARCHITECTURE.md`` §"Enforced layering"
documents the same table this module executes.
"""

from __future__ import annotations

import ast
from typing import Optional

from .astutil import attach_parents, in_function
from .engine import SourceFile, Violation

CODE = "LAY01"
SUMMARY = "import crosses the simnet/core/mpi/analysis layering"

#: layer prefix -> repro prefixes it may import (any position)
ALLOWED: dict[str, tuple[str, ...]] = {
    "repro.simnet": ("repro.simnet",),
    "repro.obs": ("repro.simnet", "repro.obs"),
    "repro.core": ("repro.simnet", "repro.core"),
    "repro.mpi": ("repro.simnet", "repro.core", "repro.mpi"),
    "repro.analysis": ("repro.simnet", "repro.core", "repro.mpi",
                       "repro.analysis"),
}

#: exact extra modules a layer may import (the documented exceptions):
#: core's collectives register themselves and share the datatype/op
#: vocabulary, but never call into the p2p algorithm modules
ALLOWLIST: dict[str, frozenset[str]] = {
    "repro.core": frozenset({
        "repro.mpi.datatypes",
        "repro.mpi.ops",
        "repro.mpi.collective.registry",
        "repro.mpi.collective.tags",
    }),
}

#: extra prefixes allowed only for *deferred* (inside-function) imports:
#: the policy layer resolves its frame models at call time, which keeps
#: `import repro.analysis` from dragging the whole MPI stack in reverse
DEFERRED: dict[str, tuple[str, ...]] = {
    "repro.mpi": ("repro.analysis",),
}

EXPLAIN = """\
Layer table (module prefix -> repro imports it may make):

    repro.simnet    -> repro.simnet only (the substrate is MPI-blind)
    repro.obs       -> repro.simnet, repro.obs (the flight recorder
                       consumes the substrate's hook vocabulary; the
                       producer layers reach it only duck-typed through
                       stats.recorder, never by import)
    repro.core      -> repro.simnet, repro.core
                       + allowlist: repro.mpi.datatypes, repro.mpi.ops,
                         repro.mpi.collective.registry,
                         repro.mpi.collective.tags
                       (registration + shared vocabulary; never the p2p
                        algorithm modules)
    repro.mpi       -> repro.simnet, repro.core, repro.mpi
                       + repro.analysis *deferred only* (the policy
                         layer's call-time frame-model lookups)
    repro.analysis  -> repro.simnet, repro.core, repro.mpi,
                       repro.analysis (pure models: never the runtime
                       launcher, benches, or sockets backends)

repro.runtime / repro.bench / repro.sockets / repro.lint sit above the
table and are unrestricted.  Relative imports are resolved before
checking; a "deferred" import is one inside a function body, paid at
call time.  The same table is documented in docs/ARCHITECTURE.md — keep
the two in sync.
"""


def _layer(module: str) -> Optional[str]:
    for prefix in ALLOWED:
        if module == prefix or module.startswith(prefix + "."):
            return prefix
    return None


def _resolve(src_module: str, is_init: bool, node: ast.AST) -> list[str]:
    """Absolute dotted targets of an Import/ImportFrom node."""
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    assert isinstance(node, ast.ImportFrom)
    if node.level == 0:
        base = node.module or ""
        return [base] if base else []
    pkg = src_module.split(".")
    if not is_init:
        pkg = pkg[:-1]                      # the containing package
    pkg = pkg[:len(pkg) - (node.level - 1)]
    if node.module:
        return [".".join(pkg + node.module.split("."))]
    # ``from . import x, y`` — each name is a candidate submodule
    return [".".join(pkg + [alias.name]) for alias in node.names]


def check_file(src: SourceFile) -> list[Violation]:
    if src.module is None:
        return []
    layer = _layer(src.module)
    if layer is None:
        return []
    attach_parents(src.tree)
    is_init = src.path.name == "__init__.py"
    allowed = ALLOWED[layer]
    allowlist = ALLOWLIST.get(layer, frozenset())
    deferred_ok = DEFERRED.get(layer, ())
    out: list[Violation] = []
    for node in ast.walk(src.tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        deferred = in_function(node)
        for target in _resolve(src.module, is_init, node):
            if not (target == "repro" or target.startswith("repro.")):
                continue
            if any(target == p or target.startswith(p + ".")
                   for p in allowed):
                continue
            if target in allowlist:
                continue
            if deferred and any(target == p or target.startswith(p + ".")
                                for p in deferred_ok):
                continue
            out.append(Violation(
                CODE, str(src.path), node.lineno,
                f"{src.module} ({layer} layer) may not import {target}"
                + ("" if deferred else " at module level")
                + f"; allowed: {', '.join(allowed)}"
                + (f" + allowlist {sorted(allowlist)}" if allowlist
                   else "")))
    return out
