"""LEAK01 — resource-pairing dataflow for the transport acquire APIs.

The transport layer's acquire/release pairs (posted receive descriptors,
IGMP group joins, hierarchical group/port slabs) caused every teardown
bug this repo has had: a descriptor left posted swallows the *next*
delivery on the socket, a membership left joined keeps the switch
forwarding to a dead communicator.  This rule flags an acquire whose
result is visibly dropped on the floor with no release in sight.
"""

from __future__ import annotations

import ast

from .astutil import ancestors, attach_parents, enclosing, parent
from .engine import SourceFile, Violation

CODE = "LEAK01"
SUMMARY = "acquired transport resource with no reachable release"

#: method names that acquire a resource needing an eventual release —
#: including the chaos fault injectors, whose "resource" is a broken
#: fabric: a partitioned trunk or crashed host left unhealed blocks the
#: IGMP leaves every teardown depends on
ACQUIRE = {"post_recv", "post_recv_many", "post_data", "post_data_many",
           "join", "join_group", "alloc_hier_slab",
           "partition_trunk", "power_off", "crash_host"}

#: method names that release (any of them anywhere in the same function
#: or a sibling method of the same class counts as the pairing)
RELEASE = {"cancel_recv", "cancel_recv_all", "cancel_data", "leave",
           "leave_group", "free", "free_hier_slab", "close", "shutdown",
           "unbind", "heal_trunk", "power_on", "restore_host"}

EXPLAIN = """\
Calls to the transport acquire APIs (post_recv, post_recv_many,
post_data, post_data_many, join, join_group, alloc_hier_slab) and the
chaos fault injectors (partition_trunk, power_off, crash_host) must
have a reachable release (cancel_recv/cancel_recv_all/cancel_data,
leave/leave_group, free/free_hier_slab, close/shutdown, heal_trunk/
power_on/restore_host) on the same object.  The rule accepts any of:

* a release-name call anywhere in the same function (try/finally and
  straight-line cleanup both qualify);
* a release-name call in any method of the same class — the paired-
  method idiom (e.g. a channel that joins in __init__ and leaves in
  close());
* *ownership transfer*: the acquired value is returned, yielded, passed
  into another call, stored into a container/attribute, or bound to a
  name that is used again — whoever receives the handle owns it.

What it flags is the dangerous shape: an acquire whose result is
discarded (expression statement, or bound and never used) in a scope
with no release anywhere — the exact shape of the PR 1 transport leaks.
The runtime twin of this rule is REPRO_SANITIZE=1, which asserts at
teardown that no descriptor or membership actually leaked.
"""

_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)
_TRANSFER = (ast.Return, ast.Yield, ast.YieldFrom, ast.Await)
_TRANSPARENT = (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                ast.DictComp, ast.comprehension, ast.BinOp, ast.BoolOp,
                ast.IfExp, ast.Tuple, ast.List, ast.Set, ast.Dict,
                ast.Starred, ast.NamedExpr, ast.Compare)


def _is_acquire(node: ast.Call) -> bool:
    fn = node.func
    if not isinstance(fn, ast.Attribute) or fn.attr not in ACQUIRE:
        return False
    if fn.attr == "join":
        # weed out str.join / thread.join lookalikes: group joins take
        # exactly one positional argument on a non-literal receiver
        if isinstance(fn.value, ast.Constant):
            return False
        if node.keywords or len(node.args) != 1:
            return False
    return True


def _scope_releases(scope: ast.AST) -> bool:
    for node in ast.walk(scope):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in RELEASE):
            return True
    return False


def _class_releases(cls: ast.ClassDef) -> bool:
    return _scope_releases(cls)


def _name_used_again(scope: ast.AST, names: set[str],
                     skip: ast.AST) -> bool:
    for node in ast.walk(scope):
        if (isinstance(node, ast.Name) and node.id in names
                and isinstance(node.ctx, ast.Load)
                and node is not skip
                and not any(a is skip for a in ancestors(node))):
            return True
    return False


def _transferred(call: ast.Call, scope: ast.AST) -> bool:
    """True when the acquired value's ownership visibly moves on."""
    cur: ast.AST = call
    while True:
        p = parent(cur)
        if p is None:
            return False
        if isinstance(p, ast.Call):
            return cur is not p.func       # value handed to another call
        if isinstance(p, _TRANSFER):
            return True
        if isinstance(p, ast.keyword) or isinstance(p, _TRANSPARENT):
            cur = p
            continue
        if isinstance(p, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (p.targets if isinstance(p, ast.Assign)
                       else [p.target])
            names = {t.id for t in targets if isinstance(t, ast.Name)}
            if len(names) != len(targets):
                return True   # stored into an attribute/subscript/tuple
            return _name_used_again(scope, names, skip=p)
        if isinstance(p, ast.Expr):
            return False                   # result dropped on the floor
        if isinstance(p, ast.stmt):
            return False
        cur = p


def check_file(src: SourceFile) -> list[Violation]:
    if src.module is None or not src.module.startswith("repro"):
        return []
    if src.module.startswith("repro.lint"):
        return []
    attach_parents(src.tree)
    out: list[Violation] = []
    for node in ast.walk(src.tree):
        if not (isinstance(node, ast.Call) and _is_acquire(node)):
            continue
        scope = enclosing(node, _FUNCS) or src.tree
        if any(_scope_releases(s) for s in _scopes(node, src.tree)):
            continue
        cls = enclosing(node, ast.ClassDef)
        if cls is not None and _class_releases(cls):
            continue
        if _transferred(node, scope):
            continue
        out.append(Violation(
            CODE, str(src.path), node.lineno,
            f"{node.func.attr}() acquires a transport resource but no "
            f"release ({'/'.join(sorted(RELEASE))}) is reachable from "
            f"this scope and its result is discarded"))
    return out


def _scopes(node: ast.AST, tree: ast.AST):
    """The function scopes enclosing ``node``, innermost first (a
    release in an enclosing closure counts); module-level acquires are
    checked against the module's top-level statements only."""
    found = False
    for anc in ancestors(node):
        if isinstance(anc, _FUNCS):
            found = True
            yield anc
    if not found:
        yield tree
