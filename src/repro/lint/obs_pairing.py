"""OBS01 — span enter/exit pairing for the flight-recorder hooks.

The observability layer (:mod:`repro.obs`) builds spans from paired
hook calls: ``collective_begin``/``collective_end``,
``phase_begin``/``phase_end``, ``round_begin``/``round_end``.  A begin
whose end is unreachable leaves the span open forever — the trace shows
a collective that never finished, the per-call metrics stack never
pops, and every later frame on that host is attributed to the wrong
call.  This rule flags any ``*_begin`` hook call with no matching
``*_end`` in sight.
"""

from __future__ import annotations

import ast

from .astutil import ancestors, attach_parents, enclosing, parent
from .engine import SourceFile, Violation

CODE = "OBS01"
SUMMARY = "span *_begin call with no reachable matching *_end"

EXPLAIN = """\
Every attribute call named `<prefix>_begin` (the flight-recorder span
hooks: collective_begin, phase_begin, round_begin, and any future span
pair following the naming scheme) must have a reachable matching
`<prefix>_end` call.  The rule accepts any of:

* a `<prefix>_end` call anywhere in the same function — straight-line
  code and the canonical try/finally bracket both qualify;
* a `<prefix>_end` call in any method of the same class — the
  paired-method idiom (an object that begins in one method and ends in
  another);
* the context-manager form: the begin call is the context expression
  of a `with` statement, whose `__exit__` owns the end.

What it flags is the dangerous shape: a span opened in a scope that can
never close it.  Generators make this easy to get wrong — a `yield
from` between begin and end is fine *only* under try/finally, which the
same-scope check accepts and bare early returns do not provide.
"""

_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)
_SUFFIX = "_begin"


def _is_begin(node: ast.Call) -> bool:
    fn = node.func
    return (isinstance(fn, ast.Attribute)
            and fn.attr.endswith(_SUFFIX)
            and len(fn.attr) > len(_SUFFIX))


def _scope_ends(scope: ast.AST, end_name: str) -> bool:
    for node in ast.walk(scope):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == end_name):
            return True
    return False


def _is_with_context(node: ast.Call) -> bool:
    p = parent(node)
    return isinstance(p, ast.withitem) and p.context_expr is node


def _scopes(node: ast.AST, tree: ast.AST):
    """Function scopes enclosing ``node``, innermost first; module-level
    calls are checked against the whole module."""
    found = False
    for anc in ancestors(node):
        if isinstance(anc, _FUNCS):
            found = True
            yield anc
    if not found:
        yield tree


def check_file(src: SourceFile) -> list[Violation]:
    if src.module is None or src.module.startswith("repro.lint"):
        return []
    attach_parents(src.tree)
    out: list[Violation] = []
    for node in ast.walk(src.tree):
        if not (isinstance(node, ast.Call) and _is_begin(node)):
            continue
        end_name = node.func.attr[:-len(_SUFFIX)] + "_end"
        if _is_with_context(node):
            continue
        if any(_scope_ends(s, end_name) for s in _scopes(node, src.tree)):
            continue
        cls = enclosing(node, ast.ClassDef)
        if cls is not None and _scope_ends(cls, end_name):
            continue
        out.append(Violation(
            CODE, str(src.path), node.lineno,
            f"{node.func.attr}() opens a span but no {end_name}() is "
            f"reachable from this scope — bracket it with try/finally "
            f"or a context manager"))
    return out
