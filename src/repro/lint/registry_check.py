"""REG01 — registry cross-consistency, executed against the live tables.

Parsing cannot see decorator side effects, so this rule *imports* the
package and checks the real registry against the real policy and model
tables.  Gaps become tracked waivers instead of silence: an op with no
auto policy must carry a ``POLICY_WAIVERS`` entry, an implementation
with no closed-form frame model must carry an ``estimate:`` marker in
``MODEL_COVERAGE``.
"""

from __future__ import annotations

import importlib
from pathlib import Path

from .engine import SourceFile, Violation

CODE = "REG01"
SUMMARY = "registry / policy / frame-model tables are inconsistent"

EXPLAIN = """\
Executed (not parsed) against the imported package; for every
registered (op, implementation) pair the rule requires:

* a nonempty docstring on the implementation (docs/collectives.md is
  generated from them — an empty one ships an empty row);
* a DEFAULTS entry for the op naming a registered implementation;
* policy coverage: the op appears in policy.AUTO_CHOICES (and its
  choices are registered names) or carries a justified
  policy.POLICY_WAIVERS entry.  An op in both, or a waiver for an
  unregistered op, is *stale* and flagged;
* model coverage: the pair appears in
  analysis.framecount.MODEL_COVERAGE, mapping to a resolvable frame-
  model function (dotted path) or an explicit "estimate: <why>" marker.
  Entries for unregistered pairs, and dangling function paths, are
  flagged.

This turns the ROADMAP's alltoall/scan/exscan/reduce_scatter gaps into
tracked waivers: deleting the waiver without adding the real policy or
model brings the lint gate down.
"""


def _resolvable(dotted: str) -> bool:
    mod, _, attr = dotted.rpartition(".")
    if not mod:
        return False
    try:
        return callable(getattr(importlib.import_module(mod), attr))
    except (ImportError, AttributeError):
        return False


def check_tables(registry, defaults, auto_choices, hier_auto, waivers,
                 coverage, where="registry",
                 resolvable=_resolvable) -> list[Violation]:
    """The pure consistency check (unit-testable with toy tables).

    ``where`` anchors violations that have no better file; entries are
    ``(op -> {impl -> fn})``, fn objects may be plain callables.
    """
    out: list[Violation] = []

    def flag(msg: str, path: str = where, line: int = 1) -> None:
        out.append(Violation(CODE, path, line, msg))

    def anchor(fn) -> tuple[str, int]:
        code = getattr(fn, "__code__", None)
        if code is not None:
            return code.co_filename, code.co_firstlineno
        return where, 1

    for op in sorted(registry):
        impls = registry[op]
        for name in sorted(impls):
            fn = impls[name]
            doc = (getattr(fn, "__doc__", None) or "").strip()
            path, line = anchor(fn)
            if not doc:
                flag(f"({op}, {name}) has no docstring — "
                     f"docs/collectives.md is generated from these",
                     path, line)
            if (op, name) not in coverage:
                flag(f"({op}, {name}) has no MODEL_COVERAGE entry "
                     f"(analysis/framecount.py): name a frame model or "
                     f"an explicit 'estimate: <why>' marker",
                     path, line)
        if op not in defaults:
            flag(f"op {op!r} is registered but has no DEFAULTS entry")
        elif defaults[op] not in impls:
            flag(f"DEFAULTS[{op!r}] = {defaults[op]!r} is not a "
                 f"registered implementation of {op!r}")
        in_auto = op in auto_choices
        in_waivers = op in waivers
        if not in_auto and not in_waivers:
            flag(f"op {op!r} has no auto policy (AUTO_CHOICES) and no "
                 f"POLICY_WAIVERS entry — gaps must be tracked, not "
                 f"silent")
        if in_auto and in_waivers:
            flag(f"stale waiver: op {op!r} is in both AUTO_CHOICES and "
                 f"POLICY_WAIVERS")
        if in_auto:
            for impl in auto_choices[op]:
                if impl not in impls:
                    flag(f"AUTO_CHOICES[{op!r}] names unregistered "
                         f"implementation {impl!r}")
        if op in hier_auto and hier_auto[op] not in impls:
            flag(f"HIER_AUTO[{op!r}] names unregistered implementation "
                 f"{hier_auto[op]!r}")
    for op in sorted(set(defaults) - set(registry)):
        flag(f"stale DEFAULTS entry for unregistered op {op!r}")
    for op in sorted(set(waivers) - set(registry)):
        flag(f"stale POLICY_WAIVERS entry for unregistered op {op!r}")
    for op, impl in sorted(coverage):
        if op not in registry or impl not in registry[op]:
            flag(f"stale MODEL_COVERAGE entry for unregistered pair "
                 f"({op}, {impl})")
            continue
        value = coverage[(op, impl)]
        if value.startswith("estimate:"):
            if not value[len("estimate:"):].strip():
                flag(f"MODEL_COVERAGE[({op}, {impl})] estimate marker "
                     f"has no rationale")
        elif not resolvable(value):
            flag(f"MODEL_COVERAGE[({op}, {impl})] = {value!r} does not "
                 f"resolve to a callable frame model")
    return out


def finalize(files: list[SourceFile]) -> list[Violation]:
    reg_src = next((f for f in files
                    if f.module == "repro.mpi.collective.registry"),
                   None)
    if reg_src is None:
        return []
    try:
        import repro  # noqa: F401  (registers every implementation)
        from repro.analysis.framecount import MODEL_COVERAGE
        from repro.mpi.collective import policy, registry
    except Exception as exc:  # pragma: no cover - import breakage
        return [Violation(CODE, str(reg_src.path), 1,
                          f"could not import the package for the "
                          f"executed registry check: {exc!r}")]
    live = Path(registry.__file__).resolve()
    if reg_src.path.resolve() != live:
        # linting a fixture tree that merely *looks* like the repo —
        # the executed check only applies to the importable package
        return []
    return check_tables(registry.REGISTRY, registry.DEFAULTS,
                        policy.AUTO_CHOICES, policy.HIER_AUTO,
                        policy.POLICY_WAIVERS, MODEL_COVERAGE,
                        where=str(reg_src.path))
