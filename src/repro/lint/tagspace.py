"""TAG01 — tag- and round-namespace collision check.

Two independent namespaces keep concurrent protocol traffic apart:

* the collective-context p2p tags of ``repro/mpi/collective/tags.py``
  (``TAG_*`` constants) — two collectives sharing a tag value could
  cross-match envelopes;
* the multicast round-engine namespaces minted by
  ``repro.core.rounds.round_namespace(*key)`` — two *different* call
  sites minting the same key would collide in the per-sequence
  scout/report/decision tag space when their streams interleave.
"""

from __future__ import annotations

import ast
from collections import defaultdict

from .engine import SourceFile, Violation

CODE = "TAG01"
SUMMARY = "tag value or round_namespace key collision"

EXPLAIN = """\
Checked over the whole linted tree:

* every ``TAG_* = <int>`` constant in a ``mpi/collective/tags.py``
  module must be pairwise distinct — the collective context relies on
  tags alone to demultiplex concurrent algorithms;
* every ``round_namespace(...)`` call site is reduced to a key
  signature: constant arguments keep their values, variable arguments
  become ``*``.  Two *distinct* call sites with the same signature are
  flagged unless the signature is all-variable (statically
  incomparable).  Give each engine user its own constant prefix —
  ``round_namespace("sc")``, ``round_namespace("ag", turn)`` — so
  interleaved streams can never mint the same (arm, round) tags.
"""


def _tag_violations(src: SourceFile) -> list[Violation]:
    values: dict[object, tuple[str, int]] = {}
    out: list[Violation] = []
    for node in src.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not (isinstance(target, ast.Name)
                    and target.id.startswith("TAG_")):
                continue
            if not isinstance(node.value, ast.Constant):
                continue
            val = node.value.value
            if val in values:
                first, line = values[val]
                out.append(Violation(
                    CODE, str(src.path), node.lineno,
                    f"{target.id} = {val!r} collides with {first} "
                    f"(line {line}) — collective tags must be pairwise "
                    f"distinct"))
            else:
                values[val] = (target.id, node.lineno)
    return out


def _signature(call: ast.Call) -> tuple:
    sig = []
    for arg in call.args:
        if isinstance(arg, ast.Constant):
            sig.append(repr(arg.value))
        elif isinstance(arg, ast.Starred):
            sig.append("**")     # unknown arity: compare as opaque
        else:
            sig.append("*")
    return tuple(sig)


def finalize(files: list[SourceFile]) -> list[Violation]:
    out: list[Violation] = []
    sites: dict[tuple, list[tuple[str, int]]] = defaultdict(list)
    for src in files:
        if src.module is None or not src.module.startswith("repro"):
            continue
        if src.module.endswith("mpi.collective.tags"):
            out.extend(_tag_violations(src))
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            name = (fn.id if isinstance(fn, ast.Name)
                    else fn.attr if isinstance(fn, ast.Attribute)
                    else None)
            if name != "round_namespace":
                continue
            sites[_signature(node)].append((str(src.path), node.lineno))
    for sig, where in sorted(sites.items()):
        if len(where) < 2:
            continue
        if sig and all(s == "*" for s in sig):
            continue          # all-variable: statically incomparable
        first_path, first_line = where[0]
        for path, line in where[1:]:
            out.append(Violation(
                CODE, path, line,
                f"round_namespace key {sig!r} already minted at "
                f"{first_path}:{first_line} — interleaved engine "
                f"streams need distinct constant key prefixes"))
    return out
