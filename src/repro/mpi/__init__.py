"""``repro.mpi`` — an MPI-1 subset over the simulated network.

Mirrors the layering of MPICH (paper Fig. 1): collectives dispatch onto
either the point-to-point engine (baseline) or the multicast channel (the
paper's contribution, in :mod:`repro.core`).  The API follows mpi4py
conventions; see :mod:`repro.mpi.communicator`.
"""

from . import collective  # noqa: F401  (registers p2p implementations)
from .communicator import Communicator, UNDEFINED
from .datatypes import (BOOL, BYTE, CHAR, COMPLEX, DOUBLE, FLOAT, INT, LONG,
                        Datatype, datatype_of, payload_bytes)
from .ops import (BAND, BOR, LAND, LOR, MAX, MAXLOC, MIN, MINLOC, PROD, SUM,
                  Op)
from .p2p import DEFAULT_EAGER_THRESHOLD, MPI_PORT, MpiEndpoint
from .status import (ANY_SOURCE, ANY_TAG, Request, Status, waitall,
                     waitany, waitsome)
from .world import MpiWorld

__all__ = [
    "ANY_SOURCE", "ANY_TAG", "BAND", "BOOL", "BOR", "BYTE", "CHAR",
    "COMPLEX", "Communicator", "DEFAULT_EAGER_THRESHOLD", "DOUBLE",
    "Datatype", "FLOAT", "INT", "LAND", "LONG", "LOR", "MAX", "MAXLOC",
    "MIN", "MINLOC", "MPI_PORT", "MpiEndpoint", "MpiWorld", "Op", "PROD",
    "Request", "SUM", "Status", "UNDEFINED", "datatype_of",
    "payload_bytes", "waitall", "waitany", "waitsome",
]
