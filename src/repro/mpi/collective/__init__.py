"""Collective-operation implementations and the dispatch registry.

Every collective is a plain generator function taking the communicator as
its first argument; :class:`~repro.mpi.communicator.Communicator` looks up
the active implementation by name.  The MPICH-style algorithms (built on
point-to-point, as the paper's baseline) register themselves here; the
multicast implementations in :mod:`repro.core` register under
``mcast-*`` names.
"""

from .registry import REGISTRY, get_impl, register, DEFAULTS

# Importing the modules registers the p2p baselines (and the
# topology-aware hierarchical family, which lives beside the policy
# layer it cooperates with).
from . import bcast_p2p      # noqa: F401  (registration side effect)
from . import barrier_p2p    # noqa: F401
from . import reduce_p2p     # noqa: F401
from . import gather_p2p     # noqa: F401
from . import alltoall_p2p   # noqa: F401
from . import extras         # noqa: F401
from . import hier           # noqa: F401  (registers hier-mcast)

__all__ = ["REGISTRY", "get_impl", "register", "DEFAULTS"]
