"""Pairwise-exchange all-to-all (MPICH's classic N-1 round schedule).

Round ``i`` (1 ≤ i < N): rank ``r`` sends its slice for ``(r+i) mod N``
while receiving from ``(r-i) mod N``.  The sendrecv pairing keeps every
round contention-balanced and deadlock-free.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from .registry import register
from .tags import TAG_ALLTOALL

__all__ = ["alltoall_pairwise"]


@register("alltoall", "p2p-pairwise")
def alltoall_pairwise(comm, objs: Sequence[Any]) -> Generator:
    """``mine = yield from alltoall_pairwise(comm, per_dest_list)``."""
    size = comm.size
    rank = comm.rank
    if objs is None or len(objs) != size:
        raise ValueError(
            f"alltoall needs exactly {size} elements, "
            f"got {None if objs is None else len(objs)}")
    result: list[Any] = [None] * size
    result[rank] = objs[rank]
    for i in range(1, size):
        dst = (rank + i) % size
        src = (rank - i) % size
        incoming = yield from comm._sendrecv_coll(
            objs[dst], dst, TAG_ALLTOALL, src=src)
        result[src] = incoming
    return result
