"""MPICH-style barrier: the three-phase algorithm of the paper's §3.2.

With ``N`` processes and ``K`` the largest power of two ≤ ``N``:

1. **fold-in** — ranks ``K..N-1`` send to ``rank - K``;
2. **pairwise exchange** — ranks ``0..K-1`` run ``log2 K`` rounds of
   sendrecv with partner ``rank XOR mask``;
3. **release** — ranks ``0..N-K-1`` send to ``rank + K``.

Total messages: ``2*(N-K) + K*log2(K)`` — the count the paper quotes.
"""

from __future__ import annotations

from typing import Generator

from .registry import register
from .tags import TAG_BARRIER_EXCH, TAG_BARRIER_IN, TAG_BARRIER_OUT

__all__ = ["barrier_mpich", "largest_power_of_two_leq"]

#: payload of a synchronization-only message (bytes on the wire)
SYNC_PAYLOAD_BYTES = 0


def largest_power_of_two_leq(n: int) -> int:
    """Largest power of two ≤ n (the paper's K)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 1 << (n.bit_length() - 1)


@register("barrier", "p2p-mpich")
def barrier_mpich(comm) -> Generator:
    """``yield from barrier_mpich(comm)``."""
    size = comm.size
    if size == 1:
        return None
    rank = comm.rank
    k = largest_power_of_two_leq(size)

    if rank >= k:
        # Phase 1 + 3 from the outsider's perspective: notify the partner
        # inside the power-of-two set, then wait for release.
        yield from comm._send_coll(None, rank - k, TAG_BARRIER_IN,
                                   nbytes=SYNC_PAYLOAD_BYTES)
        yield from comm._recv_coll(rank - k, TAG_BARRIER_OUT)
        return None

    if rank < size - k:
        # Phase 1: absorb the outsider's notification.
        yield from comm._recv_coll(rank + k, TAG_BARRIER_IN)

    # Phase 2: dimension-by-dimension pairwise exchange inside the
    # power-of-two set.
    mask = 1
    while mask < k:
        partner = rank ^ mask
        yield from comm._sendrecv_coll(None, partner, TAG_BARRIER_EXCH,
                                       nbytes=SYNC_PAYLOAD_BYTES)
        mask <<= 1

    if rank < size - k:
        # Phase 3: release the outsider.
        yield from comm._send_coll(None, rank + k, TAG_BARRIER_OUT,
                                   nbytes=SYNC_PAYLOAD_BYTES)
    return None


def barrier_message_count(n: int) -> int:
    """The paper's closed-form message count for the MPICH barrier."""
    k = largest_power_of_two_leq(n)
    return 2 * (n - k) + k * (k.bit_length() - 1)


@register("barrier", "p2p-dissemination")
def barrier_dissemination(comm) -> Generator:
    """Dissemination barrier (Hensgen/Finkel/Manber): ``ceil(log2 N)``
    rounds of shifted sendrecv, uniform for any N.

    Not the paper's baseline (MPICH 1.x used the three-phase algorithm
    above), but the standard successor — included so the multicast
    barrier can be measured against the *best* point-to-point scheme,
    not just the contemporary one.  Messages: ``N * ceil(log2 N)``.
    """
    size = comm.size
    if size == 1:
        return None
    rank = comm.rank
    distance = 1
    round_no = 0
    while distance < size:
        dst = (rank + distance) % size
        src = (rank - distance) % size
        # Distinct tag per round: with wrap-around partners a rank can
        # receive round k+1 traffic before finishing round k.
        yield from comm._sendrecv_coll(
            None, dst, TAG_BARRIER_EXCH + 16 + round_no,
            nbytes=SYNC_PAYLOAD_BYTES, src=src)
        distance <<= 1
        round_no += 1
    return None


def dissemination_message_count(n: int) -> int:
    """Messages of the dissemination barrier: N per round."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return 0
    return n * ((n - 1).bit_length())
