"""MPICH-style broadcast: the binomial tree of the paper's Fig. 2.

The root sends **separate copies** of the full message down a binomial
tree: with 7 processes, rank 0 sends to 4, 2, 1; rank 2 forwards to 3;
rank 4 forwards to 5 and 6.  Every edge carries the whole payload, so the
operation puts ``(floor(M/T)+1) * (N-1)`` frames on the network — the
baseline cost the multicast implementation attacks.
"""

from __future__ import annotations

from typing import Any, Generator

# The tree-shape helpers live in repro.core.binomial (the scout layer
# walks the same tree); re-exported here to keep the historical import
# path for callers and tests.
from ...core.binomial import binomial_children, binomial_parent
from .registry import register
from .tags import TAG_BCAST

__all__ = ["bcast_binomial", "binomial_children", "binomial_parent"]


@register("bcast", "p2p-binomial")
def bcast_binomial(comm, obj: Any, root: int = 0) -> Generator:
    """``obj = yield from bcast_binomial(comm, obj, root)``."""
    size = comm.size
    if size == 1:
        return obj
    rank = comm.rank
    rel = (rank - root) % size

    if rel != 0:
        parent = (binomial_parent(rel) + root) % size
        obj = yield from comm._recv_coll(parent, TAG_BCAST)
    for child in binomial_children(rel, size):
        dst = (child + root) % size
        yield from comm._send_coll(obj, dst, TAG_BCAST)
    return obj


@register("bcast", "p2p-linear")
def bcast_linear_p2p(comm, obj: Any, root: int = 0) -> Generator:
    """Naive reference: root sends a separate copy to every rank in turn.

    Not in the paper's comparison, but a useful lower baseline for tests
    (it maximizes root serialization).
    """
    if comm.size == 1:
        return obj
    if comm.rank == root:
        for dst in range(comm.size):
            if dst != root:
                yield from comm._send_coll(obj, dst, TAG_BCAST)
        return obj
    return (yield from comm._recv_coll(root, TAG_BCAST))
