"""Additional MPI-1 collectives: exclusive scan and reduce_scatter.

Not part of the paper's experiments, but part of making ``repro.mpi`` a
library a downstream user can actually adopt.  Algorithms follow the
MPICH-1.x playbook:

* ``exscan`` — linear prefix chain like ``scan``, shifted by one: rank 0
  returns ``None`` (MPI leaves its buffer undefined), rank r returns the
  reduction of ranks ``0..r-1``;
* ``reduce_scatter`` — reduce the full vector to rank 0, then scatter
  the blocks (MPICH 1.x's approach before Rabenseifner).
"""

from __future__ import annotations

import copy
from typing import Any, Generator, Sequence

from ..ops import Op
from .registry import DEFAULTS, register
from .tags import TAG_SCAN

__all__ = ["exscan_linear", "reduce_scatter_rsb"]

#: reduce_scatter rides its own tag in the collective context
TAG_EXSCAN = TAG_SCAN + 100


@register("exscan", "p2p-linear")
def exscan_linear(comm, obj: Any, op: Op) -> Generator:
    """Exclusive prefix reduction (rank 0 gets ``None``)."""
    rank = comm.rank
    size = comm.size
    prefix = None
    if rank > 0:
        prefix = yield from comm._recv_coll(rank - 1, TAG_EXSCAN)
    if rank < size - 1:
        mine = (copy.copy(obj) if prefix is None
                else op(prefix, obj))
        yield from comm._send_coll(mine, rank + 1, TAG_EXSCAN)
    return prefix


@register("reduce_scatter", "p2p-reduce-scatter")
def reduce_scatter_rsb(comm, objs: Sequence[Any], op: Op) -> Generator:
    """Reduce ``objs`` elementwise across ranks, scatter block ``r`` to
    rank ``r``.  ``objs`` must have exactly ``size`` elements per rank.
    """
    size = comm.size
    if objs is None or len(objs) != size:
        raise ValueError(
            f"reduce_scatter needs exactly {size} elements, "
            f"got {None if objs is None else len(objs)}")
    # Reduce the whole vector to rank 0 (element-wise via tuple trick):
    vector = list(objs)

    def vec_op(a, b):
        return [op(x, y) for x, y in zip(a, b)]

    from ..ops import Op as _Op

    reduced = yield from comm._dispatch(
        "reduce", vector, _Op(f"vec<{op.name}>", vec_op,
                              commutative=op.commutative), 0)
    mine = yield from comm._dispatch(
        "scatter", reduced if comm.rank == 0 else None, 0)
    return mine


DEFAULTS.setdefault("exscan", "p2p-linear")
DEFAULTS.setdefault("reduce_scatter", "p2p-reduce-scatter")
