"""Binomial gather and scatter, plus gather-then-broadcast allgather.

Gather walks the same binomial tree as reduce, but accumulates a
``{rank: object}`` mapping instead of combining values, so the root can
return a correctly ordered list.  Scatter walks the broadcast tree
top-down, peeling off each subtree's slice of the payload (only the
subtree's share rides each edge, like MPICH's minimal scatter).
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

from .bcast_p2p import binomial_children, binomial_parent
from .registry import register
from .tags import TAG_GATHER, TAG_SCATTER

__all__ = ["gather_binomial", "scatter_binomial", "allgather_gather_bcast"]


def _subtree(rel: int, size: int) -> list[int]:
    """Relative ranks in the binomial subtree rooted at ``rel`` (incl.)."""
    out = [rel]
    for child in binomial_children(rel, size):
        out.extend(_subtree(child, size))
    return out


@register("gather", "p2p-binomial")
def gather_binomial(comm, obj: Any, root: int = 0) -> Generator:
    """Returns the rank-ordered list at ``root``; ``None`` elsewhere."""
    size = comm.size
    rank = comm.rank
    if size == 1:
        return [obj]
    rel = (rank - root) % size

    collected: dict[int, Any] = {rank: obj}
    # Children in the *reduce* direction: receive each child subtree.
    mask = 1
    while mask < size:
        if rel & mask:
            dst = ((rel & ~mask) + root) % size
            yield from comm._send_coll(collected, dst, TAG_GATHER)
            return None
        src_rel = rel | mask
        if src_rel < size:
            part = yield from comm._recv_coll((src_rel + root) % size,
                                              TAG_GATHER)
            collected.update(part)
        mask <<= 1

    # ``collected`` is keyed by absolute rank; return in rank order.
    return [collected[r] for r in range(size)]


@register("scatter", "p2p-binomial")
def scatter_binomial(comm, objs: Optional[Sequence[Any]],
                     root: int = 0) -> Generator:
    """Returns this rank's element of the root's sequence."""
    size = comm.size
    rank = comm.rank
    if size == 1:
        if objs is None or len(objs) != 1:
            raise ValueError("scatter at root needs exactly size elements")
        return objs[0]
    rel = (rank - root) % size

    if rel == 0:
        if objs is None or len(objs) != size:
            raise ValueError(
                f"scatter root needs exactly {size} elements, "
                f"got {None if objs is None else len(objs)}")
        slice_map = {r: objs[(r + root) % size] for r in range(size)}
    else:
        parent = (binomial_parent(rel) + root) % size
        slice_map = yield from comm._recv_coll(parent, TAG_SCATTER)

    for child in binomial_children(rel, size):
        members = sorted(set(_subtree(child, size)))
        part = {r: slice_map[r] for r in members}
        yield from comm._send_coll(part, (child + root) % size, TAG_SCATTER)

    return slice_map[rel]


@register("allgather", "p2p-gather-bcast")
def allgather_gather_bcast(comm, obj: Any) -> Generator:
    """MPICH 1.x allgather: gather to rank 0, then broadcast the list."""
    everything = yield from comm._dispatch("gather", obj, 0)
    everything = yield from comm._dispatch("bcast", everything, 0)
    return everything
