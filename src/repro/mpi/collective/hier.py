"""Hierarchical multicast collectives for tiered fabrics — ``hier-mcast``.

On a multi-segment fabric (:mod:`repro.simnet.fabric`) the flat
segmented-multicast collectives pay the trunks for *every* control
message: each NACK report, decision, and arming scout of every rank in a
remote segment crosses the backbone.  Following Karonis & de Supinski's
multilevel topology-aware collectives (MPICH-G2) and Träff's multi-lane
decomposition, this module re-expresses each collective as **per-segment
phases bridged by segment leaders — recursively**: on a fabric deeper
than two tiers, the leaders themselves are grouped by the switch
subtrees that contain them, with leaders-of-leaders bridging each higher
tier, so every phase's traffic is confined to the smallest switch
subtree that contains its participants.

* **discovery** — every rank asks the cluster's topology API
  (:meth:`~repro.simnet.topology.Cluster.segment_of` /
  :meth:`~repro.simnet.topology.Cluster.segment_path` via
  ``comm.world.cluster``) for the segment and switch-tree path of each
  communicator rank.  The mapping is identical everywhere, so the whole
  hierarchy — :func:`build_hier_tree`, a collapsed tree whose leaves are
  occupied segments and whose internal nodes are the switch subtrees
  with members in more than one child — is elected locally and free.
  The **leader** of any subtree is its smallest communicator rank;
* **per-group channels** — each occupied leaf segment's members share a
  private :class:`~repro.core.channel.McastChannel`, and each internal
  node of the hierarchy carries one more for the leaders of its
  children (on a two-tier fabric this degenerates to exactly one
  "leaders' group").  Group ids and ports come from a deterministic
  world-level slab (:meth:`repro.mpi.world.MpiWorld.alloc_hier_slab`).
  IGMP snooping confines each group's frames to the switch subtree
  spanning its members;
* **engine reuse** — every phase runs the *existing* flat collectives
  (:func:`~repro.core.segment.bcast_mcast_seg_nack`,
  :func:`~repro.core.mcast_reduce.reduce_mcast_seg_combine`,
  :func:`~repro.core.mcast_scatter.scatter_mcast_seg_root`,
  :func:`~repro.core.mcast_gather.gather_mcast_seg_root_follow`,
  :func:`~repro.core.segment.allgather_mcast_seg_paced`) over a
  :class:`SegmentComm` — a group-local *view* of the communicator that
  renumbers member ranks densely and carries its own channel, so the
  round engine (serve/follow, NACK repair, pacing) needs no changes and
  repairs for a loss inside a segment never touch a trunk.

Registered as ``"hier-mcast"`` for ``bcast`` / ``reduce`` /
``allreduce`` / ``barrier`` / ``scatter`` / ``gather`` / ``allgather``.
On a flat cluster (or a communicator whose members all share one
segment) every entry degrades to its flat segmented counterpart, so
``hier-mcast`` is always safe to select; the payload- and
topology-aware auto policy (:mod:`repro.mpi.collective.policy`) picks
it per call whenever the modeled frame count — trunk crossings and
expected loss repairs included — beats the flat engine and the p2p
trees.

**Phase plans.**  Each collective derives a *plan* — an ordered list of
:class:`HierPhase` (group members + the rank serving/collecting it) —
from pure functions over the hierarchy tree (:func:`bcast_phases`,
:func:`up_phases`, :func:`scatter_phases`, :func:`allgather_phases`).
Every rank executes the restriction of the same global plan to the
groups it belongs to, so all per-rank schedules embed in one total
order and can never deadlock; and the frame models in
:mod:`repro.analysis.framecount` walk the *same* plans, so the policy's
model and the implementation's behaviour cannot drift.

**Reduction order.**  The hierarchical reduce folds each group in
ascending rank order at every level, which equals MPI's canonical
absolute-rank order exactly when the recursive leader-ordered
concatenation of segments yields ``0..size-1`` (the natural layout of
``run_spmd`` on any ``tree:...`` cluster) — the ``contiguous`` flag.
For non-contiguous layouts the grouping would reorder operands, so
non-commutative operators fall back to the flat (canonical-order)
segmented reduce.

Dispatch safety (paper §4): all phases derive from rank-invariant state
(topology, communicator membership), every rank enters the same phases
of the same channels in the same relative order, and the per-call
"auto" choice is announced down the scout tree before any traffic — all
ranks dispatch identically.
"""

from __future__ import annotations

import copy
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Generator, Optional

from .registry import register
from .tags import TAG_HIER

__all__ = ["SegmentComm", "HierState", "HierNode", "HierPhase",
           "build_hier_tree", "canonical_order", "tree_internal_nodes",
           "group_members", "bcast_phases", "up_phases",
           "scatter_phases", "allgather_phases", "layout_from_segments",
           "segment_layout", "hier_state", "hier_ready", "bcast_hier",
           "reduce_hier", "allreduce_hier", "barrier_hier",
           "scatter_hier", "gather_hier", "allgather_hier",
           "HIER_GROUP_BASE", "HIER_PORT_BASE", "MAX_HIER_SEGMENTS"]

#: group-id space for hierarchical sub-channels, above the
#: per-communicator ids at :data:`repro.core.channel.GROUP_ID_BASE`
HIER_GROUP_BASE = 1 << 17

#: UDP port space for hierarchical sub-channels (2 ports per group:
#: data + scout), clear of the per-ctx bases at 20000/40000; slabs are
#: reserved per communicator by :meth:`~repro.mpi.world.MpiWorld.
#: alloc_hier_slab`
HIER_PORT_BASE = 60000

#: segments one communicator may span (bounds the group/port slab)
MAX_HIER_SEGMENTS = 64


class SegmentComm:
    """A group-local *view* of a communicator.

    Renumbers ``members`` (a sorted subset of the parent's ranks) to
    dense local ranks 0..k-1 and exposes exactly the surface the round
    engine and the flat multicast collectives need (``rank`` / ``size``
    / ``addr_of`` / ``host`` / ``sim`` / ``mcast``), with its own
    :class:`~repro.core.channel.McastChannel` on a private group.  The
    channel's sequence numbers advance per-view, so phases on different
    groups never cross-match.
    """

    def __init__(self, comm, members: list[int], group: int,
                 data_port: int, scout_port: int):
        from ...core.channel import McastChannel  # avoid import cycle

        if members != sorted(members):
            raise ValueError(f"segment members must be sorted, got "
                             f"{members}")
        self.parent = comm
        self.members = list(members)
        self.rank = self.members.index(comm.rank)
        self.ranks = [comm.addr_of(r) for r in self.members]
        self.host = comm.host
        self.sim = comm.sim
        self.mcast = McastChannel(self, group=group, data_port=data_port,
                                  scout_port=scout_port)

    @property
    def size(self) -> int:
        return len(self.members)

    def addr_of(self, rank: int) -> int:
        return self.ranks[rank]

    def close(self) -> None:
        self.mcast.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SegmentComm rank={self.rank}/{self.size} "
                f"of ctx={self.parent.ctx}>")


# ----------------------------------------------------------------------
# the pure hierarchy layer (shared with the policy's frame models)
# ----------------------------------------------------------------------
class HierNode:
    """One occupied node of the collapsed hierarchy tree.

    Leaves carry a dense segment id (``seg``); internal nodes have at
    least two children (switch subtrees with members in exactly one
    child are collapsed away — they add trunk hops, not phases).
    ``members`` is the sorted tuple of communicator ranks in the
    subtree; ``leader`` its minimum.
    """

    __slots__ = ("path", "seg", "children", "members", "leader")

    def __init__(self, path: tuple, seg: Optional[int],
                 children: tuple, members: tuple):
        self.path = path
        self.seg = seg
        self.children = children
        self.members = members
        self.leader = members[0]

    @property
    def is_leaf(self) -> bool:
        return self.seg is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = f"seg {self.seg}" if self.is_leaf else \
            f"{len(self.children)} children"
        return f"<HierNode {self.path} ({kind}) members={self.members}>"


def build_hier_tree(seg_of_rank, paths=None) -> HierNode:
    """The collapsed hierarchy of a communicator: a tree whose leaves
    are the occupied (dense) segments and whose internal nodes are the
    switch subtrees holding members in more than one child.

    ``paths`` maps each dense segment id to its switch-tree path
    (:meth:`~repro.simnet.topology.Cluster.segment_path`); ``None``
    assumes the two-tier layout (every segment directly under the
    core), under which the tree is exactly PR 4's one-leaders'-group
    hierarchy.
    """
    size = len(seg_of_rank)
    if size < 1:
        raise ValueError("cannot build a hierarchy for zero ranks")
    nsegs = max(seg_of_rank) + 1
    members: list[list[int]] = [[] for _ in range(nsegs)]
    for rank in range(size):
        members[seg_of_rank[rank]].append(rank)
    if paths is None:
        paths = tuple((s,) for s in range(nsegs))

    def _build(depth: int, segs: list[int]) -> HierNode:
        if len(segs) == 1:
            s = segs[0]
            return HierNode(paths[s], s, (), tuple(members[s]))
        buckets: dict[int, list[int]] = {}
        for s in segs:
            if len(paths[s]) <= depth:
                raise ValueError(
                    f"segment paths nest: {paths[s]} is a prefix of a "
                    f"sibling's path")
            buckets.setdefault(paths[s][depth], []).append(s)
        if len(buckets) == 1:
            # pass-through switch: one occupied child, no phase here
            (only,) = buckets.values()
            return _build(depth + 1, only)
        children = tuple(_build(depth + 1, buckets[k])
                         for k in sorted(buckets))
        mem = tuple(sorted(r for c in children for r in c.members))
        return HierNode(paths[segs[0]][:depth], None, children, mem)

    return _build(0, list(range(nsegs)))


def tree_internal_nodes(tree: HierNode) -> list[HierNode]:
    """The tree's internal (group-bearing) nodes, top-down: sorted by
    depth then path — the deterministic order channels are numbered
    in."""
    out: list[HierNode] = []
    stack = [tree]
    while stack:
        node = stack.pop()
        if not node.is_leaf:
            out.append(node)
            stack.extend(node.children)
    out.sort(key=lambda n: (len(n.path), n.path))
    return out


def group_members(node: HierNode) -> tuple:
    """The leader group bridging ``node``: the subtree leader of each
    child, in ascending rank order."""
    return tuple(sorted(c.leader for c in node.children))


def canonical_order(node: HierNode) -> list[int]:
    """The operand order hierarchical folding produces: each group
    folds in ascending member (= leader) rank order, recursively."""
    if node.is_leaf:
        return list(node.members)
    out: list[int] = []
    for child in sorted(node.children, key=lambda c: c.leader):
        out.extend(canonical_order(child))
    return out


def _leaf_of(tree: HierNode, rank: int) -> HierNode:
    node = tree
    while not node.is_leaf:
        node = _child_containing(node, rank)
    return node


def _child_containing(node: HierNode, rank: int) -> HierNode:
    for child in node.children:
        if rank in child.members:
            return child
    raise ValueError(f"rank {rank} is not in subtree {node.path}")


def _is_prefix(p: tuple, q: tuple) -> bool:
    return len(p) <= len(q) and q[:len(p)] == p


@dataclass(frozen=True, eq=False)
class HierPhase:
    """One group-collective phase of a hierarchical plan."""

    key: tuple            #: ("leaf", seg) or ("node", path) — channel id
    members: tuple        #: participating comm ranks, ascending
    root: int             #: the rank serving / collecting this phase
    node: HierNode        #: the hierarchy node the phase bridges

    @property
    def size(self) -> int:
        return len(self.members)


def _leaf_phase(leaf: HierNode, root: int) -> HierPhase:
    return HierPhase(("leaf", leaf.seg), leaf.members, root, leaf)


def _node_phase(node: HierNode, root: int) -> HierPhase:
    return HierPhase(("node", node.path), group_members(node), root, node)


def bcast_phases(tree: HierNode, root: int) -> list[HierPhase]:
    """Global phase order of the hierarchical broadcast: the root's
    leaf, then the groups on the root's ancestor chain bottom-up (each
    served by the leader of its root-side child), then the remaining
    groups top-down (served by their subtree leader), then the
    remaining leaves (served by their leaf leader)."""
    phases: list[HierPhase] = []
    root_leaf = _leaf_of(tree, root)
    if len(root_leaf.members) > 1:
        phases.append(_leaf_phase(root_leaf, root))
    internals = tree_internal_nodes(tree)
    chain = [n for n in internals if _is_prefix(n.path, root_leaf.path)]
    for node in sorted(chain, key=lambda n: -len(n.path)):   # bottom-up
        phases.append(_node_phase(node, _child_containing(node,
                                                          root).leader))
    for node in internals:                                   # top-down
        if not _is_prefix(node.path, root_leaf.path):
            phases.append(_node_phase(node, node.leader))
    for leaf in _tree_leaves(tree):
        if leaf is not root_leaf and len(leaf.members) > 1:
            phases.append(_leaf_phase(leaf, leaf.leader))
    return phases


def up_phases(tree: HierNode, root: int) -> tuple[list[HierPhase], int]:
    """Global phase order of the hierarchical reduce/gather, plus the
    *holder*: all leaves fold to their leaders, then the groups fold
    bottom-up to their subtree leaders — except the top group, which is
    rooted at the leader of its child subtree containing ``root`` so
    the final point-to-point forward (holder → root, when they differ)
    stays inside the root's top-level subtree."""
    phases: list[HierPhase] = []
    for leaf in _tree_leaves(tree):
        if len(leaf.members) > 1:
            phases.append(_leaf_phase(leaf, leaf.leader))
    holder = _child_containing(tree, root).leader
    internals = tree_internal_nodes(tree)
    for node in sorted(internals, key=lambda n: -len(n.path)):
        collect = holder if node is tree else node.leader
        phases.append(_node_phase(node, collect))
    return phases, holder


@dataclass(frozen=True, eq=False)
class ScatterPlan:
    """The hierarchical scatter's plan: the root's leaf phase, an
    optional hoist (root → top-phase server p2p carrying the bundle for
    every rank outside the root's leaf), the internal distribution
    phases top-down, and the remaining leaf phases."""

    root_leaf: Optional[HierPhase]
    hoist: Optional[tuple]        #: (src rank, dst rank) or None
    internals: tuple
    leaves: tuple


def scatter_phases(tree: HierNode, root: int) -> ScatterPlan:
    root_leaf = _leaf_of(tree, root)
    first = (_leaf_phase(root_leaf, root)
             if len(root_leaf.members) > 1 else None)
    holder = _child_containing(tree, root).leader
    hoist = (root, holder) if holder != root else None
    internals = []
    for node in tree_internal_nodes(tree):                   # top-down
        serve = holder if node is tree else node.leader
        internals.append(_node_phase(node, serve))
    leaves = tuple(_leaf_phase(leaf, leaf.leader)
                   for leaf in _tree_leaves(tree)
                   if leaf is not root_leaf and len(leaf.members) > 1)
    return ScatterPlan(first, hoist, tuple(internals), leaves)


@dataclass(frozen=True, eq=False)
class AllgatherPlan:
    """Up: every group allgathers its children's bundles bottom-up
    (leaves first).  Down: every group *below the top* re-broadcasts
    the full result top-down, then the leaves."""

    up: tuple
    down: tuple


def allgather_phases(tree: HierNode) -> AllgatherPlan:
    up: list[HierPhase] = []
    for leaf in _tree_leaves(tree):
        if len(leaf.members) > 1:
            up.append(_leaf_phase(leaf, leaf.leader))
    internals = tree_internal_nodes(tree)
    for node in sorted(internals, key=lambda n: -len(n.path)):
        up.append(_node_phase(node, node.leader))
    down: list[HierPhase] = []
    for node in internals:                                   # top-down
        if node is not tree:
            down.append(_node_phase(node, node.leader))
    for leaf in _tree_leaves(tree):
        if len(leaf.members) > 1:
            down.append(_leaf_phase(leaf, leaf.leader))
    return AllgatherPlan(tuple(up), tuple(down))


def _tree_leaves(tree: HierNode) -> list[HierNode]:
    leaves: list[HierNode] = []
    stack = [tree]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            leaves.append(node)
        else:
            stack.extend(node.children)
    leaves.sort(key=lambda n: n.seg)
    return leaves


def layout_from_segments(raw, paths=None):
    """Pure core of :func:`segment_layout`: from a per-rank segment-id
    list (and optionally the segments' switch-tree paths), compute
    ``(seg_of_rank, members, leaders, contiguous)`` with dense segment
    indices, ascending member lists, min-rank leaders, and the
    contiguous flag (true iff the hierarchy's recursive leader-ordered
    fold preserves MPI's canonical operand order)."""
    size = len(raw)
    segs = sorted(set(raw))
    seg_of_rank = tuple(segs.index(s) for s in raw)
    members = [[r for r in range(size) if seg_of_rank[r] == k]
               for k in range(len(segs))]
    leaders = [m[0] for m in members]
    tree = build_hier_tree(seg_of_rank, paths)
    contiguous = canonical_order(tree) == list(range(size))
    return seg_of_rank, members, leaders, contiguous


def segment_layout(comm):
    """The rank-invariant hierarchy of one communicator, from the
    cluster's discovery API: the :func:`layout_from_segments` tuple
    plus the dense segments' switch-tree paths.

    Single source of truth shared by :class:`HierState` (the execution
    side) and the auto policy's
    :func:`~repro.mpi.collective.policy.comm_topology` (the modelling
    side) — the policy's hier-withholding gate and the reduce's
    fallback condition must agree bit-for-bit or auto would select an
    implementation whose model assumes the other path.
    """
    cluster = comm.world.cluster
    raw = [cluster.segment_of(comm.addr_of(r)) for r in range(comm.size)]
    segs = sorted(set(raw))
    paths = tuple(cluster.segment_path(s) for s in segs)
    return (*layout_from_segments(raw, paths), paths)


class HierState:
    """Cached per-communicator hierarchy: the tree, leaders, channels.

    Built lazily on the first ``hier-mcast`` dispatch (every rank builds
    it at the same collective, so group joins pair up) and owned by the
    communicator — :meth:`repro.mpi.communicator.Communicator.free`
    closes the sub-channels, emitting the IGMP leaves that shrink the
    switches' snooped member sets.
    """

    def __init__(self, comm):
        from ...simnet.frame import mcast_mac

        layout = segment_layout(comm)
        #: dense segment index of every communicator rank
        self.seg_of_rank = list(layout[0])
        #: member ranks per dense segment, ascending
        self.members = layout[1]
        #: leader (smallest member rank) per dense segment
        self.leaders = layout[2]
        #: contiguous rank blocks — hierarchical folding is canonical
        self.contiguous = layout[3]
        #: switch-tree path per dense segment
        self.paths = layout[4]
        self.nsegments = len(self.members)
        if self.nsegments > MAX_HIER_SEGMENTS:
            raise ValueError(
                f"communicator spans {self.nsegments} segments; "
                f"hier-mcast supports at most {MAX_HIER_SEGMENTS}")
        self.my_seg = self.seg_of_rank[comm.rank]
        self.is_leader = comm.rank == self.leaders[self.my_seg]
        #: the collapsed hierarchy (leaves = occupied segments,
        #: internal nodes = leader groups; see :func:`build_hier_tree`)
        self.tree = build_hier_tree(self.seg_of_rank, self.paths)

        #: whether the one-time post-creation p2p barrier has run (see
        #: :func:`hier_ready`); trivially true with no sub-channels
        self.synced = self.nsegments <= 1
        #: this rank's leaf channel (None on single-segment comms and
        #: for ranks alone in their leaf — no phase ever uses a one-
        #: member leaf group, so joining it would be pure setup waste)
        self.seg_comm: Optional[SegmentComm] = None
        #: channels of every group this rank is a member of, by key
        self.comms: dict[tuple, SegmentComm] = {}
        #: this rank's leader-group chain, bottom-up (node, channel)
        self.chain: list[tuple[HierNode, SegmentComm]] = []
        self._slab: "tuple | None" = None   # (world, ctx) to release
        if self.nsegments > 1:
            internals = tree_internal_nodes(self.tree)
            keys = ([("leaf", s) for s in range(self.nsegments)]
                    + [("node", n.path) for n in internals])
            group_base, port_base = comm.world.alloc_hier_slab(
                comm.ctx, len(keys), HIER_GROUP_BASE, HIER_PORT_BASE)
            self._slab = (comm.world, comm.ctx)
            index = {key: i for i, key in enumerate(keys)}

            def make(key, members) -> SegmentComm:
                gi = index[key]
                return SegmentComm(comm, list(members),
                                   group=mcast_mac(group_base + gi),
                                   data_port=port_base + 2 * gi,
                                   scout_port=port_base + 2 * gi + 1)

            if len(self.members[self.my_seg]) > 1:
                self.seg_comm = make(("leaf", self.my_seg),
                                     self.members[self.my_seg])
                self.comms[("leaf", self.my_seg)] = self.seg_comm
            for node in sorted(internals, key=lambda n: -len(n.path)):
                gm = group_members(node)
                if comm.rank in gm:
                    sub = make(("node", node.path), gm)
                    self.comms[("node", node.path)] = sub
                    self.chain.append((node, sub))

    def close(self) -> None:
        for sub in self.comms.values():
            sub.close()
        self.comms = {}
        self.chain = []
        self.seg_comm = None
        if self._slab is not None:
            world, ctx = self._slab
            self._slab = None
            world.free_hier_slab(ctx)


def hier_state(comm) -> HierState:
    """The communicator's cached :class:`HierState` (built on first use
    by :func:`hier_ready` — prefer that inside collectives)."""
    if comm._hier is None:
        comm._hier = HierState(comm)
    return comm._hier


def hier_ready(comm) -> Generator:
    """Build-and-synchronize accessor used by the collectives.

    The sub-channels are created lazily on the first ``hier-mcast``
    dispatch — a *collective* moment, so every rank builds them during
    the same call.  Creation alone is not enough, though: a rank that
    enters its first phase early could unicast a scout toward a peer
    that has not yet opened its (buffered) scout socket, and the
    datagram would die as ``drops_no_listener``.  Mirroring
    ``Communicator._setup``, the building call therefore runs one p2p
    barrier after creation — afterwards every member's sockets exist
    and every IGMP join has been snooped along its uplink (FIFO per
    link), so phases may race freely.
    """
    st = hier_state(comm)
    if not st.synced:
        # Explicit flag, not "did this call build the state": a rank
        # that merely inspected hier_state() early (the discovery API)
        # must still join — and must not skip — the group's one
        # synchronization.  Every rank reaches its first hier-mcast
        # dispatch with synced=False, so the barrier is collective.
        from .barrier_p2p import barrier_mpich

        yield from barrier_mpich(comm)
        st.synced = True
    return st


def _phase_label(op: str, key: tuple) -> str:
    """Compact stable span label for one phase: ``bcast@leaf2``,
    ``gather@node0.1`` — derived from the plan key alone, so every rank
    of a phase names it identically."""
    kind, ident = key
    if kind == "leaf":
        return f"{op}@leaf{ident}"
    return f"{op}@node" + ".".join(str(p) for p in ident)


@contextmanager
def _phase_span(comm, label: str):
    """Bracket one hierarchical phase for the flight recorder.

    Duck-typed through ``stats.recorder`` like every producer-side hook:
    one attribute load and a branch when tracing is off.  The span is
    attributed to the *parent* communicator's host, so it lands inside
    the collective span the dispatcher opened on the same host.
    """
    rec = comm.host.stats.recorder
    if rec is None:
        yield
        return
    token = rec.phase_begin(comm.sim.now, comm.host.addr, label)
    try:
        yield
    finally:
        rec.phase_end(comm.sim.now, token)


# ----------------------------------------------------------------------
# the collectives
# ----------------------------------------------------------------------
@register("bcast", "hier-mcast")
def bcast_hier(comm, obj: Any, root: int = 0) -> Generator:
    """Recursive hierarchical broadcast (see :func:`bcast_phases`): the
    root streams to its leaf, the data climbs the root's leader chain
    (each trunk tier carries each payload frame once, and only
    per-*leader* control, not per-rank), then cascades down the other
    subtrees and leaves in parallel — repairs stay inside the losing
    group's switch subtree."""
    from ...core.segment import bcast_mcast_seg_nack

    st = yield from hier_ready(comm)
    if st.nsegments == 1:
        result = yield from bcast_mcast_seg_nack(comm, obj, root)
        return result
    for phase in bcast_phases(st.tree, root):
        if comm.rank in phase.members:
            sub = st.comms[phase.key]
            with _phase_span(comm, _phase_label("bcast", phase.key)):
                obj = yield from bcast_mcast_seg_nack(
                    sub, obj, sub.members.index(phase.root))
    return obj


@register("reduce", "hier-mcast")
def reduce_hier(comm, obj: Any, op, root: int = 0) -> Generator:
    """Recursive hierarchical reduce: leaves fold to their leaders,
    leader groups fold bottom-up (see :func:`up_phases`), and the
    holder forwards to the root point-to-point when they differ.

    Folding order is canonical (ascending absolute rank) whenever the
    hierarchy partitions the ranks into recursively contiguous blocks;
    otherwise non-commutative operators take the flat segmented reduce
    (see module docstring).  Returns the reduction at ``root``; ``None``
    elsewhere.
    """
    from ...core.mcast_reduce import reduce_mcast_seg_combine

    st = yield from hier_ready(comm)
    if st.nsegments == 1 or (not st.contiguous
                             and not getattr(op, "commutative", True)):
        result = yield from reduce_mcast_seg_combine(comm, obj, op, root)
        return result
    phases, holder = up_phases(st.tree, root)
    value = copy.copy(obj)
    for phase in phases:
        if comm.rank in phase.members:
            sub = st.comms[phase.key]
            with _phase_span(comm, _phase_label("reduce", phase.key)):
                out = yield from reduce_mcast_seg_combine(
                    sub, value, op, sub.members.index(phase.root))
            if comm.rank == phase.root:
                value = out
    result = value if comm.rank == holder else None
    if holder != root:
        if comm.rank == holder:
            yield from comm._send_coll(result, root, TAG_HIER)
            result = None
        elif comm.rank == root:
            result = yield from comm._recv_coll(holder, TAG_HIER)
    return result if comm.rank == root else None


@register("allreduce", "hier-mcast")
def allreduce_hier(comm, obj: Any, op) -> Generator:
    """Hierarchical allreduce: hier reduce to rank 0 (the leader of
    every subtree on its chain by construction), then hier broadcast of
    the result."""
    result = yield from reduce_hier(comm, obj, op, 0)
    result = yield from bcast_hier(comm, result, 0)
    return result


@register("barrier", "hier-mcast")
def barrier_hier(comm) -> Generator:
    """Recursive hierarchical barrier: scouts gather up every group of
    this rank's chain (leaf first), the top leader — global rank 0 —
    pivots, and data-less release multicasts cascade back down."""
    from ...core.scout import scout_gather_binary

    st = yield from hier_ready(comm)
    if st.nsegments == 1:
        from ...core.mcast_barrier import barrier_mcast

        yield from barrier_mcast(comm)
        return None
    stages: list[SegmentComm] = []
    if st.seg_comm is not None:
        stages.append(st.seg_comm)
    stages.extend(sub for _node, sub in st.chain)
    seqs: list[int] = []
    posted: list = []
    for i, sub in enumerate(stages):        # gather up, bottom-up
        channel = sub.mcast
        seq = channel.next_seq()
        seqs.append(seq)
        # post the release receive BEFORE scouting up (the paper's
        # readiness invariant, same as the flat barrier)
        posted.append(None if sub.rank == 0 else channel.post_data())
        with _phase_span(comm, f"barrier@up{i}"):
            yield from scout_gather_binary(sub, channel, seq, 0)
    for i in reversed(range(len(stages))):  # release down, top-down
        sub, channel = stages[i], stages[i].mcast
        with _phase_span(comm, f"barrier@down{i}"):
            if sub.rank == 0:
                yield from channel.send_data(None, 0, seqs[i],
                                             control=True)
            else:
                src, got_seq, _ = yield from channel.wait_data(posted[i])
                if got_seq != seqs[i] or src != 0:  # pragma: no cover
                    raise AssertionError(
                        f"rank {comm.rank} got stale hierarchical "
                        f"barrier release (seq {got_seq} != {seqs[i]})")
    return None


@register("scatter", "hier-mcast")
def scatter_hier(comm, objs, root: int = 0) -> Generator:
    """Hierarchical scatter (see :func:`scatter_phases`): the root
    serves its own leaf directly, hands the remaining elements to the
    top phase's server (a p2p hoist, skipped when the root serves the
    top itself), and per-subtree *bundles* cascade down the leader
    groups until each leaf leader scatters its segment.  Returns this
    rank's element of the root's sequence."""
    from ...core.mcast_scatter import scatter_mcast_seg_root

    st = yield from hier_ready(comm)
    if st.nsegments == 1:
        result = yield from scatter_mcast_seg_root(comm, objs, root)
        return result
    size = comm.size
    if comm.rank == root and (objs is None or len(objs) != size):
        raise ValueError(
            f"scatter root needs exactly {size} elements, "
            f"got {None if objs is None else len(objs)}")
    plan = scatter_phases(st.tree, root)
    root_seg = st.seg_of_rank[root]
    result = objs[root] if comm.rank == root else None

    if plan.root_leaf is not None and comm.rank in plan.root_leaf.members:
        sub = st.comms[plan.root_leaf.key]
        local = [objs[r] for r in plan.root_leaf.members] \
            if comm.rank == root else None
        with _phase_span(comm,
                         _phase_label("scatter", plan.root_leaf.key)):
            mine = yield from scatter_mcast_seg_root(
                sub, local, sub.members.index(root))
        if comm.rank != root:
            result = mine

    # the bundle: {rank: element} for every rank outside the root's leaf
    carried = None
    if comm.rank == root:
        carried = {r: objs[r] for r in range(size)
                   if st.seg_of_rank[r] != root_seg}
    if plan.hoist is not None:
        src, dst = plan.hoist
        if comm.rank == src:
            yield from comm._send_coll(carried, dst, TAG_HIER)
            carried = None
        elif comm.rank == dst:
            carried = yield from comm._recv_coll(src, TAG_HIER)

    for phase in plan.internals:
        if comm.rank not in phase.members:
            continue
        sub = st.comms[phase.key]
        local = None
        if comm.rank == phase.root:
            parts = []
            for member in phase.members:
                child = _child_containing(phase.node, member)
                parts.append({r: carried[r] for r in child.members
                              if r in carried})
            local = parts
        with _phase_span(comm, _phase_label("scatter", phase.key)):
            carried = yield from scatter_mcast_seg_root(
                sub, local, sub.members.index(phase.root))

    for phase in plan.leaves:
        if comm.rank in phase.members:
            sub = st.comms[phase.key]
            local = None
            if comm.rank == phase.root:
                local = [carried[r] for r in phase.members]
            with _phase_span(comm, _phase_label("scatter", phase.key)):
                result = yield from scatter_mcast_seg_root(
                    sub, local, sub.members.index(phase.root))
    if result is None and carried is not None:
        # a single-member leaf outside the root's: the element arrived
        # as this rank's one-entry bundle from its lowest leader group
        result = carried.get(comm.rank)
    return result


@register("gather", "hier-mcast")
def gather_hier(comm, obj: Any, root: int = 0) -> Generator:
    """Hierarchical gather: the reverse of the scatter — leaves gather
    to their leaders, leader groups gather bundles bottom-up (see
    :func:`up_phases`), and the holder forwards the assembled list to
    the root when they differ.  Returns the rank-ordered list at
    ``root``; ``None`` elsewhere."""
    from ...core.mcast_gather import gather_mcast_seg_root_follow

    st = yield from hier_ready(comm)
    if st.nsegments == 1:
        result = yield from gather_mcast_seg_root_follow(comm, obj, root)
        return result
    phases, holder = up_phases(st.tree, root)
    carried = {comm.rank: obj}
    for phase in phases:
        if comm.rank in phase.members:
            sub = st.comms[phase.key]
            with _phase_span(comm, _phase_label("gather", phase.key)):
                out = yield from gather_mcast_seg_root_follow(
                    sub, carried, sub.members.index(phase.root))
            if comm.rank == phase.root:
                merged: dict = {}
                for part in out:
                    merged.update(part)
                carried = merged
    if holder != root:
        if comm.rank == holder:
            yield from comm._send_coll(carried, root, TAG_HIER)
        elif comm.rank == root:
            carried = yield from comm._recv_coll(holder, TAG_HIER)
    if comm.rank == root:
        return [carried[r] for r in range(comm.size)]
    return None


@register("allgather", "hier-mcast")
def allgather_hier(comm, obj: Any) -> Generator:
    """Hierarchical allgather (see :func:`allgather_phases`): every
    group allgathers its children's bundles bottom-up — each trunk tier
    carries each contribution once — then the groups below the top
    re-broadcast the assembled result top-down and the leaf leaders
    deliver it segment-locally."""
    from ...core.segment import (allgather_mcast_seg_paced,
                                 bcast_mcast_seg_nack)

    st = yield from hier_ready(comm)
    if st.nsegments == 1:
        result = yield from allgather_mcast_seg_paced(comm, obj)
        return result
    plan = allgather_phases(st.tree)
    carried = {comm.rank: obj}
    for phase in plan.up:
        if comm.rank in phase.members:
            sub = st.comms[phase.key]
            with _phase_span(
                    comm, _phase_label("allgather-up", phase.key)):
                outs = yield from allgather_mcast_seg_paced(sub, carried)
            merged: dict = {}
            for part in outs:
                merged.update(part)
            carried = merged
    for phase in plan.down:
        if comm.rank in phase.members:
            sub = st.comms[phase.key]
            payload = carried if comm.rank == phase.root else None
            with _phase_span(
                    comm, _phase_label("allgather-down", phase.key)):
                carried = yield from bcast_mcast_seg_nack(
                    sub, payload, sub.members.index(phase.root))
    return [carried[r] for r in range(comm.size)]
