"""Hierarchical multicast collectives for tiered fabrics — ``hier-mcast``.

On a multi-segment fabric (:mod:`repro.simnet.fabric`) the flat
segmented-multicast collectives pay the trunk for *every* control
message: each NACK report, decision, and arming scout of every rank in a
remote segment crosses the backbone twice.  Following Karonis &
de Supinski's multilevel topology-aware collectives (MPICH-G2) and
Träff's multi-lane decomposition, this module re-expresses each
collective as **per-segment phases bridged by segment leaders**:

* **discovery** — every rank asks the cluster's topology API
  (:meth:`~repro.simnet.topology.Cluster.segment_of` via
  ``comm.world.cluster``) for the segment of each communicator rank.
  The mapping is identical everywhere, so leader election is local and
  free: the leader of a segment is its smallest communicator rank;
* **per-segment channels** — each segment's members share a private
  :class:`~repro.core.channel.McastChannel` on a segment-scoped
  multicast group, and the leaders share one more ("the leaders'
  group").  IGMP snooping confines a segment group's frames to its own
  leaf switch, and leaders'-group frames cross each trunk exactly once;
* **engine reuse** — intra-segment and leader phases run the *existing*
  collectives (:func:`~repro.core.segment.bcast_mcast_seg_nack`,
  :func:`~repro.core.mcast_reduce.reduce_mcast_seg_combine`,
  :func:`~repro.core.mcast_barrier.barrier_mcast`) over a
  :class:`SegmentComm` — a segment-local *view* of the communicator
  that renumbers member ranks densely and carries its own channel, so
  the round engine (serve/follow, NACK repair, pacing) needs no changes
  and repairs for a loss inside a segment never touch a trunk.

Registered as ``"hier-mcast"`` for ``bcast`` / ``reduce`` /
``allreduce`` / ``barrier``.  On a flat cluster (or a communicator whose
members all share one segment) every entry degrades to its flat
segmented counterpart, so ``hier-mcast`` is always safe to select; the
payload- and topology-aware auto policy
(:mod:`repro.mpi.collective.policy`) picks it per call whenever the
modeled frame count — trunk crossings and expected loss repairs
included — beats the flat engine and the p2p trees.

**Reduction order.**  The hierarchical reduce folds each segment in
ascending rank order and then folds segment partials in ascending
leader-rank order — exactly MPI's canonical order whenever segments
partition the communicator into contiguous rank blocks (the natural
layout of ``run_spmd`` on a ``tree:SxH`` cluster).  For non-contiguous
layouts the grouping would reorder operands, so non-commutative
operators fall back to the flat (canonical-order) segmented reduce.

Dispatch safety (paper §4): all phases derive from rank-invariant state
(topology, communicator membership), every rank enters the same phases
of the same channels in the same order, and the per-call "auto" choice
is announced down the scout tree before any traffic — all ranks dispatch
identically.
"""

from __future__ import annotations

import copy
from typing import Any, Generator, Optional

from .registry import register
from .tags import TAG_HIER

__all__ = ["SegmentComm", "HierState", "layout_from_segments",
           "segment_layout", "hier_state", "hier_ready", "bcast_hier",
           "reduce_hier", "allreduce_hier", "barrier_hier",
           "HIER_GROUP_BASE", "HIER_PORT_BASE", "MAX_HIER_SEGMENTS"]

#: group-id space for hierarchical sub-channels, above the
#: per-communicator ids at :data:`repro.core.channel.GROUP_ID_BASE`
HIER_GROUP_BASE = 1 << 17

#: UDP port space for hierarchical sub-channels (4 ports per ctx:
#: segment data/scout, leaders data/scout), clear of the per-ctx bases
#: at 20000/40000 and the 49152+ ephemeral range
HIER_PORT_BASE = 60000

#: segments one communicator may span (bounds the per-ctx group-id slab)
MAX_HIER_SEGMENTS = 64


class SegmentComm:
    """A segment-local *view* of a communicator.

    Renumbers ``members`` (a sorted subset of the parent's ranks) to
    dense local ranks 0..k-1 and exposes exactly the surface the round
    engine and the flat multicast collectives need (``rank`` / ``size``
    / ``addr_of`` / ``host`` / ``sim`` / ``mcast``), with its own
    :class:`~repro.core.channel.McastChannel` on a private group.  The
    channel's sequence numbers advance per-view, so phases on different
    segments never cross-match.
    """

    def __init__(self, comm, members: list[int], group: int,
                 data_port: int, scout_port: int):
        from ...core.channel import McastChannel  # avoid import cycle

        if members != sorted(members):
            raise ValueError(f"segment members must be sorted, got "
                             f"{members}")
        self.parent = comm
        self.members = list(members)
        self.rank = self.members.index(comm.rank)
        self.ranks = [comm.addr_of(r) for r in self.members]
        self.host = comm.host
        self.sim = comm.sim
        self.mcast = McastChannel(self, group=group, data_port=data_port,
                                  scout_port=scout_port)

    @property
    def size(self) -> int:
        return len(self.members)

    def addr_of(self, rank: int) -> int:
        return self.ranks[rank]

    def close(self) -> None:
        self.mcast.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SegmentComm rank={self.rank}/{self.size} "
                f"of ctx={self.parent.ctx}>")


def layout_from_segments(raw):
    """Pure core of :func:`segment_layout`: from a per-rank segment-id
    list, compute ``(seg_of_rank, members, leaders, contiguous)`` with
    dense segment indices, ascending member lists, min-rank leaders,
    and the contiguous-blocks flag (true iff folding segments in leader
    order preserves MPI's canonical operand order)."""
    size = len(raw)
    segs = sorted(set(raw))
    seg_of_rank = tuple(segs.index(s) for s in raw)
    members = [[r for r in range(size) if seg_of_rank[r] == k]
               for k in range(len(segs))]
    leaders = [m[0] for m in members]
    concat: list[int] = []
    for k in sorted(range(len(segs)), key=lambda k: leaders[k]):
        concat.extend(members[k])
    contiguous = concat == list(range(size))
    return seg_of_rank, members, leaders, contiguous


def segment_layout(comm):
    """The rank-invariant hierarchy of one communicator, from the
    cluster's discovery API (see :func:`layout_from_segments` for the
    returned tuple).

    Single source of truth shared by :class:`HierState` (the execution
    side) and the auto policy's
    :func:`~repro.mpi.collective.policy.comm_topology` (the modelling
    side) — the policy's hier-withholding gate and the reduce's
    fallback condition must agree bit-for-bit or auto would select an
    implementation whose model assumes the other path.
    """
    cluster = comm.world.cluster
    return layout_from_segments(
        [cluster.segment_of(comm.addr_of(r)) for r in range(comm.size)])


class HierState:
    """Cached per-communicator hierarchy: segment map, leaders, channels.

    Built lazily on the first ``hier-mcast`` dispatch (every rank builds
    it at the same collective, so group joins pair up) and owned by the
    communicator — :meth:`repro.mpi.communicator.Communicator.free`
    closes the sub-channels, emitting the IGMP leaves that shrink the
    switches' snooped member sets.
    """

    def __init__(self, comm):
        from ...simnet.frame import mcast_mac

        layout = segment_layout(comm)
        #: dense segment index of every communicator rank
        self.seg_of_rank = list(layout[0])
        #: member ranks per dense segment, ascending
        self.members = layout[1]
        #: leader (smallest member rank) per dense segment
        self.leaders = layout[2]
        #: contiguous rank blocks — hierarchical folding is canonical
        self.contiguous = layout[3]
        self.nsegments = len(self.members)
        if self.nsegments > MAX_HIER_SEGMENTS:
            raise ValueError(
                f"communicator spans {self.nsegments} segments; "
                f"hier-mcast supports at most {MAX_HIER_SEGMENTS}")
        self.my_seg = self.seg_of_rank[comm.rank]
        self.is_leader = comm.rank == self.leaders[self.my_seg]
        #: leaders in ascending rank order — the leaders' phase folds and
        #: announces in this order
        self.lead_members = sorted(self.leaders)

        #: whether the one-time post-creation p2p barrier has run (see
        #: :func:`hier_ready`); trivially true with no sub-channels
        self.synced = self.nsegments <= 1
        self.seg_comm: Optional[SegmentComm] = None
        self.lead_comm: Optional[SegmentComm] = None
        if self.nsegments > 1:
            base_group = HIER_GROUP_BASE + comm.ctx * (MAX_HIER_SEGMENTS + 1)
            base_port = HIER_PORT_BASE + 4 * comm.ctx
            self.seg_comm = SegmentComm(
                comm, self.members[self.my_seg],
                group=mcast_mac(base_group + 1 + self.my_seg),
                data_port=base_port, scout_port=base_port + 1)
            if self.is_leader:
                self.lead_comm = SegmentComm(
                    comm, self.lead_members, group=mcast_mac(base_group),
                    data_port=base_port + 2, scout_port=base_port + 3)

    def close(self) -> None:
        if self.seg_comm is not None:
            self.seg_comm.close()
            self.seg_comm = None
        if self.lead_comm is not None:
            self.lead_comm.close()
            self.lead_comm = None


def hier_state(comm) -> HierState:
    """The communicator's cached :class:`HierState` (built on first use
    by :func:`hier_ready` — prefer that inside collectives)."""
    if comm._hier is None:
        comm._hier = HierState(comm)
    return comm._hier


def hier_ready(comm) -> Generator:
    """Build-and-synchronize accessor used by the collectives.

    The sub-channels are created lazily on the first ``hier-mcast``
    dispatch — a *collective* moment, so every rank builds them during
    the same call.  Creation alone is not enough, though: a rank that
    enters its first phase early could unicast a scout toward a peer
    that has not yet opened its (buffered) scout socket, and the
    datagram would die as ``drops_no_listener``.  Mirroring
    ``Communicator._setup``, the building call therefore runs one p2p
    barrier after creation — afterwards every member's sockets exist
    and every IGMP join has been snooped along its uplink (FIFO per
    link), so phases may race freely.
    """
    st = hier_state(comm)
    if not st.synced:
        # Explicit flag, not "did this call build the state": a rank
        # that merely inspected hier_state() early (the discovery API)
        # must still join — and must not skip — the group's one
        # synchronization.  Every rank reaches its first hier-mcast
        # dispatch with synced=False, so the barrier is collective.
        from .barrier_p2p import barrier_mpich

        yield from barrier_mpich(comm)
        st.synced = True
    return st


# ----------------------------------------------------------------------
# the collectives
# ----------------------------------------------------------------------
@register("bcast", "hier-mcast")
def bcast_hier(comm, obj: Any, root: int = 0) -> Generator:
    """Three-phase hierarchical broadcast.

    1. the root streams to its own segment (segment group, round
       engine);
    2. the root's segment leader streams to the other leaders (leaders'
       group — each trunk carries each payload frame once, and only the
       per-*leader* control, not per-rank);
    3. every other leader streams to its segment (segment groups, in
       parallel — repairs stay inside the losing segment).
    """
    from ...core.segment import bcast_mcast_seg_nack

    st = yield from hier_ready(comm)
    if st.nsegments == 1:
        result = yield from bcast_mcast_seg_nack(comm, obj, root)
        return result
    root_seg = st.seg_of_rank[root]
    if st.my_seg == root_seg and st.seg_comm.size > 1:
        local_root = st.members[root_seg].index(root)
        obj = yield from bcast_mcast_seg_nack(st.seg_comm, obj,
                                              local_root)
    if st.is_leader:
        lead_root = st.lead_members.index(st.leaders[root_seg])
        obj = yield from bcast_mcast_seg_nack(st.lead_comm, obj,
                                              lead_root)
    if st.my_seg != root_seg and st.seg_comm.size > 1:
        # the segment leader is its smallest member = local rank 0
        obj = yield from bcast_mcast_seg_nack(st.seg_comm, obj, 0)
    return obj


@register("reduce", "hier-mcast")
def reduce_hier(comm, obj: Any, op, root: int = 0) -> Generator:
    """Hierarchical reduce: segments fold to their leaders, leaders fold
    across the trunk, the root's leader forwards to the root.

    Folding order is canonical (ascending absolute rank) whenever the
    segments are contiguous rank blocks; otherwise non-commutative
    operators take the flat segmented reduce (see module docstring).
    Returns the reduction at ``root``; ``None`` elsewhere.
    """
    from ...core.mcast_reduce import reduce_mcast_seg_combine

    st = yield from hier_ready(comm)
    if st.nsegments == 1 or (not st.contiguous
                             and not getattr(op, "commutative", True)):
        result = yield from reduce_mcast_seg_combine(comm, obj, op, root)
        return result
    # phase 1: intra-segment reduce to the leader (local rank 0)
    partial = copy.copy(obj)
    if st.seg_comm.size > 1:
        partial = yield from reduce_mcast_seg_combine(st.seg_comm, obj,
                                                      op, 0)
    # phase 2: leaders reduce the partials; rooted at the root's leader
    root_leader = st.leaders[st.seg_of_rank[root]]
    result = None
    if st.is_leader:
        lead_root = st.lead_members.index(root_leader)
        result = yield from reduce_mcast_seg_combine(
            st.lead_comm, partial, op, lead_root)
    # phase 3: hand the result to the root if it is not its own leader
    if root_leader != root:
        if comm.rank == root_leader:
            yield from comm._send_coll(result, root, TAG_HIER)
            result = None
        elif comm.rank == root:
            result = yield from comm._recv_coll(root_leader, TAG_HIER)
    return result if comm.rank == root else None


@register("allreduce", "hier-mcast")
def allreduce_hier(comm, obj: Any, op) -> Generator:
    """Hierarchical allreduce: hier reduce to rank 0 (the leader of its
    segment by construction), then hier broadcast of the result."""
    result = yield from reduce_hier(comm, obj, op, 0)
    result = yield from bcast_hier(comm, result, 0)
    return result


@register("barrier", "hier-mcast")
def barrier_hier(comm) -> Generator:
    """Hierarchical barrier: segments gather scouts to their leaders,
    leaders run the multicast barrier over the trunk, then each leader
    releases its segment with one data-less multicast."""
    from ...core.mcast_barrier import barrier_mcast
    from ...core.scout import scout_gather_binary

    st = yield from hier_ready(comm)
    if st.nsegments == 1:
        yield from barrier_mcast(comm)
        return None
    segc = st.seg_comm
    channel = segc.mcast
    seq = channel.next_seq()
    posted = None
    if segc.size > 1:
        if segc.rank != 0:
            # post the release receive BEFORE scouting up (the paper's
            # readiness invariant, same as the flat barrier)
            posted = channel.post_data()
        yield from scout_gather_binary(segc, channel, seq, 0)
    if st.is_leader:
        yield from barrier_mcast(st.lead_comm)
    if segc.size > 1:
        if segc.rank == 0:
            yield from channel.send_data(None, 0, seq, control=True)
        else:
            src, got_seq, _ = yield from channel.wait_data(posted)
            if got_seq != seq or src != 0:  # pragma: no cover - guard
                raise AssertionError(
                    f"rank {comm.rank} got stale hierarchical barrier "
                    f"release (seq {got_seq} != {seq})")
    return None
