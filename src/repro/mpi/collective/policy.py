"""Payload-, topology- and loss-aware collective selection — ``"auto"``.

The registry's static :data:`~repro.mpi.collective.registry.DEFAULTS`
table answers "which algorithm?" once per communicator; real MPI
libraries answer it **per call**, from the message size, the process
count, and the machine (MPICH's size-thresholded algorithm tables; the
topology-aware multilevel selection of Karonis & de Supinski).  This
module is that policy layer:

* ``comm.use_collectives(bcast="auto")`` marks an op for per-call
  resolution; :func:`resolve_auto` then picks among the op's p2p
  baseline, its flat segmented-multicast implementation
  (:data:`AUTO_CHOICES`), and — on a multi-segment fabric — the
  hierarchical ``hier-mcast`` family (:data:`HIER_AUTO`,
  :mod:`repro.mpi.collective.hier`) each time the collective is invoked;
* :meth:`~repro.mpi.communicator.Communicator.set_collective_policy`
  installs a *hook* that replaces the static table wholesale — it sees
  every dispatch and may return any registered name (or ``"auto"`` to
  fall through to the payload-aware resolution).

The decision metric generalizes the paper's §3 currency: **modeled
serializations** — closed-form Ethernet frame counts
(:func:`p2p_frame_estimate` / :func:`seg_frame_estimate`), plus

* **trunk crossings** on a tiered fabric (:func:`comm_topology` reads
  the cluster's discovery API; each crossing re-serializes the frame on
  a shared switch-to-switch link, the models live in
  :mod:`repro.analysis.framecount`), and
* **expected NACK-repair traffic** from the platform's calibrated
  multicast loss rate (``NetParams.loss``,
  :func:`~repro.analysis.framecount.expected_seg_repair_frames`) —
  lossy platforms shift the crossover back toward the p2p trees and
  toward the hierarchical variants whose repairs stay off the trunks.

Small payloads keep the p2p trees (the multicast
scout/report/decision control tax dominates); large payloads switch to
the segmented streams; multi-segment fabrics switch to ``hier-mcast``
when the trunk savings beat the extra per-segment phases.  ``reduce``
remains the documented exception on flat clusters: many-to-one traffic
gains no frame advantage from multicast at any size, so auto keeps the
binomial tree there and the segmented reduce exists for lossy-transport
scenarios and as the allreduce building block.

**Consistency.**  Every rank must dispatch the same implementation or
the collective deadlocks (paper §4 safety).  Topology and loss inputs
are rank-invariant (the shared cluster object and ``NetParams``), so
they never break the existing protocol: for ops whose payload every
rank holds (``reduce``, ``allreduce``) resolution stays local and free;
for rooted ops (``bcast``, ``scatter``) the root announces its choice
down the binomial scout tree
(:func:`~repro.core.scout.scout_scatter_binary`) — ``N-1`` scout-sized
frames, ``log2 N`` deep, independent of the payload.  ``allgather``
anchors the announcement at rank 0 so heterogeneous contribution sizes
can never split the group's decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..datatypes import payload_bytes

__all__ = ["AUTO", "AUTO_CHOICES", "HIER_AUTO", "POLICY_WAIVERS",
           "TopoInfo", "comm_topology", "auto_impl",
           "modeled_frame_costs", "p2p_frame_estimate",
           "seg_frame_estimate", "hier_frame_estimate", "resolve_auto"]

#: the pseudo-implementation name accepted by ``use_collectives``
AUTO = "auto"

#: op -> (p2p baseline, segmented multicast implementation)
AUTO_CHOICES: dict[str, tuple[str, str]] = {
    "bcast": ("p2p-binomial", "mcast-seg-nack"),
    "reduce": ("p2p-binomial", "mcast-seg-combine"),
    "allreduce": ("p2p-reduce-bcast", "mcast-seg-nack"),
    "scatter": ("p2p-binomial", "mcast-seg-root"),
    "gather": ("p2p-binomial", "mcast-seg-root-follow"),
    "allgather": ("p2p-gather-bcast", "mcast-seg-paced"),
}

#: ops with a hierarchical candidate on multi-segment fabrics
HIER_AUTO: dict[str, str] = {
    "bcast": "hier-mcast",
    "reduce": "hier-mcast",
    "allreduce": "hier-mcast",
    "scatter": "hier-mcast",
    "gather": "hier-mcast",
    "allgather": "hier-mcast",
}

#: registered ops *deliberately* outside the auto policy, with the
#: reason on record.  The REG01 lint rule requires every registered op
#: to appear in AUTO_CHOICES or here, so a future collective cannot
#: silently ship without a selection story — and flags a waiver as
#: stale the moment its op gains an AUTO_CHOICES entry (or stops being
#: registered).  These are the ROADMAP's tracked gaps, not oversights.
POLICY_WAIVERS: dict[str, str] = {
    "barrier": "latency-bound and payload-free: the serialization "
               "currency of modeled_frame_costs cannot rank its "
               "candidates, so selection stays static (DEFAULTS or an "
               "explicit use_collectives choice)",
    "alltoall": "only p2p-pairwise is registered; no segmented-"
                "multicast rival to choose between yet (ROADMAP)",
    "scan": "prefix dependence serializes the chain; no multicast "
            "candidate exists (ROADMAP)",
    "exscan": "shifted scan; same serial-chain story as scan (ROADMAP)",
    "reduce_scatter": "registered as a reduce+scatter composition; a "
                      "dedicated segmented path is a ROADMAP item",
}


@dataclass(frozen=True)
class TopoInfo:
    """Rank-invariant fabric shape of one communicator.

    ``seg_of_rank`` maps every communicator rank to a dense segment
    index; ``contiguous`` records whether the segments partition the
    ranks into contiguous blocks (the layout under which hierarchical
    reduction preserves MPI's canonical operand order — see
    :mod:`repro.mpi.collective.hier`).
    """

    seg_of_rank: tuple[int, ...]
    contiguous: bool
    #: switch-tree path per dense segment (``None`` = the two-tier
    #: default where every segment hangs directly off the core); feeds
    #: the multi-level trunk-distance models of
    #: :mod:`repro.analysis.framecount`
    paths: "tuple[tuple, ...] | None" = None

    @property
    def nsegments(self) -> int:
        return len(set(self.seg_of_rank))

    @property
    def seg_sizes(self) -> tuple[int, ...]:
        sizes = [0] * self.nsegments
        for s in self.seg_of_rank:
            sizes[s] += 1
        return tuple(sizes)


def comm_topology(comm) -> Optional[TopoInfo]:
    """The communicator's :class:`TopoInfo`, or ``None`` when every
    member shares one switch segment (flat cluster, or a
    sub-communicator confined to one leaf).

    Derives from the same :func:`~repro.mpi.collective.hier.
    segment_layout` the ``hier-mcast`` implementations execute against,
    so the policy's model and the impl's behaviour cannot drift; the
    (static) answer is cached on the communicator.
    """
    if comm._topo_info is not False:
        return comm._topo_info
    info = None
    if comm.world.cluster.nsegments > 1:
        from .hier import segment_layout

        dense, _members, _leaders, contiguous, paths = \
            segment_layout(comm)
        if len(set(dense)) > 1:
            info = TopoInfo(seg_of_rank=dense, contiguous=contiguous,
                            paths=paths)
    comm._topo_info = info
    return info


def _p2p_msg_frames(params, nbytes: int) -> int:
    """Frames of one p2p message (payload + MPI envelope)."""
    return params.frames_for(nbytes + params.mpi_header)


def _steps(size: int) -> int:
    """Sequential steps of a binomial tree: ``ceil(log2 size)``."""
    return max(1, (size - 1).bit_length())


def p2p_frame_estimate(op: str, nbytes: int, size: int, params,
                       topo: Optional[TopoInfo] = None,
                       root: int = 0) -> float:
    """Modeled serializations of the op's p2p baseline.

    ``nbytes`` is the op's natural payload: the broadcast/reduce
    message, the scatter's *total* sequence, the gather's and
    allgather's per-rank contribution.  With ``topo``, cross-segment
    tree edges additionally pay their trunk crossings (multi-level
    distances when ``topo.paths`` carries the switch-tree shape).

    Known approximations: a *non-commutative* reduce at a nonzero root
    pays one extra payload forward (the tree reduces to rank 0 and
    forwards, see :mod:`repro.mpi.collective.reduce_p2p`) that is not
    modeled here; the scatter's and gather's per-edge subtree shares
    are averaged as half the payload for the trunk term.  Both are
    second-order near the crossover.
    """
    from ...analysis.framecount import (binomial_tree_trunk_hops,
                                        model_p2p_tree_frames,
                                        model_p2p_tree_trunk_frames)

    if size < 2:
        return 0
    if op in ("bcast", "reduce"):
        # every tree edge carries the whole payload once
        total = model_p2p_tree_frames(params, size, nbytes)
        if topo is not None:
            total += model_p2p_tree_trunk_frames(
                params, topo.seg_of_rank, root, nbytes, topo.paths)
        return total
    if op == "allreduce":
        total = 2 * model_p2p_tree_frames(params, size, nbytes)
        if topo is not None:
            total += 2 * model_p2p_tree_trunk_frames(
                params, topo.seg_of_rank, 0, nbytes, topo.paths)
        return total
    if op == "scatter":
        # level i has 2^(i-1) edges, each forwarding a subtree share of
        # ~nbytes/2^i (exact for power-of-two sizes, close otherwise)
        total = 0
        for i in range(1, _steps(size) + 1):
            total += min(2 ** (i - 1), size - 1) * _p2p_msg_frames(
                params, nbytes >> i)
        if topo is not None:
            total += (binomial_tree_trunk_hops(topo.seg_of_rank, root,
                                               topo.paths)
                      * _p2p_msg_frames(params, nbytes // 2))
        return total
    if op == "gather":
        # each contribution crosses at least one edge; inner edges
        # re-forward growing subtree batches (averaged as one extra
        # payload-sized hop for the trunk term)
        total = (size - 1) * _p2p_msg_frames(params, nbytes)
        if topo is not None:
            total += (binomial_tree_trunk_hops(topo.seg_of_rank, root,
                                               topo.paths)
                      * _p2p_msg_frames(params, nbytes * size // 2))
        return total
    if op == "allgather":
        # gather of per-rank contributions (lower bound: each crosses
        # one edge) + broadcast of the full list down the tree
        total = ((size - 1) * _p2p_msg_frames(params, nbytes)
                 + (size - 1) * _p2p_msg_frames(params, nbytes * size))
        if topo is not None:
            hops = binomial_tree_trunk_hops(topo.seg_of_rank, 0,
                                            topo.paths)
            total += hops * (_p2p_msg_frames(params, nbytes * size // 2)
                             + _p2p_msg_frames(params, nbytes * size))
        return total
    raise KeyError(f"no p2p frame estimate for collective {op!r}")


def seg_frame_estimate(op: str, nbytes: int, size: int, params,
                       topo: Optional[TopoInfo] = None,
                       root: int = 0) -> float:
    """Modeled serializations of the op's flat segmented-multicast impl:
    the shared loss-free closed forms of
    :mod:`repro.analysis.framecount` (the same ones the benches assert
    against the simulator), plus the expected repair traffic at
    ``params.loss`` and — with ``topo`` — the trunk crossings of every
    stream (multi-level distances when ``topo.paths`` is present)."""
    from ...analysis.framecount import (expected_seg_repair_frames,
                                        model_seg_allgather_trunk_frames,
                                        model_seg_allreduce_frames,
                                        model_seg_bcast_trunk_frames,
                                        model_seg_reduce_frames,
                                        model_seg_reduce_trunk_frames,
                                        model_seg_scatter_frames,
                                        model_seg_scatter_trunk_frames)
    from ...core.segment import plan_transport, seg_nack_frame_count

    if size < 2:
        return 0
    nsegs = plan_transport(nbytes, params).nsegs
    loss = getattr(params, "loss", 0.0)
    if op == "bcast":
        total = (seg_nack_frame_count(size, nsegs)
                 + expected_seg_repair_frames(size, nsegs, loss))
        if topo is not None:
            total += model_seg_bcast_trunk_frames(topo.seg_of_rank, root,
                                                  nsegs, topo.paths)
        return total
    if op in ("reduce", "gather"):
        # one engine stream per non-root contributor (the gather runs
        # the same turn loop, collecting instead of folding)
        total = (model_seg_reduce_frames(size, nsegs)
                 + (size - 1) * expected_seg_repair_frames(
                     size, nsegs, loss, receivers=1))
        if topo is not None:
            total += model_seg_reduce_trunk_frames(topo.seg_of_rank,
                                                   root, nsegs,
                                                   topo.paths)
        return total
    if op == "allreduce":
        total = (model_seg_allreduce_frames(size, nsegs)
                 + (size - 1) * expected_seg_repair_frames(
                     size, nsegs, loss, receivers=1)
                 + expected_seg_repair_frames(size, nsegs, loss))
        if topo is not None:
            total += (model_seg_reduce_trunk_frames(topo.seg_of_rank, 0,
                                                    nsegs, topo.paths)
                      + model_seg_bcast_trunk_frames(topo.seg_of_rank,
                                                     0, nsegs,
                                                     topo.paths))
        return total
    if op == "scatter":
        # one global stream of every non-root rank's share
        share = plan_transport(-(-nbytes // size), params).nsegs
        total_segs = (size - 1) * share
        total = (model_seg_scatter_frames(size, [share] * (size - 1))
                 + expected_seg_repair_frames(size, total_segs, loss,
                                              receivers=1))
        if topo is not None:
            total += model_seg_scatter_trunk_frames(
                topo.seg_of_rank, root, total_segs, topo.paths)
        return total
    if op == "allgather":
        # paced ready round + one engine stream per rank
        total = (2 * (size - 1)
                 + size * seg_nack_frame_count(size, nsegs)
                 + size * expected_seg_repair_frames(size, nsegs, loss))
        if topo is not None:
            total += model_seg_allgather_trunk_frames(
                topo.seg_of_rank, nsegs, topo.paths)
        return total
    raise KeyError(f"no segmented frame estimate for collective {op!r}")


def hier_frame_estimate(op: str, nbytes: int, size: int, params,
                        topo: TopoInfo, root: int = 0) -> float:
    """Modeled serializations of the ``hier-mcast`` implementation on
    ``topo``: host frames plus trunk crossings of every phase of the
    recursive plan (:func:`~repro.analysis.framecount.
    model_hier_frames` walks the same phase lists the implementation
    executes), and the expected per-phase repair traffic — repairs
    never leave the losing phase's switch subtree, which is most of
    the hierarchy's win under loss."""
    from ...analysis.framecount import model_hier_frames

    if op not in HIER_AUTO:
        raise KeyError(f"no hierarchical estimate for collective {op!r}; "
                       f"hier-capable ops: {sorted(HIER_AUTO)}")
    if size < 2:
        return 0
    frames, trunk = model_hier_frames(
        op, topo.seg_of_rank, root if op != "allreduce" else 0, nbytes,
        params, topo.paths, loss=getattr(params, "loss", 0.0))
    return frames + trunk


def modeled_frame_costs(op: str, nbytes: int, size: int, params,
                        topo: Optional[TopoInfo] = None, root: int = 0,
                        hier_ok: bool = True) -> dict[str, float]:
    """Modeled serializations of every candidate implementation for one
    call — the table :func:`auto_impl` takes the argmin of (and the
    fabric bench audits against the simulator)."""
    try:
        p2p_name, seg_name = AUTO_CHOICES[op]
    except KeyError:
        raise KeyError(
            f"no auto selection policy for collective {op!r}; "
            f"auto-capable ops: {sorted(AUTO_CHOICES)}") from None
    from .hier import MAX_HIER_SEGMENTS

    costs = {
        seg_name: seg_frame_estimate(op, nbytes, size, params, topo,
                                     root),
        p2p_name: p2p_frame_estimate(op, nbytes, size, params, topo,
                                     root),
    }
    if (hier_ok and topo is not None
            and 1 < topo.nsegments <= MAX_HIER_SEGMENTS
            and op in HIER_AUTO):
        costs[HIER_AUTO[op]] = hier_frame_estimate(op, nbytes, size,
                                                   params, topo, root)
    return costs


def auto_impl(op: str, nbytes: int, size: int, params,
              topo: Optional[TopoInfo] = None, root: int = 0,
              hier_ok: bool = True) -> str:
    """Pick the implementation for one call: the candidate with the
    lowest modeled serialization count.  Ties keep the historical
    preference order — segmented multicast over hierarchical over the
    p2p baseline — so on a flat, loss-free cluster the choice is
    exactly PR 3's "segmented iff its frame estimate is at or below
    p2p's"."""
    try:
        p2p_name, seg_name = AUTO_CHOICES[op]
    except KeyError:
        raise KeyError(
            f"no auto selection policy for collective {op!r}; "
            f"auto-capable ops: {sorted(AUTO_CHOICES)}") from None
    if size < 2:
        return p2p_name
    costs = modeled_frame_costs(op, nbytes, size, params, topo, root,
                                hier_ok)
    order = {seg_name: 0, HIER_AUTO.get(op, "hier-mcast"): 1,
             p2p_name: 2}
    return min(costs, key=lambda name: (costs[name], order[name]))


def resolve_auto(comm, op: str, args: tuple) -> Generator:
    """Resolve ``"auto"`` for one dispatch; every rank returns the same
    registered implementation name (see module docstring for how
    consistency is guaranteed per op).
    """
    if op not in AUTO_CHOICES:
        # raise identically on every rank BEFORE any traffic: a policy
        # hook returning "auto" for an op without a policy must fail
        # loudly and symmetrically, not strand the non-root ranks in
        # the announcement wait
        raise KeyError(
            f"no auto selection policy for collective {op!r}; "
            f"auto-capable ops: {sorted(AUTO_CHOICES)}")
    size = comm.size
    params = comm.host.params
    if size < 2:
        return AUTO_CHOICES[op][0]
    topo = comm_topology(comm)
    if op in ("reduce", "allreduce"):
        # MPI requires size-matched contributions: local resolution is
        # identical everywhere and costs nothing.  The hierarchical
        # candidate is withheld when it would have to fall back anyway
        # (non-commutative operator over non-contiguous segments).
        red_op = args[1]
        root = args[2] if op == "reduce" else 0
        hier_ok = (topo is None or topo.contiguous
                   or getattr(red_op, "commutative", True))
        return auto_impl(op, payload_bytes(args[0]), size, params,
                         topo=topo, root=root, hier_ok=hier_ok)
    # Rooted (bcast, scatter, gather) or rank-0-anchored (allgather):
    # one rank announces the choice down the scout tree.  The gather's
    # anchor payload is the root's *own* contribution — heterogeneous
    # contribution sizes cannot split the decision, and equal-sized
    # contributions (the common case) make it exact.
    from ...core.scout import scout_scatter_binary

    root = args[1] if op in ("bcast", "scatter", "gather") else 0
    channel = comm.mcast
    seq = channel.next_seq()
    name = None
    if comm.rank == root:
        if op == "scatter":
            objs = args[0]
            nbytes = sum(payload_bytes(o) for o in objs) if objs else 0
        else:
            nbytes = payload_bytes(args[0])
        name = auto_impl(op, nbytes, size, params, topo=topo, root=root)
    name = yield from scout_scatter_binary(comm, channel, seq, root,
                                           tag="impl-dec", value=name)
    return name
