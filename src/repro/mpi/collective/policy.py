"""Payload-, topology- and loss-aware collective selection — ``"auto"``.

The registry's static :data:`~repro.mpi.collective.registry.DEFAULTS`
table answers "which algorithm?" once per communicator; real MPI
libraries answer it **per call**, from the message size, the process
count, and the machine (MPICH's size-thresholded algorithm tables; the
topology-aware multilevel selection of Karonis & de Supinski).  This
module is that policy layer:

* ``comm.use_collectives(bcast="auto")`` marks an op for per-call
  resolution; :func:`resolve_auto` then picks among the op's p2p
  baseline, its flat segmented-multicast implementation
  (:data:`AUTO_CHOICES`), and — on a multi-segment fabric — the
  hierarchical ``hier-mcast`` family (:data:`HIER_AUTO`,
  :mod:`repro.mpi.collective.hier`) each time the collective is invoked;
* :meth:`~repro.mpi.communicator.Communicator.set_collective_policy`
  installs a *hook* that replaces the static table wholesale — it sees
  every dispatch and may return any registered name (or ``"auto"`` to
  fall through to the payload-aware resolution).

The decision metric generalizes the paper's §3 currency: **modeled
serializations** — closed-form Ethernet frame counts
(:func:`p2p_frame_estimate` / :func:`seg_frame_estimate`), plus

* **trunk crossings** on a tiered fabric (:func:`comm_topology` reads
  the cluster's discovery API; each crossing re-serializes the frame on
  a shared switch-to-switch link, the models live in
  :mod:`repro.analysis.framecount`), and
* **expected NACK-repair traffic** from the platform's calibrated
  multicast loss rate (``NetParams.loss``,
  :func:`~repro.analysis.framecount.expected_seg_repair_frames`) —
  lossy platforms shift the crossover back toward the p2p trees and
  toward the hierarchical variants whose repairs stay off the trunks.

Small payloads keep the p2p trees (the multicast
scout/report/decision control tax dominates); large payloads switch to
the segmented streams; multi-segment fabrics switch to ``hier-mcast``
when the trunk savings beat the extra per-segment phases.  ``reduce``
remains the documented exception on flat clusters: many-to-one traffic
gains no frame advantage from multicast at any size, so auto keeps the
binomial tree there and the segmented reduce exists for lossy-transport
scenarios and as the allreduce building block.

**Consistency.**  Every rank must dispatch the same implementation or
the collective deadlocks (paper §4 safety).  Topology and loss inputs
are rank-invariant (the shared cluster object and ``NetParams``), so
they never break the existing protocol: for ops whose payload every
rank holds (``reduce``, ``allreduce``) resolution stays local and free;
for rooted ops (``bcast``, ``scatter``) the root announces its choice
down the binomial scout tree
(:func:`~repro.core.scout.scout_scatter_binary`) — ``N-1`` scout-sized
frames, ``log2 N`` deep, independent of the payload.  ``allgather``
anchors the announcement at rank 0 so heterogeneous contribution sizes
can never split the group's decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..datatypes import payload_bytes

__all__ = ["AUTO", "AUTO_CHOICES", "HIER_AUTO", "TopoInfo",
           "comm_topology", "auto_impl", "modeled_frame_costs",
           "p2p_frame_estimate", "seg_frame_estimate",
           "hier_frame_estimate", "resolve_auto"]

#: the pseudo-implementation name accepted by ``use_collectives``
AUTO = "auto"

#: op -> (p2p baseline, segmented multicast implementation)
AUTO_CHOICES: dict[str, tuple[str, str]] = {
    "bcast": ("p2p-binomial", "mcast-seg-nack"),
    "reduce": ("p2p-binomial", "mcast-seg-combine"),
    "allreduce": ("p2p-reduce-bcast", "mcast-seg-nack"),
    "scatter": ("p2p-binomial", "mcast-seg-root"),
    "allgather": ("p2p-gather-bcast", "mcast-seg-paced"),
}

#: ops with a hierarchical candidate on multi-segment fabrics
HIER_AUTO: dict[str, str] = {
    "bcast": "hier-mcast",
    "reduce": "hier-mcast",
    "allreduce": "hier-mcast",
}


@dataclass(frozen=True)
class TopoInfo:
    """Rank-invariant fabric shape of one communicator.

    ``seg_of_rank`` maps every communicator rank to a dense segment
    index; ``contiguous`` records whether the segments partition the
    ranks into contiguous blocks (the layout under which hierarchical
    reduction preserves MPI's canonical operand order — see
    :mod:`repro.mpi.collective.hier`).
    """

    seg_of_rank: tuple[int, ...]
    contiguous: bool

    @property
    def nsegments(self) -> int:
        return len(set(self.seg_of_rank))

    @property
    def seg_sizes(self) -> tuple[int, ...]:
        sizes = [0] * self.nsegments
        for s in self.seg_of_rank:
            sizes[s] += 1
        return tuple(sizes)


def comm_topology(comm) -> Optional[TopoInfo]:
    """The communicator's :class:`TopoInfo`, or ``None`` when every
    member shares one switch segment (flat cluster, or a
    sub-communicator confined to one leaf).

    Derives from the same :func:`~repro.mpi.collective.hier.
    segment_layout` the ``hier-mcast`` implementations execute against,
    so the policy's model and the impl's behaviour cannot drift; the
    (static) answer is cached on the communicator.
    """
    if comm._topo_info is not False:
        return comm._topo_info
    info = None
    if comm.world.cluster.nsegments > 1:
        from .hier import segment_layout

        dense, _members, _leaders, contiguous = segment_layout(comm)
        if len(set(dense)) > 1:
            info = TopoInfo(seg_of_rank=dense, contiguous=contiguous)
    comm._topo_info = info
    return info


def _p2p_msg_frames(params, nbytes: int) -> int:
    """Frames of one p2p message (payload + MPI envelope)."""
    return params.frames_for(nbytes + params.mpi_header)


def _steps(size: int) -> int:
    """Sequential steps of a binomial tree: ``ceil(log2 size)``."""
    return max(1, (size - 1).bit_length())


def p2p_frame_estimate(op: str, nbytes: int, size: int, params,
                       topo: Optional[TopoInfo] = None,
                       root: int = 0) -> float:
    """Modeled serializations of the op's p2p baseline.

    ``nbytes`` is the op's natural payload: the broadcast/reduce
    message, the scatter's *total* sequence, the allgather's per-rank
    contribution.  With ``topo``, cross-segment tree edges additionally
    pay their trunk crossings (bcast/reduce/allreduce only — the ops
    with a hierarchical competitor).

    Known approximation: a *non-commutative* reduce at a nonzero root
    pays one extra payload forward (the tree reduces to rank 0 and
    forwards, see :mod:`repro.mpi.collective.reduce_p2p`) that is not
    modeled here — second-order near the crossover, and the policy has
    no commutativity input at estimate level.
    """
    from ...analysis.framecount import (model_p2p_tree_frames,
                                        model_p2p_tree_trunk_frames)

    if size < 2:
        return 0
    if op in ("bcast", "reduce"):
        # every tree edge carries the whole payload once
        total = model_p2p_tree_frames(params, size, nbytes)
        if topo is not None:
            total += model_p2p_tree_trunk_frames(
                params, topo.seg_of_rank, root, nbytes)
        return total
    if op == "allreduce":
        total = 2 * model_p2p_tree_frames(params, size, nbytes)
        if topo is not None:
            total += 2 * model_p2p_tree_trunk_frames(
                params, topo.seg_of_rank, 0, nbytes)
        return total
    if op == "scatter":
        # level i has 2^(i-1) edges, each forwarding a subtree share of
        # ~nbytes/2^i (exact for power-of-two sizes, close otherwise)
        total = 0
        for i in range(1, _steps(size) + 1):
            total += min(2 ** (i - 1), size - 1) * _p2p_msg_frames(
                params, nbytes >> i)
        return total
    if op == "allgather":
        # gather of per-rank contributions (lower bound: each crosses
        # one edge) + broadcast of the full list down the tree
        return ((size - 1) * _p2p_msg_frames(params, nbytes)
                + (size - 1) * _p2p_msg_frames(params, nbytes * size))
    raise KeyError(f"no p2p frame estimate for collective {op!r}")


def seg_frame_estimate(op: str, nbytes: int, size: int, params,
                       topo: Optional[TopoInfo] = None,
                       root: int = 0) -> float:
    """Modeled serializations of the op's flat segmented-multicast impl:
    the shared loss-free closed forms of
    :mod:`repro.analysis.framecount` (the same ones the benches assert
    against the simulator), plus the expected repair traffic at
    ``params.loss`` and — with ``topo`` — the trunk crossings of every
    stream (bcast/reduce/allreduce)."""
    from ...analysis.framecount import (expected_seg_repair_frames,
                                        model_seg_allreduce_frames,
                                        model_seg_bcast_trunk_frames,
                                        model_seg_reduce_frames,
                                        model_seg_reduce_trunk_frames,
                                        model_seg_scatter_frames)
    from ...core.segment import plan_transport, seg_nack_frame_count

    if size < 2:
        return 0
    nsegs = plan_transport(nbytes, params).nsegs
    loss = getattr(params, "loss", 0.0)
    if op == "bcast":
        total = (seg_nack_frame_count(size, nsegs)
                 + expected_seg_repair_frames(size, nsegs, loss))
        if topo is not None:
            total += model_seg_bcast_trunk_frames(topo.seg_of_rank, root,
                                                  nsegs)
        return total
    if op == "reduce":
        # one engine stream per non-root contributor
        total = (model_seg_reduce_frames(size, nsegs)
                 + (size - 1) * expected_seg_repair_frames(size, nsegs,
                                                           loss))
        if topo is not None:
            total += model_seg_reduce_trunk_frames(topo.seg_of_rank,
                                                   root, nsegs)
        return total
    if op == "allreduce":
        total = (model_seg_allreduce_frames(size, nsegs)
                 + size * expected_seg_repair_frames(size, nsegs, loss))
        if topo is not None:
            total += (model_seg_reduce_trunk_frames(topo.seg_of_rank, 0,
                                                    nsegs)
                      + model_seg_bcast_trunk_frames(topo.seg_of_rank,
                                                     0, nsegs))
        return total
    if op == "scatter":
        # one global stream of every non-root rank's share
        share = plan_transport(-(-nbytes // size), params).nsegs
        total_segs = (size - 1) * share
        return (model_seg_scatter_frames(size, [share] * (size - 1))
                + expected_seg_repair_frames(size, total_segs, loss))
    if op == "allgather":
        # paced ready round + one engine stream per rank
        return (2 * (size - 1) + size * seg_nack_frame_count(size, nsegs)
                + size * expected_seg_repair_frames(size, nsegs, loss))
    raise KeyError(f"no segmented frame estimate for collective {op!r}")


def hier_frame_estimate(op: str, nbytes: int, size: int, params,
                        topo: TopoInfo, root: int = 0) -> float:
    """Modeled serializations of the ``hier-mcast`` implementation on
    ``topo``: host frames of every phase, the leaders' phase trunk
    crossings, and the expected per-phase repair traffic (intra-segment
    repairs never touch a trunk — that locality is most of the win
    under loss)."""
    from ...analysis.framecount import (expected_seg_repair_frames,
                                        model_hier_bcast_frames,
                                        model_hier_reduce_frames)
    from ...core.segment import plan_transport

    if op not in HIER_AUTO:
        raise KeyError(f"no hierarchical estimate for collective {op!r}; "
                       f"hier-capable ops: {sorted(HIER_AUTO)}")
    if size < 2:
        return 0
    nsegs = plan_transport(nbytes, params).nsegs
    loss = getattr(params, "loss", 0.0)
    sizes = topo.seg_sizes
    k = len(sizes)
    root_seg = topo.seg_of_rank[root if op != "allreduce" else 0]

    def phase_repairs(streams_per_phase) -> float:
        return sum(streams * expected_seg_repair_frames(n, nsegs, loss)
                   for n, streams in streams_per_phase)

    if op == "bcast":
        frames, trunk = model_hier_bcast_frames(sizes, root_seg, nsegs)
        repairs = phase_repairs([(sz, 1) for sz in sizes] + [(k, 1)])
        return frames + trunk + repairs
    if op == "reduce":
        frames, trunk = model_hier_reduce_frames(sizes, root_seg, nsegs)
        repairs = phase_repairs([(sz, max(sz - 1, 0)) for sz in sizes]
                                + [(k, k - 1)])
        return frames + trunk + repairs
    # allreduce = hier reduce to rank 0 + hier bcast from rank 0
    return (hier_frame_estimate("reduce", nbytes, size, params, topo, 0)
            + hier_frame_estimate("bcast", nbytes, size, params, topo, 0))


def modeled_frame_costs(op: str, nbytes: int, size: int, params,
                        topo: Optional[TopoInfo] = None, root: int = 0,
                        hier_ok: bool = True) -> dict[str, float]:
    """Modeled serializations of every candidate implementation for one
    call — the table :func:`auto_impl` takes the argmin of (and the
    fabric bench audits against the simulator)."""
    try:
        p2p_name, seg_name = AUTO_CHOICES[op]
    except KeyError:
        raise KeyError(
            f"no auto selection policy for collective {op!r}; "
            f"auto-capable ops: {sorted(AUTO_CHOICES)}") from None
    from .hier import MAX_HIER_SEGMENTS

    costs = {
        seg_name: seg_frame_estimate(op, nbytes, size, params, topo,
                                     root),
        p2p_name: p2p_frame_estimate(op, nbytes, size, params, topo,
                                     root),
    }
    if (hier_ok and topo is not None
            and 1 < topo.nsegments <= MAX_HIER_SEGMENTS
            and op in HIER_AUTO):
        costs[HIER_AUTO[op]] = hier_frame_estimate(op, nbytes, size,
                                                   params, topo, root)
    return costs


def auto_impl(op: str, nbytes: int, size: int, params,
              topo: Optional[TopoInfo] = None, root: int = 0,
              hier_ok: bool = True) -> str:
    """Pick the implementation for one call: the candidate with the
    lowest modeled serialization count.  Ties keep the historical
    preference order — segmented multicast over hierarchical over the
    p2p baseline — so on a flat, loss-free cluster the choice is
    exactly PR 3's "segmented iff its frame estimate is at or below
    p2p's"."""
    try:
        p2p_name, seg_name = AUTO_CHOICES[op]
    except KeyError:
        raise KeyError(
            f"no auto selection policy for collective {op!r}; "
            f"auto-capable ops: {sorted(AUTO_CHOICES)}") from None
    if size < 2:
        return p2p_name
    costs = modeled_frame_costs(op, nbytes, size, params, topo, root,
                                hier_ok)
    order = {seg_name: 0, HIER_AUTO.get(op, "hier-mcast"): 1,
             p2p_name: 2}
    return min(costs, key=lambda name: (costs[name], order[name]))


def resolve_auto(comm, op: str, args: tuple) -> Generator:
    """Resolve ``"auto"`` for one dispatch; every rank returns the same
    registered implementation name (see module docstring for how
    consistency is guaranteed per op).
    """
    if op not in AUTO_CHOICES:
        # raise identically on every rank BEFORE any traffic: a policy
        # hook returning "auto" for an op without a policy must fail
        # loudly and symmetrically, not strand the non-root ranks in
        # the announcement wait
        raise KeyError(
            f"no auto selection policy for collective {op!r}; "
            f"auto-capable ops: {sorted(AUTO_CHOICES)}")
    size = comm.size
    params = comm.host.params
    if size < 2:
        return AUTO_CHOICES[op][0]
    topo = comm_topology(comm)
    if op in ("reduce", "allreduce"):
        # MPI requires size-matched contributions: local resolution is
        # identical everywhere and costs nothing.  The hierarchical
        # candidate is withheld when it would have to fall back anyway
        # (non-commutative operator over non-contiguous segments).
        red_op = args[1]
        root = args[2] if op == "reduce" else 0
        hier_ok = (topo is None or topo.contiguous
                   or getattr(red_op, "commutative", True))
        return auto_impl(op, payload_bytes(args[0]), size, params,
                         topo=topo, root=root, hier_ok=hier_ok)
    # Rooted (bcast, scatter) or rank-0-anchored (allgather): the rank
    # that knows the payload announces the choice down the scout tree.
    from ...core.scout import scout_scatter_binary

    root = args[1] if op in ("bcast", "scatter") else 0
    channel = comm.mcast
    seq = channel.next_seq()
    name = None
    if comm.rank == root:
        if op == "scatter":
            objs = args[0]
            nbytes = sum(payload_bytes(o) for o in objs) if objs else 0
        else:
            nbytes = payload_bytes(args[0])
        name = auto_impl(op, nbytes, size, params, topo=topo, root=root)
    name = yield from scout_scatter_binary(comm, channel, seq, root,
                                           tag="impl-dec", value=name)
    return name
