"""Payload-aware collective implementation selection — the ``"auto"`` layer.

The registry's static :data:`~repro.mpi.collective.registry.DEFAULTS`
table answers "which algorithm?" once per communicator; real MPI
libraries answer it **per call**, from the message size and the process
count (MPICH's size-thresholded algorithm tables; the topology-aware
multilevel selection of Karonis & de Supinski).  This module is that
policy layer:

* ``comm.use_collectives(bcast="auto")`` marks an op for per-call
  resolution; :func:`resolve_auto` then picks between the op's p2p
  baseline and its segmented-multicast implementation
  (:data:`AUTO_CHOICES`) each time the collective is invoked;
* :meth:`~repro.mpi.communicator.Communicator.set_collective_policy`
  installs a *hook* that replaces the static table wholesale — it sees
  every dispatch and may return any registered name (or ``"auto"`` to
  fall through to the payload-aware resolution).

The decision metric is the paper's §3 currency: **closed-form Ethernet
frame counts** (:func:`p2p_frame_estimate` / :func:`seg_frame_estimate`),
built from the calibration constants (``frames_for``, ``mpi_header``)
and the segmented transport's formulas (``plan_transport``,
``seg_nack_frame_count``).  Small payloads keep the p2p trees (the
multicast scout/report/decision control tax dominates); large payloads
switch to the segmented streams (one copy of the payload on the wire
instead of per-edge copies).  ``reduce`` is the documented exception:
many-to-one traffic gains no frame advantage from multicast at any
size, so auto keeps the binomial tree and the segmented reduce exists
for lossy-transport scenarios and as the allreduce building block.

**Consistency.**  Every rank must dispatch the same implementation or
the collective deadlocks (paper §4 safety).  For ops whose payload every
rank holds (``reduce``, ``allreduce`` — MPI requires identical sizes),
resolution is local and free.  For rooted ops (``bcast``, ``scatter``)
only the root knows the payload, so it announces its choice down the
binomial scout tree (:func:`~repro.core.scout.scout_scatter_binary`) —
``N-1`` scout-sized frames, ``log2 N`` deep, independent of the payload.
``allgather`` anchors the announcement at rank 0 so heterogeneous
contribution sizes can never split the group's decision.
"""

from __future__ import annotations

from typing import Generator

from ..datatypes import payload_bytes

__all__ = ["AUTO", "AUTO_CHOICES", "auto_impl", "p2p_frame_estimate",
           "seg_frame_estimate", "resolve_auto"]

#: the pseudo-implementation name accepted by ``use_collectives``
AUTO = "auto"

#: op -> (p2p baseline, segmented multicast implementation)
AUTO_CHOICES: dict[str, tuple[str, str]] = {
    "bcast": ("p2p-binomial", "mcast-seg-nack"),
    "reduce": ("p2p-binomial", "mcast-seg-combine"),
    "allreduce": ("p2p-reduce-bcast", "mcast-seg-nack"),
    "scatter": ("p2p-binomial", "mcast-seg-root"),
    "allgather": ("p2p-gather-bcast", "mcast-seg-paced"),
}


def _p2p_msg_frames(params, nbytes: int) -> int:
    """Frames of one p2p message (payload + MPI envelope)."""
    return params.frames_for(nbytes + params.mpi_header)


def _steps(size: int) -> int:
    """Sequential steps of a binomial tree: ``ceil(log2 size)``."""
    return max(1, (size - 1).bit_length())


def p2p_frame_estimate(op: str, nbytes: int, size: int, params) -> int:
    """Closed-form frame count of the op's p2p baseline.

    ``nbytes`` is the op's natural payload: the broadcast/reduce
    message, the scatter's *total* sequence, the allgather's per-rank
    contribution.
    """
    from ...analysis.framecount import model_p2p_tree_frames

    if size < 2:
        return 0
    if op in ("bcast", "reduce"):
        # every tree edge carries the whole payload once
        return model_p2p_tree_frames(params, size, nbytes)
    if op == "allreduce":
        return 2 * model_p2p_tree_frames(params, size, nbytes)
    if op == "scatter":
        # level i has 2^(i-1) edges, each forwarding a subtree share of
        # ~nbytes/2^i (exact for power-of-two sizes, close otherwise)
        total = 0
        for i in range(1, _steps(size) + 1):
            total += min(2 ** (i - 1), size - 1) * _p2p_msg_frames(
                params, nbytes >> i)
        return total
    if op == "allgather":
        # gather of per-rank contributions (lower bound: each crosses
        # one edge) + broadcast of the full list down the tree
        return ((size - 1) * _p2p_msg_frames(params, nbytes)
                + (size - 1) * _p2p_msg_frames(params, nbytes * size))
    raise KeyError(f"no p2p frame estimate for collective {op!r}")


def seg_frame_estimate(op: str, nbytes: int, size: int, params) -> int:
    """Closed-form frame count of the op's segmented-multicast impl
    (delegating to the shared models in
    :mod:`repro.analysis.framecount`, the same closed forms the benches
    assert against the simulator)."""
    from ...analysis.framecount import (model_seg_allreduce_frames,
                                        model_seg_reduce_frames,
                                        model_seg_scatter_frames)
    from ...core.segment import plan_transport, seg_nack_frame_count

    if size < 2:
        return 0
    nsegs = plan_transport(nbytes, params).nsegs
    if op == "bcast":
        return seg_nack_frame_count(size, nsegs)
    if op == "reduce":
        # one engine stream per non-root contributor
        return model_seg_reduce_frames(size, nsegs)
    if op == "allreduce":
        return model_seg_allreduce_frames(size, nsegs)
    if op == "scatter":
        # one global stream of every non-root rank's share
        share = plan_transport(-(-nbytes // size), params).nsegs
        return model_seg_scatter_frames(size, [share] * (size - 1))
    if op == "allgather":
        # paced ready round + one engine stream per rank
        return 2 * (size - 1) + size * seg_nack_frame_count(size, nsegs)
    raise KeyError(f"no segmented frame estimate for collective {op!r}")


def auto_impl(op: str, nbytes: int, size: int, params) -> str:
    """Pick the implementation for one call: the segmented multicast
    entry iff its frame estimate is at or below the p2p baseline's."""
    try:
        p2p_name, seg_name = AUTO_CHOICES[op]
    except KeyError:
        raise KeyError(
            f"no auto selection policy for collective {op!r}; "
            f"auto-capable ops: {sorted(AUTO_CHOICES)}") from None
    if size < 2:
        return p2p_name
    seg = seg_frame_estimate(op, nbytes, size, params)
    p2p = p2p_frame_estimate(op, nbytes, size, params)
    return seg_name if seg <= p2p else p2p_name


def resolve_auto(comm, op: str, args: tuple) -> Generator:
    """Resolve ``"auto"`` for one dispatch; every rank returns the same
    registered implementation name (see module docstring for how
    consistency is guaranteed per op).
    """
    if op not in AUTO_CHOICES:
        # raise identically on every rank BEFORE any traffic: a policy
        # hook returning "auto" for an op without a policy must fail
        # loudly and symmetrically, not strand the non-root ranks in
        # the announcement wait
        raise KeyError(
            f"no auto selection policy for collective {op!r}; "
            f"auto-capable ops: {sorted(AUTO_CHOICES)}")
    size = comm.size
    params = comm.host.params
    if size < 2:
        return AUTO_CHOICES[op][0]
    if op in ("reduce", "allreduce"):
        # MPI requires size-matched contributions: local resolution is
        # identical everywhere and costs nothing.
        return auto_impl(op, payload_bytes(args[0]), size, params)
    # Rooted (bcast, scatter) or rank-0-anchored (allgather): the rank
    # that knows the payload announces the choice down the scout tree.
    from ...core.scout import scout_scatter_binary

    root = args[1] if op in ("bcast", "scatter") else 0
    channel = comm.mcast
    seq = channel.next_seq()
    name = None
    if comm.rank == root:
        if op == "scatter":
            objs = args[0]
            nbytes = sum(payload_bytes(o) for o in objs) if objs else 0
        else:
            nbytes = payload_bytes(args[0])
        name = auto_impl(op, nbytes, size, params)
    name = yield from scout_scatter_binary(comm, channel, seq, root,
                                           tag="impl-dec", value=name)
    return name
