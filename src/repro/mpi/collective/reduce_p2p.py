"""Binomial-tree reduce, plus reduce-then-broadcast allreduce and a linear
scan — the MPICH 1.x algorithm family.

Combination order: the accumulator always holds the reduction of a
*contiguous ascending* rank range, and incoming subtree results are always
appended on the right (``acc = op(acc, incoming)``), so non-commutative
(but associative) operators see operands in rank order, as MPI requires.
A tree rooted at a nonzero rank walks *root-relative* ranks, which
rotates that order — legal only for commutative operators (MPI allows
reordering exactly then).  Non-commutative reductions at a nonzero root
therefore run the tree rooted at rank 0 (canonical absolute order, like
MPICH) and forward the result to the real root with one extra message.
"""

from __future__ import annotations

import copy
from typing import Any, Generator

from ..ops import Op
from .registry import register
from .tags import TAG_REDUCE, TAG_SCAN

__all__ = ["reduce_binomial", "allreduce_reduce_bcast", "scan_linear"]


@register("reduce", "p2p-binomial")
def reduce_binomial(comm, obj: Any, op: Op, root: int = 0) -> Generator:
    """``result = yield from reduce_binomial(comm, obj, op, root)``.

    Returns the reduction at ``root``; ``None`` elsewhere.
    """
    size = comm.size
    rank = comm.rank
    if size == 1:
        return copy.copy(obj)
    # Root-relative ranks rotate the fold sequence; keep the tree rooted
    # at rank 0 for non-commutative ops so operands combine in canonical
    # absolute-rank order, then forward to the real root.
    eff_root = root if getattr(op, "commutative", True) else 0
    rel = (rank - eff_root) % size

    acc = obj
    mask = 1
    while mask < size:
        if rel & mask:
            dst = ((rel & ~mask) + eff_root) % size
            yield from comm._send_coll(acc, dst, TAG_REDUCE)
            break
        src_rel = rel | mask
        if src_rel < size:
            incoming = yield from comm._recv_coll(
                (src_rel + eff_root) % size, TAG_REDUCE)
            acc = op(acc, incoming)
        mask <<= 1

    if eff_root != root:
        if rank == eff_root:
            yield from comm._send_coll(acc, root, TAG_REDUCE)
            return None
        if rank == root:
            result = yield from comm._recv_coll(eff_root, TAG_REDUCE)
            return result
        return None
    return acc if rel == 0 else None


@register("allreduce", "p2p-reduce-bcast")
def allreduce_reduce_bcast(comm, obj: Any, op: Op) -> Generator:
    """MPICH 1.x allreduce: reduce to rank 0, then broadcast."""
    result = yield from comm._dispatch("reduce", obj, op, 0)
    result = yield from comm._dispatch("bcast", result, 0)
    return result


@register("scan", "p2p-linear")
def scan_linear(comm, obj: Any, op: Op) -> Generator:
    """Inclusive prefix reduction along the rank chain."""
    rank = comm.rank
    size = comm.size
    result = copy.copy(obj)
    if rank > 0:
        prefix = yield from comm._recv_coll(rank - 1, TAG_SCAN)
        result = op(prefix, obj)
    if rank < size - 1:
        yield from comm._send_coll(result, rank + 1, TAG_SCAN)
    return result
