"""Named registry of collective implementations.

``REGISTRY[op][impl_name] -> generator function``.  The paper's experiment
is exactly a comparison of entries in this table:

* ``bcast``: ``"p2p-binomial"`` (MPICH) vs ``"mcast-binary"`` /
  ``"mcast-linear"`` (the contribution) plus ``"mcast-naive"`` and
  ``"mcast-ack"`` (the PVM-style baseline from [2]) and
  ``"mcast-seg-nack"`` (segmented + pipelined with selective NACK
  repair, :mod:`repro.core.segment`);
* ``barrier``: ``"p2p-mpich"`` vs ``"mcast"``;
* ``allgather``: ``"p2p-gather-bcast"`` vs ``"mcast-paced"`` /
  ``"mcast-seg-paced"`` (segmented per-turn streaming);
* ``reduce``: ``"p2p-binomial"`` vs ``"mcast-seg-combine"``
  (NACK-repaired gather turns folded through :mod:`repro.mpi.ops`,
  :mod:`repro.core.mcast_reduce`);
* ``allreduce``: ``"p2p-reduce-bcast"`` vs ``"mcast-seg-nack"``
  (mcast reduce composed with the segmented broadcast);
* ``scatter``: ``"p2p-binomial"`` vs ``"mcast-seg-root"`` (the root
  streams per-rank-addressed segments in one paced burst,
  :mod:`repro.core.mcast_scatter`);
* ``gather``: ``"p2p-binomial"`` vs ``"mcast-seg-root-follow"`` (the
  root follows each contributor's engine stream,
  :mod:`repro.core.mcast_gather`);
* ``bcast``/``reduce``/``allreduce``/``barrier``/``scatter``/
  ``gather``/``allgather`` additionally register ``"hier-mcast"``
  (:mod:`repro.mpi.collective.hier`): per-segment phases bridged by
  segment leaders — recursively, leaders of leaders per switch tier —
  on tiered fabrics (:mod:`repro.simnet.fabric`).

The op × impl matrix with per-entry summaries is *generated* into
``docs/collectives.md`` (``python -m repro.bench.cli registry-doc``);
a tier-1 test and the CI docs job diff it so it can never go stale.

:data:`DEFAULTS` is the *static* per-op table a fresh communicator
starts from; the per-call policy layer
(:mod:`repro.mpi.collective.policy`) supersedes it wherever an op is set
to ``"auto"`` or a selection hook is installed with
``comm.set_collective_policy``.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["REGISTRY", "register", "get_impl", "DEFAULTS"]

REGISTRY: dict[str, dict[str, Callable]] = {}

#: implementation chosen when a communicator is not configured otherwise
DEFAULTS: dict[str, str] = {
    "bcast": "p2p-binomial",
    "barrier": "p2p-mpich",
    "reduce": "p2p-binomial",
    "allreduce": "p2p-reduce-bcast",
    "gather": "p2p-binomial",
    "scatter": "p2p-binomial",
    "allgather": "p2p-gather-bcast",
    "alltoall": "p2p-pairwise",
    "scan": "p2p-linear",
}


def register(op: str, name: str) -> Callable:
    """Decorator: ``@register("bcast", "p2p-binomial")``."""

    def deco(fn: Callable) -> Callable:
        REGISTRY.setdefault(op, {})[name] = fn
        return fn

    return deco


def get_impl(op: str, name: str) -> Callable:
    try:
        impls = REGISTRY[op]
    except KeyError:
        raise KeyError(
            f"unknown collective op {op!r}; "
            f"known ops: {sorted(REGISTRY)}") from None
    try:
        return impls[name]
    except KeyError:
        raise KeyError(
            f"no implementation {name!r} for collective {op!r}; "
            f"known: {sorted(impls)}") from None
