"""Reserved tag space for collective-internal point-to-point traffic.

Collectives run in a communicator's *collective context* (a context id
distinct from user point-to-point traffic, like MPICH's hidden context),
so these tags can never collide with user tags.
"""

TAG_BCAST = 1
TAG_BARRIER_IN = 2       #: fold-in / gather phase of barrier
TAG_BARRIER_EXCH = 3     #: pairwise exchange phase
TAG_BARRIER_OUT = 4      #: release phase
TAG_REDUCE = 5
TAG_GATHER = 6
TAG_SCATTER = 7
TAG_ALLTOALL = 8
TAG_SCAN = 9
TAG_SCOUT = 10           #: multicast scout synchronization (over p2p path)
TAG_ACK = 11             #: ack-based reliable multicast
TAG_COMM_SETUP = 12      #: communicator construction handshakes
TAG_HIER = 13            #: hierarchical-collective leader→root forwards
