"""Communicators: rank groups, context ids, and the user-facing MPI API.

The API follows the mpi4py conventions from the guides — ``Get_rank`` /
``Get_size``, lowercase methods for generic Python objects, uppercase
methods for NumPy buffers — except that, because ranks are simulated
processes, every blocking call is a generator used with ``yield from``::

    def main(env):
        comm = env.comm
        data = {"a": 7} if comm.rank == 0 else None
        data = yield from comm.bcast(data, root=0)
        yield from comm.barrier()

Collective algorithms are *pluggable* (see
:mod:`repro.mpi.collective.registry`): ``comm.use_collectives(
bcast="mcast-binary", barrier="mcast")`` switches a communicator from the
MPICH baselines to the paper's IP-multicast implementations.

Each communicator owns two hidden context ids (user p2p and collective
traffic, like MPICH) and — for the multicast path — one IP multicast
group address plus data/scout sockets, wrapped in a
:class:`repro.core.channel.McastChannel`.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

import numpy as np

from ..simnet.host import Host
from .collective.policy import AUTO, AUTO_CHOICES, resolve_auto
from .collective.registry import DEFAULTS, get_impl
from .datatypes import payload_bytes
from .ops import Op
from .p2p import MpiEndpoint
from .status import ANY_SOURCE, ANY_TAG, Request, Status

__all__ = ["Communicator", "UNDEFINED"]

#: color value excluding a rank from a split (MPI_UNDEFINED)
UNDEFINED = None


class Communicator:
    """One rank's view of a process group."""

    def __init__(self, world, ctx: int, rank: int, ranks: list[int]):
        self.world = world
        self.ctx = ctx
        self.rank = rank
        self.ranks = list(ranks)          #: host address per rank
        self.endpoint: MpiEndpoint = world.endpoints[ranks[rank]]
        self.host: Host = self.endpoint.host
        self.sim = self.host.sim
        self._impls = dict(DEFAULTS)
        self._policy = None
        self._mcast = None
        #: lazily-built hierarchy state (segment map, leaders, and the
        #: per-segment/leaders multicast sub-channels) for the
        #: ``hier-mcast`` collectives; see :mod:`repro.mpi.collective.hier`
        self._hier = None
        #: cached auto-policy topology (``False`` = not yet computed;
        #: ``None`` = single-segment; else a policy ``TopoInfo``)
        self._topo_info = False
        self._freed = False
        #: chronological (op, args-signature) log of collective calls on
        #: this communicator — the raw material for the paper's §4
        #: safety check (see RunResult.verify_safe_schedules)
        self.call_log: list[tuple] = []
        #: chronological (op, resolved impl name) log — how the "auto"
        #: policy layer's per-call choices are observed by tests/benches
        self.impl_log: list[tuple[str, str]] = []
        #: per-collective-call metric records (plain dicts, see
        #: :mod:`repro.obs.metrics`) — populated only when a flight
        #: recorder is attached (``REPRO_TRACE=1``), one entry per
        #: dispatched collective, in completion order next to
        #: :attr:`impl_log`
        self.metrics_log: list[dict] = []
        world.register_comm(self)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.ranks)

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    def addr_of(self, rank: int) -> int:
        """Host address of a rank (the device-level destination)."""
        return self.ranks[rank]

    @property
    def ctx_pt2pt(self) -> int:
        return 2 * self.ctx

    @property
    def ctx_coll(self) -> int:
        return 2 * self.ctx + 1

    # ------------------------------------------------------------------
    # collective implementation selection
    # ------------------------------------------------------------------
    def use_collectives(self, **ops: str) -> "Communicator":
        """Select implementations, e.g. ``bcast="mcast-binary"``.

        The pseudo-name ``"auto"`` defers the choice to the payload-aware
        policy layer (:mod:`repro.mpi.collective.policy`), which resolves
        the implementation per call from the payload size and the
        process count.

        Returns self for chaining.  Raises KeyError for unknown names so
        misconfiguration fails loudly.
        """
        for op, name in ops.items():
            if name == AUTO:
                if op not in AUTO_CHOICES:
                    raise KeyError(
                        f"no auto selection policy for collective "
                        f"{op!r}; auto-capable ops: "
                        f"{sorted(AUTO_CHOICES)}")
            else:
                get_impl(op, name)   # validate now
            self._impls[op] = name
        return self

    def set_collective_policy(self, policy) -> "Communicator":
        """Install a per-call selection hook replacing the static table.

        ``policy(comm, op, name, args) -> impl name`` sees every
        collective dispatch with the statically configured ``name`` and
        the call's positional args; whatever registered name it returns
        is dispatched (``"auto"`` falls through to the payload-aware
        resolution).  ``None`` removes the hook.  Returns self.
        """
        self._policy = policy
        return self

    def _dispatch(self, op: str, *args) -> Generator:
        name = self._impls[op]
        if self._policy is not None:
            name = self._policy(self, op, name, args)
        if name == AUTO:
            name = yield from resolve_auto(self, op, args)
        fn = get_impl(op, name)
        self.call_log.append((op, self.ctx, self._call_signature(op, args)))
        self.impl_log.append((op, name))
        rec = self.host.stats.recorder
        if rec is None:
            result = yield from fn(self, *args)
            return result
        token = rec.collective_begin(self.sim.now, self.host.addr,
                                     self.rank, op, name)
        try:
            result = yield from fn(self, *args)
        finally:
            record = rec.collective_end(self.sim.now, token)
            if record is not None:
                self.metrics_log.append(record)
        return result

    #: which positional args of each collective are rank-invariant and
    #: belong in the §4 safety signature (payloads never do — they
    #: legitimately differ per rank).  Index is into the *args tuple
    #: passed to _dispatch (i.e. without the communicator itself).
    _SIGNATURE_ARGS: dict[str, tuple[int, ...]] = {
        "bcast": (1,),            # (obj, root)
        "barrier": (),
        "reduce": (1, 2),         # (obj, op, root)
        "allreduce": (1,),        # (obj, op)
        "gather": (1,),           # (obj, root)
        "scatter": (1,),          # (objs, root)
        "allgather": (),
        "alltoall": (),
        "scan": (1,),
        "exscan": (1,),
        "reduce_scatter": (1,),
    }

    @classmethod
    def _call_signature(cls, op: str, args: tuple) -> tuple:
        """Rank-invariant descriptor of a collective call (roots and
        reduction-operator names, never payloads)."""
        sig = []
        for idx in cls._SIGNATURE_ARGS.get(op, ()):
            if idx >= len(args):
                continue
            a = args[idx]
            sig.append(a.name if isinstance(a, Op) else a)
        return tuple(sig)

    # ------------------------------------------------------------------
    # the multicast channel (lazy; touched eagerly during comm setup)
    # ------------------------------------------------------------------
    @property
    def mcast(self):
        """The per-communicator multicast channel (group + sockets)."""
        if self._mcast is None:
            from ..core.channel import McastChannel  # avoid import cycle
            self._mcast = McastChannel(self)
        return self._mcast

    # ------------------------------------------------------------------
    # point-to-point (user context)
    # ------------------------------------------------------------------
    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        self._check_rank(dest)
        return self.endpoint.isend(self.ctx_pt2pt, self.rank,
                                   self.addr_of(dest), obj,
                                   payload_bytes(obj), tag)

    def irecv(self, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> Request:
        if source != ANY_SOURCE:
            self._check_rank(source)
        return self.endpoint.irecv(self.ctx_pt2pt, source, tag)

    def send(self, obj: Any, dest: int, tag: int = 0) -> Generator:
        req = self.isend(obj, dest, tag)
        yield from req.wait()

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Optional[Status] = None) -> Generator:
        req = self.irecv(source, tag)
        data = yield from req.wait()
        if status is not None:
            status.__dict__.update(req.status.__dict__)
        return data

    def sendrecv(self, obj: Any, dest: int, sendtag: int = 0,
                 source: int = ANY_SOURCE,
                 recvtag: int = ANY_TAG) -> Generator:
        rreq = self.irecv(source, recvtag)
        sreq = self.isend(obj, dest, sendtag)
        data = yield from rreq.wait()
        yield from sreq.wait()
        return data

    def iprobe(self, source: int = ANY_SOURCE,
               tag: int = ANY_TAG) -> Optional[Status]:
        """Non-blocking probe of the unexpected-message queue."""
        if source != ANY_SOURCE:
            self._check_rank(source)
        return self.endpoint.iprobe(self.ctx_pt2pt, source, tag)

    # -- buffer-based p2p (uppercase, mpi4py-style) -------------------------
    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> Generator:
        yield from self.send(np.array(buf, copy=True), dest, tag)

    def Recv(self, buf: np.ndarray, source: int = ANY_SOURCE,
             tag: int = ANY_TAG,
             status: Optional[Status] = None) -> Generator:
        data = yield from self.recv(source, tag, status)
        buf[...] = data

    # ------------------------------------------------------------------
    # collective-context p2p used by algorithm implementations
    # ------------------------------------------------------------------
    def _send_coll(self, obj: Any, dest: int, tag: int,
                   nbytes: Optional[int] = None) -> Generator:
        req = self.endpoint.isend(
            self.ctx_coll, self.rank, self.addr_of(dest), obj,
            payload_bytes(obj) if nbytes is None else nbytes, tag)
        yield from req.wait()

    def _recv_coll(self, source: int, tag: int) -> Generator:
        req = self.endpoint.irecv(self.ctx_coll, source, tag)
        data = yield from req.wait()
        return data

    def _sendrecv_coll(self, obj: Any, dest: int, tag: int,
                       nbytes: Optional[int] = None,
                       src: Optional[int] = None) -> Generator:
        rreq = self.endpoint.irecv(self.ctx_coll,
                                   dest if src is None else src, tag)
        sreq = self.endpoint.isend(
            self.ctx_coll, self.rank, self.addr_of(dest), obj,
            payload_bytes(obj) if nbytes is None else nbytes, tag)
        data = yield from rreq.wait()
        yield from sreq.wait()
        return data

    # ------------------------------------------------------------------
    # collectives — lowercase (generic objects)
    # ------------------------------------------------------------------
    def bcast(self, obj: Any, root: int = 0) -> Generator:
        self._check_rank(root)
        result = yield from self._dispatch("bcast", obj, root)
        return result

    def barrier(self) -> Generator:
        yield from self._dispatch("barrier")

    def reduce(self, obj: Any, op: Op, root: int = 0) -> Generator:
        self._check_rank(root)
        result = yield from self._dispatch("reduce", obj, op, root)
        return result

    def allreduce(self, obj: Any, op: Op) -> Generator:
        result = yield from self._dispatch("allreduce", obj, op)
        return result

    def gather(self, obj: Any, root: int = 0) -> Generator:
        self._check_rank(root)
        result = yield from self._dispatch("gather", obj, root)
        return result

    def scatter(self, objs: Optional[Sequence[Any]],
                root: int = 0) -> Generator:
        self._check_rank(root)
        result = yield from self._dispatch("scatter", objs, root)
        return result

    def allgather(self, obj: Any) -> Generator:
        result = yield from self._dispatch("allgather", obj)
        return result

    def alltoall(self, objs: Sequence[Any]) -> Generator:
        result = yield from self._dispatch("alltoall", objs)
        return result

    def scan(self, obj: Any, op: Op) -> Generator:
        result = yield from self._dispatch("scan", obj, op)
        return result

    def exscan(self, obj: Any, op: Op) -> Generator:
        """Exclusive prefix reduction (rank 0 receives None)."""
        result = yield from self._dispatch("exscan", obj, op)
        return result

    def reduce_scatter(self, objs: Sequence[Any], op: Op) -> Generator:
        """Elementwise reduce of ``objs`` then scatter block r to rank r."""
        result = yield from self._dispatch("reduce_scatter", objs, op)
        return result

    # ------------------------------------------------------------------
    # collectives — uppercase (NumPy buffers)
    # ------------------------------------------------------------------
    def Bcast(self, buf: np.ndarray, root: int = 0) -> Generator:
        if self.rank == root:
            yield from self.bcast(np.array(buf, copy=True), root)
        else:
            data = yield from self.bcast(None, root)
            buf[...] = data

    def Barrier(self) -> Generator:
        yield from self.barrier()

    def Reduce(self, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray],
               op: Op, root: int = 0) -> Generator:
        result = yield from self.reduce(np.array(sendbuf, copy=True),
                                        op, root)
        if self.rank == root:
            recvbuf[...] = result

    def Allreduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray,
                  op: Op) -> Generator:
        result = yield from self.allreduce(np.array(sendbuf, copy=True), op)
        recvbuf[...] = result

    def Gather(self, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray],
               root: int = 0) -> Generator:
        parts = yield from self.gather(np.array(sendbuf, copy=True), root)
        if self.rank == root:
            recvbuf[...] = np.stack(parts)

    def Scatter(self, sendbuf: Optional[np.ndarray], recvbuf: np.ndarray,
                root: int = 0) -> Generator:
        parts = None
        if self.rank == root:
            parts = [np.array(row, copy=True) for row in sendbuf]
        mine = yield from self.scatter(parts, root)
        recvbuf[...] = mine

    def Allgather(self, sendbuf: np.ndarray,
                  recvbuf: np.ndarray) -> Generator:
        parts = yield from self.allgather(np.array(sendbuf, copy=True))
        recvbuf[...] = np.stack(parts)

    # ------------------------------------------------------------------
    # communicator construction
    # ------------------------------------------------------------------
    def dup(self) -> Generator:
        """Collective: duplicate this communicator (fresh contexts)."""
        if self.rank == 0:
            ctx = self.world.alloc_ctx()
        else:
            ctx = None
        ctx = yield from self._dispatch("bcast", ctx, 0)
        new = Communicator(self.world, ctx, self.rank, self.ranks)
        new._impls = dict(self._impls)
        new._policy = self._policy
        yield from new._setup()
        return new

    def split(self, color: Optional[int], key: int = 0) -> Generator:
        """Collective: partition ranks by ``color``, order by ``key``.

        Ranks passing ``color=None`` (MPI_UNDEFINED) get ``None`` back.
        """
        entries = yield from self._dispatch(
            "allgather", (color, key, self.rank))
        colors = sorted({c for c, _k, _r in entries if c is not None})
        if self.rank == 0:
            base = self.world.alloc_ctx_range(max(len(colors), 1))
        else:
            base = None
        base = yield from self._dispatch("bcast", base, 0)
        if color is None:
            return None
        members = sorted(((k, r) for c, k, r in entries if c == color))
        new_ranks = [self.ranks[r] for _k, r in members]
        my_new_rank = [r for _k, r in members].index(self.rank)
        ctx = base + colors.index(color)
        new = Communicator(self.world, ctx, my_new_rank, new_ranks)
        new._impls = dict(self._impls)
        new._policy = self._policy
        yield from new._setup()
        return new

    def _setup(self) -> Generator:
        """Join the multicast group, then sync so joins are visible.

        The barrier runs over point-to-point (always safe); when it
        completes, every member's IGMP join has traversed its uplink —
        the switch snooped it before any subsequent multicast data frame
        can arrive (FIFO per link).
        """
        _ = self.mcast  # force group join now
        from .collective.barrier_p2p import barrier_mpich
        yield from barrier_mpich(self)

    def free(self) -> None:
        """Release multicast resources (idempotent).

        Closing the channels emits one IGMP leave per joined group, so
        the switches' snooped member sets shrink and no stale group
        entry keeps forwarding frames toward this communicator.
        """
        if self._freed:
            return
        self._freed = True
        if self._mcast is not None:
            self._mcast.close()
            self._mcast = None
        if self._hier is not None:
            self._hier.close()
            self._hier = None

    # ------------------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(
                f"rank {rank} out of range for communicator of size "
                f"{self.size}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Communicator ctx={self.ctx} rank={self.rank}/"
                f"{self.size}>")
