"""MPI datatypes and message-size accounting.

Follows the mpi4py convention the guides describe: **lowercase** methods
move generic Python objects (sized by their pickle), **uppercase** methods
move buffer-like objects (NumPy arrays) with an explicit
:class:`Datatype`.  Inside the simulator neither path serializes real
bytes — only the *size* matters for timing — but sizes are computed
exactly the way a real implementation would see them.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = [
    "Datatype", "BYTE", "CHAR", "INT", "LONG", "FLOAT", "DOUBLE",
    "COMPLEX", "BOOL", "payload_bytes", "datatype_of",
]


@dataclass(frozen=True)
class Datatype:
    """An MPI basic datatype: a name and an element size in bytes."""

    name: str
    size: int
    np_dtype: str

    def __repr__(self) -> str:
        return f"MPI.{self.name}"


BYTE = Datatype("BYTE", 1, "u1")
CHAR = Datatype("CHAR", 1, "S1")
INT = Datatype("INT", 4, "i4")
LONG = Datatype("LONG", 8, "i8")
FLOAT = Datatype("FLOAT", 4, "f4")
DOUBLE = Datatype("DOUBLE", 8, "f8")
COMPLEX = Datatype("COMPLEX", 16, "c16")
BOOL = Datatype("BOOL", 1, "?")

_NP_TO_DT = {
    "uint8": BYTE, "int32": INT, "int64": LONG,
    "float32": FLOAT, "float64": DOUBLE, "complex128": COMPLEX,
    "bool": BOOL,
}


def datatype_of(array: np.ndarray) -> Datatype:
    """Automatic datatype discovery for a NumPy array (mpi4py-style)."""
    dt = _NP_TO_DT.get(array.dtype.name)
    if dt is None:
        raise TypeError(f"no MPI datatype for NumPy dtype {array.dtype}")
    return dt


def payload_bytes(obj: Any) -> int:
    """Wire size of a Python object / buffer, as an MPI library sees it.

    * NumPy arrays: ``nbytes`` (buffer path, no pickling);
    * ``bytes``/``bytearray``/``memoryview``: raw length;
    * anything else: length of its pickle (object path).
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
