"""MPI reduction operations.

Each :class:`Op` carries a binary callable used two ways, mirroring
mpi4py: on the lowercase path it combines whole Python objects; on the
uppercase path it combines NumPy arrays elementwise.  All built-in ops are
associative (MPI requirement); commutativity is flagged because tree
reductions may only reorder operands for commutative ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

__all__ = ["Op", "SUM", "PROD", "MAX", "MIN", "LAND", "LOR",
           "BAND", "BOR", "MAXLOC", "MINLOC"]


@dataclass(frozen=True)
class Op:
    """A reduction operator."""

    name: str
    fn: Callable[[Any, Any], Any]
    commutative: bool = True

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def __repr__(self) -> str:
        return f"MPI.{self.name}"


def _sum(a, b):
    return a + b


def _prod(a, b):
    return a * b


def _max(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return max(a, b)


def _min(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return min(a, b)


def _land(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.logical_and(a, b)
    return bool(a) and bool(b)


def _lor(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.logical_or(a, b)
    return bool(a) or bool(b)


def _band(a, b):
    return a & b


def _bor(a, b):
    return a | b


def _maxloc(a, b):
    """Operands are (value, index) pairs; ties resolve to the lower index."""
    (av, ai), (bv, bi) = a, b
    if av > bv or (av == bv and ai <= bi):
        return (av, ai)
    return (bv, bi)


def _minloc(a, b):
    (av, ai), (bv, bi) = a, b
    if av < bv or (av == bv and ai <= bi):
        return (av, ai)
    return (bv, bi)


SUM = Op("SUM", _sum)
PROD = Op("PROD", _prod)
MAX = Op("MAX", _max)
MIN = Op("MIN", _min)
LAND = Op("LAND", _land)
LOR = Op("LOR", _lor)
BAND = Op("BAND", _band)
BOR = Op("BOR", _bor)
MAXLOC = Op("MAXLOC", _maxloc)
MINLOC = Op("MINLOC", _minloc)
