"""The MPI point-to-point engine ("device" layer).

Plays the role of MPICH's ADI/channel device (paper Fig. 1): one endpoint
per rank, with

* **envelope matching** — posted receives match messages on
  ``(context, source, tag)`` with ``ANY_SOURCE``/``ANY_TAG`` wildcards;
  unmatched arrivals park in the unexpected-message queue.  FIFO links +
  FIFO queues give MPI's non-overtaking guarantee;
* **eager protocol** — messages up to ``eager_threshold`` bytes travel in
  one shot, like MPICH's short/eager protocol;
* **rendezvous protocol** — larger messages first send a request-to-send
  (RTS); the data moves only after the receiver matches and replies
  clear-to-send (CTS), bounding unexpected-buffer usage;
* a **progress daemon** per endpoint that drains the socket, charges
  per-message receive + matching CPU time, and completes requests.

The endpoint socket pays TCP-like software costs (``tcp_send_us``/
``tcp_recv_us``) to model MPICH ch_p4; the multicast collectives in
:mod:`repro.core` deliberately bypass this layer, exactly as the paper's
implementation bypasses the MPICH layers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..simnet.host import Host
from ..simnet.kernel import Event
from ..simnet.udp import SocketClosed
from .status import ANY_SOURCE, ANY_TAG, Request, Status

__all__ = ["MpiEndpoint", "Envelope", "MPI_PORT", "DEFAULT_EAGER_THRESHOLD"]

#: well-known UDP port of the MPI p2p engine on every host
MPI_PORT = 5100

#: eager/rendezvous switch-over (bytes), MPICH-ch_p4-flavoured
DEFAULT_EAGER_THRESHOLD = 16 * 1024

_rts_ids = itertools.count(1)


@dataclass(frozen=True)
class Envelope:
    """MPI message envelope used for matching."""

    ctx: int
    src: int        #: source *rank within ctx's communicator*
    tag: int

    def matches(self, ctx: int, src: int, tag: int) -> bool:
        return (self.ctx == ctx
                and (src == ANY_SOURCE or self.src == src)
                and (tag == ANY_TAG or self.tag == tag))


@dataclass
class _Msg:
    """What rides inside a p2p datagram."""

    op: str                 #: "eager" | "rts" | "cts" | "data"
    env: Envelope
    data: Any
    nbytes: int
    src_addr: int           #: sender host address (for cts routing)
    rts_id: int = 0


@dataclass
class _PostedRecv:
    ctx: int
    src: int
    tag: int
    event: Event


class MpiEndpoint:
    """Per-rank MPI engine bound to one simulated host."""

    def __init__(self, host: Host,
                 eager_threshold: int = DEFAULT_EAGER_THRESHOLD):
        self.host = host
        self.sim = host.sim
        self.params = host.params
        self.eager_threshold = eager_threshold
        self.sock = host.socket(
            MPI_PORT,
            buffer_bytes=4 * 1024 * 1024,      # ch_p4's TCP windows, roughly
            send_cost_us=host.params.tcp_send_us,
            recv_cost_us=host.params.tcp_recv_us,
        )
        self._posted: list[_PostedRecv] = []
        self._unexpected: list[_Msg] = []
        # sender side: rts_id -> (payload, nbytes, dst_addr, send_done event)
        self._rts_outstanding: dict[int, tuple[Any, int, int, Event]] = {}
        # receiver side: rts_id -> (recv event, envelope)
        self._cts_sent: dict[int, tuple[Event, Envelope]] = {}
        self.sent_messages = 0
        self.received_messages = 0
        self._progress_proc = self.sim.process(
            self._progress(), name=f"mpi-progress@{host.addr}", daemon=True)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def isend(self, ctx: int, src_rank: int, dst_addr: int, data: Any,
              nbytes: int, tag: int) -> Request:
        """Nonblocking send; the request completes at local completion.

        Eager: complete once the datagram is handed to the NIC.
        Rendezvous: complete once the CTS arrived and the data is out.
        """
        done = self.sim.event()
        env = Envelope(ctx=ctx, src=src_rank, tag=tag)
        if nbytes <= self.eager_threshold:
            self.sim.process(
                self._send_eager(env, dst_addr, data, nbytes, done),
                name=f"isend@{self.host.addr}")
        else:
            self.sim.process(
                self._send_rts(env, dst_addr, data, nbytes, done),
                name=f"isend-rndv@{self.host.addr}")
        return Request(event=done, kind="send")

    def _send_eager(self, env: Envelope, dst_addr: int, data: Any,
                    nbytes: int, done: Event) -> Generator:
        msg = _Msg("eager", env, data, nbytes, self.host.addr)
        yield from self.sock.sendto(msg, nbytes + self.params.mpi_header,
                                    dst_addr, MPI_PORT, kind="p2p")
        self.sent_messages += 1
        done.succeed((None, Status(source=env.src, tag=env.tag,
                                   count=nbytes)))

    def _send_rts(self, env: Envelope, dst_addr: int, data: Any,
                  nbytes: int, done: Event) -> Generator:
        rts_id = next(_rts_ids)
        self._rts_outstanding[rts_id] = (data, nbytes, dst_addr, done)
        msg = _Msg("rts", env, None, nbytes, self.host.addr, rts_id)
        yield from self.sock.sendto(msg, self.params.mpi_header,
                                    dst_addr, MPI_PORT, kind="p2p-rts")

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def irecv(self, ctx: int, src: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> Request:
        """Nonblocking receive: matches eager data or answers an RTS."""
        event = self.sim.event()
        msg = self._match_unexpected(ctx, src, tag)
        if msg is None:
            self._posted.append(_PostedRecv(ctx, src, tag, event))
        elif msg.op == "eager":
            event.succeed((msg.data, Status(source=msg.env.src,
                                            tag=msg.env.tag,
                                            count=msg.nbytes)))
        elif msg.op == "rts":
            self._answer_rts(msg, event)
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unexpected queue held {msg.op!r}")
        return Request(event=event, kind="recv")

    def _match_unexpected(self, ctx: int, src: int,
                          tag: int) -> Optional[_Msg]:
        for i, msg in enumerate(self._unexpected):
            if msg.env.matches(ctx, src, tag):
                return self._unexpected.pop(i)
        return None

    def iprobe(self, ctx: int, src: int = ANY_SOURCE,
               tag: int = ANY_TAG) -> Optional[Status]:
        """Non-blocking probe: Status of a matchable unexpected message
        (eager or RTS) without consuming it, or None."""
        for msg in self._unexpected:
            if msg.env.matches(ctx, src, tag):
                return Status(source=msg.env.src, tag=msg.env.tag,
                              count=msg.nbytes)
        return None

    def _answer_rts(self, msg: _Msg, event: Event) -> None:
        self._cts_sent[msg.rts_id] = (event, msg.env)
        self.sim.process(self._send_cts(msg),
                         name=f"cts@{self.host.addr}")

    def _send_cts(self, msg: _Msg) -> Generator:
        cts = _Msg("cts", msg.env, None, msg.nbytes, self.host.addr,
                   msg.rts_id)
        yield from self.sock.sendto(cts, self.params.mpi_header,
                                    msg.src_addr, MPI_PORT, kind="p2p-cts")

    # ------------------------------------------------------------------
    # progress engine
    # ------------------------------------------------------------------
    def _progress(self) -> Generator:
        while True:
            try:
                dgram = yield from self.sock.recv()
            except SocketClosed:
                return              # endpoint torn down: daemon exits
            yield from self.host.cpu.use(
                self.host.jitter(self.params.mpi_match_us))
            self._handle(dgram.payload)

    def close(self) -> None:
        """Tear the endpoint down: closing the socket releases its port
        and group memberships and wakes the progress daemon with
        :class:`~repro.simnet.udp.SocketClosed`, so it exits instead of
        holding a posted descriptor forever (the leak sanitizer checks
        exactly this — see :mod:`repro.runtime.sanitize`)."""
        self.sock.close()

    def _handle(self, msg: _Msg) -> None:
        if msg.op == "eager":
            self.received_messages += 1
            posted = self._match_posted(msg.env)
            if posted is None:
                self._unexpected.append(msg)
            else:
                posted.event.succeed((msg.data,
                                      Status(source=msg.env.src,
                                             tag=msg.env.tag,
                                             count=msg.nbytes)))
        elif msg.op == "rts":
            posted = self._match_posted(msg.env)
            if posted is None:
                self._unexpected.append(msg)
            else:
                self._answer_rts(msg, posted.event)
        elif msg.op == "cts":
            data, nbytes, dst_addr, done = self._rts_outstanding.pop(
                msg.rts_id)
            self.sim.process(
                self._send_rndv_data(msg, data, nbytes, dst_addr, done),
                name=f"rndv-data@{self.host.addr}")
        elif msg.op == "data":
            self.received_messages += 1
            event, env = self._cts_sent.pop(msg.rts_id)
            event.succeed((msg.data, Status(source=env.src, tag=env.tag,
                                            count=msg.nbytes)))
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown p2p op {msg.op!r}")

    def _send_rndv_data(self, cts: _Msg, data: Any, nbytes: int,
                        dst_addr: int, done: Event) -> Generator:
        msg = _Msg("data", cts.env, data, nbytes, self.host.addr,
                   cts.rts_id)
        yield from self.sock.sendto(msg, nbytes + self.params.mpi_header,
                                    dst_addr, MPI_PORT, kind="p2p")
        self.sent_messages += 1
        done.succeed((None, Status(source=cts.env.src, tag=cts.env.tag,
                                   count=nbytes)))

    def _match_posted(self, env: Envelope) -> Optional[_PostedRecv]:
        for i, posted in enumerate(self._posted):
            if env.matches(posted.ctx, posted.src, posted.tag):
                return self._posted.pop(i)
        return None

    # -- introspection ---------------------------------------------------
    @property
    def unexpected_depth(self) -> int:
        return len(self._unexpected)

    @property
    def posted_depth(self) -> int:
        return len(self._posted)
