"""MPI Status and Request objects (mpi4py-flavoured)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..simnet.kernel import Event

__all__ = ["Status", "Request", "ANY_SOURCE", "ANY_TAG"]

#: wildcard source rank for receives
ANY_SOURCE = -1
#: wildcard tag for receives
ANY_TAG = -1


@dataclass
class Status:
    """Receive metadata: who sent, with what tag, how many bytes."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    count: int = 0

    def Get_source(self) -> int:
        return self.source

    def Get_tag(self) -> int:
        return self.tag

    def Get_count(self) -> int:
        return self.count


@dataclass
class Request:
    """Handle on an in-flight nonblocking operation.

    ``wait`` is a generator (``data = yield from req.wait()``); ``test``
    is an instantaneous poll.  The event's value is ``(data, Status)``.
    """

    event: Event
    kind: str = "recv"                #: "send" | "recv" (informational)
    status: Status = field(default_factory=Status)

    def wait(self) -> Generator:
        data, status = yield self.event
        self.status.__dict__.update(status.__dict__)
        return data

    def test(self) -> tuple[bool, Optional[Any]]:
        if not self.event.triggered:
            return False, None
        data, status = self.event.value
        self.status.__dict__.update(status.__dict__)
        return True, data

    @property
    def complete(self) -> bool:
        return self.event.triggered


def waitall(reqs: list[Request]) -> Generator:
    """``results = yield from waitall(reqs)`` — wait on many requests."""
    results = []
    for req in reqs:
        results.append((yield from req.wait()))
    return results


def waitany(reqs: list[Request]) -> Generator:
    """``index, data = yield from waitany(reqs)`` — wait for the first.

    Returns the index of the completed request and its data.  The other
    requests remain valid and can be waited on later.
    """
    if not reqs:
        raise ValueError("waitany needs at least one request")
    sim = None
    for req in reqs:
        done, data = req.test()
        if done:
            return reqs.index(req), data
        sim = req.event.sim
    yield sim.any_of([r.event for r in reqs])
    for i, req in enumerate(reqs):
        done, data = req.test()
        if done:
            return i, data
    raise AssertionError("any_of fired but no request completed")


def waitsome(reqs: list[Request]) -> Generator:
    """``pairs = yield from waitsome(reqs)`` — all currently-completable
    requests (at least one): list of (index, data) pairs."""
    first_idx, first_data = yield from waitany(reqs)
    out = [(first_idx, first_data)]
    for i, req in enumerate(reqs):
        if i == first_idx:
            continue
        done, data = req.test()
        if done:
            out.append((i, data))
    return out
