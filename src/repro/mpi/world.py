"""The MPI "world": endpoints, context-id allocation, COMM_WORLD.

One :class:`MpiWorld` exists per simulated job.  It owns an
:class:`~repro.mpi.p2p.MpiEndpoint` per host and hands out context ids.

Context-id agreement note: real MPICH agrees on new context ids with a
collective; here the world object *is* the agreed outcome (allocation is
deterministic and shared), while the communication cost of agreement is
still paid — ``dup``/``split`` perform a real allgather + broadcast +
barrier over the simulated network.  DESIGN.md §7 records this deviation.
"""

from __future__ import annotations

from ..simnet.topology import Cluster
from .communicator import Communicator
from .p2p import DEFAULT_EAGER_THRESHOLD, MpiEndpoint

__all__ = ["MpiWorld"]


class MpiWorld:
    """Job-wide MPI state over a simulated cluster."""

    def __init__(self, cluster: Cluster,
                 eager_threshold: int = DEFAULT_EAGER_THRESHOLD):
        self.cluster = cluster
        self.sim = cluster.sim
        self.endpoints: dict[int, MpiEndpoint] = {
            host.addr: MpiEndpoint(host, eager_threshold)
            for host in cluster.hosts
        }
        self._next_ctx = 1  # ctx 0 is COMM_WORLD
        # every communicator handed out, for shutdown(); Communicator
        # registers itself and free() is idempotent, so double frees
        # are harmless
        self._comms: list[Communicator] = []
        # hierarchical sub-channel slabs: ctx -> (group base, port base,
        # group count, live holders); see alloc_hier_slab
        self._hier_slabs: dict[int, list] = {}
        self._hier_free: list[tuple[int, int, int]] = []
        self._hier_next: "tuple[int, int] | None" = None

    # -- context ids -----------------------------------------------------
    def alloc_ctx(self) -> int:
        ctx = self._next_ctx
        self._next_ctx += 1
        return ctx

    def alloc_hier_slab(self, ctx: int, ngroups: int, group_base: int,
                        port_base: int) -> tuple[int, int]:
        """Reserve a (multicast-group-id, UDP-port) slab for one
        communicator's hierarchical sub-channels.

        Every member of a communicator builds its hierarchy lazily at
        the *same* collective moment and must derive identical group
        ids and ports without communicating; the shared world object is
        the deterministic allocator: the first rank to ask for a
        context's slab reserves ``ngroups`` consecutive group ids and
        ``2 * ngroups`` consecutive ports (data + scout per group), and
        every later caller reads the same reservation back.  Slabs are
        sized by the hierarchy actually built (leaf groups plus the
        recursive leader groups, :mod:`repro.mpi.collective.hier`), and
        recycled once every holder has freed its communicator
        (:meth:`free_hier_slab`), so neither deep fabrics nor
        long-lived jobs that churn communicators exhaust the port
        space.
        """
        if ctx in self._hier_slabs:
            entry = self._hier_slabs[ctx]
            group, port, n = entry[0], entry[1], entry[2]
            if n != ngroups:  # pragma: no cover - defensive
                raise AssertionError(
                    f"ctx {ctx} asked for {ngroups} hier groups but its "
                    f"slab was reserved for {n} — the hierarchy layout "
                    f"must be rank-invariant")
            entry[3] += 1
            return group, port
        for i, (group, port, n) in enumerate(self._hier_free):
            if n >= ngroups:
                del self._hier_free[i]
                self._hier_slabs[ctx] = [group, port, ngroups, 1]
                return group, port
        if self._hier_next is None:
            self._hier_next = (group_base, port_base)
        group, port = self._hier_next
        if port + 2 * ngroups > 65536:
            raise RuntimeError(
                f"out of UDP port space for hierarchical sub-channels "
                f"(ctx {ctx} needs {2 * ngroups} ports at {port})")
        self._hier_slabs[ctx] = [group, port, ngroups, 1]
        self._hier_next = (group + ngroups, port + 2 * ngroups)
        return group, port

    def free_hier_slab(self, ctx: int) -> None:
        """Release one holder's claim on a context's hier slab.

        Called by each rank's ``HierState.close()``; when the last
        holder lets go (every member freed its communicator, so no
        socket is bound on the slab's ports any more) the slab joins
        the free list and later communicators reuse it instead of
        marching the port space forward forever.
        """
        entry = self._hier_slabs.get(ctx)
        if entry is None:  # pragma: no cover - defensive
            return
        entry[3] -= 1
        if entry[3] <= 0:
            del self._hier_slabs[ctx]
            self._hier_free.append((entry[0], entry[1], entry[2]))

    def alloc_ctx_range(self, n: int) -> int:
        """Reserve ``n`` consecutive context ids; returns the first."""
        if n < 1:
            raise ValueError(f"need at least one ctx, got {n}")
        base = self._next_ctx
        self._next_ctx += n
        return base

    # -- lifecycle -------------------------------------------------------
    def register_comm(self, comm: Communicator) -> None:
        """Track a communicator so :meth:`shutdown` can free it."""
        self._comms.append(comm)

    def shutdown(self) -> None:
        """MPI_Finalize analogue: free every communicator (emitting the
        IGMP leaves for their multicast channels) and close every
        endpoint.  Idempotent; used by the ``REPRO_SANITIZE`` teardown
        (:mod:`repro.runtime.sanitize`) to prove the job leaks nothing.
        The caller still has to run the simulator afterwards so the
        close/leave events propagate."""
        for comm in self._comms:
            comm.free()
        self._comms.clear()
        for endpoint in self.endpoints.values():
            endpoint.close()

    # -- communicators ------------------------------------------------------
    def comm_world(self, rank: int) -> Communicator:
        """Rank ``rank``'s COMM_WORLD view (ranks = host addresses 0..n-1)."""
        addrs = [host.addr for host in self.cluster.hosts]
        return Communicator(self, ctx=0, rank=rank, ranks=addrs)
