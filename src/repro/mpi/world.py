"""The MPI "world": endpoints, context-id allocation, COMM_WORLD.

One :class:`MpiWorld` exists per simulated job.  It owns an
:class:`~repro.mpi.p2p.MpiEndpoint` per host and hands out context ids.

Context-id agreement note: real MPICH agrees on new context ids with a
collective; here the world object *is* the agreed outcome (allocation is
deterministic and shared), while the communication cost of agreement is
still paid — ``dup``/``split`` perform a real allgather + broadcast +
barrier over the simulated network.  DESIGN.md §7 records this deviation.
"""

from __future__ import annotations

from ..simnet.topology import Cluster
from .communicator import Communicator
from .p2p import DEFAULT_EAGER_THRESHOLD, MpiEndpoint

__all__ = ["MpiWorld"]


class MpiWorld:
    """Job-wide MPI state over a simulated cluster."""

    def __init__(self, cluster: Cluster,
                 eager_threshold: int = DEFAULT_EAGER_THRESHOLD):
        self.cluster = cluster
        self.sim = cluster.sim
        self.endpoints: dict[int, MpiEndpoint] = {
            host.addr: MpiEndpoint(host, eager_threshold)
            for host in cluster.hosts
        }
        self._next_ctx = 1  # ctx 0 is COMM_WORLD

    # -- context ids -----------------------------------------------------
    def alloc_ctx(self) -> int:
        ctx = self._next_ctx
        self._next_ctx += 1
        return ctx

    def alloc_ctx_range(self, n: int) -> int:
        """Reserve ``n`` consecutive context ids; returns the first."""
        if n < 1:
            raise ValueError(f"need at least one ctx, got {n}")
        base = self._next_ctx
        self._next_ctx += n
        return base

    # -- communicators ------------------------------------------------------
    def comm_world(self, rank: int) -> Communicator:
        """Rank ``rank``'s COMM_WORLD view (ranks = host addresses 0..n-1)."""
        addrs = [host.addr for host in self.cluster.hosts]
        return Communicator(self, ctx=0, rank=rank, ranks=addrs)
