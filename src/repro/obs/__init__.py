"""``repro.obs`` — the opt-in deterministic flight recorder.

Span tracing (collective → hier phase → NACK round → frame hop),
per-collective-call metrics, Perfetto/text exporters and hang
diagnostics, all fed from the single-branch hook points defined by
:class:`repro.simnet.trace.RecorderHooks` and threaded through every
layer of the stack.  See ``docs/OBSERVABILITY.md``.

Layering: this package sits beside the substrate — it may import
``repro.simnet`` (for the hook vocabulary) and nothing higher; every
producer layer reaches it only duck-typed through ``stats.recorder``.
"""

from .export import (format_event, perfetto_doc, perfetto_json,
                     text_report, write_trace)
from .hang import build_hang_dump
from .metrics import CallRecord
from .trace import (TRACE_ENV, FlightRecorder, drain_recorders,
                    register_recorder, trace_enabled)

__all__ = [
    "CallRecord", "FlightRecorder", "TRACE_ENV", "build_hang_dump",
    "drain_recorders", "format_event", "perfetto_doc", "perfetto_json",
    "register_recorder", "text_report", "trace_enabled", "write_trace",
]
