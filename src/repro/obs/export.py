"""Exporters: Chrome/Perfetto ``trace.json`` and a per-rank text report.

Both exports are byte-deterministic for a given seeded run: events come
out of the recorder in dispatch order, JSON is serialized canonically
(sorted keys, fixed indent), and the one process-global identifier a
frame carries — ``frame_id``, minted from a module-level counter that
keeps counting across simulations — is rebased to first-seen order
before serialization.  Re-running the same case twice in one process
therefore produces identical bytes even though the raw frame ids differ.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, List

__all__ = ["perfetto_doc", "perfetto_json", "text_report",
           "format_event", "write_trace"]

#: tid layout inside each rank's track group
TID_SPANS = 0    #: collective / phase / round spans
TID_WIRE = 1     #: frame instants

#: pid stride between runs when exporting several recorders at once
RUN_STRIDE = 4096


def _pid(run: int, rank: int) -> int:
    # rank -1 (unattributed/network) maps to the run's slot 0
    return run * RUN_STRIDE + rank + 1


def _norm_args(args, fid_map) -> dict:
    out = {}
    for key, value in args:
        if key == "frame":
            value = fid_map.setdefault(value, len(fid_map) + 1)
        out[key] = value
    return out


def perfetto_doc(recorders: Iterable) -> dict:
    """The Chrome trace-event document for one or more recorders."""
    events: List[dict] = []
    fid_map: dict = {}
    recorders = list(recorders)
    for run, rec in enumerate(recorders):
        names = {-1: f"run{run}:net"}
        for addr in sorted(rec._rank_of):
            names[rec._rank_of[addr]] = f"run{run}:rank{rec._rank_of[addr]}"
        for rank in sorted(names):
            events.append({"ph": "M", "name": "process_name",
                           "pid": _pid(run, rank), "tid": 0,
                           "args": {"name": names[rank]}})
        for ev in rec.events:
            if ev[0] == "span":
                _tag, rank, cat, name, t0, t1, args = ev
                events.append({"ph": "X", "pid": _pid(run, rank),
                               "tid": TID_SPANS, "cat": cat, "name": name,
                               "ts": t0, "dur": t1 - t0,
                               "args": _norm_args(args, fid_map)})
            else:
                _tag, rank, cat, name, ts, args = ev
                events.append({"ph": "i", "s": "t",
                               "pid": _pid(run, rank), "tid": TID_WIRE,
                               "cat": cat, "name": name, "ts": ts,
                               "args": _norm_args(args, fid_map)})
    return {"displayTimeUnit": "ms", "traceEvents": events}


def perfetto_json(recorders: Iterable) -> str:
    """Canonical bytes of :func:`perfetto_doc` (the determinism surface
    the trace tests compare byte for byte)."""
    return json.dumps(perfetto_doc(recorders), indent=2,
                      sort_keys=True) + "\n"


def format_event(ev, fid_map: dict = None) -> str:
    """One event as a stable single line (text report + hang dump).

    ``fid_map`` rebases the process-global ``frame`` ids to first-seen
    order, exactly like the Perfetto export — pass one (shared across
    the lines of a dump) to make the text byte-deterministic across
    reruns in one process.
    """
    if ev[0] == "span":
        _tag, rank, cat, name, t0, t1, args = ev
        head = f"{t0:12.1f}us +{t1 - t0:9.1f}us"
    else:
        _tag, rank, cat, name, ts, args = ev
        head = f"{ts:12.1f}us {'':>11}"
    who = f"rank{rank}" if rank >= 0 else "net"
    if fid_map is not None:
        args = tuple(_norm_args(args, fid_map).items())
    argstr = " ".join(f"{k}={v}" for k, v in args)
    return f"{head}  {who:>7} {cat:<10} {name:<24} {argstr}".rstrip()


def text_report(recorders: Iterable) -> str:
    """Per-rank report: collective calls with their metric records,
    the outside-traffic bucket, and the frames==NetStats cross-check."""
    lines: List[str] = []
    for run, rec in enumerate(list(recorders)):
        lines.append(f"== run {run} ==")
        by_rank: dict = {}
        for call in rec.calls:
            by_rank.setdefault(call.rank, []).append(call)
        for rank in sorted(by_rank):
            lines.append(f"-- rank{rank} --")
            for call in sorted(by_rank[rank], key=lambda c: c.t0):
                d = call.as_dict()
                frames = " ".join(f"{k}={v}" for k, v in
                                  sorted(d["frames_by_kind"].items()))
                lines.append(
                    f"  {d['t0_us']:12.1f}us {d['op']}:{d['impl']} "
                    f"({d['elapsed_us']:.1f}us) frames[{frames}] "
                    f"rounds={d['rounds']} repair={d['repair_rounds']} "
                    f"nacks={d['nack_reports']}/{d['nacks_sent']} "
                    f"pace={d['pacing_gap_us']:.1f}us "
                    f"drains={d['drain_timeouts']} "
                    f"posted_hw={d['posted_high_water']}")
                for label in sorted(d["phase_us"]):
                    lines.append(f"    phase {label}: "
                                 f"{d['phase_us'][label]:.1f}us")
        outside = " ".join(f"{k}={v}" for k, v in
                           sorted(rec.outside_frames.items()))
        lines.append(f"-- outside collectives -- [{outside}]")
        delta = rec.stats_delta()["frames_by_kind"] \
            if rec.cluster is not None else {}
        totals = rec.frame_totals()
        status = "exact" if {k: v for k, v in delta.items() if v} \
            == dict(totals) else "MISMATCH"
        lines.append(f"-- frame attribution vs NetStats: {status} --")
        lines.append(f"   attributed: {dict(sorted(totals.items()))}")
        lines.append("   netstats:   "
                     f"{ {k: v for k, v in sorted(delta.items()) if v} }")
    return "\n".join(lines) + "\n"


def write_trace(out_dir, recorders: Iterable) -> dict:
    """Write ``trace.json`` + ``report.txt`` under ``out_dir``; returns
    the paths written."""
    recorders = list(recorders)
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    trace_path = out / "trace.json"
    report_path = out / "report.txt"
    trace_path.write_text(perfetto_json(recorders))
    report_path.write_text(text_report(recorders))
    return {"trace": trace_path, "report": report_path}
