"""Hang diagnostics: what was everything doing when the run stalled?

:func:`build_hang_dump` renders the flight-recorder tail plus the live
simulation state into one deterministic text block: every live process
with its wait reason, every socket still holding posted receive
descriptors, and every open NACK round with the segment indices its
reassembler is still missing.  ``run_spmd`` calls it on three paths —
a ``max_sim_us`` deadline expiring with processes still live, a
:class:`~repro.simnet.kernel.DeadlockError`, and a ``REPRO_SANITIZE``
quiesce failure — and parks the text on ``recorder.hang_report``.
"""

from __future__ import annotations

from .export import format_event

__all__ = ["build_hang_dump"]

#: how many trailing recorder events the dump includes
TAIL_EVENTS = 40


def build_hang_dump(cluster, reason: str, tail: int = TAIL_EVENTS) -> str:
    sim = cluster.sim
    rec = cluster.stats.recorder
    lines = [f"== flight-recorder hang dump ({reason}) "
             f"at t={sim.now:.1f}us =="]

    lines.append("-- live processes --")
    snapshot = sim.process_snapshot()
    if not snapshot:
        lines.append("  (none)")
    for name, daemon, waiting in snapshot:
        tag = " [daemon]" if daemon else ""
        lines.append(f"  {name}{tag}: {waiting}")

    lines.append("-- posted receive descriptors --")
    posted_any = False
    for host in cluster.hosts:
        socks = host.ipstack._sockets
        for port in sorted(socks):
            depth = socks[port].posted_depth
            if depth:
                posted_any = True
                lines.append(f"  {host.name} port {port}: {depth} posted")
    if not posted_any:
        lines.append("  (none)")

    open_rounds = getattr(rec, "open_rounds", None)
    lines.append("-- open rounds --")
    entries = open_rounds() if open_rounds is not None else []
    if not entries:
        lines.append("  (none)")
    for rank, addr, label, missing in entries:
        who = f"rank{rank}" if rank >= 0 else f"host{addr}"
        lines.append(f"  {who} {label}: missing={missing}")

    events = getattr(rec, "events", None)
    if events:
        shown = min(tail, len(events))
        lines.append(f"-- last {shown} of {len(events)} events --")
        # One fid map across the tail: frame ids come from a counter
        # that keeps counting across simulations, so rebasing them to
        # first-seen order makes the dump byte-identical across reruns
        # of the same seeded case — the chaos fuzzer's replay contract.
        fid_map: dict = {}
        for ev in events[-shown:]:
            lines.append("  " + format_event(ev, fid_map))
    return "\n".join(lines) + "\n"
