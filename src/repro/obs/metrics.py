"""Per-collective-call metric records.

One :class:`CallRecord` accumulates everything the flight recorder
learns about a single collective call on a single rank: the frames its
host put on the wire (by kind), the NACK-repair activity of the round
engine underneath it, pacing stalls, drain timeouts, the
posted-descriptor high-water of its sockets, and the per-phase
sim-time split of hierarchical plans.

Records finalize into plain dicts (:meth:`CallRecord.as_dict`) so they
can ride on ``Communicator.metrics_log`` next to ``impl_log`` and join
sweep documents as deterministic columns — every field is derived from
the simulation clock and counters only, never the host machine.
"""

from __future__ import annotations

from collections import Counter

__all__ = ["CallRecord"]


class CallRecord:
    """Accumulator for one collective call (one rank, one dispatch)."""

    __slots__ = (
        "op", "impl", "rank", "addr", "t0", "t1",
        "frames_by_kind", "trunk_frames",
        "rounds", "repair_rounds", "nack_reports", "nacked_segments",
        "nacks_sent", "pacing_gap_us", "drain_timeouts",
        "posted_high_water", "phase_us",
    )

    def __init__(self, op: str, impl: str, rank: int, addr: int,
                 t0: float):
        self.op = op
        self.impl = impl
        self.rank = rank
        self.addr = addr
        self.t0 = t0
        self.t1 = t0
        #: frames this call's host originated, by kind — summing this
        #: over every call plus the recorder's outside bucket reproduces
        #: the cluster's ``NetStats.frames_by_kind`` delta exactly
        self.frames_by_kind: Counter = Counter()
        #: trunk re-serializations of frames this host originated
        self.trunk_frames = 0
        self.rounds = 0            #: round-engine rounds (serve or follow)
        self.repair_rounds = 0     #: rounds with ``rnd > 0``
        self.nack_reports = 0      #: non-empty segment reports received
        self.nacked_segments = 0   #: total missing segments across reports
        self.nacks_sent = 0        #: non-empty reports this rank sent
        self.pacing_gap_us = 0.0   #: total sender pacing stall time
        self.drain_timeouts = 0    #: receiver drain-timer expiries
        self.posted_high_water = 0  #: max posted descriptors seen per round
        #: per-phase sim-time of hierarchical plans, label -> µs
        self.phase_us: dict = {}

    @property
    def elapsed_us(self) -> float:
        return self.t1 - self.t0

    def as_dict(self) -> dict:
        """The finalized, deterministic record (plain JSON types)."""
        return {
            "op": self.op,
            "impl": self.impl,
            "rank": self.rank,
            "t0_us": self.t0,
            "t1_us": self.t1,
            "elapsed_us": self.t1 - self.t0,
            "frames_by_kind": {k: self.frames_by_kind[k]
                               for k in sorted(self.frames_by_kind)},
            "frames_sent": sum(self.frames_by_kind.values()),
            "trunk_frames": self.trunk_frames,
            "rounds": self.rounds,
            "repair_rounds": self.repair_rounds,
            "nack_reports": self.nack_reports,
            "nacked_segments": self.nacked_segments,
            "nacks_sent": self.nacks_sent,
            "pacing_gap_us": self.pacing_gap_us,
            "drain_timeouts": self.drain_timeouts,
            "posted_high_water": self.posted_high_water,
            "phase_us": {k: self.phase_us[k]
                         for k in sorted(self.phase_us)},
        }
