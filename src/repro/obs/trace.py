"""The flight recorder: deterministic structured spans over the stack.

:class:`FlightRecorder` subclasses the hook vocabulary defined by
:class:`repro.simnet.trace.RecorderHooks` and turns the hook stream into

* an append-only **event list** — instants (frame hops, NACKs, pacing
  stalls) and spans (collective → hier phase → NACK round), each keyed
  on the simulation clock, ready for the Perfetto/text exporters in
  :mod:`repro.obs.export`;
* **per-collective-call metrics** (:mod:`repro.obs.metrics`): frames a
  call's host put on the wire are attributed to the collective open on
  that host at transmission time (frames carry their source address),
  so summing every call plus the recorder's ``outside_frames`` bucket
  reproduces the cluster-wide ``NetStats`` frame deltas *exactly*;
* the live state hang diagnostics need (:mod:`repro.obs.hang`): which
  reassembly rounds are open and which segment indices they still miss.

Everything recorded derives from the simulation clock, addresses and
counters — never the host machine — so recordings of the same seeded
run are identical event for event.  The one process-global value in a
frame, its ``frame_id``, is normalized at export time.

Activation is opt-in: ``run_spmd`` attaches a recorder per cluster when
``REPRO_TRACE=1`` (:func:`trace_enabled`) and parks it in a module
registry (:func:`drain_recorders`) for whoever drives the run — the
``trace`` CLI, a test — to collect afterwards.
"""

from __future__ import annotations

import os
from collections import Counter
from typing import List, Optional

from repro.simnet.trace import RecorderHooks

from .metrics import CallRecord

__all__ = ["TRACE_ENV", "trace_enabled", "FlightRecorder",
           "register_recorder", "drain_recorders"]

#: set to 1/true/yes/on to have run_spmd attach a FlightRecorder
TRACE_ENV = "REPRO_TRACE"


def trace_enabled() -> bool:
    value = os.environ.get(TRACE_ENV, "").strip().lower()
    return value in ("1", "true", "yes", "on")


class FlightRecorder(RecorderHooks):
    """Collects spans, instants and per-call metrics from the hooks."""

    def __init__(self):
        #: append-only, dispatch-ordered (therefore deterministic):
        #: ``("span", rank, cat, name, t0, t1, args)`` appended when the
        #: span closes, ``("inst", rank, cat, name, ts, args)`` at the
        #: instant; ``args`` is a tuple of (key, value) pairs
        self.events: list = []
        #: finished CallRecords, in finish order
        self.calls: List[CallRecord] = []
        #: frames whose source host had no collective open (IGMP joins,
        #: rendezvous setup, progress-daemon traffic, ...)
        self.outside_frames: Counter = Counter()
        self.outside_trunk = 0
        #: filled by the hang-dump path on deadline/deadlock/quiesce
        self.hang_report: Optional[str] = None
        self.cluster = None
        self._stats0: Optional[dict] = None
        self._rank_of: dict = {}      # host addr -> rank
        self._stack_of: dict = {}     # host addr -> open CallRecord stack
        self._open_rounds: dict = {}  # (addr, label) -> (rank, missing_fn)

    # ------------------------------------------------------------ wiring
    def attach(self, cluster) -> "FlightRecorder":
        """Become ``cluster.stats.recorder`` and snapshot the counters
        (the baseline for :meth:`stats_delta`)."""
        if cluster.stats.recorder is not None:
            raise RuntimeError("cluster already has a recorder attached")
        cluster.stats.recorder = self
        self.cluster = cluster
        self._stats0 = cluster.stats.snapshot()
        return self

    def detach(self) -> None:
        if self.cluster is not None \
                and self.cluster.stats.recorder is self:
            self.cluster.stats.recorder = None

    def stats_delta(self) -> dict:
        """NetStats counter deltas since :meth:`attach`."""
        return self.cluster.stats.diff(self._stats0)

    def frame_totals(self) -> Counter:
        """Frame-send counts by kind, summed over every collective call
        (finished or still open) plus the outside bucket.  By
        construction equals the ``frames_by_kind`` delta of
        :meth:`stats_delta` — the exporter and the ``trace`` CLI assert
        exactly that."""
        total = Counter(self.outside_frames)
        for call in self.calls:
            total.update(call.frames_by_kind)
        for addr in sorted(self._stack_of):
            for call in self._stack_of[addr]:
                total.update(call.frames_by_kind)
        return +total

    def _call_of(self, addr) -> Optional[CallRecord]:
        stack = self._stack_of.get(addr)
        return stack[-1] if stack else None

    def _rank(self, addr) -> int:
        return self._rank_of.get(addr, -1)

    # ------------------------------------------------------- frame hooks
    def frame_sent(self, now, frame, via):
        kind = frame.kind
        call = self._call_of(frame.src)
        if call is not None:
            call.frames_by_kind[kind] += 1
        else:
            self.outside_frames[kind] += 1
        self.events.append((
            "inst", self._rank(frame.src), "frame", f"send:{kind}", now,
            (("src", frame.src), ("dst", frame.dst),
             ("frame", frame.frame_id), ("bytes", frame.wire_size),
             ("via", via))))

    def frame_forwarded(self, now, frame, via, trunk):
        if trunk:
            call = self._call_of(frame.src)
            if call is not None:
                call.trunk_frames += 1
            else:
                self.outside_trunk += 1
        self.events.append((
            "inst", self._rank(frame.src), "frame",
            f"{'trunk' if trunk else 'hop'}:{frame.kind}", now,
            (("src", frame.src), ("dst", frame.dst),
             ("frame", frame.frame_id), ("via", via))))

    def frame_delivered(self, now, frame, mac):
        self.events.append((
            "inst", self._rank(mac), "frame", f"recv:{frame.kind}", now,
            (("src", frame.src), ("dst", frame.dst),
             ("frame", frame.frame_id))))

    def frame_switched(self, now, frame, via, negress):
        self.events.append((
            "inst", self._rank(frame.src), "frame",
            f"switch:{frame.kind}", now,
            (("src", frame.src), ("dst", frame.dst),
             ("frame", frame.frame_id), ("via", via),
             ("egress", negress))))

    # ------------------------------------------------------- round hooks
    def round_begin(self, now, addr, role, seq, rnd, nsegs):
        call = self._call_of(addr)
        if call is not None:
            call.rounds += 1
            if rnd > 0:
                call.repair_rounds += 1
        return (addr, role, seq, rnd, nsegs, now)

    def round_end(self, now, token, posted_hw=0):
        addr, role, seq, rnd, nsegs, t0 = token
        call = self._call_of(addr)
        if call is not None and posted_hw > call.posted_high_water:
            call.posted_high_water = posted_hw
        self.events.append((
            "span", self._rank(addr), "round", f"{role}:r{rnd}", t0, now,
            (("seq", seq), ("round", rnd), ("nsegs", nsegs))))

    def pacing_stall(self, now, addr, gap_us):
        call = self._call_of(addr)
        if call is not None:
            call.pacing_gap_us += gap_us
        self.events.append((
            "inst", self._rank(addr), "round", "pace", now,
            (("gap_us", gap_us),)))

    def nack_report(self, now, addr, src, rnd, missing, budget):
        call = self._call_of(addr)
        if call is not None and missing:
            call.nack_reports += 1
            call.nacked_segments += len(missing)
        self.events.append((
            "inst", self._rank(addr), "round", "seg-report", now,
            (("src", src), ("round", rnd), ("missing", len(missing)),
             ("budget", budget))))

    def nack_sent(self, now, addr, rnd, missing):
        call = self._call_of(addr)
        if call is not None and missing:
            call.nacks_sent += 1
        self.events.append((
            "inst", self._rank(addr), "round", "nack", now,
            (("round", rnd), ("missing", len(missing)))))

    def repair_decision(self, now, addr, rnd, plan):
        if plan is None:
            outcome = "done"
        elif plan == "abort":
            outcome = "abort"
        else:
            outcome = f"repair:{len(plan)}"
        self.events.append((
            "inst", self._rank(addr), "round", "decision", now,
            (("round", rnd), ("plan", outcome))))

    def drain_timeout(self, now, addr, rnd, cancelled):
        call = self._call_of(addr)
        if call is not None:
            call.drain_timeouts += 1
        self.events.append((
            "inst", self._rank(addr), "round", "drain-timeout", now,
            (("round", rnd), ("cancelled", cancelled))))

    # ------------------------------------------------------- chaos hooks
    def chaos_fault_begin(self, now, name):
        self.events.append((
            "inst", -1, "chaos", f"fault:{name}", now, ()))
        return (name, now)

    def chaos_fault_end(self, now, token):
        name, t0 = token
        self.events.append((
            "span", -1, "chaos", f"fault:{name}", t0, now, ()))

    def round_open(self, now, addr, label, missing_fn):
        self._open_rounds[(addr, label)] = (self._rank(addr), missing_fn)

    def round_close(self, now, addr, label):
        self._open_rounds.pop((addr, label), None)

    def open_rounds(self) -> list:
        """Deterministic live view: ``(rank, addr, label, missing)``
        per still-open reassembly, sorted."""
        out = []
        for (addr, label) in sorted(self._open_rounds):
            rank, missing_fn = self._open_rounds[(addr, label)]
            missing = sorted(missing_fn()) if missing_fn is not None \
                else []
            out.append((rank, addr, label, missing))
        return out

    # -------------------------------------------------- collective hooks
    def collective_begin(self, now, addr, rank, op, impl):
        self._rank_of[addr] = rank
        call = CallRecord(op, impl, rank, addr, now)
        self._stack_of.setdefault(addr, []).append(call)
        return call

    def collective_end(self, now, token):
        call = token
        call.t1 = now
        stack = self._stack_of.get(call.addr)
        if stack and call in stack:
            stack.remove(call)
        self.calls.append(call)
        self.events.append((
            "span", call.rank, "collective", f"{call.op}:{call.impl}",
            call.t0, now,
            (("op", call.op), ("impl", call.impl))))
        return call.as_dict()

    def phase_begin(self, now, addr, label):
        return (addr, label, now)

    def phase_end(self, now, token):
        addr, label, t0 = token
        call = self._call_of(addr)
        if call is not None:
            call.phase_us[label] = call.phase_us.get(label, 0.0) \
                + (now - t0)
        self.events.append((
            "span", self._rank(addr), "phase", label, t0, now, ()))


# ---------------------------------------------------------------------------
# recorder hand-off registry (mirrors runtime.sanitize's pending list):
# run_spmd attaches recorders deep inside a benchmark runner; the driver
# that set REPRO_TRACE drains them here once the runner returns.
# ---------------------------------------------------------------------------
_recorders: List[FlightRecorder] = []


def register_recorder(rec: FlightRecorder) -> None:
    _recorders.append(rec)


def drain_recorders() -> List[FlightRecorder]:
    """Detach and return every recorder registered since the last drain."""
    out, _recorders[:] = list(_recorders), []
    for rec in out:
        rec.detach()
    return out
