"""``repro.runtime`` — launch SPMD rank programs on the simulated cluster."""

from .env import RankEnv
from .program import RunResult, run_spmd
from .skew import (FixedSkew, NoSkew, SkewModel, UniformSkew,
                   compute_phase)

__all__ = ["FixedSkew", "NoSkew", "RankEnv", "RunResult", "SkewModel",
           "UniformSkew", "compute_phase", "run_spmd"]
