"""Per-rank execution environment handed to SPMD programs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..mpi.communicator import Communicator
from ..simnet.host import Host
from ..simnet.kernel import Simulator

__all__ = ["RankEnv"]


@dataclass
class RankEnv:
    """Everything a rank program needs.

    ``records`` is a free-form scratch dict: programs may stash
    measurements there; :class:`~repro.runtime.program.RunResult` exposes
    all ranks' records to the caller.
    """

    rank: int
    size: int
    comm: Communicator
    host: Host
    sim: Simulator
    records: dict[str, Any] = field(default_factory=dict)

    @property
    def now(self) -> float:
        """Current simulation time in µs."""
        return self.sim.now

    def log(self, key: str, value: Any) -> None:
        """Append ``value`` to the record list under ``key``."""
        self.records.setdefault(key, []).append(value)
