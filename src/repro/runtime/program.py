"""SPMD program launcher: the mpiexec of the simulated cluster.

:func:`run_spmd` builds a cluster, boots an MPI world on it, starts one
rank per host (each a generator taking a :class:`~repro.runtime.env.RankEnv`),
runs the simulation to completion and returns a :class:`RunResult` with
per-rank return values, per-rank records, the final clock and network
statistics.

The MPI_Init analogue happens inside each rank: construct the COMM_WORLD
view, join the world's multicast group, and synchronize with a
point-to-point barrier so no rank can race ahead of another's group join
— after which the user's ``main`` runs.

Example::

    def main(env):
        data = env.rank if env.rank == 0 else None
        data = yield from env.comm.bcast(data, root=0)
        return data

    result = run_spmd(4, main, topology="hub", seed=7,
                      collectives={"bcast": "mcast-binary"})
    assert result.returns == [0, 0, 0, 0]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..mpi.p2p import DEFAULT_EAGER_THRESHOLD
from ..mpi.world import MpiWorld
from ..obs import (FlightRecorder, build_hang_dump, register_recorder,
                   trace_enabled)
from ..simnet.calibration import NetParams
from ..simnet.fabric import PartitionError
from ..simnet.kernel import DeadlockError
from ..simnet.topology import Cluster, build_cluster
from .env import RankEnv
from .sanitize import (LeakError, check_quiesced, register_for_teardown,
                       sanitize_enabled)
from .skew import NoSkew, SkewModel

__all__ = ["RunResult", "run_spmd"]


@dataclass
class RunResult:
    """Everything observable about one SPMD run."""

    returns: list[Any]
    records: list[dict[str, Any]]
    sim_time_us: float
    stats: dict[str, Any]
    cluster: Cluster
    world: MpiWorld
    init_done_us: float = 0.0
    call_logs: list[list[tuple]] = None

    def record_series(self, key: str) -> list[list[Any]]:
        """``records[rank][key]`` for every rank (empty list if absent)."""
        return [r.get(key, []) for r in self.records]

    def verify_safe_schedules(self) -> None:
        """Check the paper's §4 safety rule post-hoc: every rank issued
        the same sequence of collective calls (on COMM_WORLD).  Raises
        :class:`~repro.core.ordering.UnsafeScheduleError` otherwise.

        A run that *completed* was de-facto compatible; this validates
        the program's discipline explicitly (useful in tests and when
        auditing applications before switching them to multicast
        collectives).
        """
        from ..core.ordering import check_safe_schedule

        check_safe_schedule({rank: log for rank, log
                             in enumerate(self.call_logs or [])})


def run_spmd(n: int,
             main: Callable[[RankEnv], Any],
             topology: str = "switch",
             params: Optional[NetParams] = None,
             seed: int = 0,
             skew: Optional[SkewModel] = None,
             collectives: Optional[dict[str, str]] = None,
             eager_threshold: int = DEFAULT_EAGER_THRESHOLD,
             max_sim_us: Optional[float] = None,
             trunk_params: Optional[NetParams] = None,
             on_cluster: Optional[Callable[[Cluster], None]] = None,
             strict_deadlock: bool = False
             ) -> RunResult:
    """Run ``main`` as an ``n``-rank SPMD program on a fresh cluster.

    ``topology`` is ``"hub"``, ``"switch"``, or a tiered-fabric string
    like ``"tree:2x4"`` (2 leaf switches of 4 hosts each behind a core —
    see :mod:`repro.simnet.fabric`); ``trunk_params`` then sets the wire
    parameters of the switch-to-switch trunks.  ``collectives`` maps
    collective names to implementation names, e.g. ``{"bcast":
    "mcast-binary", "barrier": "mcast"}`` — the experiment knob of the
    whole reproduction.

    ``skew`` delays each rank's start (startup asynchrony); ``max_sim_us``
    bounds runaway simulations (e.g. intentional deadlocks in tests).

    ``on_cluster`` is the chaos-injection seam: called with the built
    cluster after the MPI world exists but before any rank process is
    started, so a caller can attach a flight recorder and install fault
    hooks / schedule fault timelines (:mod:`repro.chaos`) without
    monkey-patching.  On any failure escaping the simulation the raised
    exception carries ``repro_cluster`` / ``repro_world`` attributes so
    the caller can still reach the wreckage (hang dumps, teardown
    checks); a deadlock while the cluster reports active partition
    faults is re-raised as the typed
    :class:`~repro.simnet.fabric.PartitionError`.

    A *bounded* run (``max_sim_us`` set) that drains its event queues
    before the deadline with ranks still blocked returns quietly by
    default — the long-standing contract tests rely on to inspect
    intentionally wedged runs.  ``strict_deadlock=True`` restores
    deadlock semantics for that situation (the chaos fuzzer's crisp
    failure contract): it raises :class:`DeadlockError` — translated
    to :class:`PartitionError` when injected fabric faults are active
    — exactly as an unbounded run would.
    """
    if n < 1:
        raise ValueError(f"need at least 1 rank, got {n}")
    cluster = build_cluster(n, topology=topology, params=params, seed=seed,
                            trunk_params=trunk_params)
    world = MpiWorld(cluster, eager_threshold=eager_threshold)
    skew = skew if skew is not None else NoSkew()

    recorder = None
    if trace_enabled():
        # REPRO_TRACE=1: attach the flight recorder before any traffic
        # and park it in the hand-off registry for whoever drove the
        # run (the trace CLI, a test) to drain afterwards.
        recorder = FlightRecorder().attach(cluster)
        register_recorder(recorder)
    if on_cluster is not None:
        on_cluster(cluster)
    if recorder is None:
        # an on_cluster hook may have attached its own recorder; use it
        # for the hang-dump paths below
        recorder = cluster.stats.recorder

    returns: list[Any] = [None] * n
    records: list[dict[str, Any]] = [{} for _ in range(n)]
    init_times: list[float] = [0.0] * n
    comms: list[Any] = [None] * n

    def rank_program(rank: int):
        delay = skew.delay(rank)
        if delay > 0:
            yield cluster.sim.timeout(delay)
        comm = world.comm_world(rank)
        comms[rank] = comm
        if collectives:
            comm.use_collectives(**collectives)
        yield from comm._setup()
        init_times[rank] = cluster.sim.now
        env = RankEnv(rank=rank, size=n, comm=comm, host=comm.host,
                      sim=cluster.sim, records=records[rank])
        result = yield from main(env)
        returns[rank] = result

    for rank in range(n):
        cluster.sim.process(rank_program(rank), name=f"rank{rank}")

    try:
        end = cluster.sim.run(until=max_sim_us)
        if strict_deadlock and not cluster.sim._heap \
                and not cluster.sim._nowq:
            stuck = [p for p in cluster.sim._live_processes
                     if p.is_alive and not p.daemon]
            if stuck:
                # bounded run, but the queues drained before the
                # deadline: that is a deadlock, not a deadline cut
                raise DeadlockError(stuck)
    except DeadlockError as exc:
        if recorder is not None:
            recorder.hang_report = build_hang_dump(cluster, "deadlock")
        faults = cluster.partition_faults()
        if faults:
            # The world cannot make progress *and* the fabric is cut:
            # that is a partition, not a protocol deadlock.  Keep the
            # original as the cause for the full picture.
            perr = PartitionError(
                f"no progress possible with the fabric partitioned "
                f"({'; '.join(faults)})")
            perr.repro_cluster = cluster
            perr.repro_world = world
            raise perr from exc
        exc.repro_cluster = cluster
        exc.repro_world = world
        raise
    except BaseException as exc:
        # rank-program exceptions (McastLost, ...) propagate out of the
        # event loop; tag them so the caller can still reach the run's
        # wreckage for diagnostics and teardown.
        exc.repro_cluster = cluster
        exc.repro_world = world
        raise
    if recorder is not None and max_sim_us is not None and any(
            not daemon for _n, daemon, _w in
            cluster.sim.process_snapshot()):
        # the deadline cut the run off with rank work still live: dump
        # what everything was doing at the cut (who waits on what,
        # which descriptors are posted, which rounds are still open)
        recorder.hang_report = build_hang_dump(cluster, "deadline")
    if max_sim_us is None and sanitize_enabled():
        # REPRO_SANITIZE=1: a completed (unbounded) run must quiesce
        # cleanly now; the destructive teardown check runs later, from
        # the test fixture that drains this registry (repro.runtime
        # .sanitize).  Bounded runs are exempt — they cut the sim off
        # mid-flight on purpose.
        try:
            check_quiesced(cluster)
        except LeakError as exc:
            if recorder is not None:
                recorder.hang_report = build_hang_dump(cluster, "quiesce")
            exc.repro_cluster = cluster
            exc.repro_world = world
            raise
        register_for_teardown(cluster, world)
    return RunResult(returns=returns, records=records, sim_time_us=end,
                     stats=cluster.stats.snapshot(), cluster=cluster,
                     world=world, init_done_us=max(init_times),
                     call_logs=[c.call_log if c is not None else []
                                for c in comms])
