"""Deterministic-sim leak sanitizer (``REPRO_SANITIZE=1``).

The static side of the leak story lives in :mod:`repro.lint` (rule
LEAK01: every acquire needs a reachable release).  This module is the
*dynamic* side: with the environment variable ``REPRO_SANITIZE`` set,
:func:`repro.runtime.program.run_spmd` checks the cluster for leaked
transport state, in two phases:

1. **quiesce check** (non-destructive, right after the run completes):
   no socket may hold posted receive descriptors beyond its standing
   progress daemon, and the three membership ledgers — per-socket
   joined groups, the IP stack's refcounts, the NIC's hardware filter
   refcounts — must agree exactly;
2. **full teardown** (destructive, at test teardown via the autouse
   fixture in ``tests/conftest.py``): free every communicator, close
   every endpoint, run the event loop dry, then assert that no socket
   is bound, every membership ledger is empty, every switch in the
   fabric has forgotten every snooped group, and the event heap is
   drained.

Violations raise :class:`LeakError` with every finding listed, so a
leak introduced anywhere in the stack fails tier-1 loudly instead of
silently distorting later measurements.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterator, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mpi.world import MpiWorld
    from ..simnet.topology import Cluster

__all__ = ["LeakError", "sanitize_enabled", "check_quiesced",
           "full_teardown", "forced_teardown", "register_for_teardown",
           "drain_pending", "SANITIZE_ENV"]

#: environment variable that arms the sanitizer
SANITIZE_ENV = "REPRO_SANITIZE"


class LeakError(AssertionError):
    """Leaked transport state detected by the sanitizer."""


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` is set to a truthy value."""
    return os.environ.get(SANITIZE_ENV, "").strip().lower() in (
        "1", "true", "yes", "on")


def _switches(cluster: "Cluster") -> Iterator:
    if cluster.switch is not None:
        yield cluster.switch
    if cluster.fabric is not None:
        yield from cluster.fabric.nodes.values()


def _membership_problems(cluster: "Cluster") -> List[str]:
    """Cross-check the three membership ledgers on every host."""
    problems: List[str] = []
    for host in cluster.hosts:
        stack = host.ipstack
        expect: dict[int, int] = {}
        for sock in stack._sockets.values():
            for group in sock._groups:
                expect[group] = expect.get(group, 0) + 1
        if expect != stack._memberships:
            problems.append(
                f"{host.name}: IP-stack membership refcounts "
                f"{stack._memberships!r} != union of socket joins "
                f"{expect!r}")
        if stack._memberships != host.nic._mcast_refs:
            problems.append(
                f"{host.name}: NIC filter refcounts "
                f"{host.nic._mcast_refs!r} != IP-stack refcounts "
                f"{stack._memberships!r}")
    return problems


def check_quiesced(cluster: "Cluster") -> None:
    """Phase 1: a *completed* run must have consumed or cancelled every
    posted receive (the MPI progress daemon's one standing descriptor
    excepted) and kept the membership ledgers consistent."""
    from ..mpi.p2p import MPI_PORT

    problems: List[str] = []
    for host in cluster.hosts:
        for port in sorted(host.ipstack._sockets):
            sock = host.ipstack._sockets[port]
            limit = 1 if port == MPI_PORT else 0
            depth = sock.posted_depth
            if depth > limit:
                problems.append(
                    f"{host.name}: socket :{port} quiesced with {depth} "
                    f"posted receive(s), expected at most {limit} — a "
                    f"collective posted descriptors it neither consumed "
                    f"nor cancelled (cancel_recv_all)")
    problems.extend(_membership_problems(cluster))
    if problems:
        raise LeakError(
            "sanitizer: leaked state at quiesce:\n  "
            + "\n  ".join(problems))


def full_teardown(cluster: "Cluster", world: "MpiWorld") -> None:
    """Phase 2: tear the job down and assert nothing survives.

    Frees every communicator the world handed out (emitting the IGMP
    leaves), closes every endpoint, runs the event loop dry, then
    checks hosts, NICs, every switch, and the event heap are empty.
    """
    world.shutdown()
    cluster.sim.run()          # drain close/leave propagation
    _assert_torn_down(cluster)


def forced_teardown(cluster: "Cluster", world: "MpiWorld") -> None:
    """Teardown for a run that *failed* (a rank raised, a deadline cut
    it off, a deadlock tripped): the same end state as
    :func:`full_teardown`, reached tolerantly.

    Shutting the world down fails the posted receives of every rank
    still blocked mid-collective, so those generators die with
    :class:`~repro.simnet.udp.SocketClosed` (or their original error)
    as the event loop drains — each such crash aborts ``sim.run()``,
    so we keep draining until the heap is empty.  The chaos fuzzer
    (:mod:`repro.chaos.fuzz`) runs this after every crisp-failure case
    before asserting the leak ledgers, so "fails crisply" still means
    "leaks nothing".  Callers must restore any injected faults first
    (heal trunks, revive switches) or the IGMP leaves cannot propagate
    and the switch ledgers legitimately fail.
    """
    from ..simnet.kernel import DeadlockError

    world.shutdown()
    for _ in range(10_000):    # bounded: each iteration kills >= 1 process
        try:
            cluster.sim.run()
            break
        except DeadlockError:
            break              # heap drained, only wedged processes left
        except Exception:
            continue           # a dying rank's last gasp; keep draining
    _assert_torn_down(cluster)


def _assert_torn_down(cluster: "Cluster") -> None:
    """The shared post-teardown ledger assertions."""
    problems: List[str] = []
    for host in cluster.hosts:
        stack = host.ipstack
        if stack._sockets:
            problems.append(
                f"{host.name}: sockets still bound after teardown: "
                f"ports {sorted(stack._sockets)}")
        if stack._memberships:
            problems.append(
                f"{host.name}: residual IP-stack memberships "
                f"{stack._memberships!r}")
        if host.nic._mcast_refs:
            problems.append(
                f"{host.name}: residual NIC filter refcounts "
                f"{host.nic._mcast_refs!r}")
    for switch in _switches(cluster):
        stale = sorted(g for g in switch._mcast_table
                       if switch.members_of(g))
        if stale:
            problems.append(
                f"switch {switch.name}: snooped members remain for "
                f"groups {stale} — somebody skipped an IGMP leave")
    pending = len(cluster.sim._heap) + len(cluster.sim._nowq)
    if pending:
        problems.append(
            f"event heap not drained: {pending} "
            f"entries remain after teardown")
    if problems:
        raise LeakError(
            "sanitizer: leaked state after teardown:\n  "
            + "\n  ".join(problems))


# -- deferred-teardown registry ---------------------------------------
#
# run_spmd returns the live cluster to its caller (RunResult exposes it
# for inspection), so the destructive phase cannot run inline.  Runs
# register here; the autouse fixture in tests/conftest.py drains the
# list after each test and tears every registered run down.

_pending: List[Tuple["Cluster", "MpiWorld"]] = []


def register_for_teardown(cluster: "Cluster", world: "MpiWorld") -> None:
    _pending.append((cluster, world))


def drain_pending() -> List[Tuple["Cluster", "MpiWorld"]]:
    """Hand the registered runs to the caller and clear the registry."""
    items = list(_pending)
    _pending.clear()
    return items
