"""Startup skew and compute-phase models.

"The asynchronous nature of cluster computing makes it impossible for the
sender to know the receive status of the receiver" (paper §2) — skew is
*the* reason naive multicast loses messages and scout sync exists.  These
models inject that asynchrony reproducibly:

* :class:`NoSkew` — lockstep start (unrealistic; for deterministic tests);
* :class:`UniformSkew` — each rank starts uniformly within ``[0, max)`` µs;
* :class:`FixedSkew` — explicit per-rank delays (to script the "slow
  receiver" scenarios);
* :func:`compute_phase` — an in-loop pseudo-work delay so successive
  collective iterations don't enter in lockstep (what the benchmark
  harness uses between repetitions).
"""

from __future__ import annotations

import random
from typing import Generator, Protocol, Sequence

__all__ = ["SkewModel", "NoSkew", "UniformSkew", "FixedSkew",
           "compute_phase"]


class SkewModel(Protocol):
    """Anything that maps a rank to a start delay in µs."""

    def delay(self, rank: int) -> float:
        ...


class NoSkew:
    """All ranks start at t = 0."""

    def delay(self, rank: int) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "NoSkew()"


class UniformSkew:
    """Ranks start uniformly at random within ``[0, max_us)``."""

    def __init__(self, max_us: float, seed: int = 0):
        if max_us < 0:
            raise ValueError(f"max_us must be >= 0, got {max_us}")
        self.max_us = max_us
        self._rng = random.Random(seed)
        self._cache: dict[int, float] = {}

    def delay(self, rank: int) -> float:
        if rank not in self._cache:
            self._cache[rank] = self._rng.uniform(0.0, self.max_us)
        return self._cache[rank]

    def __repr__(self) -> str:
        return f"UniformSkew(max_us={self.max_us})"


class FixedSkew:
    """Explicit per-rank start delays."""

    def __init__(self, delays_us: Sequence[float]):
        if any(d < 0 for d in delays_us):
            raise ValueError("skew delays must be >= 0")
        self.delays_us = list(delays_us)

    def delay(self, rank: int) -> float:
        if rank >= len(self.delays_us):
            return 0.0
        return self.delays_us[rank]

    def __repr__(self) -> str:
        return f"FixedSkew({self.delays_us})"


def compute_phase(env, mean_us: float, jitter_frac: float = 0.5) -> Generator:
    """Simulate a local computation of roughly ``mean_us`` µs.

    The actual duration is uniform in ``mean ± mean*jitter_frac`` drawn
    from the rank's host RNG, so it is reproducible per seed.  Usage:
    ``yield from compute_phase(env, 100.0)``.
    """
    if mean_us < 0:
        raise ValueError(f"mean_us must be >= 0, got {mean_us}")
    lo = mean_us * (1.0 - jitter_frac)
    hi = mean_us * (1.0 + jitter_frac)
    duration = env.host.rng.uniform(lo, hi)
    yield env.sim.timeout(duration)
