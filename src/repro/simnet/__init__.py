"""``repro.simnet`` — the discrete-event network substrate.

Everything the paper's testbed provided in hardware, rebuilt in software:
a deterministic event kernel, CSMA/CD shared Ethernet (the hub), a
store-and-forward IGMP-snooping switch, and a UDP/IP stack with the
paper's receiver-readiness semantics.  See DESIGN.md §3.
"""

from .calibration import (FAST_ETHERNET_HUB, FAST_ETHERNET_SWITCH,
                          NetParams, VIA_SWITCH, quiet)
from .fabric import Fabric, FabricSpec, PartitionError, parse_topology
from .frame import BROADCAST, Frame, is_multicast, mcast_mac, wire_bytes
from .host import Host
from .ip import Datagram, GroupAllocator, fragment_sizes, is_group_addr
from .kernel import (AllOf, AnyOf, DeadlockError, Event, Interrupt, Process,
                     SimError, Simulator, Timeout)
from .link import FullLink, HalfLink
from .medium import ExcessiveCollisions, SharedMedium
from .nic import Nic
from .resource import Resource
from .stats import NetStats
from .switchdev import Switch
from .topology import TOPOLOGIES, Cluster, build_cluster
from .trace import RecorderHooks, TraceEvent, Tracer
from .udp import SocketClosed, UdpSocket

__all__ = [
    "AllOf", "AnyOf", "BROADCAST", "Cluster", "Datagram", "DeadlockError",
    "Event", "ExcessiveCollisions", "FAST_ETHERNET_HUB",
    "FAST_ETHERNET_SWITCH", "Fabric", "FabricSpec", "Frame", "FullLink",
    "GroupAllocator", "HalfLink", "Host", "Interrupt", "NetParams",
    "NetStats", "Nic", "PartitionError", "Process", "RecorderHooks",
    "Resource", "SharedMedium", "SimError",
    "Simulator", "SocketClosed", "Switch", "TOPOLOGIES", "Timeout",
    "TraceEvent", "Tracer", "UdpSocket", "VIA_SWITCH", "build_cluster",
    "fragment_sizes", "is_group_addr", "is_multicast", "mcast_mac",
    "parse_topology", "quiet", "wire_bytes",
]
