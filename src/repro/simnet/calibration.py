"""Timing calibration for the simulated cluster.

All constants are chosen to match the paper's platform: nine Pentium-III
workstations on 100 Mbps Fast Ethernet, connected through either a 3Com
shared hub or an HP ProCurve store-and-forward switch (DESIGN.md §5).

The per-message *software* overheads dominate small-message latency in the
paper's figures (MPICH broadcast with 4 processes starts near 400 µs at
size 0), so they are first-class parameters here.  Two presets —
:data:`FAST_ETHERNET_HUB` and :data:`FAST_ETHERNET_SWITCH` — reproduce the
figures; tests assert the resulting shapes, not absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "NetParams",
    "FAST_ETHERNET_HUB",
    "FAST_ETHERNET_SWITCH",
    "VIA_SWITCH",
    "quiet",
]


@dataclass(frozen=True)
class NetParams:
    """Every knob of the simulated platform, in µs and bytes."""

    # -- wire ------------------------------------------------------------
    rate_mbps: float = 100.0          #: link rate
    mtu: int = 1500                   #: max L2 payload (IP packet) bytes
    prop_delay_us: float = 0.5        #: cable propagation (per segment)

    # -- CSMA/CD (hub topology only) --------------------------------------
    slot_time_us: float = 5.12        #: 512 bit times at 100 Mbps
    jam_time_us: float = 3.2          #: collision jam signal
    max_attempts: int = 16            #: excessive-collision limit
    backoff_limit: int = 10           #: BEB exponent cap

    # -- switch ------------------------------------------------------------
    switch_latency_us: float = 12.0   #: lookup + scheduling per frame

    # -- host software path (per datagram) ---------------------------------
    udp_send_us: float = 48.0         #: sendto() syscall + UDP/IP stack
    udp_recv_us: float = 45.0         #: recvfrom() syscall + copy
    tcp_send_us: float = 75.0         #: MPICH ch_p4 p2p send path
    tcp_recv_us: float = 70.0         #: MPICH ch_p4 p2p recv path
    mpi_match_us: float = 8.0         #: MPI envelope matching overhead
    per_frame_rx_us: float = 4.0      #: NIC interrupt + IP input per frame
    per_frame_tx_us: float = 2.0      #: extra driver cost per extra fragment
    #: extra software on the multicast *data* path (group receive
    #: validation + posted-descriptor handling); scouts don't pay this,
    #: which reproduces the paper's cheap-barrier/dearer-bcast asymmetry
    mcast_send_extra_us: float = 15.0
    mcast_recv_extra_us: float = 45.0

    # -- protocol header sizes (bytes) --------------------------------------
    ip_header: int = 20
    udp_header: int = 8
    mpi_header: int = 24              #: our p2p envelope (ctx, src, tag, len)

    # -- stochastics ---------------------------------------------------------
    jitter_sigma: float = 0.06        #: lognormal sigma on software overheads
    socket_buffer_bytes: int = 65536  #: default UDP receive buffer

    # -- reliability knobs (ack-based multicast baseline) ---------------------
    #: PVM-style resend pacing: the sender re-multicasts the payload
    #: whenever acks have not all arrived within this interval — the
    #: "repeatedly sending the same message until acks were received" of
    #: Dunigan & Hall, whose extra data copies are why the paper found
    #: no performance gain in the approach.
    ack_timeout_us: float = 300.0
    max_retransmits: int = 40
    #: hard ceiling on NACK *repair rounds* per segmented transfer
    #: (``None`` = fall back to :attr:`max_retransmits`, the historical
    #: bound).  The round engine's drain timeout reads any silence as
    #: loss, so a receiver that can never be reached — a partitioned
    #: segment, a dead host — would otherwise keep the root spinning
    #: repair rounds for the full ``max_retransmits`` budget.  A small
    #: explicit bound converts that livelock into a crisp typed
    #: :class:`repro.core.rounds.McastLost` within a few rounds; the
    #: chaos fuzzer (:mod:`repro.chaos`) runs with this set low.
    max_repair_rounds: "int | None" = None

    # -- segmented multicast (mcast-seg-nack / mcast-seg-paced) ---------------
    #: user bytes per segment.  1460 + the 12-byte segment envelope fills
    #: exactly one UDP/IP MTU (1472 payload bytes), so every segment is a
    #: single Ethernet frame and the frame-count formula in
    #: :mod:`repro.core.segment` holds with one frame per segment.  The
    #: string ``"auto"`` selects the adaptive policy of
    #: :func:`repro.core.segment.plan_transport`: frame-sized logical
    #: segments, with the whole payload batched into a single datagram
    #: below :attr:`seg_auto_crossover` segments so small payloads never
    #: pay the per-datagram receive tax once per MTU.
    segment_bytes: "int | str" = 1460
    #: logical segments packed per ``mcast-seg`` datagram.  An int forces
    #: that batch factor; ``"auto"`` adapts it to the payload (whole
    #: payload in one datagram below the crossover) but only when
    #: ``segment_bytes`` is also ``"auto"``, so the explicit-size presets
    #: keep PR 1's one-frame-per-datagram wire behaviour.
    seg_batch: "int | str" = "auto"
    #: segment count below which the auto policy stops paying per-segment
    #: datagram taxes and ships the round as one batched datagram — the
    #: empirical ``mcast-seg-nack`` / ``mcast-ack`` latency crossover
    #: (about ten single-frame segments on the paper's platform).
    seg_auto_crossover: int = 10
    #: how long a receiver waits for the *next* expected segment before
    #: declaring the round over and NACKing what is still missing.  Must
    #: comfortably exceed the inter-segment arrival gap (wire
    #: serialization + per-segment receive software, ~200 µs at Fast
    #: Ethernet sizes) times the longest plausible run of lost segments.
    #: Since PR 3 this is the *cap*: the round engine scales the actual
    #: timeout to the round's expected serialization
    #: (:func:`repro.core.rounds.round_drain_timeout_us`), so a
    #: whole-round loss on a short round NACKs long before this.
    seg_drain_timeout_us: float = 2500.0
    #: fixed floor of the adaptive drain timeout, covering the arming
    #: skew between a leaf receiver (which starts its silence timer as
    #: soon as its scout is away) and the root (which streams only after
    #: the whole gather) plus scheduling jitter.
    seg_drain_floor_us: float = 700.0
    #: root-side inter-datagram pacing of the segment stream (paper §5:
    #: a sender overrunning a receiver's descriptor budget).  ``0`` sends
    #: back-to-back; a float inserts that many µs between data datagrams;
    #: ``"auto"`` derives the gap from the receiver software drain
    #: estimate (:meth:`seg_drain_estimate_us`).
    seg_pace_gap_us: "float | str" = 0.0
    #: when True, a root that learns from the NACK reports that some
    #: receiver runs a finite descriptor budget switches its *repair*
    #: rounds to auto-gap pacing with bursts capped at the smallest
    #: reported budget — slow receivers shrink the burst.
    seg_pace_feedback: bool = True
    #: receive-descriptor ring size receivers may hold on the multicast
    #: data socket (``None`` = unbounded, the pre-post-everything model).
    #: A finite budget turns a long unpaced burst into paper-§5 overrun:
    #: datagrams beyond the ring are dropped and must be NACK-repaired.
    seg_recv_budget: "int | None" = None
    #: per-receiver multicast data-datagram loss probability.  Wired to
    #: an actual probabilistic drop at every receiving socket: each
    #: ``mcast-seg`` datagram is dropped independently with this
    #: probability, from a per-host seeded RNG substream
    #: (``Host.loss_rng``), so lossy runs are exactly reproducible and
    #: counted in ``NetStats.drops_lossy``.  Point fault injection is
    #: still ``UdpSocket.drop_filter`` / finite ``seg_recv_budget``.
    #: The payload-aware auto policy folds the NACK-repair rounds this
    #: rate implies into its frame estimates
    #: (:func:`repro.analysis.framecount.expected_seg_repair_frames`) —
    #: on a lossy platform the selection crossover shifts toward the
    #: p2p trees and the hierarchical variants whose repairs stay off
    #: the trunks; ``benchmarks/bench_deep_fabric.py`` closes the loop
    #: between this prediction and the measured repair traffic.
    loss: float = 0.0

    label: str = field(default="custom", compare=False)

    # -- derived ---------------------------------------------------------
    @property
    def max_udp_payload(self) -> int:
        """User bytes that fit in the first fragment of a datagram."""
        return self.mtu - self.ip_header - self.udp_header

    @property
    def max_fragment_payload(self) -> int:
        """User bytes per subsequent IP fragment."""
        return self.mtu - self.ip_header

    def frames_for(self, user_bytes: int) -> int:
        """Number of Ethernet frames one UDP datagram of ``user_bytes`` takes.

        This matches the paper's ``floor(M/T) + 1`` model: one frame plus
        one more per full extra MTU of data.
        """
        if user_bytes < 0:
            raise ValueError(f"user_bytes must be >= 0: {user_bytes}")
        if user_bytes <= self.max_udp_payload:
            return 1
        rest = user_bytes - self.max_udp_payload
        full, part = divmod(rest, self.max_fragment_payload)
        return 1 + full + (1 if part else 0)

    def seg_drain_estimate_us(self, datagram_bytes: int) -> float:
        """Receiver software time to consume one data datagram: the
        recvfrom syscall + copy, the multicast validation/delivery extra,
        and the per-frame NIC/IP input cost of each fragment.  This is
        the budget the root's auto pacing gap must cover so a receiver
        re-posting descriptors one at a time is never overrun.
        """
        return (self.udp_recv_us + self.mcast_recv_extra_us
                + self.per_frame_rx_us * self.frames_for(datagram_bytes))


#: The paper's shared-hub platform.
FAST_ETHERNET_HUB = NetParams(label="fast-ethernet-hub")

#: The paper's switched platform (same constants; the topology object
#: decides whether frames traverse the CSMA/CD medium or the switch).
FAST_ETHERNET_SWITCH = NetParams(label="fast-ethernet-switch")

#: A VIA-style user-level network (the paper's closing future-work item:
#: "low latency protocols such as the Virtual Interface Architecture
#: standard typically require a receive descriptor to be posted before a
#: message arrives").  Kernel UDP/TCP costs collapse to a few µs of
#: doorbell + descriptor handling; the posted-receive requirement our
#: multicast data path already models becomes the *native* semantics.
#: Wire constants stay Fast-Ethernet so only the software path changes —
#: isolating exactly the effect the paper speculated about.
VIA_SWITCH = NetParams(
    label="via-switch",
    udp_send_us=8.0,
    udp_recv_us=7.0,
    tcp_send_us=10.0,        # VIA send doorbell + descriptor
    tcp_recv_us=9.0,
    mpi_match_us=2.0,
    per_frame_rx_us=1.5,
    per_frame_tx_us=0.5,
    mcast_send_extra_us=2.0,
    mcast_recv_extra_us=4.0,
    switch_latency_us=4.0,   # cut-through-ish era switch
)


def quiet(params: NetParams) -> NetParams:
    """A deterministic copy of ``params`` with all jitter disabled.

    Used by unit tests that assert exact timings and frame counts.
    """
    return replace(params, jitter_sigma=0.0, label=params.label + "-quiet")
