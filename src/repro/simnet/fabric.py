"""Multi-segment switched fabrics: a tree of switches joined by trunks.

The paper's platforms are a single hub or a single switch; this module
grows the simulator past that ceiling with the classic two-tier "switch
of switches" fabric: every **segment** is a leaf :class:`~repro.simnet.
switchdev.Switch` with its own hosts, and every leaf hangs off one core
switch through a full-duplex **trunk** whose links may carry their own
:class:`~repro.simnet.calibration.NetParams` (a faster or slower
backbone than the edge).

Three properties make the fabric more than wiring:

* **trunk accounting** — trunk half-links are created with
  ``is_trunk=True``, so every serialization on a switch-to-switch link
  lands in ``NetStats.frames_trunk`` / ``trunk_frames_by_kind``.  Trunks
  are the scarce, shared resource of a tiered network (Karonis &
  de Supinski's motivation for topology-aware collectives), and the
  hierarchical collectives of :mod:`repro.mpi.collective.hier` are
  judged by exactly this counter;
* **snooping across tiers** — IGMP report/leave frames are snooped at
  the ingress switch and propagated out its trunk ports (see
  :meth:`~repro.simnet.switchdev.Switch._snoop`), so the core learns
  which segments contain members and a leaf learns whether anyone
  *outside* its segment is interested.  A multicast frame therefore
  crosses each trunk at most once, and only toward segments with
  members — never once per member;
* **topology discovery** — the :class:`Fabric` exposes segment
  membership, per-host segment ids, and the trunk-hop distance matrix.
  :class:`~repro.simnet.topology.Cluster` forwards this API (degrading
  to one segment on flat topologies), and ranks query it at runtime via
  ``comm.world.cluster`` to elect per-segment leaders and to let the
  auto collective policy weigh trunk crossings.

Topology strings: ``parse_topology("tree:2x4")`` describes 2 segments of
4 hosts each; :func:`~repro.simnet.topology.build_cluster` accepts these
strings alongside ``"hub"`` and ``"switch"``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from .calibration import NetParams
from .host import Host
from .kernel import Simulator
from .link import HalfLink
from .stats import NetStats
from .switchdev import Switch

__all__ = ["FabricSpec", "Fabric", "parse_topology", "build_fabric"]

_TREE_RE = re.compile(r"^tree:(\d+)x(\d+)$")


@dataclass(frozen=True)
class FabricSpec:
    """A parsed tiered-topology description."""

    segments: int            #: leaf switches hanging off the core
    hosts_per_segment: int   #: hosts cabled to each leaf

    @property
    def n(self) -> int:
        return self.segments * self.hosts_per_segment


def parse_topology(spec: str) -> Optional[FabricSpec]:
    """Parse a topology string; ``None`` for the flat topologies.

    ``"tree:SxH"`` is S segments of H hosts each (``"tree:2x4"`` = two
    4-host leaf switches behind one core).  Anything else that is not a
    known flat topology raises.
    """
    match = _TREE_RE.match(spec)
    if match is None:
        return None
    segments, hosts = int(match.group(1)), int(match.group(2))
    if segments < 1 or hosts < 1:
        raise ValueError(f"topology {spec!r} needs at least one segment "
                         f"and one host per segment")
    return FabricSpec(segments=segments, hosts_per_segment=hosts)


class Fabric:
    """A two-tier switch fabric plus its discovery API."""

    def __init__(self, sim: Simulator, params: NetParams,
                 stats: NetStats,
                 trunk_params: Optional[NetParams] = None):
        self.sim = sim
        self.params = params
        self.stats = stats
        #: NetParams of the switch-to-switch trunk links (rate,
        #: propagation); defaults to the edge parameters.
        self.trunk_params = trunk_params if trunk_params is not None \
            else params
        self.core = Switch(sim, params, stats=stats, name="core")
        self.leaves: list[Switch] = []
        self._segments: list[list[int]] = []   # host addrs per segment
        self._segment_of: dict[int, int] = {}

    # -- construction ----------------------------------------------------
    def add_segment(self, hosts: list[Host]) -> Switch:
        """Wire ``hosts`` to a fresh leaf switch, trunked to the core."""
        seg_id = len(self.leaves)
        leaf = Switch(self.sim, self.params, stats=self.stats,
                      name=f"leaf{seg_id}")
        for host in hosts:
            port_holder: list[int] = []
            up = HalfLink(self.sim, self.params, self.stats,
                          deliver=_ingress(leaf, port_holder),
                          name=f"{host.name}->{leaf.name}")
            down = HalfLink(self.sim, self.params, self.stats,
                            deliver=host.nic.deliver,
                            name=f"{leaf.name}->{host.name}",
                            count_as_send=False)
            port_holder.append(leaf.add_port(down))
            host.nic.attach_link(up)
        # Trunk pair: each direction is an egress of one switch and the
        # ingress of the other; both carry the trunk NetParams and are
        # tallied in the trunk counters.
        core_holder: list[int] = []
        leaf_holder: list[int] = []
        leaf_to_core = HalfLink(self.sim, self.trunk_params, self.stats,
                                deliver=_ingress(self.core, core_holder),
                                name=f"{leaf.name}->core",
                                count_as_send=False, is_trunk=True)
        core_to_leaf = HalfLink(self.sim, self.trunk_params, self.stats,
                                deliver=_ingress(leaf, leaf_holder),
                                name=f"core->{leaf.name}",
                                count_as_send=False, is_trunk=True)
        leaf_holder.append(leaf.add_port(leaf_to_core, trunk=True))
        core_holder.append(self.core.add_port(core_to_leaf, trunk=True))
        self.leaves.append(leaf)
        self._segments.append([h.addr for h in hosts])
        for host in hosts:
            self._segment_of[host.addr] = seg_id
        return leaf

    # -- discovery -------------------------------------------------------
    @property
    def nsegments(self) -> int:
        return len(self._segments)

    def segment_of(self, addr: int) -> int:
        """Segment id of a host address."""
        try:
            return self._segment_of[addr]
        except KeyError:
            raise ValueError(f"host {addr} is not attached to this "
                             f"fabric") from None

    def segment_members(self, seg_id: int) -> list[int]:
        """Host addresses attached to segment ``seg_id``."""
        if not 0 <= seg_id < len(self._segments):
            raise ValueError(f"no segment {seg_id} in a "
                             f"{len(self._segments)}-segment fabric")
        return list(self._segments[seg_id])

    def trunk_hops(self, a: int, b: int) -> int:
        """Trunk serializations between hosts ``a`` and ``b``: 0 inside
        one segment, 2 across segments (up to the core, down again)."""
        return 0 if self.segment_of(a) == self.segment_of(b) else 2

    def trunk_distance_matrix(self) -> list[list[int]]:
        """``matrix[a][b]`` = trunk hops between host addrs a and b."""
        addrs = sorted(self._segment_of)
        return [[self.trunk_hops(a, b) for b in addrs] for a in addrs]


def build_fabric(sim: Simulator, params: NetParams, hosts: list[Host],
                 spec: FabricSpec, stats: NetStats,
                 trunk_params: Optional[NetParams] = None) -> Fabric:
    """Partition ``hosts`` into consecutive segments per ``spec`` and
    wire the two-tier fabric."""
    if len(hosts) != spec.n:
        raise ValueError(
            f"tree:{spec.segments}x{spec.hosts_per_segment} needs exactly "
            f"{spec.n} hosts, got {len(hosts)}")
    fabric = Fabric(sim, params, stats, trunk_params=trunk_params)
    per = spec.hosts_per_segment
    for s in range(spec.segments):
        fabric.add_segment(hosts[s * per:(s + 1) * per])
    return fabric


def _ingress(switch: Switch, port_holder: list[int]):
    """Bind the ingress callback to the port index assigned afterwards."""

    def ingress(frame):
        switch.receive(port_holder[0], frame)

    return ingress
