"""Multi-segment switched fabrics: a recursive tree of switches joined
by trunks.

The paper's platforms are a single hub or a single switch; this module
grows the simulator past that ceiling with recursive "switch of
switches" fabrics of any depth: every **segment** is a leaf
:class:`~repro.simnet.switchdev.Switch` with its own hosts, interior
switches aggregate subtrees, and every parent-child pair is joined by a
full-duplex **trunk** whose links may carry their own
:class:`~repro.simnet.calibration.NetParams` — per *tier*, so a fat-tree
style backbone (fast near the core, slower toward the edge, or the
reverse) is one list away.

Topology string grammar (accepted by
:func:`~repro.simnet.topology.build_cluster` alongside ``"hub"`` and
``"switch"``):

* ``"tree:SxH"`` — the classic two-tier build: S leaf switches of H
  hosts each behind one core switch (``"tree:2x4"`` = 8 hosts);
* ``"tree:B1x...xBkxH"`` — an arbitrary-depth tree: the core fans out
  to B1 switches, each fans out to B2, ..., the last tier is
  ``B1*...*Bk`` leaf switches of H hosts each (``"tree:2x2x2"`` = a
  three-tier tree of 4 leaves, 8 hosts, with host pairs up to 4 trunk
  serializations apart);
* ``"tree:[n1,n2,...]"`` — heterogeneous segment sizes: one core, one
  leaf switch per list entry, ``ni`` hosts on leaf i
  (``"tree:[4,8,2]"`` = 14 hosts in three unequal segments).

Three properties make the fabric more than wiring:

* **trunk accounting** — trunk half-links are created with
  ``is_trunk=True``, so every serialization on a switch-to-switch link
  lands in ``NetStats.frames_trunk`` / ``trunk_frames_by_kind``.  Trunks
  are the scarce, shared resource of a tiered network (Karonis &
  de Supinski's motivation for topology-aware collectives), and the
  hierarchical collectives of :mod:`repro.mpi.collective.hier` are
  judged by exactly this counter;
* **snooping across tiers** — IGMP report/leave frames are snooped at
  the ingress switch and propagated out its trunk ports (see
  :meth:`~repro.simnet.switchdev.Switch._snoop`), so membership
  knowledge diffuses through any number of trunk hops: every switch in
  the tree learns which of its ports face downstream (or upstream)
  members.  A multicast frame therefore traverses exactly the trunk
  edges that separate the sender's segment from segments with members —
  once per edge, never once per member;
* **topology discovery** — the :class:`Fabric` exposes segment
  membership, per-host segment ids, per-segment tree *paths*, and true
  multi-level trunk-hop distances.
  :class:`~repro.simnet.topology.Cluster` forwards this API (degrading
  to one segment on flat topologies), and ranks query it at runtime via
  ``comm.world.cluster`` to elect per-segment leaders (recursively:
  leaders of leaders, see :mod:`repro.mpi.collective.hier`) and to let
  the auto collective policy weigh trunk crossings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from .calibration import NetParams
from .host import Host
from .kernel import SimError, Simulator
from .link import HalfLink
from .stats import NetStats
from .switchdev import Switch

__all__ = ["FabricSpec", "Fabric", "PartitionError", "parse_topology",
           "build_fabric", "path_trunk_hops"]


class PartitionError(SimError):
    """The run could not make progress because the fabric was
    partitioned: a trunk was down, a switch was dead, or a host's
    links were cut while ranks still depended on each other.

    Raised by :func:`repro.runtime.program.run_spmd` when a deadlock
    is detected *and* the cluster reports active partition faults
    (:meth:`~repro.simnet.topology.Cluster.partition_faults`) — the
    round engine itself cannot distinguish a partition from loss, but
    the launcher can, and a typed error beats a bare deadlock in every
    chaos postcondition.
    """

_TREE_RE = re.compile(r"^tree:(\d+(?:x\d+)+)$")
_TREE_LIST_RE = re.compile(r"^tree:\[(\d+(?:\s*,\s*\d+)*)\]$")

#: per-tier trunk wire parameters: one NetParams for every trunk, or a
#: sequence indexed by tier (0 = core-to-children; deeper tiers toward
#: the leaves reuse the last entry when the sequence is short)
TrunkParams = Union[NetParams, Sequence[NetParams], None]


@dataclass(frozen=True)
class FabricSpec:
    """A parsed tiered-topology description.

    ``branching`` lists the per-tier fan-outs from the core down to the
    leaf-switch tier (``(S,)`` for the two-tier ``tree:SxH``);
    ``leaf_sizes`` lists hosts per leaf segment in tree (DFS) order.
    The two-field constructor ``FabricSpec(segments, hosts_per_segment)``
    still describes the uniform two-tier fabric; the extra fields
    default accordingly.
    """

    segments: int            #: leaf switches of the tree
    hosts_per_segment: int   #: hosts per leaf (0 when heterogeneous)
    branching: tuple = ()    #: per-tier fan-out, core downwards
    leaf_sizes: tuple = ()   #: hosts per leaf segment, tree order

    def __post_init__(self):
        if not self.branching:
            object.__setattr__(self, "branching", (self.segments,))
        if not self.leaf_sizes:
            object.__setattr__(
                self, "leaf_sizes",
                (self.hosts_per_segment,) * self.segments)
        prod = 1
        for b in self.branching:
            prod *= b
        if (self.segments < 1 or prod != self.segments
                or len(self.leaf_sizes) != self.segments):
            raise ValueError(
                f"inconsistent fabric spec: branching {self.branching} "
                f"and leaf sizes {self.leaf_sizes} do not describe "
                f"{self.segments} segments")
        if any(b < 1 for b in self.branching) or any(
                sz < 1 for sz in self.leaf_sizes):
            raise ValueError(
                f"fabric spec needs at least one switch per tier and "
                f"one host per segment, got branching={self.branching} "
                f"leaf_sizes={self.leaf_sizes}")

    @property
    def n(self) -> int:
        return sum(self.leaf_sizes)

    @property
    def depth(self) -> int:
        """Switch tiers below the core (1 = the two-tier fabric)."""
        return len(self.branching)

    def leaf_paths(self) -> list[tuple]:
        """Tree path (child indices from the core) of every leaf, in
        segment order."""
        paths: list[tuple] = [()]
        for b in self.branching:
            paths = [p + (i,) for p in paths for i in range(b)]
        return paths


def parse_topology(spec: str) -> Optional[FabricSpec]:
    """Parse a topology string; ``None`` for the flat topologies.

    * ``"tree:SxH"`` — S segments of H hosts each behind one core;
    * ``"tree:B1x..xBkxH"`` — arbitrary-depth: per-tier branching
      factors, then hosts per leaf (``"tree:2x2x2"`` = 4 leaves of 2);
    * ``"tree:[n1,n2,...]"`` — heterogeneous two-tier: one leaf per
      entry, ``ni`` hosts on leaf i.

    Anything else that is not a known flat topology raises at the
    caller (:func:`~repro.simnet.topology.build_cluster`).
    """
    match = _TREE_LIST_RE.match(spec)
    if match is not None:
        sizes = tuple(int(tok) for tok in match.group(1).split(","))
        if any(sz < 1 for sz in sizes):
            raise ValueError(f"topology {spec!r} needs at least one "
                             f"host per segment")
        uniform = sizes[0] if len(set(sizes)) == 1 else 0
        return FabricSpec(segments=len(sizes),
                          hosts_per_segment=uniform,
                          leaf_sizes=sizes)
    match = _TREE_RE.match(spec)
    if match is None:
        return None
    nums = [int(tok) for tok in match.group(1).split("x")]
    if any(v < 1 for v in nums):
        raise ValueError(f"topology {spec!r} needs at least one switch "
                         f"per tier and one host per segment")
    branching, hosts = tuple(nums[:-1]), nums[-1]
    segments = 1
    for b in branching:
        segments *= b
    return FabricSpec(segments=segments, hosts_per_segment=hosts,
                      branching=branching)


def path_trunk_hops(pa: tuple, pb: tuple) -> int:
    """Trunk serializations between two segment tree paths: the edges
    up from ``pa`` to the lowest common ancestor and down to ``pb``
    (0 inside one segment, 2 across siblings, 4 across a three-tier
    fabric's halves, ...)."""
    common = 0
    for a, b in zip(pa, pb):
        if a != b:
            break
        common += 1
    return (len(pa) - common) + (len(pb) - common)


class Fabric:
    """A recursive switch-tree fabric plus its discovery API.

    Interior switches live at tree *paths* (tuples of child indices
    from the core, the core itself at ``()``); leaf switches carry the
    hosts.  ``trunk_params`` may be a single :class:`NetParams` for
    every trunk or a sequence indexed by tier (0 = the trunks leaving
    the core), so each level of the backbone can run its own wire
    speed.
    """

    def __init__(self, sim: Simulator, params: NetParams,
                 stats: NetStats, trunk_params: TrunkParams = None):
        self.sim = sim
        self.params = params
        self.stats = stats
        self.trunk_params = trunk_params
        self.core = Switch(sim, params, stats=stats, name="core")
        #: every switch of the tree, keyed by its path ('()' = core)
        self.nodes: dict[tuple, Switch] = {(): self.core}
        self.leaves: list[Switch] = []
        #: both half links of every trunk, keyed by the *child* path
        #: (``(up_toward_parent, down_toward_child)``) — the handle the
        #: partition API toggles
        self.trunks: dict[tuple, tuple[HalfLink, HalfLink]] = {}
        #: per-host access links ``addr -> (up_to_leaf, down_to_host)``,
        #: the handle the host-crash API toggles
        self.host_links: dict[int, tuple[HalfLink, HalfLink]] = {}
        self._segments: list[list[int]] = []   # host addrs per segment
        self._segment_of: dict[int, int] = {}
        self._paths: list[tuple] = []          # tree path per segment

    # -- construction ----------------------------------------------------
    def trunk_params_for(self, tier: int) -> NetParams:
        """Wire parameters of a trunk at ``tier`` (0 = leaving the core).
        A short per-tier sequence repeats its last entry downwards."""
        tp = self.trunk_params
        if tp is None:
            return self.params
        if isinstance(tp, NetParams):
            return tp
        if not tp:
            return self.params
        return tp[min(tier, len(tp) - 1)]

    def _connect(self, parent: Switch, child: Switch, tier: int,
                 path: tuple) -> None:
        """Wire the full-duplex trunk between ``parent`` and ``child``;
        both directions carry the tier's trunk NetParams and are tallied
        in the trunk counters.  ``path`` (the child's tree path) keys
        the trunk in :attr:`trunks` for the partition API."""
        tparams = self.trunk_params_for(tier)
        parent_holder: list[int] = []
        child_holder: list[int] = []
        up = HalfLink(self.sim, tparams, self.stats,
                      deliver=_ingress(parent, parent_holder),
                      name=f"{child.name}->{parent.name}",
                      count_as_send=False, is_trunk=True)
        down = HalfLink(self.sim, tparams, self.stats,
                        deliver=_ingress(child, child_holder),
                        name=f"{parent.name}->{child.name}",
                        count_as_send=False, is_trunk=True)
        child_holder.append(child.add_port(up, trunk=True))
        parent_holder.append(parent.add_port(down, trunk=True))
        self.trunks[path] = (up, down)

    def add_node(self, path: tuple) -> Switch:
        """Create an interior switch at ``path`` and trunk it to its
        (already existing) parent."""
        if not path or path in self.nodes:
            raise ValueError(f"cannot add interior switch at {path!r}")
        parent = self.nodes[path[:-1]]
        node = Switch(self.sim, self.params, stats=self.stats,
                      name="sw" + ".".join(map(str, path)))
        self.nodes[path] = node
        self._connect(parent, node, tier=len(path) - 1, path=path)
        return node

    def add_segment(self, hosts: list[Host],
                    path: Optional[tuple] = None) -> Switch:
        """Wire ``hosts`` to a fresh leaf switch at tree position
        ``path`` (default: directly under the core, the two-tier
        layout), trunked to its parent."""
        seg_id = len(self.leaves)
        if path is None:
            path = (seg_id,)
        if path in self.nodes or not path:
            raise ValueError(f"cannot add leaf switch at {path!r}")
        parent = self.nodes.get(path[:-1])
        if parent is None:
            raise ValueError(f"no parent switch at {path[:-1]!r} for a "
                             f"leaf at {path!r}")
        leaf = Switch(self.sim, self.params, stats=self.stats,
                      name=f"leaf{seg_id}")
        for host in hosts:
            port_holder: list[int] = []
            up = HalfLink(self.sim, self.params, self.stats,
                          deliver=_ingress(leaf, port_holder),
                          name=f"{host.name}->{leaf.name}")
            down = HalfLink(self.sim, self.params, self.stats,
                            deliver=host.nic.deliver,
                            name=f"{leaf.name}->{host.name}",
                            count_as_send=False)
            port_holder.append(leaf.add_port(down))
            host.nic.attach_link(up)
            self.host_links[host.addr] = (up, down)
        self.nodes[path] = leaf
        self._connect(parent, leaf, tier=len(path) - 1, path=path)
        self.leaves.append(leaf)
        self._segments.append([h.addr for h in hosts])
        for host in hosts:
            self._segment_of[host.addr] = seg_id
        self._paths.append(path)
        return leaf

    # -- chaos seams -----------------------------------------------------
    def partition_trunk(self, path: tuple):
        """Cut both directions of the trunk above the switch at
        ``path`` — the subtree below it can no longer exchange frames
        with the rest of the fabric.  Frames in flight still serialize
        (the transmitter cannot tell) but never arrive.  Returns the
        matching undo callable (== ``lambda: heal_trunk(path)``), so
        scenario code stacks it for teardown."""
        up, down = self.trunks[path]
        up.up = down.up = False
        return lambda: self.heal_trunk(path)

    def heal_trunk(self, path: tuple) -> None:
        """Restore a trunk cut by :meth:`partition_trunk`."""
        up, down = self.trunks[path]
        up.up = down.up = True

    def partition_faults(self) -> list[str]:
        """Human-readable descriptions of every active fault — downed
        trunks, dead switches — for :class:`PartitionError` messages
        and the launcher's deadlock classification."""
        faults = []
        for path in sorted(self.trunks):
            up, down = self.trunks[path]
            if not (up.up and down.up):
                faults.append(f"trunk above sw{path} down")
        for path in sorted(self.nodes):
            if not self.nodes[path].alive:
                faults.append(f"switch {self.nodes[path].name} dead")
        for addr in sorted(self.host_links):
            up, down = self.host_links[addr]
            if not (up.up and down.up):
                faults.append(f"host {addr} links down")
        return faults

    # -- discovery -------------------------------------------------------
    @property
    def nsegments(self) -> int:
        return len(self._segments)

    @property
    def depth(self) -> int:
        """Deepest switch tier below the core (1 = two-tier)."""
        return max((len(p) for p in self._paths), default=0)

    def segment_of(self, addr: int) -> int:
        """Segment id of a host address."""
        try:
            return self._segment_of[addr]
        except KeyError:
            raise ValueError(f"host {addr} is not attached to this "
                             f"fabric") from None

    def segment_members(self, seg_id: int) -> list[int]:
        """Host addresses attached to segment ``seg_id``."""
        if not 0 <= seg_id < len(self._segments):
            raise ValueError(f"no segment {seg_id} in a "
                             f"{len(self._segments)}-segment fabric")
        return list(self._segments[seg_id])

    def segment_path(self, seg_id: int) -> tuple:
        """Tree path of segment ``seg_id``'s leaf switch: the child
        indices walked from the core ('(i,)' on a two-tier build)."""
        if not 0 <= seg_id < len(self._paths):
            raise ValueError(f"no segment {seg_id} in a "
                             f"{len(self._paths)}-segment fabric")
        return self._paths[seg_id]

    def trunk_hops(self, a: int, b: int) -> int:
        """Trunk serializations between hosts ``a`` and ``b``: the
        number of switch-to-switch links on their path (0 inside one
        segment, 2 across sibling segments, up to ``2 * depth`` across
        the fabric's farthest corners)."""
        sa, sb = self.segment_of(a), self.segment_of(b)
        if sa == sb:
            return 0
        return path_trunk_hops(self._paths[sa], self._paths[sb])

    def trunk_path_tiers(self, a: int, b: int) -> list[int]:
        """Tier of every trunk edge on the a↔b path (one entry per
        hop counted by :meth:`trunk_hops`).  Lets latency models weigh
        each hop by its own tier's wire rate when ``trunk_params``
        differ per tier."""
        sa, sb = self.segment_of(a), self.segment_of(b)
        if sa == sb:
            return []
        pa, pb = self._paths[sa], self._paths[sb]
        common = 0
        for x, y in zip(pa, pb):
            if x != y:
                break
            common += 1
        # the edge above a node at depth d is a tier-(d-1) trunk
        return ([d - 1 for d in range(common + 1, len(pa) + 1)]
                + [d - 1 for d in range(common + 1, len(pb) + 1)])

    def trunk_distance_matrix(self) -> list[list[int]]:
        """``matrix[a][b]`` = trunk hops between host addrs a and b."""
        addrs = sorted(self._segment_of)
        return [[self.trunk_hops(a, b) for b in addrs] for a in addrs]


def build_fabric(sim: Simulator, params: NetParams, hosts: list[Host],
                 spec: FabricSpec, stats: NetStats,
                 trunk_params: TrunkParams = None) -> Fabric:
    """Partition ``hosts`` into consecutive segments per ``spec`` and
    wire the (possibly multi-tier) fabric."""
    if len(hosts) != spec.n:
        raise ValueError(
            f"fabric spec {spec.branching}x{spec.leaf_sizes} needs "
            f"exactly {spec.n} hosts, got {len(hosts)}")
    fabric = Fabric(sim, params, stats, trunk_params=trunk_params)
    # interior tiers first (top-down), so every leaf finds its parent;
    # `paths` holds the previous tier's node paths as we descend
    paths: list[tuple] = [()]
    for branch in spec.branching[:-1]:
        paths = [p + (i,) for p in paths for i in range(branch)]
        for path in paths:
            fabric.add_node(path)
    off = 0
    for path, size in zip(spec.leaf_paths(), spec.leaf_sizes):
        fabric.add_segment(hosts[off:off + size], path=path)
        off += size
    return fabric


def _ingress(switch: Switch, port_holder: list[int]):
    """Bind the ingress callback to the port index assigned afterwards."""

    def ingress(frame):
        switch.receive(port_holder[0], frame)

    return ingress
