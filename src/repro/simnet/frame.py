"""Ethernet frames and addressing for the simulated data-link layer.

Addresses are plain integers.  Host NICs get small non-negative ids;
multicast "MAC" addresses live above :data:`MCAST_BASE` (mirroring the
01:00:5e mapping of class-D IP addresses onto Ethernet multicast MACs);
:data:`BROADCAST` is the all-ones address.

Payloads are *not* serialized to real bytes inside the simulator — a frame
carries an opaque ``payload`` object plus the byte count that governs its
wire time.  This keeps the event loop fast (the guides' "compute less"
rule) while remaining byte-accurate for timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .units import bytes_to_us

__all__ = [
    "BROADCAST",
    "MCAST_BASE",
    "ETH_HEADER",
    "ETH_FCS",
    "ETH_PREAMBLE",
    "ETH_IFG",
    "ETH_MIN_PAYLOAD",
    "ETH_OVERHEAD",
    "Frame",
    "FramePool",
    "is_multicast",
    "mcast_mac",
    "release_frame",
    "retain_frame",
    "wire_bytes",
]

#: destination address meaning "all stations"
BROADCAST: int = 0xFFFF_FFFF_FFFF

#: multicast MAC space starts here (cf. 01:00:5e:00:00:00)
MCAST_BASE: int = 0x0100_5E00_0000

# Ethernet wire-format constants (bytes)
ETH_HEADER = 14       #: dst + src + ethertype
ETH_FCS = 4           #: frame check sequence
ETH_PREAMBLE = 8      #: preamble + SFD
ETH_IFG = 12          #: inter-frame gap (bytes at wire rate)
ETH_MIN_PAYLOAD = 46  #: minimum payload; shorter payloads are padded

#: non-payload bytes whose serialization time every frame pays
ETH_OVERHEAD = ETH_HEADER + ETH_FCS + ETH_PREAMBLE + ETH_IFG


def is_multicast(addr: int) -> bool:
    """True for multicast MAC addresses (but not broadcast)."""
    return MCAST_BASE <= addr < BROADCAST


def mcast_mac(group_id: int) -> int:
    """Map a small multicast group id onto the multicast MAC space."""
    if group_id < 0:
        raise ValueError(f"group id must be >= 0, got {group_id}")
    return MCAST_BASE + group_id


def wire_bytes(payload_bytes: int) -> int:
    """Total wire bytes (incl. padding, header, FCS, preamble, IFG)."""
    if payload_bytes < 0:
        raise ValueError(f"payload size must be >= 0, got {payload_bytes}")
    return max(payload_bytes, ETH_MIN_PAYLOAD) + ETH_OVERHEAD


_frame_counter = 0


def _next_frame_id() -> int:
    global _frame_counter
    _frame_counter += 1
    return _frame_counter


@dataclass(slots=True)
class Frame:
    """A single Ethernet frame.

    ``size`` is the L2 payload length in bytes (an IP fragment, here);
    ``payload`` is the opaque object delivered to the receiver; ``kind`` is
    a short label used by traces and statistics ("data", "scout", ...).

    Frames on the simulator's hot path come from a :class:`FramePool`
    (``_pool`` set, ``_refs`` counting in-flight forks) and are recycled
    when the last path releases them; directly-constructed frames — tests,
    one-off tools — have ``_pool is None`` and retain/release are no-ops.
    """

    src: int
    dst: int
    size: int
    payload: Any
    kind: str = "data"
    frame_id: int = field(default_factory=_next_frame_id)
    _refs: int = field(default=1, repr=False, compare=False)
    _pool: Optional["FramePool"] = field(default=None, repr=False,
                                         compare=False)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"frame payload size must be >= 0: {self.size}")

    @property
    def wire_size(self) -> int:
        """Bytes on the wire including all Ethernet overhead."""
        return wire_bytes(self.size)

    def wire_time_us(self, rate_mbps: float) -> float:
        """Serialization time of this frame at ``rate_mbps``."""
        return bytes_to_us(wire_bytes(self.size), rate_mbps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Frame#{self.frame_id}({self.kind} {self.src}->{self.dst} "
                f"{self.size}B)")


class FramePool:
    """A free-list recycler for :class:`Frame` objects.

    One pool is owned by each :class:`~repro.simnet.stats.NetStats` — the
    object already shared by every device in a cluster — so frames can
    never leak between concurrently-built simulations.  ``acquire`` pops a
    dead frame off the free list and rewrites its slots (fresh
    ``frame_id`` from the same global counter direct construction uses, so
    id sequences are unchanged); devices hand the single reference along
    the delivery chain, fork it with :func:`retain_frame` at multicast
    fan-out points, and drop it with :func:`release_frame` at each
    endpoint.  The last release clears ``payload`` (releasing the
    datagram for GC) and returns the frame to the list.
    """

    __slots__ = ("_free", "allocated", "reused")

    def __init__(self) -> None:
        self._free: list[Frame] = []
        #: frames constructed because the free list was empty
        self.allocated = 0
        #: acquisitions served by recycling a dead frame
        self.reused = 0

    def acquire(self, src: int, dst: int, size: int, payload: Any,
                kind: str) -> Frame:
        free = self._free
        if free:
            frame = free.pop()
            frame.src = src
            frame.dst = dst
            frame.size = size
            frame.payload = payload
            frame.kind = kind
            frame.frame_id = _next_frame_id()
            frame._refs = 1
            self.reused += 1
            return frame
        frame = Frame(src, dst, size, payload, kind)
        frame._pool = self
        self.allocated += 1
        return frame


def retain_frame(frame: Frame, extra: int) -> None:
    """Add ``extra`` in-flight references (multicast fork points)."""
    if frame._pool is not None:
        frame._refs += extra


def release_frame(frame: Frame) -> None:
    """Drop one reference; the last one recycles the frame to its pool."""
    pool = frame._pool
    if pool is None:
        return
    refs = frame._refs - 1
    if refs > 0:
        frame._refs = refs
    else:
        frame._refs = 0
        frame.payload = None
        pool._free.append(frame)
