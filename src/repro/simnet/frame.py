"""Ethernet frames and addressing for the simulated data-link layer.

Addresses are plain integers.  Host NICs get small non-negative ids;
multicast "MAC" addresses live above :data:`MCAST_BASE` (mirroring the
01:00:5e mapping of class-D IP addresses onto Ethernet multicast MACs);
:data:`BROADCAST` is the all-ones address.

Payloads are *not* serialized to real bytes inside the simulator — a frame
carries an opaque ``payload`` object plus the byte count that governs its
wire time.  This keeps the event loop fast (the guides' "compute less"
rule) while remaining byte-accurate for timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "BROADCAST",
    "MCAST_BASE",
    "ETH_HEADER",
    "ETH_FCS",
    "ETH_PREAMBLE",
    "ETH_IFG",
    "ETH_MIN_PAYLOAD",
    "ETH_OVERHEAD",
    "Frame",
    "is_multicast",
    "mcast_mac",
    "wire_bytes",
]

#: destination address meaning "all stations"
BROADCAST: int = 0xFFFF_FFFF_FFFF

#: multicast MAC space starts here (cf. 01:00:5e:00:00:00)
MCAST_BASE: int = 0x0100_5E00_0000

# Ethernet wire-format constants (bytes)
ETH_HEADER = 14       #: dst + src + ethertype
ETH_FCS = 4           #: frame check sequence
ETH_PREAMBLE = 8      #: preamble + SFD
ETH_IFG = 12          #: inter-frame gap (bytes at wire rate)
ETH_MIN_PAYLOAD = 46  #: minimum payload; shorter payloads are padded

#: non-payload bytes whose serialization time every frame pays
ETH_OVERHEAD = ETH_HEADER + ETH_FCS + ETH_PREAMBLE + ETH_IFG


def is_multicast(addr: int) -> bool:
    """True for multicast MAC addresses (but not broadcast)."""
    return MCAST_BASE <= addr < BROADCAST


def mcast_mac(group_id: int) -> int:
    """Map a small multicast group id onto the multicast MAC space."""
    if group_id < 0:
        raise ValueError(f"group id must be >= 0, got {group_id}")
    return MCAST_BASE + group_id


def wire_bytes(payload_bytes: int) -> int:
    """Total wire bytes (incl. padding, header, FCS, preamble, IFG)."""
    if payload_bytes < 0:
        raise ValueError(f"payload size must be >= 0, got {payload_bytes}")
    return max(payload_bytes, ETH_MIN_PAYLOAD) + ETH_OVERHEAD


_frame_counter = 0


def _next_frame_id() -> int:
    global _frame_counter
    _frame_counter += 1
    return _frame_counter


@dataclass
class Frame:
    """A single Ethernet frame.

    ``size`` is the L2 payload length in bytes (an IP fragment, here);
    ``payload`` is the opaque object delivered to the receiver; ``kind`` is
    a short label used by traces and statistics ("data", "scout", ...).
    """

    src: int
    dst: int
    size: int
    payload: Any
    kind: str = "data"
    frame_id: int = field(default_factory=_next_frame_id)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"frame payload size must be >= 0: {self.size}")

    @property
    def wire_size(self) -> int:
        """Bytes on the wire including all Ethernet overhead."""
        return wire_bytes(self.size)

    def wire_time_us(self, rate_mbps: float) -> float:
        """Serialization time of this frame at ``rate_mbps``."""
        from .units import bytes_to_us

        return bytes_to_us(self.wire_size, rate_mbps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Frame#{self.frame_id}({self.kind} {self.src}->{self.dst} "
                f"{self.size}B)")
