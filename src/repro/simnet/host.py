"""A simulated workstation: NIC + IP stack + CPU + private RNG.

Host addresses double as MAC and IP addresses (the cluster is one LAN,
so the distinction buys nothing).  Each host gets an RNG substream derived
from the cluster seed, so runs are reproducible and per-host jitter is
independent.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from .calibration import NetParams
from .kernel import Simulator
from .nic import Nic
from .resource import Resource
from .stats import NetStats

__all__ = ["Host"]


class Host:
    """One cluster node."""

    def __init__(self, sim: Simulator, params: NetParams, addr: int,
                 stats: Optional[NetStats] = None,
                 seed: Optional[int] = None, name: str = ""):
        from .ipstack import IpStack  # local import: stack needs Host type

        self.sim = sim
        self.params = params
        self.addr = addr
        self.name = name or f"host{addr}"
        self.stats = stats if stats is not None else NetStats()
        self.rng = random.Random(seed if seed is not None else addr)
        #: dedicated substream for probabilistic multicast-data loss
        #: (``NetParams.loss``), seeded independently of :attr:`rng` so
        #: turning loss on or off never perturbs the jitter stream of a
        #: reproducible run
        self.loss_rng = random.Random(
            ((seed if seed is not None else addr) << 16) ^ 0x105_5EED)
        #: optional stateful datagram-fate hook (the chaos-injection
        #: generalization of ``UdpSocket.drop_filter``): every datagram
        #: delivered to *any* socket on this host is first offered to
        #: ``frame_fate(dgram)``, which returns ``None``/``"deliver"``
        #: to pass it through, ``"drop"`` to lose it
        #: (``NetStats.drops_chaos``) or ``"dup"`` to deliver it twice
        #: (``NetStats.dups_chaos``).  Host-level (not per-socket) so a
        #: scenario survives sockets being opened and closed under it;
        #: stateful hooks (burst loss) keep their state in the closure.
        self.frame_fate = None
        self.cpu = Resource(sim, name=f"{self.name}.cpu")
        self.nic = Nic(sim, params, mac=addr, stats=self.stats,
                       name=f"{self.name}.nic")
        self.ipstack = IpStack(self)
        self.nic.set_receiver(self.ipstack.receive_frame)

    def jitter(self, mean_us: float) -> float:
        """A lognormally-jittered software cost around ``mean_us``.

        With ``jitter_sigma == 0`` this is exactly ``mean_us`` (used by
        the deterministic unit tests).
        """
        sigma = self.params.jitter_sigma
        if sigma <= 0.0 or mean_us <= 0.0:
            return mean_us
        return mean_us * math.exp(self.rng.gauss(0.0, sigma))

    def socket(self, port: Optional[int] = None, **kwargs):
        """Open a UDP socket on this host (see :class:`UdpSocket`)."""
        from .udp import UdpSocket

        return UdpSocket(self, port, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.addr} ({self.name})>"
