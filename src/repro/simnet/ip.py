"""IP datagrams, class-D multicast addresses and fragmentation.

One UDP datagram becomes ``params.frames_for(size)`` Ethernet frames —
exactly the paper's ``floor(M/T) + 1`` model.  The first fragment carries
the UDP header; the receiver reassembles by (source, datagram id) and
delivers only complete datagrams (a lost fragment kills the datagram).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from .calibration import NetParams
from .frame import Frame, FramePool, is_multicast, mcast_mac

__all__ = ["Datagram", "Fragment", "fragment_sizes", "make_frames",
           "GroupAllocator", "is_group_addr"]

_datagram_ids = itertools.count(1)


def is_group_addr(addr: int) -> bool:
    """True if ``addr`` denotes a multicast group (class-D analogue)."""
    return is_multicast(addr)


@dataclass(frozen=True)
class Datagram:
    """A UDP datagram as the socket layer sees it."""

    src: int                 #: source host address
    src_port: int
    dst: int                 #: unicast host address or multicast group
    dst_port: int
    payload: Any             #: opaque object (not serialized in-sim)
    size: int                #: user bytes — governs fragmentation & timing
    kind: str = "data"       #: trace label, propagated to frames
    dgram_id: int = field(default_factory=lambda: next(_datagram_ids))

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"datagram size must be >= 0: {self.size}")


@dataclass(frozen=True)
class Fragment:
    """What an Ethernet frame actually carries: a piece of a datagram."""

    dgram: Datagram
    index: int
    nfrags: int


def fragment_sizes(params: NetParams, user_bytes: int) -> list[int]:
    """L2 payload size of each frame for a datagram of ``user_bytes``.

    Each frame carries an IP header; the first also carries the UDP
    header.  Sizes include those headers (they ride the wire).
    """
    nfrags = params.frames_for(user_bytes)
    sizes = []
    remaining = user_bytes
    for i in range(nfrags):
        cap = params.max_udp_payload if i == 0 else params.max_fragment_payload
        chunk = min(remaining, cap)
        remaining -= chunk
        hdr = params.ip_header + (params.udp_header if i == 0 else 0)
        sizes.append(chunk + hdr)
    if remaining != 0:  # pragma: no cover - defensive invariant
        raise AssertionError("fragmentation did not consume the datagram")
    return sizes


def make_frames(params: NetParams, dgram: Datagram,
                pool: Optional[FramePool] = None) -> Iterator[Frame]:
    """Fragment a datagram into Ethernet frames.

    With ``pool`` the frames are drawn from the cluster's recycler (the
    hot path); without it they are constructed directly (tests, tools).
    """
    sizes = fragment_sizes(params, dgram.size)
    nfrags = len(sizes)
    if pool is None:
        for i, l2_size in enumerate(sizes):
            yield Frame(src=dgram.src, dst=dgram.dst, size=l2_size,
                        payload=Fragment(dgram, i, nfrags), kind=dgram.kind)
    else:
        for i, l2_size in enumerate(sizes):
            yield pool.acquire(dgram.src, dgram.dst, l2_size,
                               Fragment(dgram, i, nfrags), dgram.kind)


class GroupAllocator:
    """Hands out multicast group addresses (one per communicator).

    Mirrors how the paper maps an MPI process group/context onto one IP
    class-D address.
    """

    def __init__(self) -> None:
        self._next = itertools.count(1)

    def allocate(self) -> int:
        return mcast_mac(next(self._next))
