"""Per-host IP stack: socket table, multicast membership, reassembly.

The stack sits between the NIC and the UDP sockets:

* **transmit** — fragments a :class:`~repro.simnet.ip.Datagram` and queues
  the frames on the NIC (software cost is charged by the *socket*, on the
  host CPU, before the datagram reaches the stack);
* **membership** — `join_group` programs the NIC filter immediately and
  emits an IGMP report frame so the switch can snoop the port (on a hub
  the report is harmless background traffic).  Until the report reaches
  the switch, multicast senders elsewhere cannot reach this host — the
  join-latency hazard naive multicast broadcast trips over;
* **receive** — reassembles fragments by (src, datagram id) and hands
  complete datagrams to every matching socket: for unicast, the socket
  bound to the destination port; for multicast, every socket bound to the
  port *that has joined the group*.  No matching socket ⇒ counted drop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .frame import Frame
from .ip import Datagram, Fragment, is_group_addr, make_frames
from .kernel import SimError

if TYPE_CHECKING:  # pragma: no cover
    from .host import Host
    from .udp import UdpSocket

__all__ = ["IpStack", "PortInUse"]

#: L2 payload bytes of an IGMP membership report (IP header + report)
IGMP_REPORT_SIZE = 28


class PortInUse(SimError):
    """Two sockets tried to bind the same UDP port on one host."""


class IpStack:
    """One host's network stack."""

    def __init__(self, host: "Host"):
        self.host = host
        self.sim = host.sim
        self.params = host.params
        self.stats = host.stats
        self._sockets: dict[int, "UdpSocket"] = {}
        self._memberships: dict[int, int] = {}      # group -> refcount
        self._reasm: dict[tuple[int, int], set[int]] = {}
        self._next_ephemeral = 49152

    # -- socket table ----------------------------------------------------
    def bind(self, sock: "UdpSocket", port: Optional[int]) -> int:
        if port is None:
            port = self._next_ephemeral
            self._next_ephemeral += 1
        if port in self._sockets:
            raise PortInUse(f"host {self.host.addr}: UDP port {port} in use")
        self._sockets[port] = sock
        return port

    def unbind(self, port: int) -> None:
        self._sockets.pop(port, None)

    # -- multicast membership ------------------------------------------------
    def join_group(self, group: int) -> None:
        """Join ``group``: program the NIC filter and announce via IGMP."""
        if not is_group_addr(group):
            raise ValueError(f"{group:#x} is not a multicast group address")
        refs = self._memberships.get(group, 0)
        self._memberships[group] = refs + 1
        self.host.nic.join_filter(group)
        if refs == 0:
            self._send_igmp("join", group)

    def leave_group(self, group: int) -> None:
        refs = self._memberships.get(group, 0)
        if refs <= 0:
            raise SimError(f"host {self.host.addr} left {group:#x} "
                           f"without joining")
        self.host.nic.leave_filter(group)
        if refs == 1:
            del self._memberships[group]
            self._send_igmp("leave", group)
        else:
            self._memberships[group] = refs - 1

    def member_of(self, group: int) -> bool:
        return self._memberships.get(group, 0) > 0

    def _send_igmp(self, op: str, group: int) -> None:
        frame = self.stats.frame_pool.acquire(
            self.host.addr, group, IGMP_REPORT_SIZE, (op, group), "igmp")
        self.host.nic.send(frame)

    # -- transmit ---------------------------------------------------------
    def send_datagram(self, dgram: Datagram, mcast_loop: bool = True) -> None:
        """Fragment and queue on the NIC. Loopback multicast is delivered
        locally too if this host joined the group (IP_MULTICAST_LOOP)."""
        self.stats.datagrams_sent += 1
        for frame in make_frames(self.params, dgram,
                                 self.stats.frame_pool):
            self.host.nic.send(frame)
        if mcast_loop and is_group_addr(dgram.dst) and self.member_of(dgram.dst):
            # Local copy bypasses the wire (kernel loopback), but still
            # pays per-frame receive processing for fairness.
            delay = self.params.per_frame_rx_us
            self.sim.schedule_call(delay, self._deliver_datagram, dgram)

    # -- receive ---------------------------------------------------------
    def receive_frame(self, frame: Frame) -> None:
        if frame.kind == "igmp":
            return  # membership protocol, not user data
        frag = frame.payload
        if not isinstance(frag, Fragment):
            raise SimError(f"non-IP frame reached IP input: {frame!r}")
        if frag.nfrags == 1:
            self._deliver_datagram(frag.dgram)
            return
        key = (frag.dgram.src, frag.dgram.dgram_id)
        got = self._reasm.setdefault(key, set())
        got.add(frag.index)
        if len(got) == frag.nfrags:
            del self._reasm[key]
            self._deliver_datagram(frag.dgram)

    def _deliver_datagram(self, dgram: Datagram) -> None:
        sock = self._sockets.get(dgram.dst_port)
        if sock is None:
            self.stats.drops_no_listener += 1
            return
        if is_group_addr(dgram.dst) and not sock.joined(dgram.dst):
            self.stats.drops_no_listener += 1
            return
        sock._deliver(dgram)
