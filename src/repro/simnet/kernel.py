"""Discrete-event simulation kernel.

A small, dependency-free engine in the style of SimPy, specialised for the
needs of a network simulator:

* the clock is a ``float`` in **microseconds** (see :mod:`repro.simnet.units`);
* simulated activities are plain Python **generators** that ``yield``
  :class:`Event` objects and are resumed with the event's value;
* ties in the event heap are broken by insertion order, so runs are fully
  deterministic for a fixed seed.

Typical use::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(5.0)          # sleep 5 µs
        ev = sim.event()
        sim.schedule_call(1.0, ev.succeed, "ping")
        msg = yield ev                  # blocks until ev fires
        return msg

    proc = sim.process(worker(sim))
    sim.run()
    assert proc.value == "ping"

The kernel also detects **deadlock**: if :meth:`Simulator.run` exhausts the
event heap while processes are still suspended, it raises
:class:`DeadlockError` naming them — invaluable when debugging MPI programs
whose ranks wait on messages that never arrive.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "SimError",
    "DeadlockError",
    "Interrupt",
]


class SimError(Exception):
    """Base class for simulator errors."""


class DeadlockError(SimError):
    """Raised when the event heap drains while processes are still blocked."""

    def __init__(self, processes: list["Process"]):
        self.processes = processes
        # sorted: the live set iterates in id order, which is not
        # deterministic — the message is part of the replay contract
        names = ", ".join(sorted(p.name for p in processes))
        super().__init__(
            f"simulation deadlock: {len(processes)} process(es) still "
            f"suspended with no pending events: {names}"
        )


class Interrupt(SimError):
    """Thrown *into* a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        self.cause = cause
        super().__init__(f"process interrupted (cause={cause!r})")


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is called;
    its callbacks then run at the current simulation time (or, for events
    scheduled with a delay, at their due time).  Triggering twice is an
    error — it almost always indicates a protocol bug in the caller.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (callbacks may not have run yet)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have been dispatched."""
        return self._processed

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimError("event value read before the event triggered")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay`` µs."""
        if self._triggered:
            raise SimError(f"event {self!r} triggered twice")
        self._triggered = True
        self._value = value
        self._ok = True
        self.sim._push(delay, self)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiters have ``exc`` raised in them."""
        if self._triggered:
            raise SimError(f"event {self!r} triggered twice")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._triggered = True
        self._value = exc
        self._ok = False
        self.sim._push(delay, self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback runs immediately.
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` µs after creation.

    Timers are the single most common event in a protocol simulation, so
    the constructor writes the slots directly (born triggered, one heap
    push) instead of going through ``Event.__init__`` + ``succeed``.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay!r}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        sim._push(delay, self)


class _Call:
    """A lightweight scheduled-callback heap record.

    :meth:`Simulator.schedule_call` used to allocate a full :class:`Event`
    plus a closure per call; since nothing ever waits on those events, the
    kernel now pushes one of these two-slot records instead.  The record
    rides the same ``(due, seq)`` heap as real events, so tie-breaking by
    insertion order — the determinism contract — is unchanged.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable, args: tuple):
        self.fn = fn
        self.args = args

    def _dispatch(self) -> None:
        self.fn(*self.args)


class Process(Event):
    """Wraps a generator; the process *is* an event that fires on return.

    Yield semantics inside the generator:

    * ``yield event`` — suspend until ``event`` fires; the ``yield``
      expression evaluates to the event's value (or raises, if it failed).
    * ``return x`` — terminate; the process-event succeeds with ``x``.
    * an uncaught exception fails the process-event, propagating to any
      process joined on it (and to :meth:`Simulator.run` if nobody is).
    """

    __slots__ = ("gen", "name", "daemon", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "",
                 daemon: bool = False):
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", None) or repr(gen)
        self.daemon = daemon
        self._waiting_on: Optional[Event] = None
        # Bootstrap: start the generator at the current simulation time.
        sim.schedule_call(0.0, self._boot)
        sim._live_processes.add(self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimError(f"cannot interrupt finished process {self.name}")
        target = self._waiting_on
        if target is not None and not target.triggered:
            # Detach from the event we were waiting on: drop our stale
            # _resume callback so a long-lived event the process abandons
            # does not accumulate dead waiters.  (The event may still fire
            # later; the _resume staleness guard would ignore it, but the
            # reference would otherwise pin this process until then.)
            callbacks = target.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(self._resume)
                except ValueError:
                    pass
        self.sim.schedule_call(0.0, self._throw, Interrupt(cause))

    # -- internal ------------------------------------------------------
    def _boot(self) -> None:
        if not self._triggered:
            self._step(self.gen.send, None)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return  # already finished (e.g. interrupted while waiting)
        if self._waiting_on is not None and event is not self._waiting_on:
            return  # stale wakeup from an event we abandoned via interrupt
        self._waiting_on = None
        if event._ok:
            self._step(self.gen.send, event._value)
        else:
            self._step(self.gen.throw, event._value)

    def _throw(self, exc: BaseException) -> None:
        if self._triggered:
            return
        self._waiting_on = None
        self._step(self.gen.throw, exc)

    def _step(self, advance: Callable[[Any], Any], arg: Any) -> None:
        sim = self.sim
        prev = sim.active_process
        sim.active_process = self
        try:
            target = advance(arg)
        except StopIteration as stop:
            sim._live_processes.discard(self)
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim._live_processes.discard(self)
            sim._crashed.append((self, exc))
            self.fail(exc)
            return
        finally:
            sim.active_process = prev
        if not isinstance(target, Event):
            err = SimError(
                f"process {self.name} yielded {target!r}; processes must "
                f"yield Event instances (did you forget 'yield from'?)"
            )
            sim._live_processes.discard(self)
            sim._crashed.append((self, err))
            self.fail(err)
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class _Condition(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_n_needed", "_n_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event], n_needed: int):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            raise ValueError("condition requires at least one event")
        self._n_needed = min(n_needed, len(self.events))
        self._n_done = 0
        for ev in self.events:
            ev.add_callback(self._check)

    def _check(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev._value)
            return
        self._n_done += 1
        if self._n_done >= self._n_needed:
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, Any]:
        # Only *processed* events count: a Timeout is "triggered" from
        # birth (its value is known), but it has not happened until its
        # due time passes and callbacks run.
        return {ev: ev._value for ev in self.events
                if ev.processed and ev.ok}


class AnyOf(_Condition):
    """Fires when *any* of the given events fires; value = {event: value}."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, n_needed=1)


class AllOf(_Condition):
    """Fires when *all* of the given events have fired."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        evs = list(events)
        super().__init__(sim, evs, n_needed=len(evs))


class Simulator:
    """The event loop: ``(due_time, seq, record)`` triples, heap + now-queue.

    Records are :class:`Event` instances or the lightweight :class:`_Call`
    callback records.  Two structures hold them:

    * ``_heap`` — the classic binary heap, for records due in the future;
    * ``_nowq`` — a FIFO for records scheduled with **zero delay**.  The
      global ``_seq`` counter makes the queue sorted by ``(due, seq)`` by
      construction (appends happen at the current time with increasing
      seq), so the dispatcher merges the two structures by comparing heads
      — exactly the ``(due, seq)`` order a single heap would produce, at
      O(1) per zero-delay record instead of O(log n) heap churn.  Since
      most records in a protocol simulation fire "now" (succeed(),
      same-instant callbacks), this is the same-timestamp batch-pop that
      makes thousand-host fabrics tractable.

    Determinism contract: ties at one timestamp dispatch in insertion
    order, identical to the historical single-heap kernel.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Any]] = []
        self._nowq: deque[tuple[float, int, Any]] = deque()
        self._seq = 0
        self.active_process: Optional[Process] = None
        self._live_processes: set[Process] = set()
        self._crashed: list[tuple[Process, BaseException]] = []
        #: records dispatched over the simulator's lifetime (the
        #: denominator-free half of the events/sec throughput metric)
        self.processed: int = 0
        #: high-water mark of pending records (heap + now-queue) — the
        #: kernel's working-set size, recorded by the sim-throughput area
        self.peak_live: int = 0

    # -- event factories ------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` µs from now."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "",
                daemon: bool = False) -> Process:
        """Start ``gen`` as a simulated process; returns its Process event.

        ``daemon=True`` marks background engines (e.g. MPI progress loops)
        that legitimately outlive the workload: they do not trigger
        :class:`DeadlockError` when the heap drains.
        """
        return Process(self, gen, name, daemon=daemon)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def schedule_call(self, delay: float, fn: Callable, *args: Any) -> None:
        """Call ``fn(*args)`` after ``delay`` µs.

        The hot path of every frame hop: pushes a two-slot :class:`_Call`
        record instead of allocating an :class:`Event` plus a closure.
        Nothing can wait on the record, so nothing is returned.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        if delay == 0.0:
            self._nowq.append((self.now, self._seq, _Call(fn, args)))
        else:
            heapq.heappush(self._heap,
                           (self.now + delay, self._seq, _Call(fn, args)))
        live = len(self._heap) + len(self._nowq)
        if live > self.peak_live:
            self.peak_live = live

    # -- scheduling internals --------------------------------------------
    def _push(self, delay: float, event: Event) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        if delay == 0.0:
            self._nowq.append((self.now, self._seq, event))
        else:
            heapq.heappush(self._heap, (self.now + delay, self._seq, event))
        live = len(self._heap) + len(self._nowq)
        if live > self.peak_live:
            self.peak_live = live

    # -- main loop --------------------------------------------------------
    def step(self) -> None:
        """Process exactly one record, in global ``(due, seq)`` order."""
        nowq = self._nowq
        heap = self._heap
        if nowq and (not heap or nowq[0] < heap[0]):
            due, _seq, event = nowq.popleft()
        else:
            due, _seq, event = heapq.heappop(heap)
        self.now = due
        self.processed += 1
        event._dispatch()

    def peek(self) -> float:
        """Due time of the next record, or +inf if nothing is pending."""
        if self._nowq:
            if self._heap and self._heap[0] < self._nowq[0]:
                return self._heap[0][0]
            return self._nowq[0][0]
        return self._heap[0][0] if self._heap else float("inf")

    def process_snapshot(self) -> list:
        """Deterministic view of the live processes (hang diagnostics).

        Sorted by process name; each entry is ``(name, daemon, waiting)``
        where ``waiting`` names what the process is parked on (the class
        of its wait target, plus whether that target already triggered)
        or ``"runnable"`` when it is not waiting on any event.  Never on
        the dispatch path — only readers like the flight recorder's hang
        dump call it.
        """
        out = []
        for proc in sorted(self._live_processes, key=lambda p: p.name):
            target = proc._waiting_on
            if target is None:
                waiting = "runnable"
            else:
                waiting = type(target).__name__
                if target._triggered:
                    waiting += "(triggered)"
            out.append((proc.name, proc.daemon, waiting))
        return out

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queues drain or the clock passes ``until``.

        Returns the final clock value.  Raises :class:`DeadlockError` if
        the queues drain with live processes remaining, and re-raises the
        first uncaught exception from any process that nothing joined on.

        The loop merges ``_nowq`` and ``_heap`` inline (head comparison
        per record) rather than calling :meth:`step`, so the per-record
        overhead is a tuple compare plus a deque popleft for the
        zero-delay majority.
        """
        heap = self._heap
        nowq = self._nowq
        heappop = heapq.heappop
        crashed = self._crashed
        n_dispatched = 0
        try:
            while heap or nowq:
                if nowq and (not heap or nowq[0] < heap[0]):
                    head = nowq[0]
                    if until is not None and head[0] > until:
                        self.now = until
                        break
                    nowq.popleft()
                else:
                    head = heap[0]
                    if until is not None and head[0] > until:
                        self.now = until
                        break
                    heappop(heap)
                self.now = head[0]
                n_dispatched += 1
                head[2]._dispatch()
                if crashed:
                    proc, exc = crashed[0]
                    # A crash is only fatal if nobody is joined on that
                    # process (its failure event would otherwise propagate
                    # the error).
                    if proc.callbacks is not None and not proc.callbacks:
                        crashed.clear()
                        raise exc
                    crashed.clear()
            else:
                alive = [p for p in self._live_processes
                         if p.is_alive and not p.daemon]
                if alive and until is None:
                    raise DeadlockError(alive)
        finally:
            # Local counter + one writeback keeps the hot loop free of
            # attribute stores while still surviving exceptions.
            self.processed += n_dispatched
        return self.now
