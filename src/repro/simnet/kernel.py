"""Discrete-event simulation kernel.

A small, dependency-free engine in the style of SimPy, specialised for the
needs of a network simulator:

* the clock is a ``float`` in **microseconds** (see :mod:`repro.simnet.units`);
* simulated activities are plain Python **generators** that ``yield``
  :class:`Event` objects and are resumed with the event's value;
* ties in the event heap are broken by insertion order, so runs are fully
  deterministic for a fixed seed.

Typical use::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(5.0)          # sleep 5 µs
        ev = sim.event()
        sim.schedule_call(1.0, ev.succeed, "ping")
        msg = yield ev                  # blocks until ev fires
        return msg

    proc = sim.process(worker(sim))
    sim.run()
    assert proc.value == "ping"

The kernel also detects **deadlock**: if :meth:`Simulator.run` exhausts the
event heap while processes are still suspended, it raises
:class:`DeadlockError` naming them — invaluable when debugging MPI programs
whose ranks wait on messages that never arrive.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "SimError",
    "DeadlockError",
    "Interrupt",
]


class SimError(Exception):
    """Base class for simulator errors."""


class DeadlockError(SimError):
    """Raised when the event heap drains while processes are still blocked."""

    def __init__(self, processes: list["Process"]):
        self.processes = processes
        names = ", ".join(p.name for p in processes)
        super().__init__(
            f"simulation deadlock: {len(processes)} process(es) still "
            f"suspended with no pending events: {names}"
        )


class Interrupt(SimError):
    """Thrown *into* a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        self.cause = cause
        super().__init__(f"process interrupted (cause={cause!r})")


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is called;
    its callbacks then run at the current simulation time (or, for events
    scheduled with a delay, at their due time).  Triggering twice is an
    error — it almost always indicates a protocol bug in the caller.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (callbacks may not have run yet)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have been dispatched."""
        return self._processed

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimError("event value read before the event triggered")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay`` µs."""
        if self._triggered:
            raise SimError(f"event {self!r} triggered twice")
        self._triggered = True
        self._value = value
        self._ok = True
        self.sim._push(delay, self)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiters have ``exc`` raised in them."""
        if self._triggered:
            raise SimError(f"event {self!r} triggered twice")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._triggered = True
        self._value = exc
        self._ok = False
        self.sim._push(delay, self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback runs immediately.
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` µs after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay!r}")
        super().__init__(sim)
        self._triggered = True
        self._value = value
        sim._push(delay, self)


class Process(Event):
    """Wraps a generator; the process *is* an event that fires on return.

    Yield semantics inside the generator:

    * ``yield event`` — suspend until ``event`` fires; the ``yield``
      expression evaluates to the event's value (or raises, if it failed).
    * ``return x`` — terminate; the process-event succeeds with ``x``.
    * an uncaught exception fails the process-event, propagating to any
      process joined on it (and to :meth:`Simulator.run` if nobody is).
    """

    __slots__ = ("gen", "name", "daemon", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "",
                 daemon: bool = False):
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", None) or repr(gen)
        self.daemon = daemon
        self._waiting_on: Optional[Event] = None
        # Bootstrap: start the generator at the current simulation time.
        boot = Event(sim)
        boot.add_callback(self._resume)
        boot.succeed(None)
        sim._live_processes.add(self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimError(f"cannot interrupt finished process {self.name}")
        target = self._waiting_on
        if target is not None and not target.triggered:
            # Detach from the event we were waiting on; it may still fire
            # later but will find no waiter.
            pass
        kick = Event(self.sim)
        kick.add_callback(lambda _ev: self._throw(Interrupt(cause)))
        kick.succeed(None)

    # -- internal ------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._triggered:
            return  # already finished (e.g. interrupted while waiting)
        if self._waiting_on is not None and event is not self._waiting_on:
            return  # stale wakeup from an event we abandoned via interrupt
        self._waiting_on = None
        if event.ok:
            self._step(lambda: self.gen.send(event._value))
        else:
            self._step(lambda: self.gen.throw(event._value))

    def _throw(self, exc: BaseException) -> None:
        if self._triggered:
            return
        self._waiting_on = None
        self._step(lambda: self.gen.throw(exc))

    def _step(self, advance: Callable[[], Any]) -> None:
        sim = self.sim
        prev = sim.active_process
        sim.active_process = self
        try:
            target = advance()
        except StopIteration as stop:
            sim._live_processes.discard(self)
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim._live_processes.discard(self)
            sim._crashed.append((self, exc))
            self.fail(exc)
            return
        finally:
            sim.active_process = prev
        if not isinstance(target, Event):
            err = SimError(
                f"process {self.name} yielded {target!r}; processes must "
                f"yield Event instances (did you forget 'yield from'?)"
            )
            sim._live_processes.discard(self)
            sim._crashed.append((self, err))
            self.fail(err)
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class _Condition(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_n_needed", "_n_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event], n_needed: int):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            raise ValueError("condition requires at least one event")
        self._n_needed = min(n_needed, len(self.events))
        self._n_done = 0
        for ev in self.events:
            ev.add_callback(self._check)

    def _check(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev._value)
            return
        self._n_done += 1
        if self._n_done >= self._n_needed:
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, Any]:
        # Only *processed* events count: a Timeout is "triggered" from
        # birth (its value is known), but it has not happened until its
        # due time passes and callbacks run.
        return {ev: ev._value for ev in self.events
                if ev.processed and ev.ok}


class AnyOf(_Condition):
    """Fires when *any* of the given events fires; value = {event: value}."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, n_needed=1)


class AllOf(_Condition):
    """Fires when *all* of the given events have fired."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        evs = list(events)
        super().__init__(sim, evs, n_needed=len(evs))


class Simulator:
    """The event loop: a heap of ``(due_time, seq, event)`` triples."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self.active_process: Optional[Process] = None
        self._live_processes: set[Process] = set()
        self._crashed: list[tuple[Process, BaseException]] = []

    # -- event factories ------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` µs from now."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "",
                daemon: bool = False) -> Process:
        """Start ``gen`` as a simulated process; returns its Process event.

        ``daemon=True`` marks background engines (e.g. MPI progress loops)
        that legitimately outlive the workload: they do not trigger
        :class:`DeadlockError` when the heap drains.
        """
        return Process(self, gen, name, daemon=daemon)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def schedule_call(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Call ``fn(*args)`` after ``delay`` µs; returns the trigger event."""
        ev = Event(self)
        ev.add_callback(lambda _ev: fn(*args))
        ev.succeed(None, delay=delay)
        return ev

    # -- scheduling internals --------------------------------------------
    def _push(self, delay: float, event: Event) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    # -- main loop --------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event from the heap."""
        due, _seq, event = heapq.heappop(self._heap)
        self.now = due
        event._dispatch()

    def peek(self) -> float:
        """Due time of the next event, or +inf if the heap is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or the clock passes ``until``.

        Returns the final clock value.  Raises :class:`DeadlockError` if the
        heap drains with live processes remaining, and re-raises the first
        uncaught exception from any process that nothing joined on.
        """
        while self._heap:
            if until is not None and self.peek() > until:
                self.now = until
                break
            self.step()
            if self._crashed:
                proc, exc = self._crashed[0]
                # A crash is only fatal if nobody is joined on that process
                # (its failure event would otherwise propagate the error).
                if proc.callbacks is not None and not proc.callbacks:
                    self._crashed.clear()
                    raise exc
                self._crashed.clear()
        else:
            alive = [p for p in self._live_processes
                     if p.is_alive and not p.daemon]
            if alive and until is None:
                raise DeadlockError(alive)
        return self.now
