"""Full-duplex point-to-point links (host ↔ switch cabling).

Unlike the hub's shared medium, a switched segment gives every station a
private collision-free channel in each direction.  Each
:class:`HalfLink` is an independent serializer: frames queue FIFO, occupy
the transmitter for their wire time, and arrive at the far end one
propagation delay after serialization completes (store-and-forward —
the receiving device only sees a frame once the last bit is in).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from .calibration import NetParams
from .frame import Frame, release_frame, retain_frame
from .kernel import Event, Simulator
from .stats import NetStats

__all__ = ["HalfLink", "FullLink"]

#: return values a :attr:`HalfLink.fault` hook may produce per frame:
#: ``None``/``"deliver"`` passes the frame through, ``"drop"`` loses it
#: on the wire, ``"dup"`` delivers two copies, ``("delay", us)`` holds
#: the frame back ``us`` microseconds (later traffic overtakes it —
#: reordering).  See :mod:`repro.chaos.scenarios` for the stateful
#: hooks built on this seam.
LinkFate = "Optional[str | tuple]"


class HalfLink:
    """One direction of a full-duplex link."""

    def __init__(self, sim: Simulator, params: NetParams, stats: NetStats,
                 deliver: Callable[[Frame], object], name: str = "",
                 count_as_send: bool = True, is_trunk: bool = False):
        self.sim = sim
        self.params = params
        self.stats = stats
        self.deliver = deliver
        self.name = name
        #: host-originated links count toward ``frames_sent`` (the paper's
        #: frame accounting); switch egress links count as forwards so a
        #: switched path is not double-counted.
        self.count_as_send = count_as_send
        #: switch-to-switch trunk links additionally count toward
        #: ``frames_trunk`` — the contended resource of a tiered fabric
        #: (see :mod:`repro.simnet.fabric`).
        self.is_trunk = is_trunk
        #: cable state: a downed link (trunk partition, host crash)
        #: still serializes — the transmitter cannot tell — but nothing
        #: arrives at the far end.  Toggled by the partition APIs on
        #: :class:`~repro.simnet.fabric.Fabric` /
        #: :class:`~repro.simnet.topology.Cluster`, never directly by
        #: tests.
        self.up = True
        #: optional stateful frame-fate hook consulted on last-bit
        #: arrival: ``fault(frame, link)`` returns a :data:`LinkFate`.
        #: This is the link-level generalization of
        #: ``UdpSocket.drop_filter`` — it sees every frame kind (data,
        #: scouts, IGMP), so it can model corruption-like loss,
        #: duplication and reordering below the IP stack.
        self.fault: Optional[Callable] = None
        self._queue: deque[tuple[Frame, Event]] = deque()
        self._busy = False

    def send(self, frame: Frame) -> Event:
        """Queue ``frame``; the event fires when serialization finishes."""
        done = self.sim.event()
        self._queue.append((frame, done))
        if not self._busy:
            self._pump()
        return done

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def _pump(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        frame, done = self._queue.popleft()
        wire_us = frame.wire_time_us(self.params.rate_mbps)
        if self.count_as_send:
            self.stats.record_send(frame.wire_size, frame.kind)
        else:
            self.stats.frames_forwarded += 1
        if self.is_trunk:
            self.stats.record_trunk(frame.kind)
        rec = self.stats.recorder
        if rec is not None:
            if self.count_as_send:
                rec.frame_sent(self.sim.now, frame, self.name)
            else:
                rec.frame_forwarded(self.sim.now, frame, self.name,
                                    self.is_trunk)
        self.sim.schedule_call(wire_us + self.params.prop_delay_us,
                               self._arrive, frame)
        self.sim.schedule_call(wire_us, self._sent, done)

    def _sent(self, done: Event) -> None:
        done.succeed(True)
        self._pump()

    def _arrive(self, frame: Frame) -> None:
        if not self.up:
            # Cable cut: the last bit never arrives.  The ingress path
            # handed us one reference for this copy; give it back.
            self.stats.drops_chaos += 1
            release_frame(frame)
            return
        fate = self.fault(frame, self) if self.fault is not None else None
        if fate is None or fate == "deliver":
            self.deliver(frame)
        elif fate == "drop":
            self.stats.drops_chaos += 1
            release_frame(frame)
        elif fate == "dup":
            # Two copies reach the far end: one extra reference for the
            # extra delivery.
            self.stats.dups_chaos += 1
            retain_frame(frame, 1)
            self.deliver(frame)
            self.deliver(frame)
        elif isinstance(fate, tuple) and fate[0] == "delay":
            self.stats.delays_chaos += 1
            self.sim.schedule_call(float(fate[1]), self.deliver, frame)
        else:
            raise ValueError(f"link fault hook on {self.name!r} returned "
                             f"unknown fate {fate!r}")


class FullLink:
    """A pair of half links; convenience container used by topologies."""

    def __init__(self, a_to_b: HalfLink, b_to_a: HalfLink):
        self.a_to_b = a_to_b
        self.b_to_a = b_to_a
