"""CSMA/CD shared medium — the model of the paper's 3Com Fast-Ethernet hub.

A hub electrically repeats every frame to every port, so the whole cluster
is **one collision domain**: only one frame can be in flight at a time, and
stations that begin transmitting simultaneously collide and back off.

The model (standard simplified CSMA/CD for a zero-diameter segment):

* A station with a frame senses the carrier.  If the medium is busy it
  *defers*; every deferring station is released at the same instant the
  medium goes idle — which is exactly how real stations pile up behind a
  long frame and then collide, the phenomenon the paper blames for the
  latency variance of Figs. 7 and 9.
* If two or more stations commence in the same slot, all abort, emit a jam
  signal, and each retries after binary exponential backoff
  (``r × slot_time`` with ``r`` uniform in ``[0, 2^min(k,10))`` on the
  ``k``-th collision).  After ``max_attempts`` collisions the send fails
  with :class:`ExcessiveCollisions` (counted, never silently ignored).
* A successful transmission occupies the medium for the frame's wire time;
  every *other* attached NIC receives a copy at completion (receive-side
  filtering happens in the NIC).
"""

from __future__ import annotations

import random
from typing import Optional

from .calibration import NetParams
from .frame import Frame, release_frame, retain_frame
from .kernel import Event, SimError, Simulator
from .stats import NetStats

__all__ = ["SharedMedium", "ExcessiveCollisions"]


class ExcessiveCollisions(SimError):
    """A frame hit the 16-collision limit (counted as a hard send failure)."""

    def __init__(self, frame: Frame, attempts: int):
        self.frame = frame
        self.attempts = attempts
        super().__init__(f"{frame!r} dropped after {attempts} collisions")


class _Tx:
    """One pending transmission attempt (station + frame + attempt count)."""

    __slots__ = ("nic", "frame", "done", "attempts")

    def __init__(self, nic, frame: Frame, done: Event):
        self.nic = nic
        self.frame = frame
        self.done = done
        self.attempts = 0


class SharedMedium:
    """A single CSMA/CD collision domain shared by all attached NICs."""

    def __init__(self, sim: Simulator, params: NetParams,
                 rng: random.Random, stats: Optional[NetStats] = None):
        self.sim = sim
        self.params = params
        self.rng = rng
        self.stats = stats if stats is not None else NetStats()
        self.nics: list = []
        self._busy_until: float = 0.0
        self._active: Optional[_Tx] = None
        self._starting: list[_Tx] = []       # commencing this timestamp
        self._commence_pending = False
        self._deferred: list[_Tx] = []       # waiting for idle

    # -- wiring ------------------------------------------------------------
    def attach(self, nic) -> None:
        """Connect a NIC to the segment (hub port)."""
        self.nics.append(nic)

    # -- public API ----------------------------------------------------------
    def transmit(self, nic, frame: Frame) -> Event:
        """Ask the medium to carry ``frame``; the event fires on delivery.

        The returned event fails with :class:`ExcessiveCollisions` if the
        retry limit is reached.
        """
        tx = _Tx(nic, frame, self.sim.event())
        self._attempt(tx)
        return tx.done

    @property
    def idle(self) -> bool:
        return (self._active is None
                and self.sim.now >= self._busy_until
                and not self._commence_pending)

    # -- CSMA/CD state machine -------------------------------------------
    def _attempt(self, tx: _Tx) -> None:
        if self._commence_pending:
            # Another station is commencing at this very instant: with zero
            # propagation delay it cannot be carrier-sensed yet, so we start
            # too and the _commence handler detects the collision.
            self._starting.append(tx)
        elif self._active is None and self.sim.now >= self._busy_until:
            self._starting.append(tx)
            self._commence_pending = True
            self.sim.schedule_call(0.0, self._commence)
        else:
            self._deferred.append(tx)

    def _commence(self) -> None:
        self._commence_pending = False
        starters, self._starting = self._starting, []
        if not starters:
            return
        if len(starters) == 1:
            self._transmit_now(starters[0])
        else:
            self._collide(starters)

    def _transmit_now(self, tx: _Tx) -> None:
        frame = tx.frame
        wire_us = frame.wire_time_us(self.params.rate_mbps)
        self._active = tx
        self._busy_until = self.sim.now + wire_us
        # Record at transmission start (same convention as HalfLink), so
        # wire timelines are consistent across topologies.  A started
        # transmission cannot abort in this model.
        self.stats.record_send(frame.wire_size, frame.kind)
        rec = self.stats.recorder
        if rec is not None:
            rec.frame_sent(self.sim.now, frame, "hub")
        self.sim.schedule_call(wire_us, self._complete, tx)

    def _complete(self, tx: _Tx) -> None:
        self._active = None
        delivered = 0
        frame = tx.frame
        kind = frame.kind
        others = [nic for nic in self.nics if nic is not tx.nic]
        if others:
            # Every station gets its own copy of the frame (deliver
            # consumes one reference whether the filter accepts or not).
            retain_frame(frame, len(others) - 1)
            for nic in others:
                if nic.deliver(frame):
                    delivered += 1
        else:
            release_frame(frame)
        if delivered == 0 and kind != "igmp":
            self.stats.drops_no_listener += 1
        tx.done.succeed(True)
        self._release_deferred()

    def _collide(self, starters: list[_Tx]) -> None:
        self.stats.collisions += 1
        jam = self.params.jam_time_us
        self._busy_until = self.sim.now + jam
        for tx in starters:
            tx.attempts += 1
            if tx.attempts >= self.params.max_attempts:
                tx.done.fail(ExcessiveCollisions(tx.frame, tx.attempts))
                release_frame(tx.frame)
                continue
            self.stats.backoffs += 1
            k = min(tx.attempts, self.params.backoff_limit)
            slots = self.rng.randrange(0, 2 ** k)
            delay = jam + slots * self.params.slot_time_us
            self.sim.schedule_call(delay, self._attempt, tx)
        # Deferred stations also saw the jam; release them after it ends.
        self.sim.schedule_call(jam, self._release_deferred)

    def _release_deferred(self) -> None:
        if self.sim.now < self._busy_until or self._active is not None:
            return
        waiting, self._deferred = self._deferred, []
        for tx in waiting:
            self._attempt(tx)
