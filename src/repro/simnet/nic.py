"""Network interface card model.

The NIC owns the transmit queue (frames go out strictly FIFO, one at a
time) and the receive-side **address filter**: a frame is accepted only if
it is unicast to this station, broadcast, or multicast to a group the host
has programmed into the filter.  Multicast frames for groups nobody joined
die here, silently — the data-link half of the paper's "receiver must be
ready" story.

Accepted frames pay ``per_frame_rx_us`` (interrupt + IP input processing)
before reaching the host's IP stack.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional, Protocol

from .calibration import NetParams
from .frame import BROADCAST, Frame, is_multicast, release_frame
from .kernel import Event, Simulator
from .stats import NetStats

__all__ = ["Nic", "TxPort"]


class TxPort(Protocol):
    """Anything a NIC can transmit through (shared medium or half link)."""

    def transmit(self, nic: "Nic", frame: Frame) -> Event:
        ...


class _MediumPort:
    """Adapter: hub/shared-medium attachment."""

    def __init__(self, medium):
        self.medium = medium

    def transmit(self, nic: "Nic", frame: Frame) -> Event:
        return self.medium.transmit(nic, frame)


class _LinkPort:
    """Adapter: switched attachment through an egress half link."""

    def __init__(self, halflink):
        self.halflink = halflink

    def transmit(self, nic: "Nic", frame: Frame) -> Event:
        return self.halflink.send(frame)


class Nic:
    """One station's interface: FIFO tx queue + rx multicast filter."""

    def __init__(self, sim: Simulator, params: NetParams, mac: int,
                 stats: Optional[NetStats] = None, name: str = ""):
        self.sim = sim
        self.params = params
        self.mac = mac
        self.stats = stats if stats is not None else NetStats()
        self.name = name or f"nic{mac}"
        self._port: Optional[TxPort] = None
        self._receiver: Optional[Callable[[Frame], None]] = None
        self._txq: deque[tuple[Frame, Event]] = deque()
        self._tx_busy = False
        self._mcast_refs: dict[int, int] = {}
        self.tx_frames = 0
        self.rx_frames = 0
        self.filtered_frames = 0
        self.tx_errors = 0

    # -- wiring -------------------------------------------------------------
    def attach_medium(self, medium) -> None:
        """Plug into a shared CSMA/CD segment (hub topology)."""
        self._port = _MediumPort(medium)
        medium.attach(self)

    def attach_link(self, out_halflink) -> None:
        """Plug into a switch via the host→switch half link."""
        self._port = _LinkPort(out_halflink)

    def set_receiver(self, fn: Callable[[Frame], None]) -> None:
        """Install the IP-input callback (one per host)."""
        self._receiver = fn

    # -- multicast filter ----------------------------------------------------
    def join_filter(self, group_mac: int) -> None:
        self._mcast_refs[group_mac] = self._mcast_refs.get(group_mac, 0) + 1

    def leave_filter(self, group_mac: int) -> None:
        refs = self._mcast_refs.get(group_mac, 0)
        if refs <= 1:
            self._mcast_refs.pop(group_mac, None)
        else:
            self._mcast_refs[group_mac] = refs - 1

    def in_filter(self, group_mac: int) -> bool:
        return group_mac in self._mcast_refs

    # -- transmit path ------------------------------------------------------
    def send(self, frame: Frame) -> Event:
        """Queue a frame; the event fires once it is on the wire."""
        if self._port is None:
            raise RuntimeError(f"{self.name} is not attached to any network")
        done = self.sim.event()
        self._txq.append((frame, done))
        if not self._tx_busy:
            self._tx_pump()
        return done

    @property
    def tx_queue_depth(self) -> int:
        return len(self._txq)

    def _tx_pump(self) -> None:
        if not self._txq:
            self._tx_busy = False
            return
        self._tx_busy = True
        frame, done = self._txq.popleft()
        port_done = self._port.transmit(self, frame)
        port_done.add_callback(lambda ev: self._tx_done(ev, done))

    def _tx_done(self, port_ev: Event, done: Event) -> None:
        if port_ev.ok:
            self.tx_frames += 1
            done.succeed(True)
        else:
            self.tx_errors += 1
            done.fail(port_ev._value)
        # Next frame pays the per-fragment driver cost before transmitting.
        if self._txq:
            self.sim.schedule_call(self.params.per_frame_tx_us, self._tx_pump)
        else:
            self._tx_busy = False

    # -- receive path --------------------------------------------------------
    def deliver(self, frame: Frame) -> bool:
        """Called by the medium/link; returns True if the filter accepted."""
        dst = frame.dst
        accept = (dst == self.mac or dst == BROADCAST
                  or (is_multicast(dst) and dst in self._mcast_refs))
        if not accept:
            self.filtered_frames += 1
            release_frame(frame)
            return False
        self.rx_frames += 1
        self.stats.frames_delivered += 1
        rec = self.stats.recorder
        if rec is not None:
            rec.frame_delivered(self.sim.now, frame, self.mac)
        if self._receiver is not None:
            self.sim.schedule_call(self.params.per_frame_rx_us,
                                   self._rx_dispatch, frame)
        else:
            release_frame(frame)
        return True

    def _rx_dispatch(self, frame: Frame) -> None:
        self._receiver(frame)
        # This copy's journey ends here: the IP input has extracted the
        # fragment, so the frame can go back to the pool.
        release_frame(frame)
