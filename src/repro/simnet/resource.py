"""A FIFO mutual-exclusion resource (models a host CPU).

Per-message software overheads — the dominant cost at the paper's message
sizes — must *serialize* on each host: a rank cannot overlap two sendto()
calls.  Every host owns one :class:`Resource`; protocol code holds it for
the duration of each software overhead via :meth:`Resource.use`.
"""

from __future__ import annotations

from collections import deque
from typing import Generator

from .kernel import Event, SimError, Simulator

__all__ = ["Resource"]


class Resource:
    """Capacity-1 FIFO lock for simulated processes."""

    def __init__(self, sim: Simulator, name: str = "cpu"):
        self.sim = sim
        self.name = name
        self._held = False
        self._waiters: deque[Event] = deque()

    @property
    def held(self) -> bool:
        return self._held

    @property
    def queue_depth(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Event that fires when the caller holds the resource."""
        ev = self.sim.event()
        if not self._held:
            self._held = True
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if not self._held:
            raise SimError(f"release of un-held resource {self.name!r}")
        if self._waiters:
            self._waiters.popleft().succeed(None)
        else:
            self._held = False

    def use(self, duration_us: float) -> Generator:
        """``yield from cpu.use(t)`` — hold the resource for ``t`` µs."""
        yield self.acquire()
        try:
            yield self.sim.timeout(duration_us)
        finally:
            self.release()
