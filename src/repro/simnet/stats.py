"""Network-wide counters.

One :class:`NetStats` instance is shared by every device in a cluster; the
benchmark harness reads it to report frames-on-wire (checked against the
paper's frame-count formulas), collisions (the paper's variance story on
the hub), and drops (the unreliability story for naive multicast).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .frame import FramePool

__all__ = ["NetStats"]


@dataclass
class NetStats:
    """Mutable counters updated by media, switches, NICs and sockets."""

    frames_sent: int = 0          #: host-originated frame transmissions
    frames_forwarded: int = 0     #: switch-egress re-serializations
    frames_trunk: int = 0         #: serializations on switch-to-switch trunks
    frames_delivered: int = 0     #: frame copies accepted by a NIC filter
    bytes_sent: int = 0           #: wire bytes (incl. Ethernet overhead)
    collisions: int = 0           #: CSMA/CD collision events
    backoffs: int = 0             #: individual station backoffs
    drops_no_listener: int = 0    #: multicast frame with no ready NIC filter
    drops_buffer_full: int = 0    #: datagram dropped: socket buffer overrun
    drops_not_posted: int = 0     #: datagram dropped: no posted receive
    drops_induced: int = 0        #: datagram dropped by a fault-injection filter
    drops_lossy: int = 0          #: multicast data dropped by NetParams.loss
    #: chaos-injection counters (:mod:`repro.chaos`): frames or datagrams
    #: dropped by a frame-fate hook, a downed link or a dead switch;
    #: duplicate copies injected; frames held back for reordering
    drops_chaos: int = 0
    dups_chaos: int = 0
    delays_chaos: int = 0
    datagrams_sent: int = 0
    datagrams_delivered: int = 0
    retransmissions: int = 0      #: ack-based reliable-multicast resends
    frames_by_kind: Counter = field(default_factory=Counter)
    #: per-kind serializations on trunk links — the scarce resource of a
    #: tiered fabric (each crossing re-serializes the frame on a
    #: switch-to-switch link, so a frame that traverses two trunks
    #: counts twice here)
    trunk_frames_by_kind: Counter = field(default_factory=Counter)
    #: the cluster's frame recycler (not a counter — lives here because
    #: NetStats is the one object every device in a cluster shares, which
    #: scopes recycled frames to exactly one simulation)
    frame_pool: FramePool = field(default_factory=FramePool, repr=False,
                                  compare=False)
    #: optional flight recorder (:class:`~repro.simnet.trace.RecorderHooks`)
    #: — ``None`` by default; every hook site in the stack guards on this
    #: single attribute, so tracing off costs one branch per event.  Rides
    #: on NetStats for the same reason the pool does: it is the one object
    #: every device in a cluster shares, which scopes a recording to
    #: exactly one simulation.
    recorder: object = field(default=None, repr=False, compare=False)

    def record_send(self, wire_size: int, kind: str) -> None:
        self.frames_sent += 1
        self.bytes_sent += wire_size
        self.frames_by_kind[kind] += 1

    def record_trunk(self, kind: str) -> None:
        self.frames_trunk += 1
        self.trunk_frames_by_kind[kind] += 1

    def snapshot(self) -> dict:
        """A plain-dict copy (for RunResult reporting)."""
        return {
            "frames_sent": self.frames_sent,
            "frames_forwarded": self.frames_forwarded,
            "frames_trunk": self.frames_trunk,
            "frames_delivered": self.frames_delivered,
            "bytes_sent": self.bytes_sent,
            "collisions": self.collisions,
            "backoffs": self.backoffs,
            "drops_no_listener": self.drops_no_listener,
            "drops_buffer_full": self.drops_buffer_full,
            "drops_not_posted": self.drops_not_posted,
            "drops_induced": self.drops_induced,
            "drops_lossy": self.drops_lossy,
            "drops_chaos": self.drops_chaos,
            "dups_chaos": self.dups_chaos,
            "delays_chaos": self.delays_chaos,
            "datagrams_sent": self.datagrams_sent,
            "datagrams_delivered": self.datagrams_delivered,
            "retransmissions": self.retransmissions,
            "frames_by_kind": dict(self.frames_by_kind),
            "trunk_frames_by_kind": dict(self.trunk_frames_by_kind),
            "pool_frames_allocated": self.frame_pool.allocated,
            "pool_frames_reused": self.frame_pool.reused,
        }

    def diff(self, earlier: dict) -> dict:
        """Counter deltas since an earlier :meth:`snapshot`."""
        now = self.snapshot()
        out = {}
        for key, val in now.items():
            if isinstance(val, dict):
                prev = earlier.get(key, {})
                out[key] = {k: v - prev.get(k, 0) for k, v in val.items()}
            else:
                out[key] = val - earlier.get(key, 0)
        return out
