"""Store-and-forward learning switch with IGMP snooping.

Models the paper's HP ProCurve managed switch:

* **learning** — source MACs are learned per port; unicast to a known MAC
  goes out exactly one port, unknown destinations are flooded;
* **store-and-forward** — a frame is processed only after it has been fully
  received on the ingress link (the ingress :class:`~repro.simnet.link.HalfLink`
  delivers on last-bit arrival), then pays ``switch_latency_us`` for lookup,
  then queues on each egress port, where it is serialized again.  This
  double serialization is why the paper's Fig. 11 shows the hub *beating*
  the switch for multicast traffic;
* **IGMP snooping** — the switch learns multicast group membership from
  IGMP report/leave frames and forwards a multicast frame only to member
  ports, so multicast on the switch consumes no bandwidth on uninvolved
  links (frames to groups with no snooped members are flooded, as real
  switches do for unregistered groups).

Egress ports forward in parallel with each other — the fan-out of a
multicast frame costs one serialization *per egress port* but those happen
concurrently, unlike the hub where everything shares one wire.

**Tiered fabrics** (:mod:`repro.simnet.fabric`) connect switches to each
other through **trunk ports** (``add_port(..., trunk=True)``).  Two things
distinguish a trunk port from a host port:

* membership is **refcounted** per ``(group, port)`` — a trunk aggregates
  every downstream member behind it, so the port stays in the member set
  until the *last* downstream join has been matched by a leave;
* IGMP report/leave frames are snooped *and then propagated* out every
  other trunk port (hosts never see them), so membership knowledge
  diffuses across the whole switch tree: a multicast frame pays trunk
  bandwidth only toward segments that actually contain members, and only
  **once** per interested downstream segment regardless of how many
  members live there.
"""

from __future__ import annotations

from typing import Optional

from .calibration import NetParams
from .frame import (BROADCAST, Frame, is_multicast, release_frame,
                    retain_frame)
from .kernel import Simulator
from .link import HalfLink
from .stats import NetStats

__all__ = ["Switch"]


class _Port:
    __slots__ = ("index", "out", "trunk")

    def __init__(self, index: int, out: HalfLink, trunk: bool):
        self.index = index
        self.out = out
        self.trunk = trunk


class Switch:
    """An output-queued, store-and-forward Ethernet switch."""

    def __init__(self, sim: Simulator, params: NetParams,
                 stats: Optional[NetStats] = None, name: str = "sw0"):
        self.sim = sim
        self.params = params
        self.stats = stats if stats is not None else NetStats()
        self.name = name
        self._ports: list[_Port] = []
        self._mac_table: dict[int, int] = {}
        # group -> {port index: downstream member refcount}
        self._mcast_table: dict[int, dict[int, int]] = {}
        self.frames_switched = 0
        self.frames_flooded = 0
        #: chaos seam: a powered-off switch blackholes every ingress
        #: frame (tables intact — power_on restores forwarding exactly
        #: as a rebooted snooping switch that kept its config would)
        self.alive = True

    # -- wiring -----------------------------------------------------------
    def add_port(self, out: HalfLink, trunk: bool = False) -> int:
        """Register an egress half-link; returns the new port index.

        ``trunk=True`` marks a switch-to-switch port: IGMP traffic is
        propagated out of it and its group membership is refcounted (it
        fronts every downstream member of its segment subtree).
        """
        port = _Port(len(self._ports), out, trunk)
        self._ports.append(port)
        return port.index

    @property
    def trunk_ports(self) -> list[int]:
        return [p.index for p in self._ports if p.trunk]

    # -- chaos seam -----------------------------------------------------
    def power_off(self):
        """Kill the switch mid-traffic (chaos injection): every frame
        arriving on any port is dropped until :meth:`power_on`.
        Returns the matching undo callable, so scenario code can stack
        it for teardown (`undo = switch.power_off(); ...; undo()`)."""
        self.alive = False
        return self.power_on

    def power_on(self) -> None:
        """Restore a powered-off switch (see :meth:`power_off`)."""
        self.alive = True

    # -- data path ------------------------------------------------------
    def receive(self, port_idx: int, frame: Frame) -> None:
        """Ingress entry point, called by the host→switch half link."""
        if not self.alive:
            self.stats.drops_chaos += 1
            release_frame(frame)
            return
        self._mac_table[frame.src] = port_idx
        if frame.kind == "igmp":
            self._snoop(port_idx, frame)
            return
        egress = self._egress_ports(port_idx, frame)
        self.frames_switched += 1
        rec = self.stats.recorder
        if rec is not None:
            rec.frame_switched(self.sim.now, frame, self.name, len(egress))
        if not egress:
            release_frame(frame)
            return
        # One scheduled record fans the frame to every interested port
        # (the ports fork the frame: one extra reference per egress copy
        # beyond the one the ingress path handed us).  The sends run in
        # the same port order, at the same instant, with no intervening
        # records — identical to the historical one-record-per-port
        # schedule, minus the heap churn.
        retain_frame(frame, len(egress) - 1)
        ports = self._ports
        self.sim.schedule_call(self.params.switch_latency_us, self._fanout,
                               [ports[idx].out for idx in egress], frame)

    def _fanout(self, outs: list[HalfLink], frame: Frame) -> None:
        for out in outs:
            out.send(frame)

    def _egress_ports(self, ingress: int, frame: Frame) -> list[int]:
        dst = frame.dst
        if dst == BROADCAST:
            return [p.index for p in self._ports if p.index != ingress]
        if is_multicast(dst):
            members = self._mcast_table.get(dst)
            if members is None:
                # Unregistered group: flood (default switch behaviour).
                self.frames_flooded += 1
                return [p.index for p in self._ports if p.index != ingress]
            return [i for i in sorted(members)
                    if members[i] > 0 and i != ingress]
        port = self._mac_table.get(dst)
        if port is None:
            self.frames_flooded += 1
            return [p.index for p in self._ports if p.index != ingress]
        return [port] if port != ingress else []

    # -- IGMP snooping -------------------------------------------------
    def _snoop(self, port_idx: int, frame: Frame) -> None:
        op, group = frame.payload
        if op == "join":
            refs = self._mcast_table.setdefault(group, {})
            refs[port_idx] = refs.get(port_idx, 0) + 1
        elif op == "leave":
            # A leave for a never-registered group must not register it
            # (that would flip its traffic from flood to drop); for a
            # known group, keep the (possibly now empty) entry — the
            # group stays registered, so traffic to it is dropped
            # rather than flooded.
            refs = self._mcast_table.get(group)
            if refs is not None and refs.get(port_idx, 0) > 0:
                refs[port_idx] -= 1
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown IGMP op {op!r}")
        # Propagate membership knowledge across the switch tree: every
        # other *trunk* port forwards the report/leave (hosts never see
        # IGMP — report suppression, as real snooping switches do).  The
        # fabric is a tree, so propagation cannot loop.
        outs = [port.out for port in self._ports
                if port.trunk and port.index != port_idx]
        if not outs:
            release_frame(frame)
            return
        retain_frame(frame, len(outs) - 1)
        self.sim.schedule_call(self.params.switch_latency_us, self._fanout,
                               outs, frame)

    # -- inspection -------------------------------------------------------
    def members_of(self, group: int) -> set[int]:
        """Snooped member ports of a multicast group (empty if none)."""
        refs = self._mcast_table.get(group, {})
        return {i for i, n in refs.items() if n > 0}

    def port_of(self, mac: int) -> Optional[int]:
        return self._mac_table.get(mac)
