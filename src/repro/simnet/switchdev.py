"""Store-and-forward learning switch with IGMP snooping.

Models the paper's HP ProCurve managed switch:

* **learning** — source MACs are learned per port; unicast to a known MAC
  goes out exactly one port, unknown destinations are flooded;
* **store-and-forward** — a frame is processed only after it has been fully
  received on the ingress link (the ingress :class:`~repro.simnet.link.HalfLink`
  delivers on last-bit arrival), then pays ``switch_latency_us`` for lookup,
  then queues on each egress port, where it is serialized again.  This
  double serialization is why the paper's Fig. 11 shows the hub *beating*
  the switch for multicast traffic;
* **IGMP snooping** — the switch learns multicast group membership from
  IGMP report/leave frames and forwards a multicast frame only to member
  ports, so multicast on the switch consumes no bandwidth on uninvolved
  links (frames to groups with no snooped members are flooded, as real
  switches do for unregistered groups).

Egress ports forward in parallel with each other — the fan-out of a
multicast frame costs one serialization *per egress port* but those happen
concurrently, unlike the hub where everything shares one wire.
"""

from __future__ import annotations

from typing import Optional

from .calibration import NetParams
from .frame import BROADCAST, Frame, is_multicast
from .kernel import Simulator
from .link import HalfLink
from .stats import NetStats

__all__ = ["Switch"]


class _Port:
    __slots__ = ("index", "out")

    def __init__(self, index: int, out: HalfLink):
        self.index = index
        self.out = out


class Switch:
    """An output-queued, store-and-forward Ethernet switch."""

    def __init__(self, sim: Simulator, params: NetParams,
                 stats: Optional[NetStats] = None, name: str = "sw0"):
        self.sim = sim
        self.params = params
        self.stats = stats if stats is not None else NetStats()
        self.name = name
        self._ports: list[_Port] = []
        self._mac_table: dict[int, int] = {}
        self._mcast_table: dict[int, set[int]] = {}
        self.frames_switched = 0
        self.frames_flooded = 0

    # -- wiring -----------------------------------------------------------
    def add_port(self, out: HalfLink) -> int:
        """Register an egress half-link; returns the new port index."""
        port = _Port(len(self._ports), out)
        self._ports.append(port)
        return port.index

    # -- data path ------------------------------------------------------
    def receive(self, port_idx: int, frame: Frame) -> None:
        """Ingress entry point, called by the host→switch half link."""
        self._mac_table[frame.src] = port_idx
        if frame.kind == "igmp":
            self._snoop(port_idx, frame)
            return
        egress = self._egress_ports(port_idx, frame)
        self.frames_switched += 1
        for idx in egress:
            self.sim.schedule_call(self.params.switch_latency_us,
                                   self._ports[idx].out.send, frame)

    def _egress_ports(self, ingress: int, frame: Frame) -> list[int]:
        dst = frame.dst
        if dst == BROADCAST:
            return [p.index for p in self._ports if p.index != ingress]
        if is_multicast(dst):
            members = self._mcast_table.get(dst)
            if members is None:
                # Unregistered group: flood (default switch behaviour).
                self.frames_flooded += 1
                return [p.index for p in self._ports if p.index != ingress]
            return [i for i in sorted(members) if i != ingress]
        port = self._mac_table.get(dst)
        if port is None:
            self.frames_flooded += 1
            return [p.index for p in self._ports if p.index != ingress]
        return [port] if port != ingress else []

    # -- IGMP snooping -------------------------------------------------
    def _snoop(self, port_idx: int, frame: Frame) -> None:
        op, group = frame.payload
        if op == "join":
            self._mcast_table.setdefault(group, set()).add(port_idx)
        elif op == "leave":
            members = self._mcast_table.get(group)
            if members is not None:
                members.discard(port_idx)
                if not members:
                    # Keep the (now empty) entry: the group is registered,
                    # so traffic to it is dropped rather than flooded.
                    pass
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown IGMP op {op!r}")

    # -- inspection -------------------------------------------------------
    def members_of(self, group: int) -> set[int]:
        """Snooped member ports of a multicast group (empty if none)."""
        return set(self._mcast_table.get(group, set()))

    def port_of(self, mac: int) -> Optional[int]:
        return self._mac_table.get(mac)
