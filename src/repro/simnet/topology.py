"""Cluster topology builders: the paper's two experimental platforms.

:func:`build_cluster` assembles ``n`` hosts connected through either

* ``"hub"``  — one CSMA/CD :class:`~repro.simnet.medium.SharedMedium`
  (the 3Com SuperStack II hub: one collision domain, natural broadcast), or
* ``"switch"`` — a store-and-forward :class:`~repro.simnet.switchdev.Switch`
  with a full-duplex link per host (the HP ProCurve: no collisions,
  parallel port-to-port paths, IGMP snooping).

Both return a :class:`Cluster` holding the simulator, hosts, shared
statistics, and a :class:`~repro.simnet.ip.GroupAllocator` for multicast
group addresses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from .calibration import NetParams, FAST_ETHERNET_HUB, FAST_ETHERNET_SWITCH
from .host import Host
from .ip import GroupAllocator
from .kernel import Simulator
from .link import HalfLink
from .medium import SharedMedium
from .stats import NetStats
from .switchdev import Switch

__all__ = ["Cluster", "build_cluster", "TOPOLOGIES"]

TOPOLOGIES = ("hub", "switch")


@dataclass
class Cluster:
    """A ready-to-use simulated LAN."""

    sim: Simulator
    params: NetParams
    topology: str
    hosts: list[Host]
    stats: NetStats
    groups: GroupAllocator = field(default_factory=GroupAllocator)
    medium: Optional[SharedMedium] = None
    switch: Optional[Switch] = None

    @property
    def n(self) -> int:
        return len(self.hosts)

    def host(self, addr: int) -> Host:
        return self.hosts[addr]


def build_cluster(n: int, topology: str = "switch",
                  params: Optional[NetParams] = None,
                  seed: int = 0) -> Cluster:
    """Build an ``n``-host cluster on the given topology.

    ``seed`` drives every stochastic element (CSMA/CD backoff, software
    jitter) through per-host substreams, so a (n, topology, params, seed)
    tuple is fully reproducible.
    """
    if n < 1:
        raise ValueError(f"cluster needs at least one host, got n={n}")
    if topology not in TOPOLOGIES:
        raise ValueError(f"unknown topology {topology!r}; "
                         f"expected one of {TOPOLOGIES}")
    if params is None:
        params = FAST_ETHERNET_HUB if topology == "hub" else FAST_ETHERNET_SWITCH

    sim = Simulator()
    stats = NetStats()
    master = random.Random(seed)
    hosts = [Host(sim, params, addr=i, stats=stats,
                  seed=master.randrange(2**63)) for i in range(n)]
    cluster = Cluster(sim=sim, params=params, topology=topology,
                      hosts=hosts, stats=stats)

    if topology == "hub":
        medium = SharedMedium(sim, params,
                              rng=random.Random(master.randrange(2**63)),
                              stats=stats)
        for host in hosts:
            host.nic.attach_medium(medium)
        cluster.medium = medium
    else:
        switch = Switch(sim, params, stats=stats)
        for host in hosts:
            # host -> switch direction: deliver into the switch fabric
            port_holder: list[int] = []
            up = HalfLink(sim, params, stats,
                          deliver=_make_ingress(switch, port_holder),
                          name=f"{host.name}->sw")
            # switch -> host direction (forwarding, not a host send)
            down = HalfLink(sim, params, stats, deliver=host.nic.deliver,
                            name=f"sw->{host.name}", count_as_send=False)
            port_holder.append(switch.add_port(down))
            host.nic.attach_link(up)
        cluster.switch = switch

    return cluster


def _make_ingress(switch: Switch, port_holder: list[int]):
    """Bind the ingress callback to the port index assigned afterwards."""

    def ingress(frame):
        switch.receive(port_holder[0], frame)

    return ingress
