"""Cluster topology builders: the paper's two experimental platforms,
plus tiered multi-segment fabrics.

:func:`build_cluster` assembles ``n`` hosts connected through either

* ``"hub"``  — one CSMA/CD :class:`~repro.simnet.medium.SharedMedium`
  (the 3Com SuperStack II hub: one collision domain, natural broadcast),
* ``"switch"`` — a store-and-forward :class:`~repro.simnet.switchdev.Switch`
  with a full-duplex link per host (the HP ProCurve: no collisions,
  parallel port-to-port paths, IGMP snooping), or
* a ``"tree:..."`` string — a recursive
  :class:`~repro.simnet.fabric.Fabric` of switches joined by trunk
  links that may carry their own ``trunk_params`` (a single
  :class:`NetParams` or one per tier).  ``"tree:SxH"`` is the two-tier
  switch-of-switches, ``"tree:B1x..xBkxH"`` an arbitrary-depth tree
  (``"tree:2x2x2"`` = three switch tiers, 4 leaves of 2 hosts), and
  ``"tree:[n1,n2,...]"`` a heterogeneous two-tier build (one leaf per
  entry) — see :mod:`repro.simnet.fabric` for the grammar.

All return a :class:`Cluster` holding the simulator, hosts, shared
statistics, and a :class:`~repro.simnet.ip.GroupAllocator` for multicast
group addresses.  The cluster also answers **topology discovery**
questions (segment membership, per-host segment id, trunk distances) so
collectives can adapt to the fabric at runtime; on the flat topologies
the answers degrade to a single segment holding every host.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from .calibration import NetParams, FAST_ETHERNET_HUB, FAST_ETHERNET_SWITCH
from .fabric import Fabric, build_fabric, parse_topology
from .host import Host
from .ip import GroupAllocator
from .kernel import Simulator
from .link import HalfLink
from .medium import SharedMedium
from .stats import NetStats
from .switchdev import Switch

__all__ = ["Cluster", "build_cluster", "TOPOLOGIES"]

#: the flat topologies; ``"tree:SxH"`` strings are accepted alongside
TOPOLOGIES = ("hub", "switch")


@dataclass
class Cluster:
    """A ready-to-use simulated LAN."""

    sim: Simulator
    params: NetParams
    topology: str
    hosts: list[Host]
    stats: NetStats
    groups: GroupAllocator = field(default_factory=GroupAllocator)
    medium: Optional[SharedMedium] = None
    switch: Optional[Switch] = None
    fabric: Optional[Fabric] = None
    #: per-host access links ``addr -> (up, down)`` on switched
    #: topologies (the host-crash chaos seam; empty on the hub, whose
    #: shared medium has no per-host cable to cut)
    host_links: dict = field(default_factory=dict)

    @property
    def n(self) -> int:
        return len(self.hosts)

    def host(self, addr: int) -> Host:
        return self.hosts[addr]

    # -- chaos seams -----------------------------------------------------
    def crash_host(self, addr: int):
        """Cut both directions of a host's access link (fail-stop crash
        as the network sees it: the host falls silent and nothing
        reaches it).  Returns the matching undo callable
        (== ``lambda: restore_host(addr)``)."""
        try:
            up, down = self.host_links[addr]
        except KeyError:
            raise ValueError(
                f"host {addr} has no access link to cut (hub topology "
                f"or unknown address)") from None
        up.up = down.up = False
        return lambda: self.restore_host(addr)

    def restore_host(self, addr: int) -> None:
        """Reconnect a host cut by :meth:`crash_host`."""
        up, down = self.host_links[addr]
        up.up = down.up = True

    def partition_faults(self) -> list[str]:
        """Descriptions of every active partition-class fault (downed
        trunks or host links, dead switches); empty when the fabric is
        whole.  :func:`~repro.runtime.program.run_spmd` consults this
        to turn a deadlock under partition into a typed
        :class:`~repro.simnet.fabric.PartitionError`."""
        faults = []
        if self.fabric is not None:
            faults.extend(self.fabric.partition_faults())
        if self.switch is not None and not self.switch.alive:
            faults.append(f"switch {self.switch.name} dead")
        if self.fabric is None:
            # flat switch build: the fabric (when present) already
            # reported its own host links
            for addr in sorted(self.host_links):
                up, down = self.host_links[addr]
                if not (up.up and down.up):
                    faults.append(f"host {addr} links down")
        return faults

    # -- topology discovery (uniform across flat and tiered builds) ------
    @property
    def nsegments(self) -> int:
        """Switch segments in the fabric (1 on hub/switch)."""
        return self.fabric.nsegments if self.fabric is not None else 1

    def segment_of(self, addr: int) -> int:
        """Segment id of a host address (0 on flat topologies)."""
        if self.fabric is not None:
            return self.fabric.segment_of(addr)
        if not 0 <= addr < len(self.hosts):
            raise ValueError(f"host {addr} is not part of this cluster")
        return 0

    def segment_members(self, seg_id: int) -> list[int]:
        """Host addresses in segment ``seg_id``."""
        if self.fabric is not None:
            return self.fabric.segment_members(seg_id)
        if seg_id != 0:
            raise ValueError(f"no segment {seg_id} in a flat cluster")
        return [h.addr for h in self.hosts]

    def segment_path(self, seg_id: int) -> tuple:
        """Tree path of a segment's leaf switch in the fabric's switch
        tree (child indices from the core; ``(seg_id,)`` degenerate on
        flat topologies, where there is no tree)."""
        if self.fabric is not None:
            return self.fabric.segment_path(seg_id)
        if seg_id != 0:
            raise ValueError(f"no segment {seg_id} in a flat cluster")
        return (0,)

    def trunk_hops(self, a: int, b: int) -> int:
        """Trunk serializations on the a↔b path (0 on flat topologies)."""
        if self.fabric is not None:
            return self.fabric.trunk_hops(a, b)
        return 0

    def trunk_distance_matrix(self) -> list[list[int]]:
        """``matrix[a][b]`` = trunk hops between host addrs a and b."""
        if self.fabric is not None:
            return self.fabric.trunk_distance_matrix()
        n = len(self.hosts)
        return [[0] * n for _ in range(n)]


def build_cluster(n: int, topology: str = "switch",
                  params: Optional[NetParams] = None,
                  seed: int = 0,
                  trunk_params=None) -> Cluster:
    """Build an ``n``-host cluster on the given topology.

    ``seed`` drives every stochastic element (CSMA/CD backoff, software
    jitter) through per-host substreams, so a (n, topology, params, seed)
    tuple is fully reproducible.  ``trunk_params`` sets the wire
    parameters of the switch-to-switch trunks of a ``"tree:..."`` build:
    one :class:`NetParams` for every trunk, or a sequence indexed by
    tier (0 = the trunks leaving the core); defaults to ``params`` — an
    undifferentiated backbone.
    """
    if n < 1:
        raise ValueError(f"cluster needs at least one host, got n={n}")
    spec = None
    if topology not in TOPOLOGIES:
        spec = parse_topology(topology)
        if spec is None:
            raise ValueError(f"unknown topology {topology!r}; "
                             f"expected one of {TOPOLOGIES} or a "
                             f"'tree:...' fabric string")
        if spec.n != n:
            raise ValueError(
                f"topology {topology!r} wires exactly {spec.n} hosts, "
                f"got n={n}")
    if params is None:
        params = FAST_ETHERNET_HUB if topology == "hub" else FAST_ETHERNET_SWITCH

    sim = Simulator()
    stats = NetStats()
    master = random.Random(seed)
    hosts = [Host(sim, params, addr=i, stats=stats,
                  seed=master.randrange(2**63)) for i in range(n)]
    cluster = Cluster(sim=sim, params=params, topology=topology,
                      hosts=hosts, stats=stats)

    if spec is not None:
        cluster.fabric = build_fabric(sim, params, hosts, spec, stats,
                                      trunk_params=trunk_params)
        cluster.host_links = cluster.fabric.host_links
    elif topology == "hub":
        medium = SharedMedium(sim, params,
                              rng=random.Random(master.randrange(2**63)),
                              stats=stats)
        for host in hosts:
            host.nic.attach_medium(medium)
        cluster.medium = medium
    else:
        switch = Switch(sim, params, stats=stats)
        for host in hosts:
            # host -> switch direction: deliver into the switch fabric
            port_holder: list[int] = []
            up = HalfLink(sim, params, stats,
                          deliver=_make_ingress(switch, port_holder),
                          name=f"{host.name}->sw")
            # switch -> host direction (forwarding, not a host send)
            down = HalfLink(sim, params, stats, deliver=host.nic.deliver,
                            name=f"sw->{host.name}", count_as_send=False)
            port_holder.append(switch.add_port(down))
            host.nic.attach_link(up)
            cluster.host_links[host.addr] = (up, down)
        cluster.switch = switch

    return cluster


def _make_ingress(switch: Switch, port_holder: list[int]):
    """Bind the ingress callback to the port index assigned afterwards."""

    def ingress(frame):
        switch.receive(port_holder[0], frame)

    return ingress
