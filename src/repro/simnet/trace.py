"""Lightweight wire-event tracing (opt-in, for debugging and analysis).

A :class:`Tracer` can be wrapped around a cluster's statistics hooks to
record a timeline of frame transmissions; tests use it to assert ordering
properties (e.g. that scouts precede the multicast payload on the wire).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .stats import NetStats

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    time_us: float
    kind: str          #: frame kind ("data", "scout", "release", "igmp"...)
    src: int
    dst: int
    size: int


class Tracer:
    """Records every frame send passing through a NetStats instance."""

    def __init__(self, sim, stats: NetStats):
        self.sim = sim
        self.events: list[TraceEvent] = []
        self._orig_record: Optional[Callable] = None
        self._stats = stats

    def install(self) -> "Tracer":
        """Monkey-patch stats.record_send to also log a TraceEvent.

        The patch captures only (time, kind, size) — src/dst need frame
        context, so devices that want full tracing call :meth:`note`.
        """
        orig = self._stats.record_send
        self._orig_record = orig

        def wrapped(wire_size: int, kind: str) -> None:
            self.events.append(TraceEvent(self.sim.now, kind, -1, -1,
                                          wire_size))
            orig(wire_size, kind)

        self._stats.record_send = wrapped  # type: ignore[method-assign]
        return self

    def uninstall(self) -> None:
        if self._orig_record is not None:
            self._stats.record_send = self._orig_record  # type: ignore
            self._orig_record = None

    def note(self, kind: str, src: int, dst: int, size: int) -> None:
        """Explicitly record an event with full addressing."""
        self.events.append(TraceEvent(self.sim.now, kind, src, dst, size))

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def first_time(self, kind: str) -> Optional[float]:
        evs = self.of_kind(kind)
        return evs[0].time_us if evs else None
