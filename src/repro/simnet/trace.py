"""Flight-recorder hook points + lightweight wire-event tracing.

:class:`RecorderHooks` is the protocol every layer of the stack reports
into: devices (medium, links, switches, NICs) call the ``frame_*``
hooks with real frame context, the multicast round engine
(``repro.core.rounds``) calls the round-lifecycle hooks, and the MPI
dispatch layer calls the collective/phase span hooks.  Every hook site
is guarded by a single branch on ``stats.recorder`` (``None`` by
default), so tracing off costs one attribute load per event and
schedules nothing — the recorder is *pulled* data synchronously, never
woken by the event loop.

The base class implements every hook as a no-op, which is what lets a
recorder live below every layer: ``repro.simnet`` defines the
vocabulary, ``repro.obs`` subclasses it with the full flight recorder,
and nothing in ``simnet``/``core``/``mpi`` ever imports upward.

Hook implementations must copy what they need out of a ``frame``
argument *synchronously*: frames are pool-recycled the moment the last
delivery path releases them, so holding a reference records garbage.

:class:`Tracer` is the original, minimal consumer: a flat list of
:class:`TraceEvent` used by tests and ``bench/timeline.py`` to assert
wire orderings.  It used to monkey-patch ``NetStats.record_send`` and
could therefore only record ``src=-1, dst=-1`` placeholders; it is now
a :class:`RecorderHooks` subclass fed from the same frame-context hook
points as the full flight recorder, so events carry real addressing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["RecorderHooks", "TraceEvent", "Tracer"]


class RecorderHooks:
    """No-op base implementation of every flight-recorder hook point.

    ``now`` is always the simulator clock at the hook site (passed
    explicitly so recorders need no back-reference to the simulator);
    ``addr`` is always the *host* address the event happened on — the
    same integer frames carry as ``src``, which is what lets a recorder
    attribute wire traffic to the collective call that caused it.
    """

    # ------------------------------------------------ frame path (devices)
    def frame_sent(self, now: float, frame, via: str) -> None:
        """A host-originated transmission started (``record_send`` site)."""

    def frame_forwarded(self, now: float, frame, via: str,
                        trunk: bool) -> None:
        """A switch-egress re-serialization started (``trunk`` on
        switch-to-switch links)."""

    def frame_delivered(self, now: float, frame, mac: int) -> None:
        """A NIC filter accepted a frame copy for host ``mac``."""

    def frame_switched(self, now: float, frame, via: str,
                       negress: int) -> None:
        """A switch accepted a frame and fanned it to ``negress`` ports."""

    # ------------------------------------------- round engine (repro.core)
    def round_begin(self, now: float, addr: int, role: str, seq: int,
                    rnd: int, nsegs: int):
        """A NACK-repair round started (``role`` is serve/follow)."""
        return None

    def round_end(self, now: float, token, posted_hw: int = 0) -> None:
        """The round that returned ``token`` finished."""

    def pacing_stall(self, now: float, addr: int, gap_us: float) -> None:
        """The sender slept ``gap_us`` before the next paced datagram."""

    def nack_report(self, now: float, addr: int, src: int, rnd: int,
                    missing: tuple, budget: int) -> None:
        """The server received one receiver's segment report."""

    def nack_sent(self, now: float, addr: int, rnd: int,
                  missing: tuple) -> None:
        """A receiver reported ``missing`` segments up to the root."""

    def repair_decision(self, now: float, addr: int, rnd: int,
                        plan) -> None:
        """The server decided the next repair round (or completion)."""

    def drain_timeout(self, now: float, addr: int, rnd: int,
                      cancelled: int) -> None:
        """A receiver's drain timer expired with descriptors pending."""

    def round_open(self, now: float, addr: int, label: str,
                   missing_fn) -> None:
        """A reassembly is in flight; ``missing_fn()`` names the segment
        indices still outstanding (live — for hang diagnostics)."""

    def round_close(self, now: float, addr: int, label: str) -> None:
        """The reassembly opened under ``label`` completed or aborted."""

    # -------------------------------------------- collectives (repro.mpi)
    def collective_begin(self, now: float, addr: int, rank: int, op: str,
                         impl: str):
        """A collective call entered dispatch on ``rank``."""
        return None

    def collective_end(self, now: float, token):
        """The collective that returned ``token`` finished; returns the
        finalized per-call metrics record (or ``None``)."""
        return None

    def phase_begin(self, now: float, addr: int, label: str):
        """A hierarchical sub-phase started on this rank."""
        return None

    def phase_end(self, now: float, token) -> None:
        """The phase that returned ``token`` finished."""

    # ------------------------------------------- chaos hooks (repro.chaos)
    def chaos_fault_begin(self, now: float, name: str):
        """An injected fault window opened (a trunk cut, a switch
        killed, a drop hook armed); returns a token for the matching
        ``chaos_fault_end``, so fault windows show up as spans in the
        trace and the hang dump can tell injected faults from bugs."""
        return None

    def chaos_fault_end(self, now: float, token) -> None:
        """The fault window that returned ``token`` was healed."""


@dataclass(frozen=True)
class TraceEvent:
    time_us: float
    kind: str          #: frame kind ("data", "scout", "release", "igmp"...)
    src: int
    dst: int
    size: int


class Tracer(RecorderHooks):
    """Records every frame send passing through a NetStats instance."""

    def __init__(self, sim, stats):
        self.sim = sim
        self.events: list[TraceEvent] = []
        self._stats = stats
        self._installed = False

    def install(self) -> "Tracer":
        """Attach as ``stats.recorder`` so every ``frame_sent`` hook
        (the same sites ``record_send`` counts) logs a TraceEvent with
        real addressing.  Replaces the deprecated ``record_send``
        monkey-patch, which could not see the frame."""
        self._stats.recorder = self
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed and self._stats.recorder is self:
            self._stats.recorder = None
        self._installed = False

    def frame_sent(self, now: float, frame, via: str) -> None:
        self.events.append(TraceEvent(now, frame.kind, frame.src,
                                      frame.dst, frame.wire_size))

    def note(self, kind: str, src: int, dst: int, size: int) -> None:
        """Explicitly record an event with full addressing."""
        self.events.append(TraceEvent(self.sim.now, kind, src, dst, size))

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def first_time(self, kind: str) -> Optional[float]:
        evs = self.of_kind(kind)
        return evs[0].time_us if evs else None
