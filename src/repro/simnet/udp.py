"""UDP sockets over the simulated stack — including the paper's two
delivery disciplines.

A socket operates in one of two modes:

* **buffered** (default) — datagrams arriving with no pending ``recv`` are
  queued up to ``buffer_bytes``; beyond that they are dropped and counted
  (``drops_buffer_full``).  This is ordinary BSD-socket behaviour and what
  the MPI point-to-point layer builds on.
* **posted-only** (``posted_only=True``) — a datagram is delivered *only*
  if a receive has already been posted; otherwise it is dropped and
  counted (``drops_not_posted``).  This is the paper's model of multicast
  readiness ("only receivers that are ready at the time the message
  arrives will receive it") and of VIA-style descriptor posting mentioned
  in its future work.  The multicast collective data path uses this mode,
  which is why scout synchronization is *necessary* and not just polite.

Send and receive both charge per-datagram software time on the host CPU —
the dominant term at the paper's message sizes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generator, Optional

from .host import Host
from .ip import Datagram
from .kernel import Event, SimError

__all__ = ["UdpSocket", "SocketClosed"]


class SocketClosed(SimError):
    """Operation on a closed socket."""


class UdpSocket:
    """A simulated UDP socket (see module docstring for the two modes)."""

    def __init__(self, host: Host, port: Optional[int] = None, *,
                 posted_only: bool = False,
                 buffer_bytes: Optional[int] = None,
                 send_cost_us: Optional[float] = None,
                 recv_cost_us: Optional[float] = None,
                 mcast_loop: bool = True):
        self.host = host
        self.sim = host.sim
        self.params = host.params
        self.stats = host.stats
        self.posted_only = posted_only
        #: IP_MULTICAST_LOOP: deliver own multicast sends locally
        self.mcast_loop = mcast_loop
        # Per-socket software costs let the MPI point-to-point layer pay
        # TCP-like prices (MPICH ch_p4) while multicast pays UDP prices.
        self.send_cost_us = (host.params.udp_send_us
                             if send_cost_us is None else send_cost_us)
        self.recv_cost_us = (host.params.udp_recv_us
                             if recv_cost_us is None else recv_cost_us)
        self.buffer_bytes = (host.params.socket_buffer_bytes
                             if buffer_bytes is None else buffer_bytes)
        self.port = host.ipstack.bind(self, port)
        self._groups: set[int] = set()
        self._queue: deque[Datagram] = deque()
        self._queued_bytes = 0
        self._posted: deque[Event] = deque()
        self._closed = False
        self.rx_dropped = 0
        #: most receive descriptors simultaneously posted over the
        #: socket's lifetime — the descriptor-ring size a real VIA-style
        #: NIC would need.  The segmented collectives' pacing work reads
        #: this to check that a budget-limited receiver really never
        #: held more than its ring.
        self.posted_high_water = 0
        #: optional fault-injection hook: ``drop_filter(dgram) -> bool``;
        #: a True return drops the datagram before delivery (counted as
        #: ``drops_induced``).  Benchmarks and tests use this to model
        #: lossy multicast without touching the wire simulation.
        self.drop_filter: Optional[Callable[[Datagram], bool]] = None

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Close the socket.

        Receives still posted at close time are *failed* with
        :class:`SocketClosed`, so a process blocked on one gets a clear
        error instead of hanging until the end-of-simulation deadlock
        detector trips.
        """
        if self._closed:
            return
        for group in list(self._groups):
            self.leave(group)
        self._closed = True
        self.host.ipstack.unbind(self.port)
        while self._posted:
            self._posted.popleft().fail(SocketClosed(
                f"socket :{self.port} on host {self.host.addr} closed "
                f"with a receive still posted"))

    def _check_open(self) -> None:
        if self._closed:
            raise SocketClosed(f"socket :{self.port} on host "
                               f"{self.host.addr} is closed")

    # -- multicast membership ---------------------------------------------
    def join(self, group: int) -> None:
        """Join a multicast group (programs NIC filter + IGMP report)."""
        self._check_open()
        if group in self._groups:
            return
        self._groups.add(group)
        self.host.ipstack.join_group(group)

    def leave(self, group: int) -> None:
        self._check_open()
        if group not in self._groups:
            return
        self._groups.discard(group)
        self.host.ipstack.leave_group(group)

    def joined(self, group: int) -> bool:
        return group in self._groups

    # -- send ------------------------------------------------------------
    def sendto(self, payload, size: int, dst: int, dst_port: int,
               kind: str = "data") -> Generator:
        """Send a datagram; completes when handed to the NIC queue.

        Charges ``udp_send_us`` (jittered) on the host CPU, like a
        ``sendto`` syscall.  Usage: ``yield from sock.sendto(...)``.
        """
        self._check_open()
        cost = self.host.jitter(self.send_cost_us)
        cost += self.params.per_frame_tx_us * (self.params.frames_for(size) - 1)
        yield from self.host.cpu.use(cost)
        dgram = Datagram(src=self.host.addr, src_port=self.port, dst=dst,
                         dst_port=dst_port, payload=payload, size=size,
                         kind=kind)
        self.host.ipstack.send_datagram(dgram, mcast_loop=self.mcast_loop)
        return dgram

    # -- receive ---------------------------------------------------------
    def post_recv(self) -> Event:
        """Post a receive; the event fires with the :class:`Datagram`.

        In posted-only mode this is the "receive descriptor" that must be
        in place *before* the datagram arrives.
        """
        self._check_open()
        ev = self.sim.event()
        if self._queue:
            dgram = self._queue.popleft()
            self._queued_bytes -= dgram.size
            ev.succeed(dgram)
        else:
            self._posted.append(ev)
            self.posted_high_water = max(self.posted_high_water,
                                         len(self._posted))
        return ev

    def post_recv_many(self, n: int) -> list[Event]:
        """Post ``n`` receive descriptors at once (VIA-style batching).

        The segmented multicast data path pre-posts one descriptor per
        expected segment; arrivals fill descriptors in posting order.
        """
        if n < 0:
            raise ValueError(f"cannot post {n} receives")
        return [self.post_recv() for _ in range(n)]

    def cancel_recv(self, ev: Event) -> None:
        """Withdraw a posted receive that has not fired."""
        try:
            self._posted.remove(ev)
        except ValueError:
            pass

    def cancel_recv_all(self, events: list[Event]) -> None:
        """Withdraw every untriggered posted receive in ``events``.

        Leaving even one behind makes the *next* delivery on this socket
        disappear into the stale descriptor — the cross-collective leak
        the segmented collectives and the unpaced allgather must avoid.
        """
        for ev in events:
            if not ev.triggered:
                self.cancel_recv(ev)

    def recv(self, timeout: Optional[float] = None) -> Generator:
        """Blocking receive; returns a Datagram, or None on timeout.

        Charges ``udp_recv_us`` on the host CPU once a datagram arrives
        (the syscall + copy cost).  Usage: ``d = yield from sock.recv()``.
        """
        ev = self.post_recv()
        if timeout is None:
            dgram = yield ev
        else:
            timer = self.sim.timeout(timeout)
            fired = yield self.sim.any_of([ev, timer])
            if ev not in fired:
                self.cancel_recv(ev)
                return None
            dgram = ev.value
        yield from self.host.cpu.use(self.host.jitter(self.recv_cost_us))
        self.stats.datagrams_delivered += 1
        return dgram

    # -- delivery from the IP stack ---------------------------------------
    def _deliver(self, dgram: Datagram) -> None:
        if self._closed:
            self.stats.drops_no_listener += 1
            return
        if self.drop_filter is not None and self.drop_filter(dgram):
            self.rx_dropped += 1
            self.stats.drops_induced += 1
            return
        if self.host.frame_fate is not None:
            # The stateful chaos hook (see Host.frame_fate): one
            # decision per datagram, before the loss model, so chaos
            # runs compose with (and are distinguishable from)
            # NetParams.loss.
            fate = self.host.frame_fate(dgram)
            if fate == "drop":
                self.rx_dropped += 1
                self.stats.drops_chaos += 1
                return
            if fate == "dup":
                self.stats.dups_chaos += 1
                self._accept(dgram)
                self._accept(dgram)
                return
            if fate not in (None, "deliver"):
                raise ValueError(f"frame_fate hook on host "
                                 f"{self.host.addr} returned unknown "
                                 f"fate {fate!r}")
        if (dgram.kind == "mcast-seg" and self.params.loss > 0.0
                and self.host.loss_rng.random() < self.params.loss):
            # NetParams.loss wired for real: each receiver drops each
            # multicast data datagram independently with probability
            # ``loss`` (seeded per host, so runs stay reproducible).
            # Only ``mcast-seg`` data is lossy — the engine repairs it
            # selectively, and the benches close the loop between this
            # measured repair traffic and the auto policy's
            # ``expected_seg_repair_frames`` expectation.
            self.rx_dropped += 1
            self.stats.drops_lossy += 1
            return
        self._accept(dgram)

    def _accept(self, dgram: Datagram) -> None:
        """The delivery tail every surviving datagram copy goes through:
        fill a posted descriptor, or queue/drop per the socket mode."""
        if self._posted:
            self._posted.popleft().succeed(dgram)
            return
        if self.posted_only:
            self.rx_dropped += 1
            self.stats.drops_not_posted += 1
            return
        if self._queued_bytes + dgram.size > self.buffer_bytes:
            self.rx_dropped += 1
            self.stats.drops_buffer_full += 1
            return
        self._queue.append(dgram)
        self._queued_bytes += dgram.size

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def posted_depth(self) -> int:
        """Receive descriptors currently posted and unfilled."""
        return len(self._posted)
