"""Time and data-size units used throughout the simulator.

The simulator clock is a ``float`` measured in **microseconds** — the unit
the paper's graphs use.  Byte times are derived from the link rate in
megabits per second, so ``bytes_to_us(1500, rate_mbps=100)`` is the exact
serialization delay of a 1500-byte payload on Fast Ethernet.
"""

from __future__ import annotations

#: microseconds per second (simulation clock unit is the microsecond)
US_PER_S = 1_000_000.0

#: bits per byte on the wire
BITS_PER_BYTE = 8


def rate_bytes_per_us(rate_mbps: float) -> float:
    """Bytes serialized per microsecond at ``rate_mbps`` megabits/second.

    >>> rate_bytes_per_us(100)
    12.5
    """
    if rate_mbps <= 0:
        raise ValueError(f"rate_mbps must be positive, got {rate_mbps!r}")
    return rate_mbps / BITS_PER_BYTE


def bytes_to_us(nbytes: int | float, rate_mbps: float) -> float:
    """Serialization time in µs of ``nbytes`` at ``rate_mbps``.

    >>> bytes_to_us(1250, 100)
    100.0
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes!r}")
    return nbytes / rate_bytes_per_us(rate_mbps)


def us_to_ms(us: float) -> float:
    """Convert microseconds to milliseconds."""
    return us / 1000.0


def kb(n: float) -> int:
    """``n`` kilobytes (decimal, as the paper's axis labels use) in bytes."""
    return int(n * 1000)
