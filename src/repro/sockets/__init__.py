"""``repro.sockets`` — the paper's algorithms over real UDP multicast.

Functional-fidelity backend: the same scout-synchronized broadcast and
barrier protocols, running on genuine BSD sockets with IP multicast on
the loopback interface, driven by one thread per rank.  Performance
numbers from this backend are meaningless (Python threads + loopback);
correctness and ordering are what it validates.  See DESIGN.md §2.
"""

from .cluster import allocate_group, multicast_available, run_threads
from .comm import RealComm
from .framing import Kind, Message, pack, unpack
from .transport import (LOOPBACK, RealEndpoint, TransportTimeout,
                        make_mcast_socket)

__all__ = [
    "Kind", "LOOPBACK", "Message", "RealComm", "RealEndpoint",
    "TransportTimeout", "allocate_group", "make_mcast_socket",
    "multicast_available", "pack", "run_threads", "unpack",
]
