"""Thread-per-rank cluster over real loopback sockets.

:func:`run_threads` is the real-socket analogue of
:func:`repro.runtime.run_spmd`: it builds ``n`` endpoints (unicast socket
per rank + a shared multicast group on 239.x.y.z), wires up the peer
port table, starts one thread per rank running ``fn(comm)``, and
collects return values (re-raising the first rank exception).

:func:`multicast_available` probes whether the environment permits UDP
multicast on loopback — tests skip gracefully where it does not (some
containers and CI sandboxes drop IGMP).
"""

from __future__ import annotations

import os
import random
import socket
import threading
from typing import Any, Callable, Optional

from .comm import RealComm
from .transport import LOOPBACK, RealEndpoint, make_mcast_socket

__all__ = ["run_threads", "multicast_available", "allocate_group"]


def allocate_group(rng: Optional[random.Random] = None) -> tuple[str, int]:
    """A fresh (group address, port) pair in the ad-hoc block 239.x.y.z."""
    rng = rng or random.Random(os.getpid() ^ random.randrange(2 ** 30))
    group = (f"239.{rng.randrange(1, 255)}.{rng.randrange(1, 255)}."
             f"{rng.randrange(1, 255)}")
    port = rng.randrange(30000, 60000)
    return group, port


def multicast_available(timeout_s: float = 2.0) -> bool:
    """Probe: can this host loop a multicast datagram back to itself?"""
    group, port = allocate_group()
    rx = tx = None
    try:
        rx = make_mcast_socket(group, port)
        rx.settimeout(timeout_s)
        tx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM,
                           socket.IPPROTO_UDP)
        tx.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_IF,
                      socket.inet_aton(LOOPBACK))
        tx.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_LOOP, 1)
        tx.sendto(b"probe", (group, port))
        data, _ = rx.recvfrom(64)
        return data == b"probe"
    except OSError:
        return False
    finally:
        for sock in (rx, tx):
            if sock is not None:
                sock.close()


def run_threads(n: int, fn: Callable[[RealComm], Any],
                timeout_s: float = 30.0,
                seed: Optional[int] = None) -> list[Any]:
    """Run ``fn(comm)`` on ``n`` threads; returns per-rank results.

    The first exception raised by any rank is re-raised in the caller
    (after all threads have been joined), so test failures surface
    exactly once.
    """
    if n < 1:
        raise ValueError(f"need at least one rank, got {n}")
    rng = random.Random(seed)
    group, mcast_port = allocate_group(rng)
    endpoints = [RealEndpoint(rank, group, mcast_port,
                              timeout_s=timeout_s) for rank in range(n)]
    ports = {ep.rank: ep.uni_port for ep in endpoints}
    for ep in endpoints:
        ep.peer_ports = dict(ports)

    results: list[Any] = [None] * n
    errors: list[tuple[int, BaseException]] = []
    start_gate = threading.Barrier(n)

    def body(rank: int) -> None:
        comm = RealComm(endpoints[rank], rank, n)
        try:
            start_gate.wait(timeout=timeout_s)
            results[rank] = fn(comm)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append((rank, exc))

    threads = [threading.Thread(target=body, args=(rank,),
                                name=f"rank{rank}", daemon=True)
               for rank in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout_s + 5.0)
    alive = [t.name for t in threads if t.is_alive()]
    for ep in endpoints:
        ep.close()
    if errors:
        rank, exc = errors[0]
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
    if alive:
        raise RuntimeError(f"ranks did not finish: {alive}")
    return results
