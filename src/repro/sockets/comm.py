"""The paper's collective algorithms over *real* UDP multicast sockets.

:class:`RealComm` mirrors the simulator communicator's API, minus the
``yield from`` (threads block for real):

* point-to-point ``send``/``recv`` with tag matching (UDP unicast);
* ``bcast`` with the same four implementations — ``binary``, ``linear``
  (scout-synchronized multicast), ``p2p`` (binomial tree baseline) and
  ``ack`` (PVM-style);
* ``barrier`` as ``mcast`` (scout reduction + multicast release) or
  ``p2p`` (MPICH three-phase);
* ``gather``/``reduce``/``allreduce`` over the binomial tree (used by
  the examples).

On loopback the kernel buffers multicast datagrams for every joined
socket, so the *loss* mode of the paper cannot be demonstrated here
(that is what the simulator's posted-only sockets are for); what this
backend validates is protocol correctness — matching, sequencing,
ordering — against a real network stack.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Optional

from ..mpi.collective.barrier_p2p import largest_power_of_two_leq
from ..mpi.collective.bcast_p2p import binomial_children, binomial_parent
from .framing import Kind, Message
from .transport import RealEndpoint

__all__ = ["RealComm"]


class RealComm:
    """One thread's communicator view in a :class:`ThreadCluster`."""

    def __init__(self, endpoint: RealEndpoint, rank: int, size: int,
                 ctx: int = 0):
        self.endpoint = endpoint
        self.rank = rank
        self.size = size
        self.ctx = ctx
        self._seq = 0          #: collective sequence (safe-code invariant)

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_rank(dest)
        self.endpoint.send_to_rank(dest, Message(
            kind=Kind.P2P, ctx=self.ctx, src=self.rank, tag=tag,
            payload=obj))

    def recv(self, source: int = -1, tag: int = -1,
             timeout_s: Optional[float] = None) -> Any:
        def want(m: Message) -> bool:
            return (m.kind == Kind.P2P and m.ctx == self.ctx
                    and (source == -1 or m.src == source)
                    and (tag == -1 or m.tag == tag))

        return self.endpoint.recv_match(want, timeout_s).payload

    def sendrecv(self, obj: Any, dest: int, sendtag: int = 0,
                 source: int = -1, recvtag: int = -1) -> Any:
        # UDP sends never block on the receiver, so send-then-recv is
        # deadlock-free even for symmetric exchanges.
        self.send(obj, dest, sendtag)
        return self.recv(source, recvtag)

    # ------------------------------------------------------------------
    # scout helpers
    # ------------------------------------------------------------------
    def _send_scout(self, dst: int, seq: int, kind: int = Kind.SCOUT):
        self.endpoint.send_to_rank(dst, Message(
            kind=kind, ctx=self.ctx, src=self.rank, tag=seq, payload=None))

    def _wait_scouts(self, srcs: set[int], seq: int,
                     kind: int = Kind.SCOUT,
                     timeout_s: Optional[float] = None) -> None:
        remaining = set(srcs)
        while remaining:
            msg = self.endpoint.recv_match(
                lambda m: (m.kind == kind and m.ctx == self.ctx
                           and m.tag == seq and m.src in remaining),
                timeout_s)
            remaining.discard(msg.src)

    def _scout_gather_binary(self, seq: int, root: int) -> None:
        rel = (self.rank - root) % self.size
        mask = 1
        while mask < self.size:
            if rel & mask:
                self._send_scout(((rel & ~mask) + root) % self.size, seq)
                return
            child_rel = rel | mask
            if child_rel < self.size:
                self._wait_scouts({(child_rel + root) % self.size}, seq)
            mask <<= 1

    def _scout_gather_linear(self, seq: int, root: int) -> None:
        if self.rank == root:
            self._wait_scouts(
                {r for r in range(self.size) if r != root}, seq)
        else:
            self._send_scout(root, seq)

    # ------------------------------------------------------------------
    # multicast primitives
    # ------------------------------------------------------------------
    def _send_mdata(self, obj: Any, seq: int,
                    kind: int = Kind.MDATA) -> None:
        self.endpoint.send_mcast(Message(
            kind=kind, ctx=self.ctx, src=self.rank, tag=seq, payload=obj))

    def _recv_mdata(self, seq: int, root: int,
                    kind: int = Kind.MDATA) -> Any:
        """Receive the multicast for ``seq``, discarding stale copies
        (our own loopback echo, retransmissions of earlier sequences)."""
        msg = self.endpoint.recv_mcast(
            lambda m: (m.kind == kind and m.ctx == self.ctx
                       and m.tag == seq and m.src == root))
        return msg.payload

    # ------------------------------------------------------------------
    # broadcast
    # ------------------------------------------------------------------
    def bcast(self, obj: Any, root: int = 0,
              impl: str = "binary") -> Any:
        """Broadcast with the selected implementation.

        ``impl`` ∈ {"binary", "linear", "p2p", "ack"}.
        """
        self._check_rank(root)
        self._seq += 1
        seq = self._seq
        if self.size == 1:
            return obj
        if impl == "binary":
            return self._bcast_scouted(obj, root, seq,
                                       self._scout_gather_binary)
        if impl == "linear":
            return self._bcast_scouted(obj, root, seq,
                                       self._scout_gather_linear)
        if impl == "p2p":
            return self._bcast_p2p(obj, root, seq)
        if impl == "ack":
            return self._bcast_ack(obj, root, seq)
        raise ValueError(f"unknown bcast impl {impl!r}")

    def _bcast_scouted(self, obj: Any, root: int, seq: int,
                       gather: Callable[[int, int], None]) -> Any:
        if self.rank == root:
            gather(seq, root)
            self._send_mdata(obj, seq)
            return obj
        # Real kernels buffer for joined sockets, so "posting" is
        # implicit; the scout still tells the root we are inside the
        # collective, which is what the paper's protocol requires.
        gather(seq, root)
        return self._recv_mdata(seq, root)

    def _bcast_p2p(self, obj: Any, root: int, seq: int) -> Any:
        rel = (self.rank - root) % self.size
        tag = -1000 - seq          # collective-internal tag space
        if rel != 0:
            parent = (binomial_parent(rel) + root) % self.size
            obj = self.recv(source=parent, tag=tag)
        for child in binomial_children(rel, self.size):
            self.send(obj, (child + root) % self.size, tag)
        return obj

    def _bcast_ack(self, obj: Any, root: int, seq: int,
                   resend_interval_s: float = 0.05,
                   max_resends: int = 40) -> Any:
        from .transport import TransportTimeout

        if self.rank == root:
            self._send_mdata(obj, seq)
            missing = {r for r in range(self.size) if r != root}
            resends = 0
            while missing:
                try:
                    self._wait_scouts(set(missing), seq, kind=Kind.ACK,
                                      timeout_s=resend_interval_s)
                    missing.clear()
                except TransportTimeout:
                    resends += 1
                    if resends > max_resends:
                        raise RuntimeError(
                            f"ack bcast gave up; missing {missing}")
                    self._send_mdata(obj, seq)
                    # Re-derive who is still missing on the next wait:
                    # acks already consumed are matched out of the stash.
                    missing = {r for r in missing
                               if not self._ack_seen(r, seq)}
            return obj
        data = self._recv_mdata(seq, root)
        self._send_scout(root, seq, kind=Kind.ACK)
        return data

    def _ack_seen(self, rank: int, seq: int) -> bool:
        """Non-blocking: has ``rank``'s ack already been stashed?"""
        from .transport import TransportTimeout

        try:
            self.endpoint.recv_match(
                lambda m: (m.kind == Kind.ACK and m.ctx == self.ctx
                           and m.tag == seq and m.src == rank),
                timeout_s=0.001)
            return True
        except TransportTimeout:
            return False

    # ------------------------------------------------------------------
    # barrier
    # ------------------------------------------------------------------
    def barrier(self, impl: str = "mcast") -> None:
        """``impl`` ∈ {"mcast", "p2p"}."""
        self._seq += 1
        seq = self._seq
        if self.size == 1:
            return
        if impl == "mcast":
            root = 0
            if self.rank == root:
                self._scout_gather_binary(seq, root)
                self._send_mdata(None, seq, kind=Kind.RELEASE)
            else:
                self._scout_gather_binary(seq, root)
                self._recv_mdata(seq, root, kind=Kind.RELEASE)
            return
        if impl == "p2p":
            self._barrier_p2p(seq)
            return
        raise ValueError(f"unknown barrier impl {impl!r}")

    def _barrier_p2p(self, seq: int) -> None:
        tag = -2000 - seq
        n, rank = self.size, self.rank
        k = largest_power_of_two_leq(n)
        if rank >= k:
            self.send(None, rank - k, tag)
            self.recv(source=rank - k, tag=tag - 1)
            return
        if rank < n - k:
            self.recv(source=rank + k, tag=tag)
        mask = 1
        while mask < k:
            partner = rank ^ mask
            self.send(None, partner, tag)
            self.recv(source=partner, tag=tag)
            mask <<= 1
        if rank < n - k:
            self.send(None, rank + k, tag - 1)

    # ------------------------------------------------------------------
    # tree collectives used by the examples
    # ------------------------------------------------------------------
    def gather(self, obj: Any, root: int = 0) -> Optional[list]:
        self._check_rank(root)
        self._seq += 1
        tag = -3000 - self._seq
        rel = (self.rank - root) % self.size
        collected = {self.rank: obj}
        mask = 1
        while mask < self.size:
            if rel & mask:
                self.send(collected, ((rel & ~mask) + root) % self.size,
                          tag)
                return None
            src_rel = rel | mask
            if src_rel < self.size:
                part = self.recv(source=(src_rel + root) % self.size,
                                 tag=tag)
                collected.update(part)
            mask <<= 1
        return [collected[r] for r in range(self.size)]

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any],
               root: int = 0) -> Any:
        self._check_rank(root)
        self._seq += 1
        tag = -4000 - self._seq
        rel = (self.rank - root) % self.size
        acc = copy.copy(obj)
        mask = 1
        while mask < self.size:
            if rel & mask:
                self.send(acc, ((rel & ~mask) + root) % self.size, tag)
                return None
            src_rel = rel | mask
            if src_rel < self.size:
                incoming = self.recv(
                    source=(src_rel + root) % self.size, tag=tag)
                acc = op(acc, incoming)
            mask <<= 1
        return acc

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any],
                  bcast_impl: str = "binary") -> Any:
        total = self.reduce(obj, op, root=0)
        return self.bcast(total, root=0, impl=bcast_impl)

    # ------------------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range "
                             f"(size {self.size})")
