"""Wire format for the real-socket backend.

Every datagram is ``HEADER + pickle(payload)`` where the 12-byte header
is ``(magic, kind, ctx, src_rank, tag_or_seq)``:

* ``magic``  — 2 bytes, guards against stray traffic on reused ports;
* ``kind``   — 1 byte: point-to-point data, scout, ack, multicast data,
  or barrier release;
* ``ctx``    — communicator context (like the simulator's context ids);
* ``src``    — sender rank;
* ``tag``    — MPI tag for p2p, collective sequence number otherwise.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Any

__all__ = ["Kind", "Message", "pack", "unpack", "MAGIC", "HEADER"]

MAGIC = 0x4D43  # "MC"
HEADER = struct.Struct("!HBHHi")

#: maximum UDP payload we ever send (loopback handles 64 KB datagrams)
MAX_DGRAM = 60000


class Kind:
    P2P = 1        #: point-to-point data
    SCOUT = 2      #: scout synchronization message
    ACK = 3        #: ack for reliable multicast
    MDATA = 4      #: multicast broadcast payload
    RELEASE = 5    #: barrier release (data-less multicast)

    ALL = (P2P, SCOUT, ACK, MDATA, RELEASE)


@dataclass(frozen=True)
class Message:
    kind: int
    ctx: int
    src: int
    tag: int       #: MPI tag (p2p) or collective sequence (others)
    payload: Any


def pack(msg: Message) -> bytes:
    """Serialize a message; raises if it exceeds one UDP datagram."""
    body = pickle.dumps(msg.payload, protocol=pickle.HIGHEST_PROTOCOL)
    raw = HEADER.pack(MAGIC, msg.kind, msg.ctx, msg.src, msg.tag) + body
    if len(raw) > MAX_DGRAM:
        raise ValueError(
            f"payload too large for one datagram: {len(raw)} bytes "
            f"(max {MAX_DGRAM}); the real backend does not fragment")
    return raw


def unpack(raw: bytes) -> Message:
    """Parse a datagram; raises ValueError for foreign traffic."""
    if len(raw) < HEADER.size:
        raise ValueError(f"short datagram: {len(raw)} bytes")
    magic, kind, ctx, src, tag = HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise ValueError(f"bad magic {magic:#x}")
    if kind not in Kind.ALL:
        raise ValueError(f"unknown message kind {kind}")
    payload = pickle.loads(raw[HEADER.size:])
    return Message(kind=kind, ctx=ctx, src=src, tag=tag, payload=payload)
