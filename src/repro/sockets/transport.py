"""Real-socket endpoint: one UDP unicast socket + one multicast socket.

Provides the two receive paths the algorithms need, each with a stash so
out-of-order arrivals (a scout for a future sequence, a stale multicast
retransmission) are never lost or mis-delivered:

* :meth:`RealEndpoint.recv_match` — blocking match on the unicast socket
  by (kind, ctx, src, tag) with wildcards;
* :meth:`RealEndpoint.recv_mcast` — blocking match on the multicast
  socket by (kind, ctx, seq, src).

Everything is plain blocking BSD sockets with timeouts — this backend
exists to validate the protocol logic against a real kernel network
stack (DESIGN.md §2), not to measure performance.
"""

from __future__ import annotations

import socket
import struct
from typing import Callable, Optional

from .framing import MAX_DGRAM, Message, pack, unpack

__all__ = ["RealEndpoint", "make_mcast_socket", "TransportTimeout",
           "LOOPBACK"]

LOOPBACK = "127.0.0.1"

#: wildcard for match predicates
ANY = -1


class TransportTimeout(RuntimeError):
    """A blocking receive exceeded its deadline."""


def make_mcast_socket(group: str, port: int) -> socket.socket:
    """A socket joined to ``group``:``port`` on the loopback interface."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM,
                         socket.IPPROTO_UDP)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind(("", port))
    mreq = struct.pack("4s4s", socket.inet_aton(group),
                       socket.inet_aton(LOOPBACK))
    sock.setsockopt(socket.IPPROTO_IP, socket.IP_ADD_MEMBERSHIP, mreq)
    return sock


class RealEndpoint:
    """Per-rank sockets + matching stashes (used from one thread only)."""

    def __init__(self, rank: int, group: str, mcast_port: int,
                 timeout_s: float = 10.0):
        self.rank = rank
        self.group = group
        self.mcast_port = mcast_port
        self.timeout_s = timeout_s
        self.uni = socket.socket(socket.AF_INET, socket.SOCK_DGRAM,
                                 socket.IPPROTO_UDP)
        self.uni.bind((LOOPBACK, 0))
        self.uni_port = self.uni.getsockname()[1]
        self.mcast = make_mcast_socket(group, mcast_port)
        self.tx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM,
                                socket.IPPROTO_UDP)
        self.tx.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_IF,
                           socket.inet_aton(LOOPBACK))
        self.tx.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_LOOP, 1)
        self.tx.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_TTL, 0)
        self._uni_stash: list[Message] = []
        self._mcast_stash: list[Message] = []
        self.peer_ports: dict[int, int] = {}
        self.closed = False

    # -- sending -----------------------------------------------------------
    def send_to_rank(self, dst_rank: int, msg: Message) -> None:
        port = self.peer_ports[dst_rank]
        self.tx.sendto(pack(msg), (LOOPBACK, port))

    def send_mcast(self, msg: Message) -> None:
        self.tx.sendto(pack(msg), (self.group, self.mcast_port))

    # -- receiving -----------------------------------------------------------
    def recv_match(self, want: Callable[[Message], bool],
                   timeout_s: Optional[float] = None) -> Message:
        """Blocking match on the unicast socket."""
        return self._recv(self.uni, self._uni_stash, want, timeout_s)

    def recv_mcast(self, want: Callable[[Message], bool],
                   timeout_s: Optional[float] = None) -> Message:
        """Blocking match on the multicast socket."""
        return self._recv(self.mcast, self._mcast_stash, want, timeout_s)

    def _recv(self, sock: socket.socket, stash: list[Message],
              want: Callable[[Message], bool],
              timeout_s: Optional[float]) -> Message:
        for i, msg in enumerate(stash):
            if want(msg):
                return stash.pop(i)
        deadline = timeout_s if timeout_s is not None else self.timeout_s
        import time

        end = time.monotonic() + deadline
        while True:
            remaining = end - time.monotonic()
            if remaining <= 0:
                raise TransportTimeout(
                    f"rank {self.rank}: no matching datagram within "
                    f"{deadline:.1f}s ({len(stash)} stashed)")
            sock.settimeout(remaining)
            try:
                raw, _addr = sock.recvfrom(MAX_DGRAM + 64)
            except socket.timeout:
                continue
            try:
                msg = unpack(raw)
            except ValueError:
                continue  # stray datagram on a reused port: ignore
            if want(msg):
                return msg
            stash.append(msg)

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        for sock in (self.uni, self.mcast, self.tx):
            try:
                sock.close()
            except OSError:  # pragma: no cover - platform quirk
                pass
