"""Reusable post-run invariants for tier-1 tests.

:func:`assert_quiesced` is the one-call version of the sanitizer's
two-phase contract (:mod:`repro.runtime.sanitize`): the completed run
must have consumed or cancelled every posted receive and kept the
three membership ledgers consistent, and a full teardown must leave
*nothing* — no bound sockets, no residual memberships on host, NIC or
switch, no undrained events.  Tests call it explicitly on the runs
whose cleanliness *is* the property under test; the autouse conftest
fixture remains the safety net for everything else (teardown is
idempotent, so both may run).
"""

from repro.runtime.sanitize import check_quiesced, full_teardown


def assert_quiesced(cluster, world) -> None:
    """Assert the completed run quiesced cleanly, then tear it down to
    nothing.  Raises :class:`repro.runtime.sanitize.LeakError` (an
    AssertionError) with every finding listed otherwise."""
    check_quiesced(cluster)
    full_teardown(cluster, world)
