"""Tier-1 test harness hooks.

With ``REPRO_SANITIZE=1`` in the environment, every
:func:`repro.runtime.program.run_spmd` call made by a test registers
its cluster for destructive teardown; this autouse fixture drains the
registry after each test and asserts the job leaks nothing — no bound
sockets, no residual group memberships (host, NIC, or switch ledgers),
no undrained events.  See :mod:`repro.runtime.sanitize`.

Without the variable the fixture only drains the (empty) registry, so
plain ``pytest`` runs are unaffected.
"""

import pytest

from repro.runtime.sanitize import (drain_pending, full_teardown,
                                    sanitize_enabled)


@pytest.fixture(autouse=True)
def _sanitize_teardown():
    drain_pending()        # never inherit another test's leftovers
    yield
    runs = drain_pending()
    if not sanitize_enabled():
        return
    for cluster, world in runs:
        full_teardown(cluster, world)
