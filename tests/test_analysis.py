"""Analytic models vs the simulator: the models must track reality."""

import pytest

from repro.analysis import (LatencyModel, mcast_bcast_total_frames,
                            model_mcast_bcast_frames,
                            model_mpich_bcast_frames,
                            paper_frames_per_message,
                            paper_mcast_barrier_messages,
                            paper_mcast_bcast_frames,
                            paper_mpich_barrier_messages,
                            paper_mpich_bcast_frames)
from repro.runtime import run_spmd
from repro.simnet import quiet
from repro.simnet.calibration import (FAST_ETHERNET_HUB,
                                      FAST_ETHERNET_SWITCH)

QUIET_SW = quiet(FAST_ETHERNET_SWITCH)
QUIET_HUB = quiet(FAST_ETHERNET_HUB)


# ---------------------------------------------------------------- formulas
def test_paper_frames_per_message():
    assert paper_frames_per_message(0) == 1
    assert paper_frames_per_message(1500) == 2       # floor(M/T)+1
    assert paper_frames_per_message(5000) == 4
    with pytest.raises(ValueError):
        paper_frames_per_message(-1)
    with pytest.raises(ValueError):
        paper_frames_per_message(10, 0)


def test_paper_bcast_formulas():
    assert paper_mpich_bcast_frames(7, 5000) == 4 * 6
    assert paper_mcast_bcast_frames(7, 5000) == 6 + 4
    assert paper_mcast_bcast_frames(1, 5000) == 0
    with pytest.raises(ValueError):
        paper_mpich_bcast_frames(0, 100)


def test_paper_barrier_formulas():
    assert paper_mpich_barrier_messages(7) == 2 * 3 + 4 * 2
    assert paper_mcast_barrier_messages(7) == (6, 1)
    assert paper_mcast_barrier_messages(1) == (0, 0)


def test_model_vs_paper_headers_only():
    """The header-aware model differs from the paper formula only when
    the MPI envelope pushes a message over a fragment boundary."""
    p = QUIET_SW
    for n in (2, 5, 9):
        for m in (0, 100, 1000, 1400, 3000):
            model = model_mpich_bcast_frames(p, n, m)
            paper = paper_mpich_bcast_frames(n, m, p.max_udp_payload)
            assert model >= paper
            assert model - paper <= (n - 1)   # at most one extra frame/copy


def test_mcast_total_frames():
    p = QUIET_SW
    scouts, data = model_mcast_bcast_frames(p, 9, 5000)
    assert scouts == 8 and data == 4
    assert mcast_bcast_total_frames(p, 9, 5000) == 12


# ---------------------------------------------------------------- latency model
def _measured_bcast(impl, n, m, topology):
    durs = {}

    def main(env):
        obj = bytes(m) if env.rank == 0 else None
        yield env.sim.timeout(max(0.0, 50_000.0 - env.sim.now))
        t0 = env.now
        yield from env.comm.bcast(obj, root=0)
        durs[env.rank] = env.now - t0

    params = QUIET_HUB if topology == "hub" else QUIET_SW
    run_spmd(n, main, topology=topology, params=params,
             collectives={"bcast": impl})
    return max(durs.values())


def _measured_barrier(impl, n, topology):
    durs = {}

    def main(env):
        yield env.sim.timeout(max(0.0, 50_000.0 - env.sim.now))
        t0 = env.now
        yield from env.comm.barrier()
        durs[env.rank] = env.now - t0

    params = QUIET_HUB if topology == "hub" else QUIET_SW
    run_spmd(n, main, topology=topology, params=params,
             collectives={"barrier": impl})
    return max(durs.values())


@pytest.mark.parametrize("topology", ["hub", "switch"])
@pytest.mark.parametrize("n,m", [(2, 0), (4, 1000), (4, 5000), (9, 2000)])
def test_latency_model_tracks_mpich_bcast(topology, n, m):
    params = QUIET_HUB if topology == "hub" else QUIET_SW
    model = LatencyModel(params, topology)
    predicted = model.mpich_bcast(n, m)
    measured = _measured_bcast("p2p-binomial", n, m, topology)
    assert predicted == pytest.approx(measured, rel=0.25), \
        f"model {predicted:.0f} vs sim {measured:.0f}"


@pytest.mark.parametrize("variant", ["binary", "linear"])
@pytest.mark.parametrize("n,m", [(4, 0), (4, 5000), (9, 1000)])
def test_latency_model_tracks_mcast_bcast(variant, n, m):
    model = LatencyModel(QUIET_SW, "switch")
    predicted = model.mcast_bcast(n, m, variant)
    measured = _measured_bcast(f"mcast-{variant}", n, m, "switch")
    assert predicted == pytest.approx(measured, rel=0.25), \
        f"model {predicted:.0f} vs sim {measured:.0f}"


@pytest.mark.parametrize("n", [2, 4, 7, 9])
def test_latency_model_tracks_barriers(n):
    model = LatencyModel(QUIET_HUB, "hub")
    assert model.mpich_barrier(n) == pytest.approx(
        _measured_barrier("p2p-mpich", n, "hub"), rel=0.35)
    assert model.mcast_barrier(n) == pytest.approx(
        _measured_barrier("mcast", n, "hub"), rel=0.35)


def test_model_crossover_exists_and_is_small():
    """The closed-form crossover lands in the paper's ~1-frame zone."""
    for topology in ("hub", "switch"):
        params = QUIET_HUB if topology == "hub" else QUIET_SW
        model = LatencyModel(params, topology)
        x = model.bcast_crossover_bytes(4, "binary")
        assert x is not None
        assert 0 < x <= 2500, f"{topology}: crossover at {x}"


def test_model_crossover_shrinks_with_n():
    """More processes -> more MPICH copies -> earlier multicast win."""
    model = LatencyModel(QUIET_SW, "switch")
    x4 = model.bcast_crossover_bytes(4, "binary")
    x9 = model.bcast_crossover_bytes(9, "binary")
    assert x9 <= x4


def test_model_rejects_bad_inputs():
    with pytest.raises(ValueError):
        LatencyModel(QUIET_SW, "tokenring")
    model = LatencyModel(QUIET_SW, "switch")
    with pytest.raises(ValueError):
        model.mcast_bcast(4, 100, variant="quadratic")


def test_zero_cases():
    model = LatencyModel(QUIET_SW, "switch")
    assert model.mpich_bcast(1, 5000) == 0.0
    assert model.mcast_bcast(1, 5000) == 0.0
    assert model.mpich_barrier(1) == 0.0
    assert model.mcast_barrier(1) == 0.0
