"""The payload-, topology- and loss-aware "auto" selection layer:
closed-form choices, the per-call resolution protocol (local vs
scout-tree announcement), the policy hook, and inheritance across
dup/split."""

from dataclasses import replace

import numpy as np
import pytest

from repro import run_spmd
from repro.mpi.collective.policy import (AUTO_CHOICES, TopoInfo,
                                         auto_impl, comm_topology,
                                         hier_frame_estimate,
                                         modeled_frame_costs,
                                         p2p_frame_estimate,
                                         seg_frame_estimate)
from repro.mpi.ops import SUM, Op
from repro.simnet import quiet
from repro.simnet.calibration import FAST_ETHERNET_SWITCH

QUIET = quiet(FAST_ETHERNET_SWITCH)
AUTO = replace(QUIET, segment_bytes="auto")


# ------------------------------------------------------------ unit layer
@pytest.mark.parametrize("op", sorted(AUTO_CHOICES))
def test_auto_picks_p2p_for_tiny_payloads(op):
    p2p_name, _seg = AUTO_CHOICES[op]
    assert auto_impl(op, 64, 4, AUTO) == p2p_name
    # degenerate communicators always take the p2p (= no-op) path
    assert auto_impl(op, 1 << 20, 1, AUTO) == p2p_name


@pytest.mark.parametrize("op,nbytes,size", [
    ("bcast", 48_000, 4),
    ("allreduce", 48_000, 4),
    ("allgather", 48_000, 4),
    ("scatter", 250_000, 8),     # scatter crosses over at larger N*bytes
])
def test_auto_picks_segmented_multicast_for_big_payloads(op, nbytes, size):
    assert auto_impl(op, nbytes, size, AUTO) == AUTO_CHOICES[op][1]


def test_auto_reduce_keeps_the_p2p_tree_at_every_size():
    """Many-to-one gains no frame advantage from multicast: each
    contribution crosses the wire once either way and the engine adds
    per-turn control — the policy documents this by always keeping
    the binomial tree for plain reduce."""
    for nbytes in (64, 1460, 48_000, 1 << 20):
        assert auto_impl("reduce", nbytes, 4, AUTO) == "p2p-binomial"
        assert (seg_frame_estimate("reduce", nbytes, 4, AUTO)
                > p2p_frame_estimate("reduce", nbytes, 4, AUTO))


def test_frame_estimates_grow_with_payload_and_reject_unknown_ops():
    for op in sorted(AUTO_CHOICES):
        assert (p2p_frame_estimate(op, 100_000, 4, AUTO)
                > p2p_frame_estimate(op, 100, 4, AUTO))
        assert (seg_frame_estimate(op, 100_000, 4, AUTO)
                > seg_frame_estimate(op, 100, 4, AUTO))
    with pytest.raises(KeyError, match="auto-capable"):
        auto_impl("barrier", 0, 4, AUTO)
    with pytest.raises(KeyError):
        p2p_frame_estimate("barrier", 0, 4, AUTO)
    with pytest.raises(KeyError):
        seg_frame_estimate("barrier", 0, 4, AUTO)


def test_use_collectives_validates_auto():
    def main(env):
        with pytest.raises(KeyError, match="auto-capable"):
            env.comm.use_collectives(barrier="auto")
        env.comm.use_collectives(bcast="auto")   # fine
        return True
        yield   # pragma: no cover - make this a generator

    result = run_spmd(2, main, params=QUIET)
    assert result.returns == [True] * 2


# ------------------------------------------------------- runtime behaviour
def test_auto_bcast_resolves_per_call_and_stays_consistent():
    """Small payload -> p2p tree; big payload -> segmented multicast.
    Only the root knows the payload, so the choice rides the scout-tree
    announcement — every rank must log identical resolutions."""
    def main(env):
        env.comm.use_collectives(bcast="auto")
        small = yield from env.comm.bcast(
            b"x" * 64 if env.rank == 0 else None, 0)
        big = yield from env.comm.bcast(
            bytes(48_000) if env.rank == 0 else None, 0)
        return (len(small), len(big), list(env.comm.impl_log))

    result = run_spmd(4, main, params=AUTO)
    sizes = [(s, b) for s, b, _log in result.returns]
    assert sizes == [(64, 48_000)] * 4
    logs = [log for _s, _b, log in result.returns]
    assert logs == [[("bcast", "p2p-binomial"),
                     ("bcast", "mcast-seg-nack")]] * 4
    result.verify_safe_schedules()


def test_auto_bcast_announcement_is_control_sized():
    """The per-call announcement must never ride payload frames — it is
    N-1 scout-sized control frames regardless of the choice."""
    def main(env):
        env.comm.use_collectives(bcast="auto")
        out = yield from env.comm.bcast(
            b"y" * 64 if env.rank == 0 else None, 0)
        return len(out)

    result = run_spmd(4, main, params=AUTO)
    assert result.returns == [64] * 4
    assert result.stats["frames_by_kind"].get("scout-dec", 0) == 3


def test_auto_scatter_resolves_from_the_root():
    """Non-root ranks pass None: resolution must come from the root's
    announcement, not local payload guessing."""
    def main(env):
        env.comm.use_collectives(scatter="auto")
        objs = None
        if env.rank == 0:
            objs = [bytes([r]) * 40_000 for r in range(env.size)]
        out = yield from env.comm.scatter(objs, 0)
        return (out == bytes([env.rank]) * 40_000,
                env.comm.impl_log[-1])

    result = run_spmd(8, main, params=AUTO)
    oks = [ok for ok, _ in result.returns]
    assert oks == [True] * 8
    impls = {impl for _, impl in result.returns}
    assert impls == {("scatter", "mcast-seg-root")}


def test_auto_reduce_and_allreduce_resolve_locally():
    def main(env):
        env.comm.use_collectives(reduce="auto", allreduce="auto")
        small = yield from env.comm.reduce(
            np.ones(8, dtype=np.float64), SUM, 0)
        big = yield from env.comm.allreduce(
            np.ones(6000, dtype=np.float64), SUM)
        ok = bool(np.all(big == env.size))
        ok = ok and (env.rank != 0 or bool(np.all(small == env.size)))
        # allreduce logs its own resolution; the composed mcast impl
        # calls the segmented reduce/bcast directly (not via dispatch)
        return ok, [e for e in env.comm.impl_log if e[0] != "bcast"]

    result = run_spmd(4, main, params=AUTO)
    for ok, log in result.returns:
        assert ok
        assert ("reduce", "p2p-binomial") in log
        assert ("allreduce", "mcast-seg-nack") in log


def test_auto_allgather_anchors_at_rank_zero():
    def main(env):
        env.comm.use_collectives(allgather="auto")
        out = yield from env.comm.allgather(bytes([env.rank]) * 20_000)
        ok = [x == bytes([r]) * 20_000 for r, x in enumerate(out)]
        return all(ok), env.comm.impl_log[-1]

    result = run_spmd(4, main, params=AUTO)
    for ok, impl in result.returns:
        assert ok
        assert impl == ("allgather", "mcast-seg-paced")


# ------------------------------------------------------------ policy hook
def test_set_collective_policy_hook_overrides_the_table():
    def pin_linear(comm, op, name, args):
        return "p2p-linear" if op == "bcast" else name

    def main(env):
        env.comm.set_collective_policy(pin_linear)
        out = yield from env.comm.bcast(
            b"z" * 100 if env.rank == 0 else None, 0)
        return len(out), env.comm.impl_log[-1]

    result = run_spmd(3, main, params=QUIET)
    assert result.returns == [(100, ("bcast", "p2p-linear"))] * 3


def test_policy_hook_may_fall_through_to_auto():
    def big_goes_auto(comm, op, name, args):
        if op == "bcast":
            return "auto"
        return name

    def main(env):
        env.comm.set_collective_policy(big_goes_auto)
        out = yield from env.comm.bcast(
            bytes(48_000) if env.rank == 0 else None, 0)
        # removing the hook restores the static table
        env.comm.set_collective_policy(None)
        small = yield from env.comm.bcast(
            b"s" if env.rank == 0 else None, 0)
        return (len(out), len(small),
                [impl for _op, impl in env.comm.impl_log])

    result = run_spmd(4, main, params=AUTO)
    assert result.returns == [
        (48_000, 1, ["mcast-seg-nack", "p2p-binomial"])] * 4


def test_policy_hook_returning_auto_for_unsupported_op_fails_loudly():
    """A hook may return "auto" only for auto-capable ops; anything else
    must raise the same KeyError on every rank BEFORE any traffic, not
    strand the group in the announcement wait."""
    def main(env):
        env.comm.set_collective_policy(lambda c, op, name, args: "auto")
        yield from env.comm.barrier()

    with pytest.raises(KeyError, match="auto-capable"):
        run_spmd(3, main, params=QUIET, max_sim_us=100_000.0)


def test_auto_survives_dup_and_split():
    def main(env):
        env.comm.use_collectives(bcast="auto")
        sub = yield from env.comm.dup()
        out = yield from sub.bcast(
            bytes(48_000) if env.rank == 0 else None, 0)
        halves = yield from sub.split(env.rank % 2, key=env.rank)
        small = yield from halves.bcast(
            b"h" if halves.rank == 0 else None, 0)
        picked = [name for op, name in sub.impl_log if op == "bcast"]
        sub.free()
        halves.free()
        return len(out), len(small), "mcast-seg-nack" in picked

    result = run_spmd(4, main, params=AUTO)
    assert result.returns == [(48_000, 1, True)] * 4


# --------------------------------------------------- topology + loss layer
def _topo(seg_of_rank):
    """TopoInfo through the same layout computation the impl executes
    against — fixtures cannot drift from hier's definitions."""
    from repro.mpi.collective.hier import layout_from_segments

    dense, _members, _leaders, contiguous = layout_from_segments(
        list(seg_of_rank))
    return TopoInfo(seg_of_rank=dense, contiguous=contiguous)


TREE_2x4 = _topo((0, 0, 0, 0, 1, 1, 1, 1))


def test_loss_shifts_the_bcast_crossover_back_to_p2p():
    """At 24 kB / 4 ranks the loss-free policy picks the segmented
    stream; a 30% expected loss rate prices in repair rounds and flips
    the choice back to the tree."""
    lossy = replace(AUTO, loss=0.3)
    assert auto_impl("bcast", 24_000, 4, AUTO) == "mcast-seg-nack"
    assert auto_impl("bcast", 24_000, 4, lossy) == "p2p-binomial"
    assert (seg_frame_estimate("bcast", 24_000, 4, lossy)
            > seg_frame_estimate("bcast", 24_000, 4, AUTO))


def test_loss_zero_keeps_pr3_choices_exactly():
    """The historical flat, loss-free behaviour is bit-for-bit intact:
    segmented iff its estimate is at or below p2p's."""
    for op in sorted(AUTO_CHOICES):
        for nbytes in (64, 1460, 12_000, 48_000):
            seg = seg_frame_estimate(op, nbytes, 4, AUTO)
            p2p = p2p_frame_estimate(op, nbytes, 4, AUTO)
            expect = AUTO_CHOICES[op][1 if seg <= p2p else 0]
            assert auto_impl(op, nbytes, 4, AUTO) == expect


def test_modeled_costs_include_hier_only_on_fabrics():
    flat = modeled_frame_costs("bcast", 24_000, 8, AUTO)
    assert "hier-mcast" not in flat
    tiered = modeled_frame_costs("bcast", 24_000, 8, AUTO, TREE_2x4)
    assert "hier-mcast" in tiered
    assert set(tiered) == {"p2p-binomial", "mcast-seg-nack",
                           "hier-mcast"}


def test_auto_always_picks_the_modeled_minimum_on_fabrics():
    for op in ("bcast", "reduce", "allreduce"):
        for nbytes in (64, 2000, 24_000, 100_000):
            costs = modeled_frame_costs(op, nbytes, 8, AUTO, TREE_2x4)
            pick = auto_impl(op, nbytes, 8, AUTO, topo=TREE_2x4)
            assert costs[pick] == min(costs.values()), (op, nbytes,
                                                        costs, pick)


def test_hier_estimate_tracks_trunk_savings():
    """On a wide 2-segment fabric the hierarchical broadcast's modeled
    cost undercuts the flat stream (whose every remote receiver pays
    the trunk for its control), so auto picks hier-mcast."""
    wide = _topo((0,) * 16 + (1,) * 16)
    costs = modeled_frame_costs("bcast", 24_000, 32, AUTO, wide)
    assert costs["hier-mcast"] < costs["mcast-seg-nack"]
    assert auto_impl("bcast", 24_000, 32, AUTO, topo=wide) == "hier-mcast"


def test_hier_estimate_rejects_non_hier_ops():
    with pytest.raises(KeyError, match="hier-capable"):
        hier_frame_estimate("alltoall", 1000, 8, AUTO, TREE_2x4)


def test_comm_topology_is_none_on_flat_and_single_segment_comms():
    def main(env):
        world_topo = comm_topology(env.comm)
        sub = yield from env.comm.split(env.rank // 4, key=env.rank)
        return (world_topo.seg_of_rank if world_topo else None,
                comm_topology(sub) is None, world_topo.contiguous
                if world_topo else None)

    tree = run_spmd(8, main, topology="tree:2x4", params=QUIET)
    assert tree.returns == [((0, 0, 0, 0, 1, 1, 1, 1), True, True)] * 8
    flat = run_spmd(4, lambda env: main(env), params=QUIET)
    assert all(t is None for t, _sub, _c in flat.returns)


def test_auto_on_tree_fabric_resolves_hier_consistently():
    """End to end: a big allreduce on a wide tree dispatches hier-mcast
    on every rank, and the result is right."""
    def main(env):
        env.comm.use_collectives(allreduce="auto")
        out = yield from env.comm.allreduce(
            np.ones(12_500, dtype=np.float64), SUM)
        ok = bool(np.all(out == env.size))
        return ok, env.comm.impl_log[-1]

    result = run_spmd(8, main, topology="tree:2x4", params=AUTO)
    oks = {ok for ok, _ in result.returns}
    impls = {impl for _, impl in result.returns}
    assert oks == {True}
    assert len(impls) == 1   # everyone resolved identically
    (op, name), = impls
    costs = modeled_frame_costs("allreduce", 100_000, 8, AUTO, TREE_2x4)
    assert op == "allreduce" and costs[name] == min(costs.values())


def test_auto_withholds_hier_reduce_for_non_commutative_interleaved():
    """A non-commutative reduce over interleaved segments may not pick
    hier-mcast (which would fall back internally and break the model):
    the policy withholds the candidate."""
    concat = Op("CONCAT", lambda a, b: a + b, commutative=False)

    def main(env):
        key = (env.rank % 4) * 2 + env.rank // 4
        sub = yield from env.comm.split(0, key=key)
        sub.use_collectives(reduce="auto")
        out = yield from sub.reduce("r" + str(sub.rank), concat, 0)
        picked = sub.impl_log[-1][1]
        return out, picked, comm_topology(sub).contiguous

    result = run_spmd(8, main, topology="tree:2x4", params=AUTO)
    for out, picked, contiguous in result.returns:
        assert not contiguous
        assert picked != "hier-mcast"
        if out is not None:
            assert out == "".join(f"r{i}" for i in range(8))


def test_hier_candidate_withheld_beyond_max_segments():
    """A fabric wider than hier-mcast supports must not be offered the
    hier candidate (which would raise at dispatch)."""
    huge = _topo(tuple(range(65)) * 2)
    costs = modeled_frame_costs("bcast", 100_000, 130, AUTO, huge)
    assert "hier-mcast" not in costs
    assert auto_impl("bcast", 100_000, 130, AUTO, topo=huge) != "hier-mcast"
